//! Umbrella library re-exporting the EdgeBERT reproduction crates.
//!
//! Examples under `examples/` and integration tests under `tests/`
//! use these re-exports so they read like downstream user code.
pub use edgebert as core;
pub use edgebert_envm as envm;
pub use edgebert_hw as hw;
pub use edgebert_model as model;
pub use edgebert_nn as nn;
pub use edgebert_quant as quant;
pub use edgebert_tasks as tasks;
pub use edgebert_tensor as tensor;
