//! Row-major dense `f32` matrices.
//!
//! [`Matrix`] is deliberately small and predictable: all operations are
//! shape-checked, panicking variants are documented, and the storage is a
//! plain `Vec<f32>` so the quantizer and the eNVM fault injector can view
//! the raw values.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned when two matrices have incompatible shapes.
///
/// # Example
///
/// ```
/// use edgebert_tensor::Matrix;
///
/// let a = Matrix::zeros(2, 3);
/// let b = Matrix::zeros(4, 4);
/// assert!(a.checked_matmul(&b).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    msg: String,
}

impl ShapeError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape mismatch: {}", self.msg)
    }
}

impl std::error::Error for ShapeError {}

/// A row-major dense matrix of `f32` values.
///
/// # Example
///
/// ```
/// use edgebert_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c, a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Matrix product `self * rhs`, shape `(m, k) x (k, n) -> (m, n)`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree; use
    /// [`Matrix::checked_matmul`] for a fallible variant.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.checked_matmul(rhs).expect("matmul shape mismatch")
    }

    /// Fallible matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `self.cols() != rhs.rows()`.
    pub fn checked_matmul(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != rhs.rows {
            return Err(ShapeError::new(format!(
                "matmul {}x{} * {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop streaming over contiguous
        // rows of both `rhs` and `out`.
        for i in 0..self.rows {
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product with the transpose of `rhs`: `self * rhs^T`.
    ///
    /// Shape `(m, k) x (n, k) -> (m, n)`. Avoids materialising the
    /// transpose, which matters for attention score computation.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt inner dims {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Matrix product with the transpose of `self`: `self^T * rhs`.
    ///
    /// Shape `(k, m)^T x (k, n) -> (m, n)`. Used by backward passes.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn inner dims ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let a_row = &self.data[k * self.cols..(k + 1) * self.cols];
            let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// In-place element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// In-place scaling by a scalar.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Returns `self * s`.
    pub fn scale(&self, s: f32) -> Matrix {
        let mut out = self.clone();
        out.scale_assign(s);
        out
    }

    /// Applies `f` element-wise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` element-wise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Adds `bias` (length `cols`) to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_row_broadcast(&self, bias: &[f32]) -> Matrix {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (v, &b) in out.row_mut(r).iter_mut().zip(bias.iter()) {
                *v += b;
            }
        }
        out
    }

    /// Sum over rows, producing a length-`cols` vector. Used by bias
    /// gradients.
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Extracts the sub-matrix of columns `[start, start + width)`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the matrix width.
    pub fn slice_cols(&self, start: usize, width: usize) -> Matrix {
        assert!(start + width <= self.cols, "column slice out of range");
        let mut out = Matrix::zeros(self.rows, width);
        for r in 0..self.rows {
            out.row_mut(r)
                .copy_from_slice(&self.row(r)[start..start + width]);
        }
        out
    }

    /// Writes `block` into columns `[start, start + block.cols())`.
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible.
    pub fn set_cols(&mut self, start: usize, block: &Matrix) {
        assert_eq!(self.rows, block.rows, "set_cols row mismatch");
        assert!(start + block.cols <= self.cols, "set_cols out of range");
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols + start..r * self.cols + start + block.cols];
            dst.copy_from_slice(block.row(r));
        }
    }

    /// Extracts rows `[start, start + height)` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the matrix height.
    pub fn slice_rows(&self, start: usize, height: usize) -> Matrix {
        assert!(start + height <= self.rows, "row slice out of range");
        Matrix {
            rows: height,
            cols: self.cols,
            data: self.data[start * self.cols..(start + height) * self.cols].to_vec(),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Fraction of exactly-zero elements in `[0, 1]`.
    pub fn sparsity(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|&&x| x == 0.0).count();
        zeros as f32 / self.data.len() as f32
    }

    /// Number of non-zero elements.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&x| x != 0.0).count()
    }

    fn zip_with(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "element-wise shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for r in 0..show {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:8.4} ", self.get(r, c))?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Matrix::eye(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn checked_matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let err = a.checked_matmul(&b).unwrap_err();
        assert!(err.to_string().contains("matmul"));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.5, -1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[2.0, 0.0, 1.0], &[1.0, 1.0, 1.0]]);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 6.0]]));
        assert_eq!(b.sub(&a), Matrix::from_rows(&[&[2.0, 2.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, 8.0]]));
    }

    #[test]
    fn broadcast_and_sum_rows() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let with_bias = a.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(
            with_bias,
            Matrix::from_rows(&[&[11.0, 22.0], &[13.0, 24.0]])
        );
        assert_eq!(a.sum_rows(), vec![4.0, 6.0]);
    }

    #[test]
    fn slicing_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]]);
        let mid = a.slice_cols(1, 2);
        assert_eq!(mid, Matrix::from_rows(&[&[2.0, 3.0], &[6.0, 7.0]]));
        let mut b = a.clone();
        b.set_cols(1, &mid);
        assert_eq!(b, a);
        let top = a.slice_rows(0, 1);
        assert_eq!(top, Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]));
    }

    #[test]
    fn sparsity_counts_zeros() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        assert!((a.sparsity() - 0.75).abs() < 1e-6);
        assert_eq!(a.nnz(), 1);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::zeros(1, 1);
        assert!(!format!("{a}").is_empty());
        assert!(!format!("{a:?}").is_empty());
    }
}
