//! Dense and sparse tensor substrate for the EdgeBERT reproduction.
//!
//! This crate provides the numeric foundation that every other crate in the
//! workspace builds on:
//!
//! * [`Matrix`] — a row-major dense `f32` matrix with the linear-algebra
//!   operations a transformer needs (matmul, transpose, broadcasting
//!   helpers, reductions).
//! * [`kernels`] — numerically stable kernels used by both the software
//!   model and the hardware simulator: log-sum-exp, softmax, and the
//!   entropy function from Eq. (1)/(3) of the paper.
//! * [`sparse`] — the bitmask-encoded sparse matrix format that mirrors the
//!   accelerator's compressed storage (binary tag per element, non-zero
//!   payload array).
//! * [`rng`] — deterministic random number generation, including Gaussian
//!   sampling via Box–Muller (the workspace avoids extra dependencies such
//!   as `rand_distr`).
//! * [`stats`] — small descriptive-statistics helpers used by the
//!   calibration and reporting code.
//!
//! # Example
//!
//! ```
//! use edgebert_tensor::{Matrix, kernels};
//!
//! let logits = Matrix::from_rows(&[&[2.0, 0.5, 0.1]]);
//! let h = kernels::entropy(logits.row(0));
//! assert!(h >= 0.0 && h <= (3.0f32).ln());
//! ```

pub mod kernels;
pub mod matrix;
pub mod rng;
pub mod sparse;
pub mod stats;

pub use kernels::{entropy, log_softmax, logsumexp, softmax_inplace};
pub use matrix::{Matrix, ShapeError};
pub use rng::Rng;
pub use sparse::BitmaskMatrix;
