//! Deterministic random number generation for the whole workspace.
//!
//! Every experiment in the reproduction is seeded so tables and figures are
//! bit-reproducible run to run. Gaussian sampling is implemented with
//! Box–Muller on top of `rand`'s `StdRng` so no extra distribution crate is
//! required.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// Seedable random source with the sampling primitives the workspace needs.
///
/// # Example
///
/// ```
/// use edgebert_tensor::Rng;
///
/// let mut a = Rng::seed_from(7);
/// let mut b = Rng::seed_from(7);
/// assert_eq!(a.uniform(), b.uniform());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    inner: StdRng,
    /// Cached second Box–Muller output.
    spare_gaussian: Option<f32>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
            spare_gaussian: None,
        }
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        self.inner.gen::<f32>()
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.inner.gen::<f64>()) < p
    }

    /// Standard normal sample via Box–Muller.
    pub fn gaussian(&mut self) -> f32 {
        if let Some(z) = self.spare_gaussian.take() {
            return z;
        }
        // Draw u1 in (0, 1] to avoid ln(0).
        let mut u1 = self.uniform();
        if u1 <= f32::MIN_POSITIVE {
            u1 = f32::MIN_POSITIVE;
        }
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare_gaussian = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn gaussian_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.gaussian()
    }

    /// Matrix with i.i.d. `N(0, std^2)` entries.
    pub fn gaussian_matrix(&mut self, rows: usize, cols: usize, std: f32) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for v in m.as_mut_slice() {
            *v = self.gaussian() * std;
        }
        m
    }

    /// Xavier/Glorot-initialised matrix for a layer mapping `fan_in`
    /// features to `fan_out`.
    pub fn xavier(&mut self, fan_in: usize, fan_out: usize) -> Matrix {
        let std = (2.0 / (fan_in + fan_out) as f32).sqrt();
        self.gaussian_matrix(fan_in, fan_out, std)
    }

    /// Gaussian matrix where each entry is zeroed with probability
    /// `sparsity`. Used to fabricate pruned weight tensors in tests.
    pub fn sparse_gaussian(&mut self, rows: usize, cols: usize, sparsity: f32) -> Matrix {
        let mut m = self.gaussian_matrix(rows, cols, 1.0);
        for v in m.as_mut_slice() {
            if self.chance(sparsity as f64) {
                *v = 0.0;
            }
        }
        m
    }

    /// Samples an index from unnormalised non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f32]) -> usize {
        let total: f32 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index needs positive total weight");
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// Monte-Carlo trial its own stream.
    pub fn fork(&mut self) -> Rng {
        let seed = self.inner.gen::<u64>();
        Rng::seed_from(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::seed_from(123);
        let mut b = Rng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
            assert_eq!(a.gaussian(), b.gaussian());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Rng::seed_from(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn chance_frequency() {
        let mut rng = Rng::seed_from(11);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn sparse_gaussian_hits_requested_sparsity() {
        let mut rng = Rng::seed_from(3);
        let m = rng.sparse_gaussian(64, 64, 0.6);
        assert!((m.sparsity() - 0.6).abs() < 0.05);
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut rng = Rng::seed_from(5);
        let w = [0.05f32, 0.9, 0.05];
        let hits = (0..2000).filter(|_| rng.weighted_index(&w) == 1).count();
        assert!(hits > 1600);
    }

    #[test]
    fn xavier_scale_shrinks_with_fan() {
        let mut rng = Rng::seed_from(9);
        let small = rng.xavier(8, 8).frobenius_norm() / 8.0;
        let large = rng.xavier(512, 512).frobenius_norm() / 512.0;
        assert!(large < small);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from(17);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::seed_from(21);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.uniform(), c2.uniform());
    }
}
