//! Descriptive statistics helpers for calibration and report generation.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Population variance; `0.0` for slices shorter than two elements.
pub fn variance(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32
}

/// Population standard deviation.
pub fn std_dev(xs: &[f32]) -> f32 {
    variance(xs).sqrt()
}

/// Minimum value; `f32::INFINITY` for an empty slice.
pub fn min(xs: &[f32]) -> f32 {
    xs.iter().cloned().fold(f32::INFINITY, f32::min)
}

/// Maximum value; `f32::NEG_INFINITY` for an empty slice.
pub fn max(xs: &[f32]) -> f32 {
    xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
}

/// Index of the maximum value (first occurrence).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn argmax(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

/// Linear-interpolation percentile, `p` in `[0, 100]`.
///
/// # Panics
///
/// Panics if `xs` is empty or `p` is out of range.
pub fn percentile(xs: &[f32], p: f32) -> f32 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = p / 100.0 * (sorted.len() - 1) as f32;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f32;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Root-mean-square error between two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn rmse(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "rmse length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let s: f32 = a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum();
    (s / a.len() as f32).sqrt()
}

/// Pearson correlation coefficient; `0.0` when either side is constant.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn pearson(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "pearson length mismatch");
    if a.len() < 2 {
        return 0.0;
    }
    let ma = mean(a);
    let mb = mean(b);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_known() {
        let xs = [1.0f32, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-6);
        assert!((std_dev(&xs) - 1.25f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn empty_slices_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(min(&[]), f32::INFINITY);
        assert_eq!(max(&[]), f32::NEG_INFINITY);
    }

    #[test]
    fn argmax_first_occurrence() {
        assert_eq!(argmax(&[1.0, 5.0, 5.0, 2.0]), 1);
        assert_eq!(argmax(&[-3.0]), 0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0f32, 10.0];
        assert_eq!(percentile(&xs, 0.0), 0.0);
        assert_eq!(percentile(&xs, 100.0), 10.0);
        assert!((percentile(&xs, 50.0) - 5.0).abs() < 1e-6);
        // Median of an odd-length slice is the middle element.
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), 2.0);
    }

    #[test]
    fn rmse_zero_for_identical() {
        let xs = [1.0f32, -2.0, 3.5];
        assert_eq!(rmse(&xs, &xs), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn pearson_detects_correlation_sign() {
        let x = [1.0f32, 2.0, 3.0, 4.0];
        let y = [2.0f32, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-6);
        let z = [8.0f32, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-6);
        assert_eq!(pearson(&x, &[5.0; 4]), 0.0);
    }
}
