//! Numerically stable kernels shared by the model and the hardware simulator.
//!
//! The EdgeBERT special function unit (SFU) reformulates softmax and entropy
//! to avoid overflow and division (paper §7.4.1–7.4.2). The same
//! formulations are used here so software results match what the modelled
//! hardware computes:
//!
//! * softmax via the combined *max trick* + *log-sum-exp trick*
//!   (Eq. 2): `SM(a_k) = exp(a_k - max - ln Σ exp(a_j - max))`
//! * entropy via Eq. (3):
//!   `H(x) = ln Σ e^{x_k - max} + max - Σ x_k e^{x_k - max} / Σ e^{x_k - max}`

use crate::matrix::Matrix;

/// Numerically stable `ln Σ exp(x_k)`.
///
/// Returns negative infinity for an empty slice (the sum of zero terms).
///
/// # Example
///
/// ```
/// use edgebert_tensor::logsumexp;
/// let lse = logsumexp(&[1000.0, 1000.0]);
/// assert!((lse - (1000.0 + (2.0f32).ln())).abs() < 1e-3);
/// ```
pub fn logsumexp(x: &[f32]) -> f32 {
    let max = match x
        .iter()
        .cloned()
        .fold(None, |m: Option<f32>, v| Some(m.map_or(v, |m| m.max(v))))
    {
        Some(m) => m,
        None => return f32::NEG_INFINITY,
    };
    if max.is_infinite() {
        return max;
    }
    let sum: f32 = x.iter().map(|&v| (v - max).exp()).sum();
    max + sum.ln()
}

/// Stable softmax of a logit slice, writing the result in place.
///
/// Uses the SFU's max + log-sum-exp formulation (paper Eq. 2), which never
/// divides: `p_k = exp(x_k - max - logsumexp)`.
///
/// # Example
///
/// ```
/// use edgebert_tensor::softmax_inplace;
/// let mut x = [1.0f32, 2.0, 3.0];
/// softmax_inplace(&mut x);
/// let s: f32 = x.iter().sum();
/// assert!((s - 1.0).abs() < 1e-5);
/// ```
pub fn softmax_inplace(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let lse = logsumexp(x);
    if lse.is_infinite() {
        // All mass on the (first) max element; mirrors saturation behaviour.
        let max = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut assigned = false;
        for v in x.iter_mut() {
            if !assigned && *v == max {
                *v = 1.0;
                assigned = true;
            } else {
                *v = 0.0;
            }
        }
        return;
    }
    for v in x.iter_mut() {
        *v = (*v - lse).exp();
    }
}

/// Stable log-softmax of a logit slice.
pub fn log_softmax(x: &[f32]) -> Vec<f32> {
    let lse = logsumexp(x);
    x.iter().map(|&v| v - lse).collect()
}

/// Entropy (nats) of the categorical distribution induced by logits `x`,
/// computed with the numerically stable formulation of paper Eq. (3).
///
/// The early-exit condition of Algorithm 1/2 is `entropy(z) < E_T`.
/// Bounded by `ln(n)` for `n` classes.
///
/// # Example
///
/// ```
/// use edgebert_tensor::entropy;
/// // Uniform logits give maximal entropy ln(4).
/// let h = entropy(&[0.0, 0.0, 0.0, 0.0]);
/// assert!((h - (4.0f32).ln()).abs() < 1e-5);
/// // A confident distribution has near-zero entropy.
/// assert!(entropy(&[20.0, 0.0, 0.0, 0.0]) < 1e-3);
/// ```
pub fn entropy(x: &[f32]) -> f32 {
    if x.len() <= 1 {
        return 0.0;
    }
    let max = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum_exp = 0.0f32;
    let mut sum_xexp = 0.0f32;
    for &v in x {
        let e = (v - max).exp();
        sum_exp += e;
        sum_xexp += v * e;
    }
    // Eq. (3): ln(Σ e^{x-max}) + max - Σ x e^{x-max} / Σ e^{x-max}
    let h = sum_exp.ln() + max - sum_xexp / sum_exp;
    // Clamp tiny negative values produced by rounding.
    h.max(0.0)
}

/// Entropy computed directly from a probability vector (natural log).
///
/// Used by tests as an independent reference for [`entropy`].
pub fn entropy_of_probs(p: &[f32]) -> f32 {
    -p.iter()
        .filter(|&&v| v > 0.0)
        .map(|&v| v * v.ln())
        .sum::<f32>()
}

/// Applies stable softmax to every row of `m` in place.
pub fn softmax_rows(m: &mut Matrix) {
    for r in 0..m.rows() {
        softmax_inplace(m.row_mut(r));
    }
}

/// GELU activation (tanh approximation, as used by BERT/ALBERT).
#[inline]
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

/// Derivative of [`gelu`] with respect to its input.
#[inline]
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044_715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044_715 * x * x)
}

/// ReLU activation.
#[inline]
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_softmax(x: &[f32]) -> Vec<f32> {
        let sum: f32 = x.iter().map(|v| v.exp()).sum();
        x.iter().map(|v| v.exp() / sum).collect()
    }

    #[test]
    fn logsumexp_matches_naive_for_small_values() {
        let x = [0.1f32, -0.3, 0.7, 1.2];
        let naive = x.iter().map(|v| v.exp()).sum::<f32>().ln();
        assert!((logsumexp(&x) - naive).abs() < 1e-5);
    }

    #[test]
    fn logsumexp_survives_large_values() {
        let lse = logsumexp(&[10_000.0, 10_000.0]);
        assert!(lse.is_finite());
        assert!((lse - (10_000.0 + 2.0f32.ln())).abs() < 1e-2);
    }

    #[test]
    fn logsumexp_empty_is_neg_inf() {
        assert_eq!(logsumexp(&[]), f32::NEG_INFINITY);
    }

    #[test]
    fn softmax_matches_naive() {
        let mut x = [0.3f32, -1.0, 2.0, 0.0];
        let expect = naive_softmax(&x);
        softmax_inplace(&mut x);
        for (a, b) in x.iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_sums_to_one_even_when_saturated() {
        let mut x = [f32::NEG_INFINITY, f32::NEG_INFINITY, 5.0];
        softmax_inplace(&mut x);
        assert!((x.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert_eq!(x[2], 1.0);
    }

    #[test]
    fn entropy_stable_matches_probability_form() {
        let logits = [0.2f32, -0.5, 1.3, 0.0, 2.2];
        let probs = naive_softmax(&logits);
        let h_ref = entropy_of_probs(&probs);
        assert!((entropy(&logits) - h_ref).abs() < 1e-4);
    }

    #[test]
    fn entropy_bounds() {
        // Uniform distribution attains the ln(n) bound.
        let h = entropy(&[3.0; 7]);
        assert!((h - (7.0f32).ln()).abs() < 1e-4);
        // Point mass attains zero.
        assert!(entropy(&[50.0, 0.0]) < 1e-4);
        // Degenerate one-class case.
        assert_eq!(entropy(&[1.2]), 0.0);
    }

    #[test]
    fn entropy_is_shift_invariant() {
        let a = entropy(&[1.0, 2.0, 3.0]);
        let b = entropy(&[101.0, 102.0, 103.0]);
        assert!((a - b).abs() < 1e-3);
    }

    #[test]
    fn entropy_survives_huge_logits() {
        let h = entropy(&[1.0e4, -1.0e4, 0.0]);
        assert!(h.is_finite());
        assert!(h < 1e-3);
    }

    #[test]
    fn log_softmax_exp_is_softmax() {
        let x = [0.5f32, 1.5, -0.5];
        let ls = log_softmax(&x);
        let mut sm = x;
        softmax_inplace(&mut sm);
        for (l, s) in ls.iter().zip(sm.iter()) {
            assert!((l.exp() - s).abs() < 1e-5);
        }
    }

    #[test]
    fn gelu_reference_points() {
        assert!(gelu(0.0).abs() < 1e-7);
        assert!((gelu(1.0) - 0.841_192).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.158_808).abs() < 1e-3);
        // GELU approaches identity for large x and zero for very negative x.
        assert!((gelu(6.0) - 6.0).abs() < 1e-3);
        assert!(gelu(-6.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        let eps = 1e-3f32;
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let fd = (gelu(x + eps) - gelu(x - eps)) / (2.0 * eps);
            assert!(
                (gelu_grad(x) - fd).abs() < 1e-2,
                "x={x}: analytic {} vs fd {fd}",
                gelu_grad(x)
            );
        }
    }

    #[test]
    fn softmax_rows_normalizes_each_row() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-1.0, 0.0, 1.0]]);
        softmax_rows(&mut m);
        for r in 0..m.rows() {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }
}
