//! Bitmask-encoded sparse matrices.
//!
//! The EdgeBERT processing unit stores compressed matrices as a *bitmask*
//! (one bit per element; `1` = non-zero) plus a dense array of the non-zero
//! payloads (paper §7.3). The same layout is reproduced here so that:
//!
//! * the eNVM subsystem can store the bitmask in SLC cells and the payload
//!   in MLC2 cells exactly as the accelerator does, and
//! * the hardware model can charge decoder/encoder energy per bit/word that
//!   actually exists.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A sparse matrix in the accelerator's bitmask format.
///
/// # Example
///
/// ```
/// use edgebert_tensor::{BitmaskMatrix, Matrix};
///
/// let dense = Matrix::from_rows(&[&[0.0, 1.5], &[0.0, 0.0]]);
/// let sparse = BitmaskMatrix::encode(&dense);
/// assert_eq!(sparse.nnz(), 1);
/// assert_eq!(sparse.decode(), dense);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitmaskMatrix {
    rows: usize,
    cols: usize,
    /// One bit per element, row-major, packed LSB-first into bytes.
    mask: Vec<u8>,
    /// Non-zero payloads in row-major order.
    values: Vec<f32>,
}

impl BitmaskMatrix {
    /// Encodes a dense matrix into bitmask format (the PU encoder path).
    pub fn encode(dense: &Matrix) -> Self {
        let (rows, cols) = dense.shape();
        let n = rows * cols;
        let mut mask = vec![0u8; n.div_ceil(8)];
        let mut values = Vec::new();
        for (i, &v) in dense.as_slice().iter().enumerate() {
            if v != 0.0 {
                mask[i / 8] |= 1 << (i % 8);
                values.push(v);
            }
        }
        Self {
            rows,
            cols,
            mask,
            values,
        }
    }

    /// Decodes back to a dense matrix (the PU decoder path): walks the
    /// bitmask and re-inserts zeros at the tagged positions.
    pub fn decode(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        let data = out.as_mut_slice();
        let mut vi = 0;
        for (i, slot) in data.iter_mut().enumerate() {
            if self.bit(i) {
                *slot = self.values[vi];
                vi += 1;
            }
        }
        out
    }

    /// Whether element `i` (row-major) is tagged non-zero.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        (self.mask[i / 8] >> (i % 8)) & 1 == 1
    }

    /// Number of rows of the logical matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the logical matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zero payloads.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Density of the matrix (`nnz / (rows*cols)`), in `[0, 1]`.
    pub fn density(&self) -> f32 {
        let n = self.rows * self.cols;
        if n == 0 {
            0.0
        } else {
            self.values.len() as f32 / n as f32
        }
    }

    /// The packed bitmask bytes (stored in SLC ReRAM on the accelerator).
    pub fn mask_bytes(&self) -> &[u8] {
        &self.mask
    }

    /// The non-zero payloads (stored in MLC2 ReRAM on the accelerator).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Mutable access to the payload array.
    ///
    /// The eNVM fault injector perturbs stored values through this view;
    /// the bitmask stays consistent because only magnitudes change. Writing
    /// an exact `0.0` is allowed — it models a cell stuck at the zero level
    /// and the element remains "present" per the mask.
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// Mutable access to the packed bitmask bytes.
    ///
    /// Flipping mask bits models faults in the SLC bitmask storage. After
    /// such a perturbation the payload/mask pairing can shift, which is
    /// exactly the catastrophic failure mode prior work observed — use
    /// [`BitmaskMatrix::decode_lossy`] afterwards.
    pub fn mask_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.mask
    }

    /// Decodes even when the mask population count no longer matches the
    /// payload count (after mask faults). Missing payloads read as zero and
    /// extra payloads are dropped, mimicking what the hardware decoder
    /// would produce.
    pub fn decode_lossy(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        let data = out.as_mut_slice();
        let mut vi = 0;
        for (i, slot) in data.iter_mut().enumerate() {
            if self.bit(i) {
                *slot = self.values.get(vi).copied().unwrap_or(0.0);
                vi += 1;
            }
        }
        out
    }

    /// Storage footprint in bits: mask bits + 8-bit payloads (the
    /// accelerator stores FP8 payloads).
    pub fn storage_bits_fp8(&self) -> usize {
        self.rows * self.cols + 8 * self.values.len()
    }
}

impl From<&Matrix> for BitmaskMatrix {
    fn from(m: &Matrix) -> Self {
        Self::encode(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn round_trip_dense() {
        let dense = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[2.5, 0.0, -3.0]]);
        let sp = BitmaskMatrix::encode(&dense);
        assert_eq!(sp.nnz(), 3);
        assert_eq!(sp.decode(), dense);
    }

    #[test]
    fn round_trip_all_zero_and_all_dense() {
        let z = Matrix::zeros(4, 4);
        assert_eq!(BitmaskMatrix::encode(&z).decode(), z);
        let d = Matrix::filled(3, 5, 1.25);
        let sp = BitmaskMatrix::encode(&d);
        assert_eq!(sp.density(), 1.0);
        assert_eq!(sp.decode(), d);
    }

    #[test]
    fn density_matches_dense_sparsity() {
        let mut rng = Rng::seed_from(42);
        let dense = rng.sparse_gaussian(16, 16, 0.7);
        let sp = BitmaskMatrix::encode(&dense);
        assert!((sp.density() - (1.0 - dense.sparsity())).abs() < 1e-6);
    }

    #[test]
    fn storage_accounting() {
        let dense = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let sp = BitmaskMatrix::encode(&dense);
        // 4 mask bits + 2 payloads * 8 bits
        assert_eq!(sp.storage_bits_fp8(), 4 + 16);
    }

    #[test]
    fn lossy_decode_handles_mask_faults() {
        let dense = Matrix::from_rows(&[&[1.0, 2.0, 0.0, 0.0]]);
        let mut sp = BitmaskMatrix::encode(&dense);
        // Flip on a mask bit with no payload behind it.
        sp.mask_bytes_mut()[0] |= 1 << 3;
        let recovered = sp.decode_lossy();
        assert_eq!(recovered.get(0, 0), 1.0);
        assert_eq!(recovered.get(0, 1), 2.0);
        assert_eq!(recovered.get(0, 3), 0.0); // missing payload reads zero
    }

    #[test]
    fn values_mut_preserves_mask() {
        let dense = Matrix::from_rows(&[&[1.0, 0.0, 3.0]]);
        let mut sp = BitmaskMatrix::encode(&dense);
        sp.values_mut()[0] = 9.0;
        let out = sp.decode();
        assert_eq!(out.get(0, 0), 9.0);
        assert_eq!(out.get(0, 1), 0.0);
        assert_eq!(out.get(0, 2), 3.0);
    }
}
