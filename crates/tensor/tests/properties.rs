//! Property-based tests for the tensor substrate.

use edgebert_tensor::{entropy, kernels, logsumexp, BitmaskMatrix, Matrix};
use proptest::prelude::*;

fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..max_dim, 1..max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-50.0f32..50.0, r * c).prop_map(move |v| Matrix::from_vec(r, c, v))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_identity_is_noop(m in matrix_strategy(12)) {
        let i = Matrix::eye(m.cols());
        let out = m.matmul(&i);
        prop_assert_eq!(out, m);
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in matrix_strategy(8),
        bc in (1usize..8).prop_flat_map(|k| {
            (Just(k), prop::collection::vec(-10.0f32..10.0, 64), prop::collection::vec(-10.0f32..10.0, 64))
        }),
    ) {
        let (k, bv, cv) = bc;
        let b = Matrix::from_vec(a.cols(), k, bv[..a.cols() * k].to_vec());
        let c = Matrix::from_vec(a.cols(), k, cv[..a.cols() * k].to_vec());
        let lhs = a.matmul(&b.add(&c));
        let mut rhs = a.matmul(&b);
        rhs.add_assign(&a.matmul(&c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-2 * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_preserves_frobenius_norm(m in matrix_strategy(12)) {
        let a = m.frobenius_norm();
        let b = m.transpose().frobenius_norm();
        prop_assert!((a - b).abs() < 1e-3 * (1.0 + a));
    }

    #[test]
    fn matmul_nt_tn_consistent_with_transpose(a in matrix_strategy(8), seed in 0u64..1000) {
        let mut rng = edgebert_tensor::Rng::seed_from(seed);
        let b = rng.gaussian_matrix(5, a.cols(), 1.0);
        let via_nt = a.matmul_nt(&b);
        let via_t = a.matmul(&b.transpose());
        for (x, y) in via_nt.as_slice().iter().zip(via_t.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn softmax_is_a_distribution(logits in prop::collection::vec(-40.0f32..40.0, 1..16)) {
        let mut x = logits.clone();
        kernels::softmax_inplace(&mut x);
        let sum: f32 = x.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(x.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
    }

    #[test]
    fn logsumexp_exceeds_max(logits in prop::collection::vec(-40.0f32..40.0, 1..16)) {
        let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let lse = logsumexp(&logits);
        prop_assert!(lse >= max - 1e-4);
        prop_assert!(lse <= max + (logits.len() as f32).ln() + 1e-4);
    }

    #[test]
    fn entropy_shift_invariant(logits in prop::collection::vec(-20.0f32..20.0, 2..8), shift in -50.0f32..50.0) {
        let shifted: Vec<f32> = logits.iter().map(|&v| v + shift).collect();
        prop_assert!((entropy(&logits) - entropy(&shifted)).abs() < 1e-2);
    }

    #[test]
    fn bitmask_density_complements_sparsity(m in matrix_strategy(12)) {
        let sp = BitmaskMatrix::encode(&m);
        prop_assert!((sp.density() - (1.0 - m.sparsity())).abs() < 1e-6);
        prop_assert_eq!(sp.nnz(), m.nnz());
    }

    #[test]
    fn slicing_round_trips(m in matrix_strategy(10)) {
        let w = m.cols().div_ceil(2);
        let block = m.slice_cols(0, w);
        let mut copy = m.clone();
        copy.set_cols(0, &block);
        prop_assert_eq!(copy, m);
    }
}
