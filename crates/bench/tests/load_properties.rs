//! Determinism properties of the load generators: every generator is
//! reproducible for identical `(spec, seed)`, and the *physical*
//! arrival stream — task, tokens, arrival time, latency target — is
//! invariant under permutation of the traffic-class declaration order
//! (only the reported class indices permute). The same holds for the
//! trace-driven generator, whose segments additionally respect their
//! per-segment class-mix overrides and segment boundaries.

use edgebert::pipeline::{Scale, TaskArtifacts};
use edgebert::serving::{MultiTaskRuntime, TaskRuntime};
use edgebert_bench::load::{
    generate, generate_paced_streams, generate_trace, LoadRequest, LoadSpec, TraceSegment,
    TraceSpec, TrafficClass,
};
use edgebert_tasks::Task;
use proptest::prelude::*;
use std::sync::OnceLock;

fn runtime() -> &'static MultiTaskRuntime {
    static CELL: OnceLock<MultiTaskRuntime> = OnceLock::new();
    CELL.get_or_init(|| {
        MultiTaskRuntime::from_runtimes([
            TaskRuntime::from_artifacts(&TaskArtifacts::cached(Task::Sst2, Scale::Test, 0x70AD)),
            TaskRuntime::from_artifacts(&TaskArtifacts::cached(Task::Qnli, Scale::Test, 0x70AE)),
        ])
    })
}

/// Three distinguishable classes (unique names and latency targets, so
/// the canonical order is unambiguous): one task-bound pair plus one
/// unbound tier that round-robins across tasks.
fn classes(w0: f32, w1: f32, w2: f32) -> Vec<TrafficClass> {
    vec![
        TrafficClass {
            name: "tight",
            latency_target_s: 20e-3,
            weight: w0,
            task: Some(Task::Sst2),
        },
        TrafficClass {
            name: "mid",
            latency_target_s: 60e-3,
            weight: w1,
            task: Some(Task::Qnli),
        },
        TrafficClass {
            name: "loose",
            latency_target_s: 150e-3,
            weight: w2,
            task: None,
        },
    ]
}

/// All 6 permutations of 3 classes.
const PERMS: [[usize; 3]; 6] = [
    [0, 1, 2],
    [0, 2, 1],
    [1, 0, 2],
    [1, 2, 0],
    [2, 0, 1],
    [2, 1, 0],
];

fn permuted(classes: &[TrafficClass], perm: &[usize; 3]) -> Vec<TrafficClass> {
    perm.iter().map(|&i| classes[i].clone()).collect()
}

/// Asserts two generated loads describe the same physical traffic:
/// same tasks, tokens, bit-identical arrivals and latency targets at
/// every position, with class indices agreeing through the class
/// tables (names are unique per mix).
fn assert_same_physical(
    a: &[LoadRequest],
    ca: &[TrafficClass],
    b: &[LoadRequest],
    cb: &[TrafficClass],
) {
    assert_eq!(a.len(), b.len(), "stream lengths differ");
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(ra.task, rb.task);
        assert_eq!(ra.arrival_s.to_bits(), rb.arrival_s.to_bits());
        assert_eq!(ra.request.tokens, rb.request.tokens);
        assert_eq!(ra.request.latency_target_s, rb.request.latency_target_s);
        assert_eq!(
            ca[ra.class].name, cb[rb.class].name,
            "class identity must survive the index remap"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `generate` is a pure function of `(spec, seed)` and its traffic
    /// is independent of class declaration order.
    #[test]
    fn poisson_mix_is_reproducible_and_order_independent(
        seed in 0u64..1_000_000,
        requests in 8usize..48,
        mean_ms in 1.0f64..40.0,
        w0 in 0.1f32..4.0,
        w1 in 0.1f32..4.0,
        w2 in 0.1f32..4.0,
        perm in 0usize..6,
        paced_pick in 0usize..2,
    ) {
        let base = classes(w0, w1, w2);
        let spec = LoadSpec {
            requests,
            mean_interarrival_s: mean_ms * 1e-3,
            paced: paced_pick == 1,
            classes: base.clone(),
            seed,
        };
        let once = generate(runtime(), &spec);
        let again = generate(runtime(), &spec);
        assert_same_physical(&once, &base, &again, &base);

        let shuffled = permuted(&base, &PERMS[perm]);
        let spec_p = LoadSpec { classes: shuffled.clone(), ..spec };
        let other = generate(runtime(), &spec_p);
        assert_same_physical(&once, &base, &other, &shuffled);
    }

    /// Same contract for the fixed-cadence streams (weights are unused
    /// there; phases follow the canonical order).
    #[test]
    fn paced_streams_are_reproducible_and_order_independent(
        seed in 0u64..1_000_000,
        per_class in 2usize..16,
        gap_ms in 2.0f64..50.0,
        perm in 0usize..6,
    ) {
        // Paced streams require task-bound classes.
        let mut base = classes(1.0, 1.0, 1.0);
        base[2].task = Some(Task::Sst2);
        let once = generate_paced_streams(runtime(), &base, gap_ms * 1e-3, per_class, seed);
        let again = generate_paced_streams(runtime(), &base, gap_ms * 1e-3, per_class, seed);
        assert_same_physical(&once, &base, &again, &base);

        let shuffled = permuted(&base, &PERMS[perm]);
        let other = generate_paced_streams(runtime(), &shuffled, gap_ms * 1e-3, per_class, seed);
        assert_same_physical(&once, &base, &other, &shuffled);
    }

    /// Trace-driven generation: reproducible, order-independent, and
    /// physically well-formed (arrivals nondecreasing, inside the
    /// trace's total duration, with the arrival count tracking the
    /// integrated rate).
    #[test]
    fn traces_are_reproducible_and_order_independent(
        seed in 0u64..1_000_000,
        base_hz in 40.0f64..150.0,
        spike_mult in 2.0f64..6.0,
        perm in 0usize..6,
    ) {
        let base = classes(1.0, 1.0, 1.0);
        let spec = TraceSpec::flash_crowd(
            base.clone(), seed, base_hz, spike_mult * base_hz, 0.2, 0.3, 0.2,
        );
        let once = generate_trace(runtime(), &spec);
        let again = generate_trace(runtime(), &spec);
        assert_same_physical(&once, &base, &again, &base);

        let shuffled = permuted(&base, &PERMS[perm]);
        let spec_p = TraceSpec {
            classes: shuffled.clone(),
            segments: spec.segments.clone(),
            seed,
        };
        let other = generate_trace(runtime(), &spec_p);
        assert_same_physical(&once, &base, &other, &shuffled);

        let total_s = 0.2 + 0.3 + 0.2;
        let mut prev = 0.0f64;
        for r in &once {
            prop_assert!(r.arrival_s >= prev && r.arrival_s <= total_s);
            prev = r.arrival_s;
        }
        // Poisson count concentrates around the integrated rate; allow
        // a wide band (±60%) so the property never flakes.
        let expected = spec.expected_requests();
        prop_assert!(
            (once.len() as f64) > 0.4 * expected && (once.len() as f64) < 1.6 * expected,
            "got {} arrivals, expected ~{:.0}",
            once.len(),
            expected
        );
    }

    /// Per-segment class-weight overrides hold exactly: a segment that
    /// zeroes a class's weight draws none of it inside its window, and
    /// ramps that integrate to (near) zero measure emit (near) nothing.
    #[test]
    fn trace_segments_respect_their_class_mix(
        seed in 0u64..1_000_000,
        rate_hz in 60.0f64..200.0,
    ) {
        let base = classes(1.0, 1.0, 1.0);
        let spec = TraceSpec {
            classes: base.clone(),
            segments: vec![
                TraceSegment::steady("mixed", 0.25, rate_hz),
                // The crowd: all weight on the tight class.
                TraceSegment::steady("crowd", 0.25, rate_hz)
                    .with_class_weights(vec![1.0, 0.0, 0.0]),
            ],
            seed,
        };
        let load = generate_trace(runtime(), &spec);
        for r in &load {
            if r.arrival_s > 0.25 {
                // Zero-weight classes must not appear in the crowd
                // segment.
                prop_assert_eq!(base[r.class].name, "tight");
            }
        }
        // A ramp down to zero has half the steady segment's measure.
        let ramp = TraceSpec {
            classes: base.clone(),
            segments: vec![TraceSegment::ramp("fall", 0.25, rate_hz, 0.0)],
            seed,
        };
        let falling = generate_trace(runtime(), &ramp);
        prop_assert!(
            (falling.len() as f64) < 0.25 * rate_hz * 0.85,
            "a falling ramp must thin out: {} arrivals at steady-equivalent {:.0}",
            falling.len(),
            0.25 * rate_hz
        );
    }
}
