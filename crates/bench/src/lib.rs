//! Benchmark harness for the EdgeBERT reproduction.
//!
//! One Criterion bench exists per table/figure of the paper's evaluation
//! (see `benches/`), and the [`repro`](../src/bin/repro.rs) binary
//! regenerates every table and figure as text.
//!
//! Benches share prebuilt [`TaskArtifacts`] through
//! [`bench_artifacts`]/[`bench_artifact_suite`] so Criterion measures the
//! experiment computation, not model training.

pub mod load;

use edgebert::pipeline::{Scale, TaskArtifacts};
use edgebert_tasks::Task;
use std::sync::OnceLock;

/// Seed shared by all benchmark artifacts.
pub const BENCH_SEED: u64 = 0xBE9C;

/// Artifacts for one task at test scale, built once per process.
pub fn bench_artifacts() -> &'static TaskArtifacts {
    static CELL: OnceLock<TaskArtifacts> = OnceLock::new();
    CELL.get_or_init(|| TaskArtifacts::build(Task::Sst2, Scale::Test, BENCH_SEED))
}

/// Artifacts for two tasks (one binary, one 3-way), built once per
/// process. Used by the experiment drivers that iterate tasks.
pub fn bench_artifact_suite() -> &'static [TaskArtifacts] {
    static CELL: OnceLock<Vec<TaskArtifacts>> = OnceLock::new();
    CELL.get_or_init(|| {
        vec![
            TaskArtifacts::build(Task::Sst2, Scale::Test, BENCH_SEED),
            TaskArtifacts::build(Task::Mnli, Scale::Test, BENCH_SEED + 1),
        ]
    })
}
