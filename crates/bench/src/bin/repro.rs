//! Regenerates every table and figure of the EdgeBERT evaluation.
//!
//! ```text
//! repro [--scale test|paper] [experiment...]
//! ```
//!
//! With no experiment arguments, all of them run in paper order. At
//! `--scale paper` (the default) the four task models are trained at the
//! `AlbertConfig::small` scale; `--scale test` uses the tiny test setup
//! for a fast smoke run.

use edgebert::experiments::{fig10, fig11, fig7, fig8, fig9, table1, table2, table3, table4};
use edgebert::pipeline::{Scale, TaskArtifacts};
use edgebert_tasks::Task;
use std::time::Instant;

const ALL: [&str; 9] = [
    "table1", "table2", "table3", "table4", "fig7", "fig8", "fig9", "fig10", "fig11",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut wanted: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("paper") | None => Scale::Paper,
                    Some(other) => {
                        eprintln!("unknown scale '{other}', expected test|paper");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                eprintln!("usage: repro [--scale test|paper] [{}]", ALL.join("|"));
                return;
            }
            exp => wanted.push(exp.to_string()),
        }
        i += 1;
    }
    if wanted.is_empty() {
        wanted = ALL.iter().map(|s| s.to_string()).collect();
    }
    for w in &wanted {
        if !ALL.contains(&w.as_str()) {
            eprintln!(
                "unknown experiment '{w}', expected one of {}",
                ALL.join(", ")
            );
            std::process::exit(2);
        }
    }

    let needs_artifacts = wanted.iter().any(|w| {
        matches!(
            w.as_str(),
            "table1" | "table2" | "table3" | "fig7" | "fig8" | "fig9"
        )
    });

    let artifacts: Vec<TaskArtifacts> = if needs_artifacts {
        println!(
            "== building task artifacts (scale {scale:?}; cache: {}) ==",
            TaskArtifacts::artifact_dir().display()
        );
        Task::all()
            .iter()
            .enumerate()
            .map(|(i, &task)| {
                let t0 = Instant::now();
                // Disk-cached by (task, scale, seed): repeat runs load in
                // milliseconds instead of retraining. Point
                // EDGEBERT_ARTIFACT_DIR elsewhere (or wipe the dir) to
                // force a rebuild.
                let art = TaskArtifacts::cached(task, scale, 0xED6E + i as u64);
                println!(
                    "  {task}: teacher {:.1}% student {:.1}% (enc sparsity {:.0}%, emb sparsity {:.0}%, {} heads off) [{:.1}s]",
                    art.summary.teacher_accuracy * 100.0,
                    art.summary.student_accuracy * 100.0,
                    art.summary.encoder_sparsity * 100.0,
                    art.summary.embedding_sparsity * 100.0,
                    art.summary.heads_off,
                    t0.elapsed().as_secs_f64(),
                );
                art
            })
            .collect()
    } else {
        Vec::new()
    };

    let (trials, eval_size) = match scale {
        Scale::Test => (20, 16),
        Scale::Paper => (100, 48),
    };

    for w in &wanted {
        let t0 = Instant::now();
        println!("\n==================== {w} ====================");
        match w.as_str() {
            "table1" => println!("{}", table1::render(&table1::run(&artifacts))),
            "table2" => println!(
                "{}",
                table2::render(&table2::run(&artifacts, trials, eval_size, 0x7AB2))
            ),
            "table3" => println!("{}", table3::render(&table3::run(&artifacts))),
            "table4" => println!("{}", table4::render(&table4::run())),
            "fig7" => {
                // Use the task with the widest exit spread so the trace
                // actually exercises the DVFS voltage steps.
                let art = artifacts
                    .iter()
                    .max_by(|a, b| {
                        a.calib_conv[0]
                            .avg_exit_layer
                            .total_cmp(&b.calib_conv[0].avg_exit_layer)
                    })
                    .expect("artifacts built for fig7");
                let engine = art.engine_at(50e-3, edgebert::DropTarget::OnePercent, true);
                println!("{}", fig7::render(&fig7::run(art, &engine, 3)));
            }
            "fig8" => println!("{}", fig8::render(&fig8::run(&artifacts))),
            "fig9" => println!("{}", fig9::render(&fig9::run(&artifacts))),
            "fig10" => println!("{}", fig10::render(&fig10::run())),
            "fig11" => println!("{}", fig11::render(&fig11::run())),
            _ => unreachable!("validated above"),
        }
        println!("[{w} took {:.1}s]", t0.elapsed().as_secs_f64());
    }
}
