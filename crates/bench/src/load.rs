//! Mixed-deadline load generation and tail-latency reporting for the
//! scheduler benchmarks.
//!
//! The generator produces the traffic shape the EDF scheduler exists
//! for: requests across the served tasks arriving as a Poisson-like
//! process, each drawn from a weighted set of [`TrafficClass`]es (a
//! tight voice-assistant budget mixed with relaxed translation
//! traffic). [`TailReport`] folds a drained schedule into the numbers
//! that matter under load — p50/p95/p99 sojourn latency and the
//! deadline-violation rate — per class, so an EDF-vs-FIFO comparison
//! shows exactly who head-of-line blocking was hurting.

use edgebert::scheduler::{DeadlineScheduler, ScheduledResponse, SchedulerConfig};
use edgebert::{InferenceRequest, MultiTaskRuntime};
use edgebert_tasks::{Task, TaskGenerator};
use edgebert_tensor::stats::percentile;
use edgebert_tensor::Rng;

/// One deadline tier of the generated traffic mix.
#[derive(Debug, Clone)]
pub struct TrafficClass {
    /// Label used in reports (e.g. `"tight"`).
    pub name: &'static str,
    /// Per-request latency target, seconds.
    pub latency_target_s: f64,
    /// Relative share of the traffic in this class.
    pub weight: f32,
}

/// A generated load: the arrival process the scheduler replays.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Number of requests to generate.
    pub requests: usize,
    /// Mean exponential inter-arrival gap, seconds.
    pub mean_interarrival_s: f64,
    /// The deadline mix.
    pub classes: Vec<TrafficClass>,
    /// RNG seed (arrivals, class draws, and sentences are all
    /// deterministic in it).
    pub seed: u64,
}

/// One generated request with its arrival time and traffic class.
#[derive(Debug, Clone)]
pub struct LoadRequest {
    /// Task the request routes to.
    pub task: Task,
    /// The request (tokens + latency target of its class).
    pub request: InferenceRequest,
    /// Arrival timestamp on the virtual clock, seconds.
    pub arrival_s: f64,
    /// Index into [`LoadSpec::classes`].
    pub class: usize,
}

/// Mean modeled compute latency over a few sentences of every served
/// task — the service-time scale to size deadlines and arrival rates
/// against.
///
/// Probed at a zero latency target: the DVFS controller then runs at
/// nominal V/F (maximum performance), so this is the *floor* service
/// time. Relaxed-deadline requests may legitimately take longer —
/// latency-aware inference stretches compute into whatever slack the
/// sentence carries.
pub fn estimate_service_s(runtime: &MultiTaskRuntime, seed: u64) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for task in runtime.tasks() {
        let rt = runtime.runtime(task).expect("served task");
        let gen = TaskGenerator::standard(task, rt.model().config.max_seq_len);
        for ex in gen.generate(4, seed).iter() {
            let resp = rt.serve(&InferenceRequest::new(ex.tokens.clone()).with_latency_target(0.0));
            total += resp.result.latency_s;
            count += 1;
        }
    }
    total / count.max(1) as f64
}

/// Generates a mixed-task, mixed-deadline arrival process: tasks drawn
/// round-robin across the runtime's served set, classes drawn by
/// weight, inter-arrival gaps exponential with the spec's mean.
pub fn generate(runtime: &MultiTaskRuntime, spec: &LoadSpec) -> Vec<LoadRequest> {
    let tasks = runtime.tasks();
    assert!(!tasks.is_empty(), "runtime serves no tasks");
    assert!(!spec.classes.is_empty(), "load needs at least one class");
    let mut rng = Rng::seed_from(spec.seed);
    let weights: Vec<f32> = spec.classes.iter().map(|c| c.weight).collect();
    let mut pools: Vec<(Task, Vec<Vec<u32>>)> = tasks
        .iter()
        .map(|&task| {
            let rt = runtime.runtime(task).expect("served task");
            let gen = TaskGenerator::standard(task, rt.model().config.max_seq_len);
            let toks = gen
                .generate(
                    spec.requests.div_ceil(tasks.len()).max(1),
                    spec.seed ^ task as u64,
                )
                .examples()
                .iter()
                .map(|ex| ex.tokens.clone())
                .collect();
            (task, toks)
        })
        .collect();
    let mut load = Vec::with_capacity(spec.requests);
    let mut clock = 0.0f64;
    for i in 0..spec.requests {
        // Exponential inter-arrival: -mean * ln(1 - U), U ∈ [0, 1).
        let u = rng.uniform().min(0.999_999) as f64;
        clock += -spec.mean_interarrival_s * (1.0 - u).ln();
        let class = rng.weighted_index(&weights);
        let (task, pool) = &mut pools[i % tasks.len()];
        let tokens = pool[i / tasks.len() % pool.len()].clone();
        load.push(LoadRequest {
            task: *task,
            request: InferenceRequest::new(tokens)
                .with_latency_target(spec.classes[class].latency_target_s),
            arrival_s: clock,
            class,
        });
    }
    load
}

/// Drains one generated load through a scheduler at `cfg`, returning
/// responses in submission order. Every generated task is served by
/// construction, so the options are unwrapped here.
pub fn drain_load(
    runtime: &MultiTaskRuntime,
    load: &[LoadRequest],
    cfg: SchedulerConfig,
) -> Vec<ScheduledResponse> {
    let mut scheduler = DeadlineScheduler::new(runtime, cfg);
    for r in load {
        scheduler.submit(r.task, r.request.clone(), r.arrival_s);
    }
    scheduler
        .drain()
        .into_iter()
        .map(|r| r.expect("generated load only targets served tasks"))
        .collect()
}

/// Tail-latency summary of a set of scheduled responses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailReport {
    /// Number of responses folded in.
    pub count: usize,
    /// Mean sojourn (queue + compute), milliseconds.
    pub mean_ms: f64,
    /// Median sojourn, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile sojourn, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile sojourn, milliseconds.
    pub p99_ms: f64,
    /// Fraction of responses whose sojourn missed the deadline.
    pub violation_rate: f64,
}

impl TailReport {
    /// Folds responses into the report. Empty input yields zeros.
    pub fn from_scheduled<'a>(responses: impl IntoIterator<Item = &'a ScheduledResponse>) -> Self {
        let mut sojourns_ms: Vec<f32> = Vec::new();
        let mut violations = 0usize;
        for r in responses {
            sojourns_ms.push((r.sojourn_s * 1e3) as f32);
            if !r.deadline_met {
                violations += 1;
            }
        }
        if sojourns_ms.is_empty() {
            return Self {
                count: 0,
                mean_ms: 0.0,
                p50_ms: 0.0,
                p95_ms: 0.0,
                p99_ms: 0.0,
                violation_rate: 0.0,
            };
        }
        let count = sojourns_ms.len();
        Self {
            count,
            mean_ms: sojourns_ms.iter().map(|&x| x as f64).sum::<f64>() / count as f64,
            p50_ms: percentile(&sojourns_ms, 50.0) as f64,
            p95_ms: percentile(&sojourns_ms, 95.0) as f64,
            p99_ms: percentile(&sojourns_ms, 99.0) as f64,
            violation_rate: violations as f64 / count as f64,
        }
    }
}

/// Per-class tail reports for one drained load, in class order, plus
/// the overall report as a final row.
pub fn class_reports(
    load: &[LoadRequest],
    responses: &[ScheduledResponse],
    classes: &[TrafficClass],
) -> Vec<(String, TailReport)> {
    assert_eq!(load.len(), responses.len(), "one response per request");
    let mut rows = Vec::with_capacity(classes.len() + 1);
    for (c, class) in classes.iter().enumerate() {
        let members = load
            .iter()
            .zip(responses)
            .filter(|(l, _)| l.class == c)
            .map(|(_, r)| r);
        rows.push((class.name.to_string(), TailReport::from_scheduled(members)));
    }
    rows.push(("all".to_string(), TailReport::from_scheduled(responses)));
    rows
}

/// Renders an EDF-vs-FIFO comparison table over per-class reports.
pub fn render_comparison(fifo: &[(String, TailReport)], edf: &[(String, TailReport)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:<6} {:>5} {:>9} {:>9} {:>9} {:>9} {:>10}\n",
        "class", "policy", "n", "mean", "p50", "p95", "p99", "violations"
    ));
    for ((name, f), (_, e)) in fifo.iter().zip(edf) {
        for (policy, r) in [("FIFO", f), ("EDF", e)] {
            out.push_str(&format!(
                "{:<8} {:<6} {:>5} {:>7.2}ms {:>7.2}ms {:>7.2}ms {:>7.2}ms {:>9.1}%\n",
                name,
                policy,
                r.count,
                r.mean_ms,
                r.p50_ms,
                r.p95_ms,
                r.p99_ms,
                r.violation_rate * 100.0,
            ));
        }
    }
    out
}
