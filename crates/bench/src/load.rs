//! Mixed-deadline load generation and tail-latency reporting for the
//! scheduler benchmarks.
//!
//! The generator produces the traffic shape the EDF scheduler exists
//! for: requests across the served tasks arriving as a Poisson-like
//! process, each drawn from a weighted set of [`TrafficClass`]es (a
//! tight voice-assistant budget mixed with relaxed translation
//! traffic). [`TailReport`] folds a drained schedule into the numbers
//! that matter under load — p50/p95/p99 sojourn latency and the
//! deadline-violation rate — per class, so an EDF-vs-FIFO comparison
//! shows exactly who head-of-line blocking was hurting.

use edgebert::scheduler::{DeadlineScheduler, ScheduledResponse, SchedulerConfig};
use edgebert::server::{Server, ServerConfig, ServerResponse, ServerStats};
use edgebert::{InferenceRequest, MultiTaskRuntime};
use edgebert_tasks::{Task, TaskGenerator};
use edgebert_tensor::stats::percentile;
use edgebert_tensor::Rng;
use std::time::{Duration, Instant};

/// One deadline tier of the generated traffic mix.
#[derive(Debug, Clone)]
pub struct TrafficClass {
    /// Label used in reports (e.g. `"tight"`).
    pub name: &'static str,
    /// Per-request latency target, seconds.
    pub latency_target_s: f64,
    /// Relative share of the traffic in this class.
    pub weight: f32,
    /// Route this class's requests to one task (the deployment shape
    /// where an application ↔ task ↔ deadline tier, e.g. the voice
    /// assistant is SST-2 and the translator is QNLI). `None` draws
    /// tasks round-robin across the runtime's served set, mixing
    /// classes within each task.
    pub task: Option<Task>,
}

/// A generated load: the arrival process the scheduler replays.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Number of requests to generate.
    pub requests: usize,
    /// Mean inter-arrival gap, seconds.
    pub mean_interarrival_s: f64,
    /// Deterministic gaps exactly at the mean (a frame-paced edge
    /// pipeline: fixed sensor or audio cadence). `false` draws
    /// exponential gaps (Poisson arrivals, the bursty open-loop case).
    pub paced: bool,
    /// The deadline mix.
    pub classes: Vec<TrafficClass>,
    /// RNG seed (arrivals, class draws, and sentences are all
    /// deterministic in it).
    pub seed: u64,
}

/// One generated request with its arrival time and traffic class.
#[derive(Debug, Clone)]
pub struct LoadRequest {
    /// Task the request routes to.
    pub task: Task,
    /// The request (tokens + latency target of its class).
    pub request: InferenceRequest,
    /// Arrival timestamp on the virtual clock, seconds.
    pub arrival_s: f64,
    /// Index into [`LoadSpec::classes`].
    pub class: usize,
}

/// Mean modeled compute latency over a few sentences of every served
/// task — the service-time scale to size deadlines and arrival rates
/// against.
///
/// Probed at a zero latency target: the DVFS controller then runs at
/// nominal V/F (maximum performance), so this is the *floor* service
/// time. Relaxed-deadline requests may legitimately take longer —
/// latency-aware inference stretches compute into whatever slack the
/// sentence carries.
pub fn estimate_service_s(runtime: &MultiTaskRuntime, seed: u64) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for task in runtime.tasks() {
        let rt = runtime.runtime(task).expect("served task");
        let gen = TaskGenerator::standard(task, rt.model().config.max_seq_len);
        for ex in gen.generate(4, seed).iter() {
            let resp = rt.serve(&InferenceRequest::new(ex.tokens.clone()).with_latency_target(0.0));
            total += resp.result.latency_s;
            count += 1;
        }
    }
    total / count.max(1) as f64
}

/// Generates a mixed-task, mixed-deadline arrival process: tasks drawn
/// round-robin across the runtime's served set, classes drawn by
/// weight, inter-arrival gaps exponential with the spec's mean.
pub fn generate(runtime: &MultiTaskRuntime, spec: &LoadSpec) -> Vec<LoadRequest> {
    let tasks = runtime.tasks();
    assert!(!tasks.is_empty(), "runtime serves no tasks");
    assert!(!spec.classes.is_empty(), "load needs at least one class");
    let mut rng = Rng::seed_from(spec.seed);
    let weights: Vec<f32> = spec.classes.iter().map(|c| c.weight).collect();
    let mut pools: Vec<(Task, Vec<Vec<u32>>)> = tasks
        .iter()
        .map(|&task| {
            let rt = runtime.runtime(task).expect("served task");
            let gen = TaskGenerator::standard(task, rt.model().config.max_seq_len);
            let toks = gen
                .generate(
                    spec.requests.div_ceil(tasks.len()).max(1),
                    spec.seed ^ task as u64,
                )
                .examples()
                .iter()
                .map(|ex| ex.tokens.clone())
                .collect();
            (task, toks)
        })
        .collect();
    let mut load = Vec::with_capacity(spec.requests);
    let mut clock = 0.0f64;
    for i in 0..spec.requests {
        // Paced: fixed gaps. Poisson: -mean * ln(1 - U), U ∈ [0, 1).
        clock += if spec.paced {
            spec.mean_interarrival_s
        } else {
            let u = rng.uniform().min(0.999_999) as f64;
            -spec.mean_interarrival_s * (1.0 - u).ln()
        };
        let class = rng.weighted_index(&weights);
        let pool_at = match spec.classes[class].task {
            // Class-bound traffic routes to its task's pool.
            Some(task) => tasks
                .iter()
                .position(|&t| t == task)
                .expect("class-bound task must be served by the runtime"),
            // Unbound traffic draws tasks round-robin.
            None => i % tasks.len(),
        };
        let (task, pool) = &mut pools[pool_at];
        let tokens = pool[i / tasks.len() % pool.len()].clone();
        load.push(LoadRequest {
            task: *task,
            request: InferenceRequest::new(tokens)
                .with_latency_target(spec.classes[class].latency_target_s),
            arrival_s: clock,
            class,
        });
    }
    load
}

/// Generates deterministic per-class paced streams: every class must
/// be bound to its task ([`TrafficClass::task`]), and class `c`'s
/// requests arrive every `lane_interarrival_s` seconds with a phase
/// offset of `c / classes · lane_interarrival_s` staggering the
/// streams. This is the fixed-cadence counterpart of [`generate`]'s
/// Poisson mix — the shape of frame-paced edge pipelines, where each
/// application (sensor, microphone, camera) ticks on its own clock —
/// and the per-lane offered utilization is exactly
/// `floor service / lane_interarrival_s`. Class weights are ignored:
/// each class contributes `requests_per_class` requests.
pub fn generate_paced_streams(
    runtime: &MultiTaskRuntime,
    classes: &[TrafficClass],
    lane_interarrival_s: f64,
    requests_per_class: usize,
    seed: u64,
) -> Vec<LoadRequest> {
    assert!(!classes.is_empty(), "load needs at least one class");
    let mut load: Vec<LoadRequest> = Vec::with_capacity(classes.len() * requests_per_class);
    for (c, class) in classes.iter().enumerate() {
        let task = class
            .task
            .expect("paced streams require task-bound classes");
        let rt = runtime.runtime(task).expect("served task");
        let gen = TaskGenerator::standard(task, rt.model().config.max_seq_len);
        let toks: Vec<Vec<u32>> = gen
            .generate(requests_per_class.max(1), seed ^ task as u64)
            .examples()
            .iter()
            .map(|ex| ex.tokens.clone())
            .collect();
        let phase = c as f64 / classes.len() as f64;
        for (i, tokens) in toks.iter().take(requests_per_class).cloned().enumerate() {
            load.push(LoadRequest {
                task,
                request: InferenceRequest::new(tokens).with_latency_target(class.latency_target_s),
                arrival_s: (phase + i as f64) * lane_interarrival_s,
                class: c,
            });
        }
    }
    // Stable by arrival: simultaneous ticks keep class order.
    load.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
    load
}

/// Drains one generated load through a scheduler at `cfg`, returning
/// responses in submission order. Every generated task is served by
/// construction, so the options are unwrapped here.
pub fn drain_load(
    runtime: &MultiTaskRuntime,
    load: &[LoadRequest],
    cfg: SchedulerConfig,
) -> Vec<ScheduledResponse> {
    let mut scheduler = DeadlineScheduler::new(runtime, cfg);
    for r in load {
        scheduler.submit(r.task, r.request.clone(), r.arrival_s);
    }
    scheduler
        .drain()
        .into_iter()
        .map(|r| r.expect("generated load only targets served tasks"))
        .collect()
}

/// Replays one generated load against a wall-clock [`Server`]:
/// requests are submitted at their real arrival times (the calling
/// thread sleeps out each inter-arrival gap), then every handle is
/// awaited in submission order.
///
/// This is the serving counterpart of [`drain_load`]: the same traffic
/// through real worker threads instead of the virtual timeline, with
/// queueing delays *measured* rather than replayed. Run it with
/// [`ServerConfig::emulate_service_time`] on so shards hold their lanes
/// for the modeled compute latency and utilization is physically
/// meaningful. The lane capacity must cover the spec's backlog — a
/// rejected submission is a panic here, not silent load shedding.
pub fn drain_load_wall_clock(
    runtime: &MultiTaskRuntime,
    load: &[LoadRequest],
    cfg: ServerConfig,
) -> Vec<ServerResponse> {
    drain_load_wall_clock_stats(runtime, load, cfg).0
}

/// [`drain_load_wall_clock`] returning the final per-lane
/// [`ServerStats`] snapshot alongside the responses — the preemption
/// benches report parked/preempted/resumed counters from it.
pub fn drain_load_wall_clock_stats(
    runtime: &MultiTaskRuntime,
    load: &[LoadRequest],
    cfg: ServerConfig,
) -> (Vec<ServerResponse>, ServerStats) {
    let server = Server::start(runtime, cfg);
    let epoch = Instant::now();
    let mut handles = Vec::with_capacity(load.len());
    for r in load {
        let due = epoch + Duration::from_secs_f64(r.arrival_s);
        if let Some(gap) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(gap);
        }
        handles.push(
            server
                .submit(r.task, r.request.clone())
                .expect("lane capacity must cover the generated load"),
        );
    }
    let responses = handles
        .into_iter()
        .map(|h| h.wait().expect("shard workers outlive the drain"))
        .collect();
    let stats = server.shutdown();
    (responses, stats)
}

/// Renders the preemption-related lane counters of a stats snapshot —
/// the bench-report row for preemptive serving runs.
pub fn render_preemption_stats(stats: &ServerStats) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:>8} {:>10} {:>8} {:>12}\n",
        "lane", "served", "preempted", "resumed", "max parked"
    ));
    for lane in &stats.lanes {
        out.push_str(&format!(
            "{:<8} {:>8} {:>10} {:>8} {:>12}\n",
            lane.task.to_string(),
            lane.served,
            lane.preempted,
            lane.resumed,
            lane.max_parked_depth,
        ));
    }
    out
}

/// Offered per-lane utilization of a load spec against a floor service
/// time: `service / (inter-arrival · lanes · shards)`. Tasks are drawn
/// round-robin, so each of the `lanes` task lanes sees `1/lanes` of the
/// arrival rate, spread over its `shards` engines. Values are relative
/// to the *floor* (nominal-V/F) service time — slack-blind DVFS
/// stretches real service beyond it, which is exactly the failure mode
/// the queue-aware server exists to contain.
pub fn offered_utilization(
    service_floor_s: f64,
    mean_interarrival_s: f64,
    lanes: usize,
    shards_per_lane: usize,
) -> f64 {
    service_floor_s / (mean_interarrival_s * lanes.max(1) as f64 * shards_per_lane.max(1) as f64)
}

/// Tail-latency summary of a set of scheduled responses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailReport {
    /// Number of responses folded in.
    pub count: usize,
    /// Mean sojourn (queue + compute), milliseconds.
    pub mean_ms: f64,
    /// Median sojourn, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile sojourn, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile sojourn, milliseconds.
    pub p99_ms: f64,
    /// Fraction of responses whose sojourn missed the deadline.
    pub violation_rate: f64,
}

/// Anything with a sojourn time and a deadline verdict folds into a
/// [`TailReport`] — the virtual-timeline scheduler's responses and the
/// wall-clock server's alike.
pub trait SojournSample {
    /// End-to-end response time (queue + compute), seconds.
    fn sojourn_s(&self) -> f64;
    /// Whether the sojourn met the request's latency target.
    fn deadline_met(&self) -> bool;
}

impl SojournSample for ScheduledResponse {
    fn sojourn_s(&self) -> f64 {
        self.sojourn_s
    }
    fn deadline_met(&self) -> bool {
        self.deadline_met
    }
}

impl SojournSample for ServerResponse {
    fn sojourn_s(&self) -> f64 {
        self.sojourn_s
    }
    fn deadline_met(&self) -> bool {
        self.deadline_met
    }
}

impl TailReport {
    /// Folds any sojourn samples into the report. Empty input yields
    /// zeros.
    pub fn from_samples<'a, S: SojournSample + 'a>(
        samples: impl IntoIterator<Item = &'a S>,
    ) -> Self {
        let mut sojourns_ms: Vec<f32> = Vec::new();
        let mut violations = 0usize;
        for r in samples {
            sojourns_ms.push((r.sojourn_s() * 1e3) as f32);
            if !r.deadline_met() {
                violations += 1;
            }
        }
        if sojourns_ms.is_empty() {
            return Self {
                count: 0,
                mean_ms: 0.0,
                p50_ms: 0.0,
                p95_ms: 0.0,
                p99_ms: 0.0,
                violation_rate: 0.0,
            };
        }
        let count = sojourns_ms.len();
        Self {
            count,
            mean_ms: sojourns_ms.iter().map(|&x| x as f64).sum::<f64>() / count as f64,
            p50_ms: percentile(&sojourns_ms, 50.0) as f64,
            p95_ms: percentile(&sojourns_ms, 95.0) as f64,
            p99_ms: percentile(&sojourns_ms, 99.0) as f64,
            violation_rate: violations as f64 / count as f64,
        }
    }

    /// Folds scheduled responses into the report (alias of
    /// [`from_samples`](Self::from_samples), kept for callers written
    /// against the PR 2 API).
    pub fn from_scheduled<'a>(responses: impl IntoIterator<Item = &'a ScheduledResponse>) -> Self {
        Self::from_samples(responses)
    }
}

/// Per-class tail reports for one drained load, in class order, plus
/// the overall report as a final row. Works over scheduled (virtual
/// timeline) and server (wall clock) responses alike.
pub fn class_reports<S: SojournSample>(
    load: &[LoadRequest],
    responses: &[S],
    classes: &[TrafficClass],
) -> Vec<(String, TailReport)> {
    assert_eq!(load.len(), responses.len(), "one response per request");
    let mut rows = Vec::with_capacity(classes.len() + 1);
    for (c, class) in classes.iter().enumerate() {
        let members = load
            .iter()
            .zip(responses)
            .filter(|(l, _)| l.class == c)
            .map(|(_, r)| r);
        rows.push((class.name.to_string(), TailReport::from_samples(members)));
    }
    rows.push(("all".to_string(), TailReport::from_samples(responses)));
    rows
}

/// Renders a two-system comparison table over per-class reports, with
/// caller-chosen system labels (e.g. `"FIFO"`/`"EDF"`, or
/// `"blind"`/`"aware"` for the server's slack modes).
pub fn render_comparison_labeled(
    label_a: &str,
    rows_a: &[(String, TailReport)],
    label_b: &str,
    rows_b: &[(String, TailReport)],
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:<6} {:>5} {:>9} {:>9} {:>9} {:>9} {:>10}\n",
        "class", "system", "n", "mean", "p50", "p95", "p99", "violations"
    ));
    for ((name, a), (_, b)) in rows_a.iter().zip(rows_b) {
        for (label, r) in [(label_a, a), (label_b, b)] {
            out.push_str(&format!(
                "{:<8} {:<6} {:>5} {:>7.2}ms {:>7.2}ms {:>7.2}ms {:>7.2}ms {:>9.1}%\n",
                name,
                label,
                r.count,
                r.mean_ms,
                r.p50_ms,
                r.p95_ms,
                r.p99_ms,
                r.violation_rate * 100.0,
            ));
        }
    }
    out
}

/// Renders an EDF-vs-FIFO comparison table over per-class reports.
pub fn render_comparison(fifo: &[(String, TailReport)], edf: &[(String, TailReport)]) -> String {
    render_comparison_labeled("FIFO", fifo, "EDF", edf)
}
