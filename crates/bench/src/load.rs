//! Mixed-deadline load generation and tail-latency reporting for the
//! scheduler benchmarks.
//!
//! The generator produces the traffic shape the EDF scheduler exists
//! for: requests across the served tasks arriving as a Poisson-like
//! process, each drawn from a weighted set of [`TrafficClass`]es (a
//! tight voice-assistant budget mixed with relaxed translation
//! traffic). [`TailReport`] folds a drained schedule into the numbers
//! that matter under load — p50/p95/p99 sojourn latency and the
//! deadline-violation rate — per class, so an EDF-vs-FIFO comparison
//! shows exactly who head-of-line blocking was hurting.
//!
//! **Trace-driven load** ([`TraceSpec`]) composes non-stationary
//! arrival processes from [`TraceSegment`]s — steady plateaus, linear
//! ramps, diurnal cycles, flash crowds — each a non-homogeneous
//! Poisson stretch with its own (optional) class mix. This is the
//! traffic the overload control plane is tested against: offered load
//! that crosses capacity and comes back down.
//!
//! **Determinism contract.** Every generator here is reproducible for
//! identical `(spec, seed)`, and the *physical* arrival stream (task,
//! tokens, arrival time, latency target) is independent of the order
//! traffic classes were declared in: class draws and phase offsets are
//! computed over a canonical class ordering (ascending latency target,
//! ties by name/weight/task), so permuting [`LoadSpec::classes`] only
//! permutes the reported class *indices*, never the traffic.

use edgebert::scheduler::{DeadlineScheduler, ScheduledResponse, SchedulerConfig};
use edgebert::server::{Server, ServerConfig, ServerResponse, ServerStats, SubmitError};
use edgebert::telemetry::LogHistogram;
use edgebert::{InferenceRequest, MultiTaskRuntime};
use edgebert_tasks::{Task, TaskGenerator};
use edgebert_tensor::stats::percentile;
use edgebert_tensor::Rng;
use std::time::{Duration, Instant};

/// One deadline tier of the generated traffic mix.
#[derive(Debug, Clone)]
pub struct TrafficClass {
    /// Label used in reports (e.g. `"tight"`).
    pub name: &'static str,
    /// Per-request latency target, seconds.
    pub latency_target_s: f64,
    /// Relative share of the traffic in this class.
    pub weight: f32,
    /// Route this class's requests to one task (the deployment shape
    /// where an application ↔ task ↔ deadline tier, e.g. the voice
    /// assistant is SST-2 and the translator is QNLI). `None` draws
    /// tasks round-robin across the runtime's served set, mixing
    /// classes within each task.
    pub task: Option<Task>,
}

/// A generated load: the arrival process the scheduler replays.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Number of requests to generate.
    pub requests: usize,
    /// Mean inter-arrival gap, seconds.
    pub mean_interarrival_s: f64,
    /// Deterministic gaps exactly at the mean (a frame-paced edge
    /// pipeline: fixed sensor or audio cadence). `false` draws
    /// exponential gaps (Poisson arrivals, the bursty open-loop case).
    pub paced: bool,
    /// The deadline mix.
    pub classes: Vec<TrafficClass>,
    /// RNG seed (arrivals, class draws, and sentences are all
    /// deterministic in it).
    pub seed: u64,
}

/// One generated request with its arrival time and traffic class.
#[derive(Debug, Clone)]
pub struct LoadRequest {
    /// Task the request routes to.
    pub task: Task,
    /// The request (tokens + latency target of its class).
    pub request: InferenceRequest,
    /// Arrival timestamp on the virtual clock, seconds.
    pub arrival_s: f64,
    /// Index into [`LoadSpec::classes`].
    pub class: usize,
}

/// Mean modeled compute latency over a few sentences of every served
/// task — the service-time scale to size deadlines and arrival rates
/// against.
///
/// Probed at a zero latency target: the DVFS controller then runs at
/// nominal V/F (maximum performance), so this is the *floor* service
/// time. Relaxed-deadline requests may legitimately take longer —
/// latency-aware inference stretches compute into whatever slack the
/// sentence carries.
pub fn estimate_service_s(runtime: &MultiTaskRuntime, seed: u64) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for task in runtime.tasks() {
        let rt = runtime.runtime(task).expect("served task");
        let gen = TaskGenerator::standard(task, rt.model().config.max_seq_len);
        for ex in gen.generate(4, seed).iter() {
            let resp = rt.serve(&InferenceRequest::new(ex.tokens.clone()).with_latency_target(0.0));
            total += resp.result.latency_s;
            count += 1;
        }
    }
    total / count.max(1) as f64
}

/// Canonical class ordering: indices into `classes` sorted ascending
/// by latency target, ties broken by name, weight, then task. Class
/// draws and phase offsets run over this order, which is what makes
/// the generated *traffic* invariant under permutation of the
/// declaration order (only the reported class indices permute).
///
/// Every pre-existing caller in this workspace declares classes
/// ascending by latency target, so for them the canonical order *is*
/// the declaration order and the generated streams are bit-identical
/// to the pre-canonical generators.
fn canonical_class_order(classes: &[TrafficClass]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..classes.len()).collect();
    order.sort_by(|&a, &b| {
        let ka = &classes[a];
        let kb = &classes[b];
        ka.latency_target_s
            .total_cmp(&kb.latency_target_s)
            .then_with(|| ka.name.cmp(kb.name))
            .then_with(|| ka.weight.total_cmp(&kb.weight))
            .then_with(|| {
                let ta = ka.task.map(|t| t as i64).unwrap_or(-1);
                let tb = kb.task.map(|t| t as i64).unwrap_or(-1);
                ta.cmp(&tb)
            })
    });
    order
}

/// Weighted class draw over the canonical order: one uniform sample,
/// cumulative scan. Bit-identical to [`Rng::weighted_index`] whenever
/// the declaration order is already canonical (same summation order,
/// same scan, same single RNG draw).
fn draw_class(rng: &mut Rng, order: &[usize], weights: &[f32]) -> usize {
    let total: f32 = order.iter().map(|&i| weights[i]).sum();
    assert!(total > 0.0, "class draw needs positive total weight");
    let mut target = rng.uniform() * total;
    for &i in order {
        if target < weights[i] {
            return i;
        }
        target -= weights[i];
    }
    *order.last().expect("at least one class")
}

/// Generates a mixed-task, mixed-deadline arrival process: tasks drawn
/// round-robin across the runtime's served set, classes drawn by
/// weight, inter-arrival gaps exponential with the spec's mean.
pub fn generate(runtime: &MultiTaskRuntime, spec: &LoadSpec) -> Vec<LoadRequest> {
    let tasks = runtime.tasks();
    assert!(!tasks.is_empty(), "runtime serves no tasks");
    assert!(!spec.classes.is_empty(), "load needs at least one class");
    let mut rng = Rng::seed_from(spec.seed);
    let order = canonical_class_order(&spec.classes);
    let weights: Vec<f32> = spec.classes.iter().map(|c| c.weight).collect();
    let mut pools: Vec<(Task, Vec<Vec<u32>>)> = tasks
        .iter()
        .map(|&task| {
            let rt = runtime.runtime(task).expect("served task");
            let gen = TaskGenerator::standard(task, rt.model().config.max_seq_len);
            let toks = gen
                .generate(
                    spec.requests.div_ceil(tasks.len()).max(1),
                    spec.seed ^ task as u64,
                )
                .examples()
                .iter()
                .map(|ex| ex.tokens.clone())
                .collect();
            (task, toks)
        })
        .collect();
    let mut load = Vec::with_capacity(spec.requests);
    let mut clock = 0.0f64;
    for i in 0..spec.requests {
        // Paced: fixed gaps. Poisson: -mean * ln(1 - U), U ∈ [0, 1).
        clock += if spec.paced {
            spec.mean_interarrival_s
        } else {
            let u = rng.uniform().min(0.999_999) as f64;
            -spec.mean_interarrival_s * (1.0 - u).ln()
        };
        let class = draw_class(&mut rng, &order, &weights);
        let pool_at = match spec.classes[class].task {
            // Class-bound traffic routes to its task's pool.
            Some(task) => tasks
                .iter()
                .position(|&t| t == task)
                .expect("class-bound task must be served by the runtime"),
            // Unbound traffic draws tasks round-robin.
            None => i % tasks.len(),
        };
        let (task, pool) = &mut pools[pool_at];
        let tokens = pool[i / tasks.len() % pool.len()].clone();
        load.push(LoadRequest {
            task: *task,
            request: InferenceRequest::new(tokens)
                .with_latency_target(spec.classes[class].latency_target_s),
            arrival_s: clock,
            class,
        });
    }
    load
}

/// Generates deterministic per-class paced streams: every class must
/// be bound to its task ([`TrafficClass::task`]), and class `c`'s
/// requests arrive every `lane_interarrival_s` seconds with a phase
/// offset of `c / classes · lane_interarrival_s` staggering the
/// streams. This is the fixed-cadence counterpart of [`generate`]'s
/// Poisson mix — the shape of frame-paced edge pipelines, where each
/// application (sensor, microphone, camera) ticks on its own clock —
/// and the per-lane offered utilization is exactly
/// `floor service / lane_interarrival_s`. Class weights are ignored:
/// each class contributes `requests_per_class` requests. Phase offsets
/// follow the *canonical* class order (ascending latency target), so
/// the physical streams do not depend on declaration order.
pub fn generate_paced_streams(
    runtime: &MultiTaskRuntime,
    classes: &[TrafficClass],
    lane_interarrival_s: f64,
    requests_per_class: usize,
    seed: u64,
) -> Vec<LoadRequest> {
    assert!(!classes.is_empty(), "load needs at least one class");
    let order = canonical_class_order(classes);
    let mut load: Vec<LoadRequest> = Vec::with_capacity(classes.len() * requests_per_class);
    for (rank, &c) in order.iter().enumerate() {
        let class = &classes[c];
        let task = class
            .task
            .expect("paced streams require task-bound classes");
        let rt = runtime.runtime(task).expect("served task");
        let gen = TaskGenerator::standard(task, rt.model().config.max_seq_len);
        let toks: Vec<Vec<u32>> = gen
            .generate(requests_per_class.max(1), seed ^ task as u64)
            .examples()
            .iter()
            .map(|ex| ex.tokens.clone())
            .collect();
        let phase = rank as f64 / classes.len() as f64;
        for (i, tokens) in toks.iter().take(requests_per_class).cloned().enumerate() {
            load.push(LoadRequest {
                task,
                request: InferenceRequest::new(tokens).with_latency_target(class.latency_target_s),
                arrival_s: (phase + i as f64) * lane_interarrival_s,
                class: c,
            });
        }
    }
    // Stable by arrival: simultaneous ticks keep canonical class
    // order, independent of how the classes were declared.
    load.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
    load
}

/// One stretch of a non-stationary arrival trace: a linear rate ramp
/// (or plateau) lasting `duration_s`, optionally with its own class
/// mix. Segments compose into a [`TraceSpec`] — e.g. a diurnal cycle
/// is an up-ramp plus a down-ramp, a flash crowd is a plateau, a spike
/// plateau, and a recovery plateau.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSegment {
    /// Label used in logs (e.g. `"spike"`).
    pub name: &'static str,
    /// Segment length on the virtual clock, seconds.
    pub duration_s: f64,
    /// Arrival rate at the start of the segment, requests/second.
    pub start_rate_hz: f64,
    /// Arrival rate at the end of the segment; arrivals between follow
    /// a non-homogeneous Poisson process with linearly interpolated
    /// instantaneous rate.
    pub end_rate_hz: f64,
    /// Per-segment class weights overriding each class's
    /// [`TrafficClass::weight`] for the segment's draws (flash crowds
    /// are often *tight-class* floods, not uniform ones). Must match
    /// the spec's class count. `None` uses the declared weights.
    pub class_weights: Option<Vec<f32>>,
}

impl TraceSegment {
    /// A constant-rate plateau.
    pub fn steady(name: &'static str, duration_s: f64, rate_hz: f64) -> Self {
        Self::ramp(name, duration_s, rate_hz, rate_hz)
    }

    /// A linear rate ramp from `start_rate_hz` to `end_rate_hz`.
    pub fn ramp(name: &'static str, duration_s: f64, start_rate_hz: f64, end_rate_hz: f64) -> Self {
        assert!(
            duration_s > 0.0 && duration_s.is_finite(),
            "segment duration must be positive and finite"
        );
        assert!(
            start_rate_hz >= 0.0 && start_rate_hz.is_finite(),
            "segment start rate must be non-negative and finite"
        );
        assert!(
            end_rate_hz >= 0.0 && end_rate_hz.is_finite(),
            "segment end rate must be non-negative and finite"
        );
        Self {
            name,
            duration_s,
            start_rate_hz,
            end_rate_hz,
            class_weights: None,
        }
    }

    /// Overrides the class mix for this segment's draws.
    pub fn with_class_weights(mut self, weights: Vec<f32>) -> Self {
        self.class_weights = Some(weights);
        self
    }

    /// Expected arrivals over the segment: the integral of the linear
    /// rate, `duration · (start + end) / 2`.
    pub fn expected_requests(&self) -> f64 {
        self.duration_s * (self.start_rate_hz + self.end_rate_hz) / 2.0
    }
}

/// A trace-driven load: segments replayed back to back, each a
/// non-homogeneous Poisson stretch over the shared class mix.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// The deadline mix (same shape as [`LoadSpec::classes`]).
    pub classes: Vec<TrafficClass>,
    /// Segments, replayed in order on one virtual clock.
    pub segments: Vec<TraceSegment>,
    /// RNG seed; [`generate_trace`] is deterministic in `(spec, seed)`.
    pub seed: u64,
}

impl TraceSpec {
    /// The canonical overload story: a `base_s`-second plateau at
    /// `base_rate_hz`, a flash crowd at `spike_rate_hz` for `spike_s`,
    /// then recovery back at the base rate — the arrival shape the
    /// admission ladder's degrade→shed→recover cycle is built for.
    pub fn flash_crowd(
        classes: Vec<TrafficClass>,
        seed: u64,
        base_rate_hz: f64,
        spike_rate_hz: f64,
        base_s: f64,
        spike_s: f64,
        recovery_s: f64,
    ) -> Self {
        Self {
            classes,
            segments: vec![
                TraceSegment::steady("base", base_s, base_rate_hz),
                TraceSegment::steady("spike", spike_s, spike_rate_hz),
                TraceSegment::steady("recovery", recovery_s, base_rate_hz),
            ],
            seed,
        }
    }

    /// A diurnal load curve: `cycles` repetitions of a linear ramp from
    /// `trough_rate_hz` up to `peak_rate_hz` and back down, each cycle
    /// spanning `period_s` seconds.
    pub fn diurnal(
        classes: Vec<TrafficClass>,
        seed: u64,
        trough_rate_hz: f64,
        peak_rate_hz: f64,
        period_s: f64,
        cycles: usize,
    ) -> Self {
        let mut segments = Vec::with_capacity(cycles * 2);
        for _ in 0..cycles.max(1) {
            segments.push(TraceSegment::ramp(
                "rise",
                period_s / 2.0,
                trough_rate_hz,
                peak_rate_hz,
            ));
            segments.push(TraceSegment::ramp(
                "fall",
                period_s / 2.0,
                peak_rate_hz,
                trough_rate_hz,
            ));
        }
        Self {
            classes,
            segments,
            seed,
        }
    }

    /// Expected arrivals over the whole trace.
    pub fn expected_requests(&self) -> f64 {
        self.segments.iter().map(|s| s.expected_requests()).sum()
    }
}

/// Generates the arrival process of a [`TraceSpec`]: each segment is a
/// non-homogeneous Poisson process with linearly interpolated rate,
/// sampled by time-rescaling (exponential(1) increments inverted
/// through the integrated rate `Λ(t) = s·t + (e−s)·t²/2d`), so ramps
/// are exact, not step-approximated. Deterministic in `(spec, seed)`
/// and — like [`generate`] — class draws run over the canonical class
/// order, so the physical stream is independent of declaration order.
pub fn generate_trace(runtime: &MultiTaskRuntime, spec: &TraceSpec) -> Vec<LoadRequest> {
    let tasks = runtime.tasks();
    assert!(!tasks.is_empty(), "runtime serves no tasks");
    assert!(!spec.classes.is_empty(), "trace needs at least one class");
    assert!(
        !spec.segments.is_empty(),
        "trace needs at least one segment"
    );
    for seg in &spec.segments {
        if let Some(w) = &seg.class_weights {
            assert_eq!(
                w.len(),
                spec.classes.len(),
                "segment '{}' class weights must match the class count",
                seg.name
            );
        }
    }
    let order = canonical_class_order(&spec.classes);
    let declared_weights: Vec<f32> = spec.classes.iter().map(|c| c.weight).collect();
    let expected = spec.expected_requests().ceil() as usize;
    let mut rng = Rng::seed_from(spec.seed);
    let mut pools: Vec<(Task, Vec<Vec<u32>>)> = tasks
        .iter()
        .map(|&task| {
            let rt = runtime.runtime(task).expect("served task");
            let gen = TaskGenerator::standard(task, rt.model().config.max_seq_len);
            let toks = gen
                .generate(
                    expected.div_ceil(tasks.len()).max(1),
                    spec.seed ^ task as u64,
                )
                .examples()
                .iter()
                .map(|ex| ex.tokens.clone())
                .collect();
            (task, toks)
        })
        .collect();
    let mut load: Vec<LoadRequest> = Vec::with_capacity(expected);
    let mut base_s = 0.0f64;
    for seg in &spec.segments {
        let weights = seg.class_weights.as_ref().unwrap_or(&declared_weights);
        let s = seg.start_rate_hz;
        let d = seg.duration_s;
        // Quadratic coefficient of the integrated rate Λ(t).
        let a = (seg.end_rate_hz - s) / (2.0 * d);
        let mut lambda_t = 0.0f64; // Λ(t), the integrated rate so far
        loop {
            // Exponential(1) increment on the rescaled clock.
            let u = rng.uniform().min(0.999_999) as f64;
            let target = lambda_t - (1.0 - u).ln();
            // Solve a·x² + s·x = target for the next arrival offset x.
            let x = if a.abs() < 1e-12 {
                if s <= 0.0 {
                    break; // flat zero-rate segment: no arrivals
                }
                target / s
            } else {
                let disc = s * s + 4.0 * a * target;
                if disc < 0.0 {
                    // Decreasing ramp whose total measure is exhausted:
                    // the rate hits zero before the next event.
                    break;
                }
                (-s + disc.sqrt()) / (2.0 * a)
            };
            // Negated so a NaN offset (degenerate coefficients) also
            // ends the segment instead of emitting garbage.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(x <= d) {
                break; // next arrival lands past the segment boundary
            }
            lambda_t = s * x + a * x * x;
            let i = load.len();
            let class = draw_class(&mut rng, &order, weights);
            let pool_at = match spec.classes[class].task {
                Some(task) => tasks
                    .iter()
                    .position(|&t| t == task)
                    .expect("class-bound task must be served by the runtime"),
                None => i % tasks.len(),
            };
            let (task, pool) = &mut pools[pool_at];
            let tokens = pool[i / tasks.len() % pool.len()].clone();
            load.push(LoadRequest {
                task: *task,
                request: InferenceRequest::new(tokens)
                    .with_latency_target(spec.classes[class].latency_target_s),
                arrival_s: base_s + x,
                class,
            });
        }
        base_s += d;
    }
    load
}

/// Drains one generated load through a scheduler at `cfg`, returning
/// responses in submission order. Every generated task is served by
/// construction, so the options are unwrapped here.
pub fn drain_load(
    runtime: &MultiTaskRuntime,
    load: &[LoadRequest],
    cfg: SchedulerConfig,
) -> Vec<ScheduledResponse> {
    let mut scheduler = DeadlineScheduler::new(runtime, cfg);
    for r in load {
        scheduler.submit(r.task, r.request.clone(), r.arrival_s);
    }
    scheduler
        .drain()
        .into_iter()
        .map(|r| r.expect("generated load only targets served tasks"))
        .collect()
}

/// Replays one generated load against a wall-clock [`Server`]:
/// requests are submitted at their real arrival times (the calling
/// thread sleeps out each inter-arrival gap), then every handle is
/// awaited in submission order.
///
/// This is the serving counterpart of [`drain_load`]: the same traffic
/// through real worker threads instead of the virtual timeline, with
/// queueing delays *measured* rather than replayed. Run it with
/// [`ServerConfig::emulate_service_time`] on so shards hold their lanes
/// for the modeled compute latency and utilization is physically
/// meaningful. The lane capacity must cover the spec's backlog — a
/// rejected submission is a panic here, not silent load shedding.
pub fn drain_load_wall_clock(
    runtime: &MultiTaskRuntime,
    load: &[LoadRequest],
    cfg: ServerConfig,
) -> Vec<ServerResponse> {
    drain_load_wall_clock_stats(runtime, load, cfg).0
}

/// [`drain_load_wall_clock`] returning the final per-lane
/// [`ServerStats`] snapshot alongside the responses — the preemption
/// benches report parked/preempted/resumed counters from it.
pub fn drain_load_wall_clock_stats(
    runtime: &MultiTaskRuntime,
    load: &[LoadRequest],
    cfg: ServerConfig,
) -> (Vec<ServerResponse>, ServerStats) {
    let server = Server::start(runtime, cfg);
    let epoch = Instant::now();
    let mut handles = Vec::with_capacity(load.len());
    for r in load {
        let due = epoch + Duration::from_secs_f64(r.arrival_s);
        if let Some(gap) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(gap);
        }
        handles.push(
            server
                .submit(r.task, r.request.clone())
                .expect("lane capacity must cover the generated load"),
        );
    }
    let responses = handles
        .into_iter()
        .map(|h| h.wait().expect("shard workers outlive the drain"))
        .collect();
    let stats = server.shutdown();
    (responses, stats)
}

/// What became of one submitted request when the drain tolerates
/// admission-time load shedding.
#[derive(Debug, Clone)]
pub enum LoadOutcome {
    /// The request was admitted and served.
    Served(ServerResponse),
    /// The overload ladder shed the request at admission.
    Shed {
        /// Observed lane pressure at the shed decision.
        pressure: f64,
        /// The server's suggested client backoff, seconds.
        retry_after_hint_s: f64,
    },
}

impl LoadOutcome {
    /// The served response, if the request wasn't shed.
    pub fn served(&self) -> Option<&ServerResponse> {
        match self {
            LoadOutcome::Served(r) => Some(r),
            LoadOutcome::Shed { .. } => None,
        }
    }
}

/// [`drain_load_wall_clock_stats`] for overload runs: a
/// [`SubmitError::Shed`] refusal is recorded as a
/// [`LoadOutcome::Shed`] instead of panicking — shedding is the
/// behavior under test, not a misconfigured bench. Any *other* submit
/// error (full queue, unserved task) still panics: the ladder is the
/// only sanctioned loss mechanism here.
pub fn drain_load_wall_clock_outcomes(
    runtime: &MultiTaskRuntime,
    load: &[LoadRequest],
    cfg: ServerConfig,
) -> (Vec<LoadOutcome>, ServerStats) {
    let server = Server::start(runtime, cfg);
    let epoch = Instant::now();
    let mut pending: Vec<Option<_>> = Vec::with_capacity(load.len());
    let mut sheds: Vec<Option<(f64, f64)>> = vec![None; load.len()];
    for (i, r) in load.iter().enumerate() {
        let due = epoch + Duration::from_secs_f64(r.arrival_s);
        if let Some(gap) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(gap);
        }
        match server.submit(r.task, r.request.clone()) {
            Ok(handle) => pending.push(Some(handle)),
            Err(SubmitError::Shed {
                pressure,
                retry_after_hint_s,
                ..
            }) => {
                sheds[i] = Some((pressure, retry_after_hint_s));
                pending.push(None);
            }
            Err(other) => panic!("only the overload ladder may drop load here: {other}"),
        }
    }
    let outcomes = pending
        .into_iter()
        .zip(sheds)
        .map(|(handle, shed)| match handle {
            Some(h) => LoadOutcome::Served(h.wait().expect("shard workers outlive the drain")),
            None => {
                let (pressure, retry_after_hint_s) = shed.expect("shed slot recorded");
                LoadOutcome::Shed {
                    pressure,
                    retry_after_hint_s,
                }
            }
        })
        .collect();
    let stats = server.shutdown();
    (outcomes, stats)
}

/// Per-class tail reports over shed-tolerant outcomes: served
/// responses fold into the latency columns, shed requests into each
/// row's [`TailReport::shed`] count. Final row is the overall report.
pub fn class_reports_outcomes(
    load: &[LoadRequest],
    outcomes: &[LoadOutcome],
    classes: &[TrafficClass],
) -> Vec<(String, TailReport)> {
    assert_eq!(load.len(), outcomes.len(), "one outcome per request");
    let mut rows = Vec::with_capacity(classes.len() + 1);
    let mut total_shed = 0usize;
    for (c, class) in classes.iter().enumerate() {
        let served: Vec<&ServerResponse> = load
            .iter()
            .zip(outcomes)
            .filter(|(l, _)| l.class == c)
            .filter_map(|(_, o)| o.served())
            .collect();
        let shed = load
            .iter()
            .zip(outcomes)
            .filter(|(l, o)| l.class == c && o.served().is_none())
            .count();
        total_shed += shed;
        rows.push((
            class.name.to_string(),
            TailReport::from_samples(served).with_shed(shed),
        ));
    }
    let all_served: Vec<&ServerResponse> = outcomes.iter().filter_map(|o| o.served()).collect();
    rows.push((
        "all".to_string(),
        TailReport::from_samples(all_served).with_shed(total_shed),
    ));
    rows
}

/// Renders the serving-side lane counters of a stats snapshot — the
/// general bench-report row covering the preemption counters, the
/// overload ladder's shed/degrade/transition counters, and the elastic
/// stolen/migrated/pool-resize counters.
pub fn render_server_stats(stats: &ServerStats) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:>8} {:>10} {:>8} {:>12} {:>9} {:>6} {:>6} {:>7} {:>9} {:>8}\n",
        "lane",
        "served",
        "preempted",
        "resumed",
        "max parked",
        "degraded",
        "shed",
        "steps",
        "stolen",
        "migrated",
        "resizes"
    ));
    for lane in &stats.lanes {
        out.push_str(&format!(
            "{:<8} {:>8} {:>10} {:>8} {:>12} {:>9} {:>6} {:>6} {:>7} {:>9} {:>8}\n",
            lane.task.to_string(),
            lane.served,
            lane.preempted,
            lane.resumed,
            lane.max_parked_depth,
            lane.degraded,
            lane.shed,
            lane.ladder_step_changes,
            lane.stolen,
            lane.migrated,
            lane.pool_resizes,
        ));
    }
    // Telemetry-on snapshots carry full distributions; render their
    // quantiles below the counter table. (The old
    // `queue_delay_mean_s`/`queue_delay_max_s` scalar pair is
    // deprecated in favor of these — a mean and a max say nothing
    // about p95/p99 — and is intentionally not rendered here.)
    if stats.lanes.iter().any(|l| l.histograms.is_some()) {
        out.push_str(&format!(
            "\n{:<8} {:<12} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
            "lane", "metric", "n", "p50", "p95", "p99", "max"
        ));
        for lane in &stats.lanes {
            let Some(h) = &lane.histograms else { continue };
            let rows: [(&str, &LogHistogram, f64); 4] = [
                ("queue_ms", &h.queue_delay_s, 1e3),
                ("sojourn_ms", &h.sojourn_s, 1e3),
                ("step_ms", &h.step_time_s, 1e3),
                ("energy_uJ", &h.energy_per_request_j, 1e6),
            ];
            for (metric, hist, scale) in rows {
                out.push_str(&format!(
                    "{:<8} {:<12} {:>7} {:>10.3} {:>10.3} {:>10.3} {:>10.3}\n",
                    lane.task.to_string(),
                    metric,
                    hist.count(),
                    hist.p50() * scale,
                    hist.p95() * scale,
                    hist.p99() * scale,
                    hist.max_edge() * scale,
                ));
            }
        }
    }
    out
}

/// Renders the preemption-related lane counters of a stats snapshot —
/// kept for callers written against the PR 5 API; now an alias of the
/// general [`render_server_stats`] renderer (the overload columns read
/// zero for ladder-off runs).
pub fn render_preemption_stats(stats: &ServerStats) -> String {
    render_server_stats(stats)
}

/// Offered per-lane utilization of a load spec against a floor service
/// time: `service / (inter-arrival · lanes · shards)`. Tasks are drawn
/// round-robin, so each of the `lanes` task lanes sees `1/lanes` of the
/// arrival rate, spread over its `shards` engines. Values are relative
/// to the *floor* (nominal-V/F) service time — slack-blind DVFS
/// stretches real service beyond it, which is exactly the failure mode
/// the queue-aware server exists to contain.
pub fn offered_utilization(
    service_floor_s: f64,
    mean_interarrival_s: f64,
    lanes: usize,
    shards_per_lane: usize,
) -> f64 {
    service_floor_s / (mean_interarrival_s * lanes.max(1) as f64 * shards_per_lane.max(1) as f64)
}

/// Tail-latency summary of a set of scheduled responses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailReport {
    /// Number of responses folded in.
    pub count: usize,
    /// Mean sojourn (queue + compute), milliseconds.
    pub mean_ms: f64,
    /// Median sojourn, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile sojourn, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile sojourn, milliseconds.
    pub p99_ms: f64,
    /// Fraction of responses whose sojourn missed the deadline.
    pub violation_rate: f64,
    /// Requests shed at admission rather than served. Shed requests
    /// are *not* folded into the latency columns or the violation rate
    /// (they have no sojourn), but they are counted here explicitly so
    /// an overload report can't undercount pain by quietly dropping
    /// the requests it refused. Zero for loss-free drains.
    pub shed: usize,
}

/// Anything with a sojourn time and a deadline verdict folds into a
/// [`TailReport`] — the virtual-timeline scheduler's responses and the
/// wall-clock server's alike.
pub trait SojournSample {
    /// End-to-end response time (queue + compute), seconds.
    fn sojourn_s(&self) -> f64;
    /// Whether the sojourn met the request's latency target.
    fn deadline_met(&self) -> bool;
}

impl SojournSample for ScheduledResponse {
    fn sojourn_s(&self) -> f64 {
        self.sojourn_s
    }
    fn deadline_met(&self) -> bool {
        self.deadline_met
    }
}

impl SojournSample for ServerResponse {
    fn sojourn_s(&self) -> f64 {
        self.sojourn_s
    }
    fn deadline_met(&self) -> bool {
        self.deadline_met
    }
}

impl TailReport {
    /// Folds any sojourn samples into the report. Empty input yields
    /// zeros.
    pub fn from_samples<'a, S: SojournSample + 'a>(
        samples: impl IntoIterator<Item = &'a S>,
    ) -> Self {
        let mut sojourns_ms: Vec<f32> = Vec::new();
        let mut violations = 0usize;
        for r in samples {
            sojourns_ms.push((r.sojourn_s() * 1e3) as f32);
            if !r.deadline_met() {
                violations += 1;
            }
        }
        if sojourns_ms.is_empty() {
            return Self {
                count: 0,
                mean_ms: 0.0,
                p50_ms: 0.0,
                p95_ms: 0.0,
                p99_ms: 0.0,
                violation_rate: 0.0,
                shed: 0,
            };
        }
        let count = sojourns_ms.len();
        Self {
            count,
            mean_ms: sojourns_ms.iter().map(|&x| x as f64).sum::<f64>() / count as f64,
            p50_ms: percentile(&sojourns_ms, 50.0) as f64,
            p95_ms: percentile(&sojourns_ms, 95.0) as f64,
            p99_ms: percentile(&sojourns_ms, 99.0) as f64,
            violation_rate: violations as f64 / count as f64,
            shed: 0,
        }
    }

    /// Folds a telemetry sojourn histogram into a report: exact
    /// log-bucketed quantiles (each an upper bound on the true sample,
    /// within one bucket width ≈ 15.5%) instead of the
    /// sampled-percentile columns [`from_samples`](Self::from_samples)
    /// computes. The violation count isn't derivable from a histogram
    /// alone, so the caller passes it (e.g. from
    /// [`LaneStats::violations`](edgebert::server::LaneStats)).
    pub fn from_sojourn_histogram(hist: &LogHistogram, violations: u64) -> Self {
        let count = hist.count() as usize;
        Self {
            count,
            mean_ms: hist.mean() * 1e3,
            p50_ms: hist.p50() * 1e3,
            p95_ms: hist.p95() * 1e3,
            p99_ms: hist.p99() * 1e3,
            violation_rate: if count == 0 {
                0.0
            } else {
                violations as f64 / count as f64
            },
            shed: 0,
        }
    }

    /// Attaches a shed count to the report (builder style, used by the
    /// outcome-aware per-class folds).
    pub fn with_shed(mut self, shed: usize) -> Self {
        self.shed = shed;
        self
    }

    /// Folds scheduled responses into the report (alias of
    /// [`from_samples`](Self::from_samples), kept for callers written
    /// against the PR 2 API).
    pub fn from_scheduled<'a>(responses: impl IntoIterator<Item = &'a ScheduledResponse>) -> Self {
        Self::from_samples(responses)
    }
}

/// Per-class tail reports for one drained load, in class order, plus
/// the overall report as a final row. Works over scheduled (virtual
/// timeline) and server (wall clock) responses alike.
pub fn class_reports<S: SojournSample>(
    load: &[LoadRequest],
    responses: &[S],
    classes: &[TrafficClass],
) -> Vec<(String, TailReport)> {
    assert_eq!(load.len(), responses.len(), "one response per request");
    let mut rows = Vec::with_capacity(classes.len() + 1);
    for (c, class) in classes.iter().enumerate() {
        let members = load
            .iter()
            .zip(responses)
            .filter(|(l, _)| l.class == c)
            .map(|(_, r)| r);
        rows.push((class.name.to_string(), TailReport::from_samples(members)));
    }
    rows.push(("all".to_string(), TailReport::from_samples(responses)));
    rows
}

/// Renders a two-system comparison table over per-class reports, with
/// caller-chosen system labels (e.g. `"FIFO"`/`"EDF"`, or
/// `"blind"`/`"aware"` for the server's slack modes).
pub fn render_comparison_labeled(
    label_a: &str,
    rows_a: &[(String, TailReport)],
    label_b: &str,
    rows_b: &[(String, TailReport)],
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:<6} {:>5} {:>9} {:>9} {:>9} {:>9} {:>10} {:>5}\n",
        "class", "system", "n", "mean", "p50", "p95", "p99", "violations", "shed"
    ));
    for ((name, a), (_, b)) in rows_a.iter().zip(rows_b) {
        for (label, r) in [(label_a, a), (label_b, b)] {
            out.push_str(&format!(
                "{:<8} {:<6} {:>5} {:>7.2}ms {:>7.2}ms {:>7.2}ms {:>7.2}ms {:>9.1}% {:>5}\n",
                name,
                label,
                r.count,
                r.mean_ms,
                r.p50_ms,
                r.p95_ms,
                r.p99_ms,
                r.violation_rate * 100.0,
                r.shed,
            ));
        }
    }
    out
}

/// Renders an EDF-vs-FIFO comparison table over per-class reports.
pub fn render_comparison(fifo: &[(String, TailReport)], edf: &[(String, TailReport)]) -> String {
    render_comparison_labeled("FIFO", fifo, "EDF", edf)
}
