//! Fig. 10 bench: breakdown and area/power reporting.

use criterion::{criterion_group, criterion_main, Criterion};
use edgebert::experiments::fig10;
use edgebert_hw::report::AreaPowerReport;
use edgebert_hw::AcceleratorConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", fig10::render(&fig10::run()));

    let mut g = c.benchmark_group("fig10");
    g.bench_function("breakdown_driver", |b| b.iter(|| black_box(fig10::run())));
    g.bench_function("area_power_report", |b| {
        b.iter(|| {
            black_box(AreaPowerReport::at_config(
                &AcceleratorConfig::energy_optimal(),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
