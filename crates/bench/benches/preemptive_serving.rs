//! Wall-clock preemptive-serving bench: resumable sessions vs
//! run-to-completion lanes at equal offered load.
//!
//! One strict-threshold SST-2 lane (one shard, EDF, queue-aware slack,
//! service-time emulation) carries two interleaved streams: *long*
//! sentences whose loose deadlines stretch DVFS across the whole
//! budget, and *tight* sentences that always arrive just after a long
//! sentence dispatched — the head-of-line worst case the ROADMAP's
//! "Preemption / checkpointing" item describes. Non-preemptive, every
//! tight sentence waits out the entire stretched service and misses.
//! With `PreemptionPolicy::DeadlineGap(0.0)`, the long session parks at
//! the next layer boundary, the tight sentence overtakes and lands
//! inside its deadline, and the resumed long sentence re-decides V/F
//! against its remaining slack — tight-class p99 and violation rate
//! must strictly improve, and the preempted/resumed/parked-depth
//! counters show the machinery working.
//!
//! The CI `preempt-smoke` job runs this bench and additionally pins the
//! preemptive tight-class violation rate under
//! `EDGEBERT_PREEMPT_MAX_TIGHT_VIOLATION_PCT` (default 20 %).

use criterion::{criterion_group, criterion_main, Criterion};
use edgebert::engine::{EntropyThresholds, InferenceRequest};
use edgebert::pipeline::{Scale, TaskArtifacts};
use edgebert::server::{PreemptionPolicy, ServerConfig};
use edgebert::serving::{MultiTaskRuntime, TaskRuntime};
use edgebert_bench::load::{
    class_reports, drain_load_wall_clock_stats, render_comparison_labeled, render_preemption_stats,
    LoadRequest, TrafficClass,
};
use edgebert_tasks::{Task, TaskGenerator};
use std::hint::black_box;

/// Interleaved long/tight pairs on one lane: pair `k`'s long sentence
/// arrives at `k·period`, its tight sentence `tight_offset_s` later —
/// early enough in the long sentence's stretched service that
/// head-of-line blocking is maximal without preemption.
fn paired_load(
    runtime: &MultiTaskRuntime,
    classes: &[TrafficClass],
    pairs: usize,
    period_s: f64,
    tight_offset_s: f64,
    seed: u64,
) -> Vec<LoadRequest> {
    let rt = runtime.runtime(Task::Sst2).expect("served");
    let gen = TaskGenerator::standard(Task::Sst2, rt.model().config.max_seq_len);
    let toks: Vec<Vec<u32>> = gen
        .generate(pairs.max(1), seed)
        .examples()
        .iter()
        .map(|ex| ex.tokens.clone())
        .collect();
    let mut load = Vec::with_capacity(pairs * 2);
    for (k, tokens) in toks.iter().take(pairs).enumerate() {
        for (class, offset_s) in [(0usize, 0.0), (1usize, tight_offset_s)] {
            load.push(LoadRequest {
                task: Task::Sst2,
                request: InferenceRequest::new(tokens.clone())
                    .with_latency_target(classes[class].latency_target_s),
                arrival_s: k as f64 * period_s + offset_s,
                class,
            });
        }
    }
    load
}

fn bench(c: &mut Criterion) {
    // Strict thresholds: no early exits, the forecast is always full
    // depth, so every long sentence has the maximum number of layer
    // boundaries (preemption points). Artifacts come from the disk
    // cache, so repeat runs skip training.
    let art = TaskArtifacts::cached(Task::Sst2, Scale::Test, 0x9EE0);
    let runtime = MultiTaskRuntime::from_runtimes([TaskRuntime::from_builder(
        Task::Sst2,
        art.engine_builder()
            .uniform_thresholds(EntropyThresholds::uniform(0.0))
            .workload(art.hardware_workload(true)),
    )]);
    let floor_s = runtime
        .runtime(Task::Sst2)
        .expect("served")
        .engine()
        .nominal_service_estimate_s();
    // Long sentences stretch to 12× the nominal service estimate;
    // tight deadlines sit at 7× — far above one stretched layer step
    // plus their own compute (preemption always saves them), far below
    // the full stretched service (blocking always kills them).
    let classes = vec![
        TrafficClass {
            name: "long",
            latency_target_s: 12.0 * floor_s,
            weight: 0.5,
            task: Some(Task::Sst2),
        },
        TrafficClass {
            name: "tight",
            latency_target_s: 7.0 * floor_s,
            weight: 0.5,
            task: Some(Task::Sst2),
        },
    ];
    let period_s = 16.0 * floor_s;
    let pairs = 16;
    let load = paired_load(&runtime, &classes, pairs, period_s, 1.5 * floor_s, 0x9EE1);
    println!(
        "nominal service estimate {:.2} ms; {} long/tight pairs every {:.2} ms \
         (~{:.0}% offered utilization)\n",
        floor_s * 1e3,
        pairs,
        period_s * 1e3,
        (12.0 + 1.0) / 16.0 * 100.0,
    );

    let cfg = |preemption| ServerConfig {
        queue_capacity: load.len(),
        emulate_service_time: true,
        preemption,
        ..ServerConfig::default()
    };
    let (off, off_stats) = drain_load_wall_clock_stats(&runtime, &load, cfg(PreemptionPolicy::Off));
    let (on, on_stats) =
        drain_load_wall_clock_stats(&runtime, &load, cfg(PreemptionPolicy::DeadlineGap(0.0)));
    let off_rows = class_reports(&load, &off, &classes);
    let on_rows = class_reports(&load, &on, &classes);
    println!(
        "{}",
        render_comparison_labeled("off", &off_rows, "preempt", &on_rows)
    );
    println!(
        "non-preemptive lanes:\n{}",
        render_preemption_stats(&off_stats)
    );
    println!("preemptive lanes:\n{}", render_preemption_stats(&on_stats));

    // Acceptance: preemption strictly improves the tight class at
    // equal offered load, and the counters prove sessions really
    // parked and resumed.
    let (tight_off, tight_on) = (&off_rows[1].1, &on_rows[1].1);
    assert!(
        tight_on.p99_ms < tight_off.p99_ms,
        "tight p99 {:.2} ms (preempt) vs {:.2} ms (off)",
        tight_on.p99_ms,
        tight_off.p99_ms,
    );
    assert!(
        tight_on.violation_rate < tight_off.violation_rate,
        "tight violations {:.1}% (preempt) vs {:.1}% (off)",
        tight_on.violation_rate * 100.0,
        tight_off.violation_rate * 100.0,
    );
    assert_eq!(off_stats.preempted(), 0);
    assert!(on_stats.preempted() > 0, "sessions must actually park");
    assert_eq!(on_stats.resumed(), on_stats.preempted());
    assert!(on_stats.max_parked_depth() >= 1);
    let max_tight_violation_pct: f64 = std::env::var("EDGEBERT_PREEMPT_MAX_TIGHT_VIOLATION_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);
    assert!(
        tight_on.violation_rate * 100.0 <= max_tight_violation_pct,
        "preemptive tight-class violation rate {:.1}% exceeds the pinned threshold {:.1}%",
        tight_on.violation_rate * 100.0,
        max_tight_violation_pct,
    );

    let mut g = c.benchmark_group("preemptive_serving");
    g.sample_size(10);
    let short = paired_load(&runtime, &classes, 4, period_s, 1.5 * floor_s, 0x9EE2);
    g.bench_function("preemptive_drain_4pairs", |b| {
        b.iter(|| {
            black_box(drain_load_wall_clock_stats(
                &runtime,
                &short,
                cfg(PreemptionPolicy::DeadlineGap(0.0)),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
