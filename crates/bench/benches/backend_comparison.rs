//! Cross-backend comparison bench: the EdgeBERT accelerator vs. the
//! TX2-class mobile-GPU baseline behind the same `InferenceBackend`
//! seam, costing the *same* task-optimized workload.
//!
//! Two views, matching the paper's comparative claims:
//!
//! * **Per-sentence** — latency and energy per inference mode on each
//!   backend (the Fig. 8 energy gap, here produced end to end through
//!   the engine rather than by a side-channel cost call);
//! * **Tail under load** — the same mixed-deadline EDF drain on both
//!   backends: the fixed-V/F GPU both burns more energy *and* blows
//!   far more tight deadlines at a load the accelerator absorbs.

use criterion::{criterion_group, criterion_main, Criterion};
use edgebert::backend::BackendSpec;
use edgebert::engine::InferenceMode;
use edgebert::pipeline::TaskArtifacts;
use edgebert::scheduler::{SchedulePolicy, SchedulerConfig};
use edgebert::serving::{MultiTaskRuntime, TaskRuntime};
use edgebert_bench::bench_artifacts;
use edgebert_bench::load::{
    class_reports, drain_load, estimate_service_s, generate, render_comparison_labeled, LoadSpec,
    TrafficClass,
};
use edgebert_hw::MobileGpu;
use std::hint::black_box;

fn backend_runtime(art: &TaskArtifacts, spec: BackendSpec) -> MultiTaskRuntime {
    let builder = art
        .engine_builder()
        .workload(art.hardware_workload(true))
        .backend(spec);
    MultiTaskRuntime::from_runtimes([TaskRuntime::from_builder(art.task, builder)])
}

fn bench(c: &mut Criterion) {
    let art = bench_artifacts();
    let accel = backend_runtime(art, BackendSpec::Accelerator);
    let gpu = backend_runtime(art, BackendSpec::MobileGpu(MobileGpu::default()));

    // Per-sentence comparison, per mode.
    println!(
        "per-sentence cost on the task-optimized {} workload:",
        art.task
    );
    println!(
        "{:<16} {:<12} {:>12} {:>12}",
        "mode", "backend", "latency", "energy"
    );
    let mut base_energy_ratio = 0.0;
    for mode in InferenceMode::all() {
        let mut energies = [0.0f64; 2];
        for (i, rt) in [&accel, &gpu].into_iter().enumerate() {
            let eng = rt.runtime(art.task).expect("served").engine();
            let agg = eng.evaluate(&art.dev, mode);
            energies[i] = agg.avg_energy_j;
            println!(
                "{:<16} {:<12} {:>9.3} ms {:>9.3} mJ",
                format!("{mode:?}"),
                eng.backend().name(),
                agg.avg_latency_s * 1e3,
                agg.avg_energy_j * 1e3,
            );
        }
        if mode == InferenceMode::Base {
            base_energy_ratio = energies[1] / energies[0];
        }
    }
    println!("base-mode energy gap: {base_energy_ratio:.0}x\n");
    assert!(
        base_energy_ratio > 10.0,
        "the paper's orders-of-magnitude energy gap must survive the backend seam \
         (got {base_energy_ratio:.1}x)"
    );

    // Tail comparison: identical mixed-deadline load, EDF drain, with
    // deadlines sized to the accelerator's service time.
    let service_s = estimate_service_s(&accel, 0xBAC0);
    let spec = LoadSpec {
        requests: 80,
        mean_interarrival_s: service_s * 1.3,
        paced: false,
        classes: vec![
            TrafficClass {
                name: "tight",
                latency_target_s: service_s * 3.0,
                weight: 0.4,
                task: None,
            },
            TrafficClass {
                name: "relaxed",
                latency_target_s: service_s * 25.0,
                weight: 0.6,
                task: None,
            },
        ],
        seed: 0xBAC1,
    };
    let load = generate(&accel, &spec);
    let cfg = SchedulerConfig {
        workers: 1,
        max_batch: 8,
        policy: SchedulePolicy::EarliestDeadline,
        task_switch_s: 0.0,
        queue_aware_slack: false,
        pressure_stretch: false,
        overload: Default::default(),
        telemetry: None,
        energy: None,
    };
    let accel_out = drain_load(&accel, &load, cfg);
    let gpu_out = drain_load(&gpu, &load, cfg);
    let accel_rows = class_reports(&load, &accel_out, &spec.classes);
    let gpu_rows = class_reports(&load, &gpu_out, &spec.classes);
    println!(
        "EDF drain of {} requests (mean inter-arrival {:.2} ms, deadlines sized to the \
         accelerator):\n",
        spec.requests,
        spec.mean_interarrival_s * 1e3,
    );
    println!(
        "{}",
        render_comparison_labeled("accel", &accel_rows, "mgpu", &gpu_rows)
    );
    let (tight_accel, tight_gpu) = (&accel_rows[0].1, &gpu_rows[0].1);
    assert!(
        tight_gpu.violation_rate >= tight_accel.violation_rate,
        "the fixed-V/F baseline cannot beat the accelerator on deadlines sized to the \
         accelerator (accel {:.1}% vs mgpu {:.1}%)",
        tight_accel.violation_rate * 100.0,
        tight_gpu.violation_rate * 100.0,
    );

    let mut g = c.benchmark_group("backend_comparison");
    g.sample_size(10);
    g.bench_function("edf_drain_accel_80req", |b| {
        b.iter(|| black_box(drain_load(&accel, &load, cfg)))
    });
    g.bench_function("edf_drain_mgpu_80req", |b| {
        b.iter(|| black_box(drain_load(&gpu, &load, cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
