//! Skewed flash-crowd elasticity bench: work-stealing session
//! migration and autoscaling shard pools against a static-pool
//! baseline, at **equal total shards**.
//!
//! Three served tasks, one shard each (three shards total, both
//! configs). The flash crowd lands entirely on the SST-2 lane — its
//! spike plateau offers ~3× that single shard's nominal capacity while
//! the QNLI and MNLI lanes sit idle. Static pools leave two of three
//! shards parked next to a melting lane and the tight class drowns;
//! elastic pools let the idle shards steal the hot lane's parked
//! sessions and attach to it as extra drains, so the same silicon cuts
//! tight-class violations strictly.
//!
//! Both configs run preemptive EDF lanes with service-time emulation;
//! the only difference is [`ElasticConfig::enabled`]. The static
//! baseline must report zero stolen/migrated/pool-resize counters —
//! elasticity off is bit-identical to the pre-elastic server. The CI
//! `elastic-smoke` job pins the elastic tight-class violation ceiling
//! via `EDGEBERT_ELASTIC_MAX_TIGHT_VIOLATION_PCT`.

use criterion::{criterion_group, criterion_main, Criterion};
use edgebert::engine::{DropTarget, EntropyThresholds};
use edgebert::pipeline::{Scale, TaskArtifacts};
use edgebert::server::{ElasticConfig, PreemptionPolicy, ServerConfig};
use edgebert::serving::{MultiTaskRuntime, TaskRuntime};
use edgebert_bench::load::{
    class_reports_outcomes, drain_load_wall_clock_outcomes, generate_trace,
    render_comparison_labeled, render_server_stats, LoadRequest, TraceSpec, TrafficClass,
};
use edgebert_tasks::Task;
use std::hint::black_box;

/// Three lanes, one shard each: SST-2 takes the crowd, QNLI and MNLI
/// idle next to it. The hot lane's default tier runs full depth on the
/// true hardware workload (as in the overload bench), so its emulated
/// service time really is ~the nominal floor and a 3× spike genuinely
/// melts one shard.
fn runtime() -> MultiTaskRuntime {
    let hot = TaskArtifacts::cached(Task::Sst2, Scale::Test, 0x0E1A);
    let mut runtimes = vec![TaskRuntime::from_builder(
        Task::Sst2,
        hot.engine_builder()
            .thresholds_for(DropTarget::OnePercent, EntropyThresholds::uniform(0.0))
            .workload(hot.hardware_workload(true)),
    )];
    for task in [Task::Qnli, Task::Mnli] {
        runtimes.push(TaskRuntime::from_artifacts(&TaskArtifacts::cached(
            task,
            Scale::Test,
            0x0E1A,
        )));
    }
    MultiTaskRuntime::from_runtimes(runtimes)
}

/// A flash-crowd trace aimed entirely at the SST-2 lane, scaled to its
/// floor service time.
fn skewed_flash_crowd(
    runtime: &MultiTaskRuntime,
    classes: &[TrafficClass],
    floor_s: f64,
    spike_units: f64,
    seed: u64,
) -> Vec<LoadRequest> {
    let spec = TraceSpec::flash_crowd(
        classes.to_vec(),
        seed,
        0.5 / floor_s,         // base: half the hot shard's capacity
        3.0 / floor_s,         // spike: 3× the hot shard's capacity
        24.0 * floor_s,        // calm head
        spike_units * floor_s, // the crowd
        40.0 * floor_s,        // recovery tail
    );
    generate_trace(runtime, &spec)
}

fn bench(c: &mut Criterion) {
    let runtime = runtime();
    let floor_s = runtime
        .runtime(Task::Sst2)
        .expect("served")
        .engine()
        .nominal_service_estimate_s();
    let classes = vec![
        TrafficClass {
            name: "tight",
            latency_target_s: 2.5 * floor_s,
            weight: 0.5,
            task: Some(Task::Sst2),
        },
        TrafficClass {
            name: "relaxed",
            latency_target_s: 12.0 * floor_s,
            weight: 0.5,
            task: Some(Task::Sst2),
        },
    ];
    let load = skewed_flash_crowd(&runtime, &classes, floor_s, 40.0, 0x0E1B);
    println!(
        "nominal service estimate {:.2} ms; skewed flash crowd of {} requests, \
         all on SST-2 (spike offers 3x one shard's capacity); \
         3 lanes x 1 shard = 3 total shards in both configs\n",
        floor_s * 1e3,
        load.len(),
    );

    // Identical preemptive lanes; elasticity is the only difference.
    let cfg = |elastic: ElasticConfig| ServerConfig {
        queue_capacity: load.len(),
        emulate_service_time: true,
        preemption: PreemptionPolicy::DeadlineGap(0.0),
        elastic,
        ..ServerConfig::default()
    };
    let elastic = ElasticConfig {
        enabled: true,
        ..ElasticConfig::default()
    };
    let (static_out, static_stats) =
        drain_load_wall_clock_outcomes(&runtime, &load, cfg(ElasticConfig::default()));
    let (elastic_out, elastic_stats) =
        drain_load_wall_clock_outcomes(&runtime, &load, cfg(elastic));
    let static_rows = class_reports_outcomes(&load, &static_out, &classes);
    let elastic_rows = class_reports_outcomes(&load, &elastic_out, &classes);
    println!(
        "{}",
        render_comparison_labeled("static", &static_rows, "elastic", &elastic_rows)
    );
    println!("static lanes:\n{}", render_server_stats(&static_stats));
    println!("elastic lanes:\n{}", render_server_stats(&elastic_stats));

    // Elasticity off is the pre-elastic server, counter for counter.
    assert_eq!(static_stats.stolen(), 0, "static pools never steal");
    assert_eq!(static_stats.migrated(), 0, "static pools never migrate");
    assert_eq!(static_stats.pool_resizes(), 0, "static pools never resize");

    // The scenario premise: with static pools, two idle shards watch
    // the hot lane drown its tight class.
    let (tight_static, tight_elastic) = (&static_rows[0].1, &elastic_rows[0].1);
    assert!(
        tight_static.violation_rate > 0.5,
        "the skewed crowd must overload the static hot lane (got {:.1}%)",
        tight_static.violation_rate * 100.0,
    );

    // Acceptance: equal silicon, strictly fewer tight violations — and
    // the win must come from actual migration/autoscaling, not noise.
    assert!(
        tight_elastic.violation_rate < tight_static.violation_rate,
        "elastic pools must strictly cut tight violations: {:.1}% vs {:.1}%",
        tight_elastic.violation_rate * 100.0,
        tight_static.violation_rate * 100.0,
    );
    assert!(
        elastic_stats.stolen() >= 1,
        "idle shards must steal parked sessions from the hot lane"
    );
    assert_eq!(
        elastic_stats.stolen(),
        elastic_stats.migrated(),
        "every migration has exactly one thief"
    );
    assert!(
        elastic_stats.pool_resizes() >= 2,
        "the hot lane must grow and shrink its effective pool"
    );

    // CI-pinned ceiling on the elastic tight-class violation rate.
    let max_tight_violation_pct: f64 = std::env::var("EDGEBERT_ELASTIC_MAX_TIGHT_VIOLATION_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60.0);
    assert!(
        tight_elastic.violation_rate * 100.0 <= max_tight_violation_pct,
        "elastic tight-class violation rate {:.1}% exceeds the pinned threshold {:.1}%",
        tight_elastic.violation_rate * 100.0,
        max_tight_violation_pct,
    );

    let mut g = c.benchmark_group("elastic_serving");
    g.sample_size(10);
    let short = skewed_flash_crowd(&runtime, &classes, floor_s, 10.0, 0x0E1C);
    g.bench_function("skewed_crowd_elastic_drain", |b| {
        b.iter(|| {
            black_box(drain_load_wall_clock_outcomes(
                &runtime,
                &short,
                cfg(ElasticConfig {
                    enabled: true,
                    ..ElasticConfig::default()
                }),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
