//! Fig. 8 bench: the MAC-vector-size design-space sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edgebert::experiments::fig8;
use edgebert_bench::bench_artifact_suite;
use edgebert_hw::{AcceleratorConfig, AcceleratorSim, WorkloadParams};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let arts = bench_artifact_suite();
    println!("{}", fig8::render(&fig8::run(arts)));

    let mut g = c.benchmark_group("fig8");
    g.sample_size(20);
    for n in fig8::MAC_SIZES {
        g.bench_with_input(BenchmarkId::new("simulate_12_layers", n), &n, |b, &n| {
            let sim = AcceleratorSim::new(AcceleratorConfig::with_mac_vector_size(n));
            let wl = sim.layer_workload(&WorkloadParams::albert_base());
            b.iter(|| black_box(sim.run_layers_nominal(&wl, 12)))
        });
    }
    g.bench_function("full_sweep_driver", |b| {
        b.iter(|| black_box(fig8::run(arts)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
