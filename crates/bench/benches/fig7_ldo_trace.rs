//! Fig. 7 bench: multi-sentence DVFS waveform simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use edgebert::experiments::fig7;
use edgebert_bench::bench_artifacts;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let art = bench_artifacts();
    let engine = art.engine_at(50e-3, edgebert::DropTarget::OnePercent, true);
    println!("{}", fig7::render(&fig7::run(art, &engine, 3)));

    let mut g = c.benchmark_group("fig7");
    g.sample_size(20);
    g.bench_function("three_sentence_trace", |b| {
        b.iter(|| black_box(fig7::run(art, &engine, 3)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
