//! Fig. 9 bench: per-sentence latency-aware inference.

use criterion::{criterion_group, criterion_main, Criterion};
use edgebert::engine::InferenceMode;
use edgebert::experiments::fig9;
use edgebert_bench::bench_artifact_suite;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let arts = bench_artifact_suite();
    println!("{}", fig9::render(&fig9::run(arts)));

    let art = &arts[0];
    let engine = art.engine_at(50e-3, edgebert::DropTarget::OnePercent, true);
    let tokens = &art.dev.examples()[0].tokens;
    let mut g = c.benchmark_group("fig9");
    g.sample_size(20);
    g.bench_function("sentence_base", |b| {
        b.iter(|| black_box(engine.run(tokens, InferenceMode::Base)))
    });
    g.bench_function("sentence_conventional_ee", |b| {
        b.iter(|| black_box(engine.run(tokens, InferenceMode::ConventionalEe)))
    });
    g.bench_function("sentence_latency_aware", |b| {
        b.iter(|| black_box(engine.run(tokens, InferenceMode::LatencyAware)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
