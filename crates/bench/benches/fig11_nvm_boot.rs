//! Fig. 11 bench: the embedding power-on comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use edgebert::experiments::fig11;
use edgebert_hw::memory::{sentence_embedding_bits, BootComparison};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", fig11::render(&fig11::run()));

    let mut g = c.benchmark_group("fig11");
    g.bench_function("boot_comparison", |b| {
        let bits = sentence_embedding_bits(128, 128, 0.4);
        b.iter(|| black_box(BootComparison::standard(1.73, bits)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
