//! Scheduler bench: tail latency and deadline violations under mixed
//! traffic, EDF vs. FIFO.
//!
//! Generates a mixed-deadline load (a tight voice-assistant class
//! interleaved with relaxed translation traffic) over two task
//! runtimes, drains it through the `DeadlineScheduler` under both
//! policies, and prints per-class p50/p95/p99 sojourn latency and
//! violation rates. The tight class's p99 and violation rate are the
//! headline: EDF stops it queueing behind relaxed traffic.

use criterion::{criterion_group, criterion_main, Criterion};
use edgebert::pipeline::{Scale, TaskArtifacts};
use edgebert::scheduler::{SchedulePolicy, SchedulerConfig};
use edgebert::serving::{MultiTaskRuntime, TaskRuntime};
use edgebert_bench::load::{
    class_reports, drain_load, estimate_service_s, generate, render_comparison, LoadSpec,
    TrafficClass,
};
use edgebert_tasks::Task;
use std::hint::black_box;

/// Seeds whose test-scale calibrations land in the sentence-level
/// early-exit regime (compute stays near the service floor instead of
/// stretching into each relaxed deadline), so the comparison isolates
/// queueing policy.
const SEEDS: (u64, u64) = (0x5CED, 0x5CEE);

fn bench(c: &mut Criterion) {
    let runtime = MultiTaskRuntime::from_runtimes([
        TaskRuntime::from_artifacts(&TaskArtifacts::build(Task::Sst2, Scale::Test, SEEDS.0)),
        TaskRuntime::from_artifacts(&TaskArtifacts::build(Task::Qnli, Scale::Test, SEEDS.1)),
    ]);
    let service_s = estimate_service_s(&runtime, 0x10AD);
    let spec = LoadSpec {
        requests: 120,
        // Near-capacity lane: bursts form queues and the scheduling
        // policy decides who eats the delay.
        mean_interarrival_s: service_s * 1.15,
        paced: false,
        classes: vec![
            TrafficClass {
                name: "tight",
                latency_target_s: service_s * 3.0,
                weight: 0.35,
                task: None,
            },
            TrafficClass {
                name: "relaxed",
                latency_target_s: service_s * 25.0,
                weight: 0.65,
                task: None,
            },
        ],
        seed: 0x10AD,
    };
    let load = generate(&runtime, &spec);
    let cfg = |policy| SchedulerConfig {
        workers: 1,
        max_batch: 8,
        policy,
        task_switch_s: 0.0,
        queue_aware_slack: false,
        pressure_stretch: false,
        overload: Default::default(),
        telemetry: None,
        energy: None,
    };
    let fifo = drain_load(&runtime, &load, cfg(SchedulePolicy::Fifo));
    let edf = drain_load(&runtime, &load, cfg(SchedulePolicy::EarliestDeadline));
    let fifo_rows = class_reports(&load, &fifo, &spec.classes);
    let edf_rows = class_reports(&load, &edf, &spec.classes);
    println!(
        "mean service {:.2} ms, mean inter-arrival {:.2} ms, {} requests\n",
        service_s * 1e3,
        spec.mean_interarrival_s * 1e3,
        spec.requests,
    );
    println!("{}", render_comparison(&fifo_rows, &edf_rows));
    let (tight_fifo, tight_edf) = (&fifo_rows[0].1, &edf_rows[0].1);
    assert!(
        tight_edf.p99_ms <= tight_fifo.p99_ms
            && tight_edf.violation_rate <= tight_fifo.violation_rate,
        "EDF must not worsen the tight class (p99 {:.2} vs {:.2} ms, violations {:.1}% vs {:.1}%)",
        tight_edf.p99_ms,
        tight_fifo.p99_ms,
        tight_edf.violation_rate * 100.0,
        tight_fifo.violation_rate * 100.0,
    );

    let mut g = c.benchmark_group("sched_tail_latency");
    g.sample_size(10);
    g.bench_function("drain_edf_120req", |b| {
        b.iter(|| {
            black_box(drain_load(
                &runtime,
                &load,
                cfg(SchedulePolicy::EarliestDeadline),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
