//! Table 3 bench: entropy-threshold calibration sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use edgebert::calibrate::{calibrate_conventional, calibrate_latency_aware};
use edgebert::experiments::table3;
use edgebert_bench::bench_artifact_suite;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let arts = bench_artifact_suite();
    println!("{}", table3::render(&table3::run(arts)));

    let art = &arts[0];
    let mut g = c.benchmark_group("table3");
    g.sample_size(20);
    g.bench_function("calibrate_conventional_1pct", |b| {
        b.iter(|| black_box(calibrate_conventional(&art.cache, 0.01)))
    });
    g.bench_function("calibrate_latency_aware_1pct", |b| {
        b.iter(|| black_box(calibrate_latency_aware(&art.cache, &art.lut, 0.01)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
