//! Fleet energy budgeting bench: sweep the fleet power cap and trace
//! the energy-per-request vs tail-latency trade-off curve, against an
//! unbudgeted baseline on the same trace.
//!
//! Three served tasks, one shard each; a flash crowd lands on the
//! SST-2 lane. The unbudgeted pass measures the fleet's natural draw
//! (served energy over the measured drain wall time); the sweep then
//! re-runs the trace under caps at fractions of that draw. A capped
//! coordinator waterfills per-lane envelopes toward the pressured hot
//! lane, and every sentence's DVFS is clamped under its lane's
//! per-shard share — sentences whose deadlines need forbidden
//! operating points run at the fastest allowed one and their misses
//! surface honestly in the violation columns, never silently
//! re-priced.
//!
//! Acceptance (CI `energy-smoke`): at a cap of 70% of the
//! unconstrained draw, fleet energy per request must drop by at least
//! `EDGEBERT_ENERGY_MIN_SAVINGS_PCT` (default 20%) while the tight
//! class's violation rate stays under
//! `EDGEBERT_ENERGY_MAX_TIGHT_VIOLATION_PCT`; and with elastic
//! autoscaling on under a floor-tight cap, the hot lane must decline
//! at least one attach its envelope cannot fund
//! ([`LaneStats::attach_declined`]). Budgeting off must serve with
//! zero attach declines and no envelopes — the pre-energy server.
//!
//! [`LaneStats::attach_declined`]: edgebert::server::LaneStats

// analyzer: wall-clock-module reason="bench harness: the unconstrained fleet draw is served energy over the measured drain wall time, which requires real clock reads around the drain"

use criterion::{criterion_group, criterion_main, Criterion};
use edgebert::energy::EnergyConfig;
use edgebert::engine::{DropTarget, EntropyThresholds};
use edgebert::pipeline::{Scale, TaskArtifacts};
use edgebert::server::{ElasticConfig, ServerConfig, ServerStats};
use edgebert::serving::{MultiTaskRuntime, TaskRuntime};
use edgebert_bench::load::{
    class_reports_outcomes, drain_load_wall_clock_outcomes, generate_trace,
    render_comparison_labeled, render_server_stats, LoadOutcome, LoadRequest, TraceSpec,
    TrafficClass,
};
use edgebert_tasks::Task;
use std::hint::black_box;
use std::time::Instant;

/// Three lanes, one shard each: SST-2 takes the crowd (full depth on
/// the true hardware workload, so its emulated service time is ~the
/// nominal floor), QNLI and MNLI idle next to it.
fn runtime() -> MultiTaskRuntime {
    let hot = TaskArtifacts::cached(Task::Sst2, Scale::Test, 0x0E1A);
    let mut runtimes = vec![TaskRuntime::from_builder(
        Task::Sst2,
        hot.engine_builder()
            .thresholds_for(DropTarget::OnePercent, EntropyThresholds::uniform(0.0))
            .workload(hot.hardware_workload(true)),
    )];
    for task in [Task::Qnli, Task::Mnli] {
        runtimes.push(TaskRuntime::from_artifacts(&TaskArtifacts::cached(
            task,
            Scale::Test,
            0x0E1A,
        )));
    }
    MultiTaskRuntime::from_runtimes(runtimes)
}

/// A flash-crowd trace aimed at the SST-2 lane, scaled to its floor
/// service time.
fn flash_crowd(
    runtime: &MultiTaskRuntime,
    classes: &[TrafficClass],
    floor_s: f64,
    spike_units: f64,
    seed: u64,
) -> Vec<LoadRequest> {
    let spec = TraceSpec::flash_crowd(
        classes.to_vec(),
        seed,
        // Base rate below the shard's capacity at the DVFS *floor*
        // point (0.4x nominal), so calm-period sentences can run at
        // the energy floor and still meet the tight deadline — the
        // unbudgeted baseline must not drown for the capped
        // violation ceiling to mean anything.
        0.3 / floor_s,         // base: under floor-point capacity
        2.0 / floor_s,         // spike: 2x the hot shard's nominal capacity
        20.0 * floor_s,        // calm head
        spike_units * floor_s, // the crowd
        60.0 * floor_s,        // recovery long enough to drain the backlog
    );
    generate_trace(runtime, &spec)
}

/// Drains the load and measures the wall time the drain took — the
/// denominator of the fleet's observed power draw.
fn drain_timed(
    runtime: &MultiTaskRuntime,
    load: &[LoadRequest],
    cfg: ServerConfig,
) -> (Vec<LoadOutcome>, ServerStats, f64) {
    let started = Instant::now();
    let (outcomes, stats) = drain_load_wall_clock_outcomes(runtime, load, cfg);
    let wall_s = started.elapsed().as_secs_f64();
    (outcomes, stats, wall_s)
}

fn energy_per_request_j(stats: &ServerStats) -> f64 {
    stats.energy_j() / stats.served().max(1) as f64
}

fn bench(c: &mut Criterion) {
    let runtime = runtime();
    let floor_s = runtime
        .runtime(Task::Sst2)
        .expect("served")
        .engine()
        .nominal_service_estimate_s();
    let classes = vec![
        TrafficClass {
            // 5x the nominal floor: comfortably above the DVFS floor
            // point's 2.5x stretch, so a calm-period sentence is
            // feasible even under a deep envelope clamp and the
            // violation ceiling measures queueing damage, not
            // built-in infeasibility.
            name: "tight",
            latency_target_s: 5.0 * floor_s,
            weight: 0.5,
            task: Some(Task::Sst2),
        },
        TrafficClass {
            name: "relaxed",
            latency_target_s: 12.0 * floor_s,
            weight: 0.5,
            task: Some(Task::Sst2),
        },
    ];
    let load = flash_crowd(&runtime, &classes, floor_s, 3.0, 0x0E2B);
    println!(
        "nominal service estimate {:.2} ms; flash crowd of {} requests on SST-2 \
         (spike offers 2x one shard's capacity); 3 lanes x 1 shard\n",
        floor_s * 1e3,
        load.len(),
    );

    // Identical emulated EDF lanes; the energy budget is the only knob.
    let cfg = |energy: Option<EnergyConfig>| ServerConfig {
        queue_capacity: load.len(),
        emulate_service_time: true,
        energy,
        ..ServerConfig::default()
    };

    // Unbudgeted baseline: the fleet's natural draw anchors the sweep.
    let (base_out, base_stats, base_wall_s) = drain_timed(&runtime, &load, cfg(None));
    let base_rows = class_reports_outcomes(&load, &base_out, &classes);
    let draw_w = base_stats.energy_j() / base_wall_s;
    let base_epr = energy_per_request_j(&base_stats);
    assert_eq!(
        base_stats.attach_declined(),
        0,
        "budgeting off never declines an attach"
    );
    assert!(
        draw_w > 0.0 && draw_w.is_finite(),
        "the unbudgeted drain must measure a positive fleet draw"
    );
    println!(
        "unbudgeted fleet draw {:.4} W over {:.2} s; {:.2} uJ/request\n",
        draw_w,
        base_wall_s,
        base_epr * 1e6
    );

    // Sweep the cap: the energy-per-request vs tail-latency curve.
    let budget = |cap_w: f64| EnergyConfig {
        fleet_cap_w: cap_w,
        // Guarantee each lane a quarter of an even split, so idle
        // lanes stay serviceable while the waterfill chases pressure.
        floor_w: cap_w / (3.0 * 4.0),
        ..EnergyConfig::default()
    };
    let mut capped_rows_70 = None;
    let mut epr_70 = f64::NAN;
    println!("cap sweep (fraction of unconstrained draw):");
    println!(
        "{:<10} {:>10} {:>14} {:>16} {:>16}",
        "cap", "watts", "uJ/request", "tight p99 ms", "tight viol %"
    );
    for frac in [0.9, 0.7, 0.5] {
        let cap_w = frac * draw_w;
        let (out, stats, _) = drain_timed(&runtime, &load, cfg(Some(budget(cap_w))));
        let rows = class_reports_outcomes(&load, &out, &classes);
        let epr = energy_per_request_j(&stats);
        let tight = &rows[0].1;
        println!(
            "{:<10} {:>10.4} {:>14.2} {:>16.2} {:>16.1}",
            format!("{:.0}%", frac * 100.0),
            cap_w,
            epr * 1e6,
            tight.p99_ms,
            tight.violation_rate * 100.0
        );
        if frac == 0.7 {
            epr_70 = epr;
            capped_rows_70 = Some((rows, stats));
        }
    }
    println!();
    let (rows_70, stats_70) = capped_rows_70.expect("the sweep visits the 70% cap");
    println!(
        "{}",
        render_comparison_labeled("unbudget", &base_rows, "cap70", &rows_70)
    );
    println!("unbudgeted lanes:\n{}", render_server_stats(&base_stats));
    println!("70% cap lanes:\n{}", render_server_stats(&stats_70));

    // Acceptance: a 30% draw cut must buy real energy per request.
    let min_savings_pct: f64 = std::env::var("EDGEBERT_ENERGY_MIN_SAVINGS_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);
    let savings_pct = (1.0 - epr_70 / base_epr) * 100.0;
    println!(
        "energy per request: {:.2} -> {:.2} uJ ({:.1}% saved)\n",
        base_epr * 1e6,
        epr_70 * 1e6,
        savings_pct
    );
    assert!(
        savings_pct >= min_savings_pct,
        "a 70% cap must cut fleet energy per request by at least {min_savings_pct:.0}% \
         (got {savings_pct:.1}%)"
    );

    // ... while the deadline damage stays bounded and honest.
    let max_tight_violation_pct: f64 = std::env::var("EDGEBERT_ENERGY_MAX_TIGHT_VIOLATION_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(75.0);
    let tight_70 = &rows_70[0].1;
    assert!(
        tight_70.violation_rate * 100.0 <= max_tight_violation_pct,
        "70%-cap tight-class violation rate {:.1}% exceeds the pinned threshold {:.1}%",
        tight_70.violation_rate * 100.0,
        max_tight_violation_pct,
    );

    // Elastic integration: under a floor-tight cap the pressured hot
    // lane's envelope cannot fund a second shard at the backend's
    // floor draw, so idle foreign shards must *decline* to attach —
    // the fleet cap, not the pool, is the binding constraint.
    let hot_floor_w = runtime
        .runtime(Task::Sst2)
        .expect("served")
        .engine()
        .backend()
        .floor_power_w();
    assert!(
        hot_floor_w.is_finite() && hot_floor_w > 0.0,
        "the accelerator backend models a positive floor draw"
    );
    let tight_cap = EnergyConfig {
        fleet_cap_w: 3.2 * hot_floor_w,
        floor_w: hot_floor_w,
        ..EnergyConfig::default()
    };
    let elastic_cfg = ServerConfig {
        elastic: ElasticConfig {
            enabled: true,
            work_stealing: false, // isolate autoscaling
            ..ElasticConfig::default()
        },
        ..cfg(Some(tight_cap))
    };
    let short = flash_crowd(&runtime, &classes, floor_s, 10.0, 0x0E2C);
    let (_, declined_stats, _) = drain_timed(&runtime, &short, elastic_cfg);
    println!(
        "floor-tight cap lanes:\n{}",
        render_server_stats(&declined_stats)
    );
    assert!(
        declined_stats.attach_declined() >= 1,
        "a floor-tight envelope must decline at least one autoscale attach \
         (got {})",
        declined_stats.attach_declined()
    );
    assert_eq!(
        declined_stats.pool_resizes(),
        0,
        "no attach the envelope cannot fund may go through"
    );

    let mut g = c.benchmark_group("fleet_energy");
    g.sample_size(10);
    let short = flash_crowd(&runtime, &classes, floor_s, 10.0, 0x0E2D);
    g.bench_function("capped_crowd_drain", |b| {
        b.iter(|| {
            black_box(drain_load_wall_clock_outcomes(
                &runtime,
                &short,
                cfg(Some(budget(0.7 * draw_w))),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
