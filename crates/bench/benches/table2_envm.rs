//! Table 2 bench: eNVM fault-injection campaign throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use edgebert::experiments::table2;
use edgebert_bench::bench_artifact_suite;
use edgebert_envm::{CellTech, FaultInjector, StoredEmbedding};
use edgebert_tensor::Rng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let arts = bench_artifact_suite();
    println!("{}", table2::render(&table2::run(arts, 10, 12, 0x7AB2)));

    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    let art = &arts[0];
    let stored = StoredEmbedding::encode(&art.model.embedding.table.value, 4);
    g.bench_function("inject_mlc3_trial", |b| {
        let injector = FaultInjector::new(CellTech::Mlc3);
        let mut rng = Rng::seed_from(1);
        b.iter(|| {
            let mut img = stored.clone();
            black_box(injector.inject_storage(&mut img, &mut rng))
        })
    });
    g.bench_function("decode_stored_embedding", |b| {
        b.iter(|| black_box(stored.decode()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
