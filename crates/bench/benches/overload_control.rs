//! Flash-crowd overload bench: the admission ladder's
//! accuracy-for-survival trade against a ladder-off baseline.
//!
//! One SST-2 lane (one shard, EDF, service-time emulation) rides a
//! [`TraceSpec::flash_crowd`] arrival trace whose spike plateau offers
//! ~3× the lane's nominal capacity. The engine's accuracy tiers are
//! deliberately spread — the default tier runs full depth while the
//! most aggressive tier exits at the first layer — so a two-notch
//! degradation really buys throughput, the way EdgeBERT's
//! entropy-threshold ladder trades accuracy for latency headroom.
//!
//! Ladder off, the spike backlog snowballs and the tight class drowns:
//! its violation rate exceeds 50%. Ladder on (requests opt in with
//! `max_degradation = 2`), the lane degrades under pressure, sheds only
//! what is already infeasible, and recovers after the spike — the
//! tight-class violation rate must drop at least 2×, with the shed
//! fraction capped. The CI `overload-smoke` job runs this bench with
//! the thresholds pinned via `EDGEBERT_OVERLOAD_MAX_TIGHT_VIOLATION_PCT`
//! and `EDGEBERT_OVERLOAD_MAX_SHED_PCT`.

use criterion::{criterion_group, criterion_main, Criterion};
use edgebert::engine::{DropTarget, EntropyThresholds};
use edgebert::pipeline::{Scale, TaskArtifacts};
use edgebert::server::ServerConfig;
use edgebert::serving::{MultiTaskRuntime, TaskRuntime};
use edgebert::OverloadConfig;
use edgebert_bench::load::{
    class_reports_outcomes, drain_load_wall_clock_outcomes, generate_trace,
    render_comparison_labeled, render_server_stats, LoadRequest, TraceSpec, TrafficClass,
};
use edgebert_tasks::Task;
use std::hint::black_box;

/// The lane under test: full-depth default tier, first-layer-exit
/// aggressive tier, so ladder degradation has real throughput to buy.
fn runtime() -> MultiTaskRuntime {
    let art = TaskArtifacts::cached(Task::Sst2, Scale::Test, 0x0AD0);
    MultiTaskRuntime::from_runtimes([TaskRuntime::from_builder(
        Task::Sst2,
        art.engine_builder()
            .thresholds_for(DropTarget::OnePercent, EntropyThresholds::uniform(0.0))
            .thresholds_for(DropTarget::TwoPercent, EntropyThresholds::uniform(0.15))
            .thresholds_for(DropTarget::FivePercent, EntropyThresholds::uniform(100.0))
            .workload(art.hardware_workload(true)),
    )])
}

/// A flash-crowd trace scaled to the lane's floor service time, every
/// request opting into up to two degradation notches.
fn flash_crowd_load(
    runtime: &MultiTaskRuntime,
    classes: &[TrafficClass],
    floor_s: f64,
    spike_units: f64,
    seed: u64,
) -> Vec<LoadRequest> {
    let spec = TraceSpec::flash_crowd(
        classes.to_vec(),
        seed,
        0.5 / floor_s,         // base: half the nominal capacity
        3.0 / floor_s,         // spike: 3× the nominal capacity
        24.0 * floor_s,        // calm head
        spike_units * floor_s, // the crowd
        40.0 * floor_s,        // recovery tail
    );
    let mut load = generate_trace(runtime, &spec);
    for r in &mut load {
        r.request = r.request.clone().with_max_degradation(2);
    }
    load
}

fn bench(c: &mut Criterion) {
    let runtime = runtime();
    let floor_s = runtime
        .runtime(Task::Sst2)
        .expect("served")
        .engine()
        .nominal_service_estimate_s();
    // Tight deadlines sit just above one nominal service; relaxed ones
    // carry room for queueing. Declared ascending by target (canonical
    // order), tight first so row indexing below is stable.
    let classes = vec![
        TrafficClass {
            name: "tight",
            latency_target_s: 2.5 * floor_s,
            weight: 0.5,
            task: Some(Task::Sst2),
        },
        TrafficClass {
            name: "relaxed",
            latency_target_s: 12.0 * floor_s,
            weight: 0.5,
            task: Some(Task::Sst2),
        },
    ];
    let load = flash_crowd_load(&runtime, &classes, floor_s, 40.0, 0x0AD1);
    println!(
        "nominal service estimate {:.2} ms; flash crowd of {} requests \
         (spike offers 3x nominal capacity)\n",
        floor_s * 1e3,
        load.len(),
    );

    let cfg = |overload: OverloadConfig| ServerConfig {
        queue_capacity: load.len(),
        emulate_service_time: true,
        overload,
        ..ServerConfig::default()
    };
    let ladder = OverloadConfig {
        enabled: true,
        ..OverloadConfig::default()
    };
    let (base_out, base_stats) =
        drain_load_wall_clock_outcomes(&runtime, &load, cfg(OverloadConfig::default()));
    let (ladder_out, ladder_stats) = drain_load_wall_clock_outcomes(&runtime, &load, cfg(ladder));
    let base_rows = class_reports_outcomes(&load, &base_out, &classes);
    let ladder_rows = class_reports_outcomes(&load, &ladder_out, &classes);
    println!(
        "{}",
        render_comparison_labeled("off", &base_rows, "ladder", &ladder_rows)
    );
    println!("ladder-off lanes:\n{}", render_server_stats(&base_stats));
    println!("ladder-on lanes:\n{}", render_server_stats(&ladder_stats));

    // The ladder-off baseline must never shed or degrade — bit-identity
    // with the pre-overload server is the whole point of the default.
    assert_eq!(base_stats.shed(), 0);
    assert_eq!(base_stats.degraded(), 0);
    assert_eq!(base_stats.ladder_step_changes(), 0);

    // The scenario premise: ladder off, the flash crowd drowns the
    // tight class.
    let (tight_base, tight_ladder) = (&base_rows[0].1, &ladder_rows[0].1);
    assert!(
        tight_base.violation_rate > 0.5,
        "the baseline flash crowd must overload the tight class (got {:.1}%)",
        tight_base.violation_rate * 100.0,
    );

    // Acceptance: the ladder cuts tight-class violations at least 2×
    // and actually exercises its rungs both ways (the recovery tail is
    // long enough to step back down).
    assert!(
        tight_ladder.violation_rate * 2.0 <= tight_base.violation_rate,
        "ladder must cut tight violations >=2x: {:.1}% vs {:.1}%",
        tight_ladder.violation_rate * 100.0,
        tight_base.violation_rate * 100.0,
    );
    assert!(
        ladder_stats.degraded() > 0,
        "the crowd must push the lane into degraded service"
    );
    assert!(ladder_stats.ladder_step_changes() >= 2);

    // CI-pinned ceilings: tight-class violations with the ladder on,
    // and the total shed fraction (survival must not come from quietly
    // refusing the whole crowd).
    let max_tight_violation_pct: f64 = std::env::var("EDGEBERT_OVERLOAD_MAX_TIGHT_VIOLATION_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50.0);
    assert!(
        tight_ladder.violation_rate * 100.0 <= max_tight_violation_pct,
        "ladder tight-class violation rate {:.1}% exceeds the pinned threshold {:.1}%",
        tight_ladder.violation_rate * 100.0,
        max_tight_violation_pct,
    );
    let max_shed_pct: f64 = std::env::var("EDGEBERT_OVERLOAD_MAX_SHED_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50.0);
    let shed_pct = ladder_stats.shed() as f64 / load.len() as f64 * 100.0;
    assert!(
        shed_pct <= max_shed_pct,
        "ladder shed {:.1}% of the trace, exceeding the pinned threshold {:.1}%",
        shed_pct,
        max_shed_pct,
    );

    let mut g = c.benchmark_group("overload_control");
    g.sample_size(10);
    let short = flash_crowd_load(&runtime, &classes, floor_s, 10.0, 0x0AD2);
    g.bench_function("flash_crowd_ladder_drain", |b| {
        b.iter(|| {
            black_box(drain_load_wall_clock_outcomes(
                &runtime,
                &short,
                cfg(OverloadConfig {
                    enabled: true,
                    ..OverloadConfig::default()
                }),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
