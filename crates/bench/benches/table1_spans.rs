//! Table 1 bench: span-mask construction and the Table 1 driver.

use criterion::{criterion_group, criterion_main, Criterion};
use edgebert::experiments::table1;
use edgebert_bench::bench_artifact_suite;
use edgebert_nn::AdaptiveSpan;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let arts = bench_artifact_suite();
    println!("{}", table1::render(&table1::run(arts)));

    let mut g = c.benchmark_group("table1");
    g.sample_size(20);
    g.bench_function("experiment_driver", |b| {
        b.iter(|| black_box(table1::run(arts)))
    });
    let span = AdaptiveSpan::new(20.0, 32.0, 128);
    g.bench_function("span_mask_matrix_128", |b| {
        b.iter(|| black_box(span.mask_matrix(128)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
