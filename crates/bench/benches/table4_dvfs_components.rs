//! Table 4 bench: LDO transition and DVFS decision latency.

use criterion::{criterion_group, criterion_main, Criterion};
use edgebert::experiments::table4;
use edgebert_hw::{AcceleratorConfig, DvfsController, Ldo};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", table4::render(&table4::run()));

    let mut g = c.benchmark_group("table4");
    g.bench_function("ldo_full_swing_transition", |b| {
        b.iter(|| {
            let mut ldo = Ldo::new(0.80);
            black_box(ldo.transition(0.50))
        })
    });
    let ctl = DvfsController::new(AcceleratorConfig::energy_optimal());
    g.bench_function("dvfs_decision", |b| {
        b.iter(|| black_box(ctl.decide(black_box(25_000_000), black_box(50e-3))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
