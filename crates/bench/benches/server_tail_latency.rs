//! Wall-clock server bench: queue-aware DVFS slack vs the slack-blind
//! EDF baseline, with the virtual-timeline scheduler as the reference.
//!
//! Two frame-paced, task-bound request streams (tight on SST-2,
//! relaxed on QNLI) drive the real `Server` — worker threads, bounded
//! EDF lanes, service-time emulation — at ≥80 % per-lane offered
//! utilization of the floor service rate. The headline: the slack-blind
//! server stretches every sentence's compute into its full target, so
//! the backlog compounds and queued sentences miss by construction;
//! the queue-aware server hands DVFS the remaining slack, the lanes
//! settle at the arrival cadence, and the tight class's p99 sojourn
//! and violation rate collapse. The same load through the
//! `DeadlineScheduler`'s queue-aware virtual drain cross-checks the
//! wall-clock result against the deterministic model.

use criterion::{criterion_group, criterion_main, Criterion};
use edgebert::engine::EntropyThresholds;
use edgebert::pipeline::{Scale, TaskArtifacts};
use edgebert::scheduler::{SchedulePolicy, SchedulerConfig};
use edgebert::server::ServerConfig;
use edgebert::serving::{MultiTaskRuntime, TaskRuntime};
use edgebert_bench::load::{
    class_reports, drain_load, drain_load_wall_clock, estimate_service_s, generate_paced_streams,
    offered_utilization, render_comparison_labeled, TrafficClass,
};
use edgebert_tasks::Task;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Strict thresholds: every sentence engages the DVFS controller,
    // the regime where the compute budget matters most. Artifacts come
    // from the disk cache, so repeat runs skip training.
    let runtime = MultiTaskRuntime::from_runtimes([Task::Sst2, Task::Qnli].map(|task| {
        let art = TaskArtifacts::cached(task, Scale::Test, 0x5CED + task as u64);
        TaskRuntime::from_builder(
            task,
            art.engine_builder()
                .uniform_thresholds(EntropyThresholds::uniform(0.0))
                .workload(art.hardware_workload(true)),
        )
    }));
    let service_s = estimate_service_s(&runtime, 0x10AD);
    let lane_interarrival_s = service_s * 1.2;
    let classes = vec![
        TrafficClass {
            name: "tight",
            latency_target_s: service_s * 3.0,
            weight: 0.5,
            task: Some(Task::Sst2),
        },
        TrafficClass {
            name: "relaxed",
            latency_target_s: service_s * 6.0,
            weight: 0.5,
            task: Some(Task::Qnli),
        },
    ];
    let load = generate_paced_streams(&runtime, &classes, lane_interarrival_s, 40, 0x10AD);
    let utilization = offered_utilization(service_s, lane_interarrival_s, 1, 1);
    println!(
        "floor service {:.2} ms, per-lane inter-arrival {:.2} ms, \
         per-lane offered utilization {:.0}%, {} requests\n",
        service_s * 1e3,
        lane_interarrival_s * 1e3,
        utilization * 100.0,
        load.len(),
    );
    assert!(utilization >= 0.8, "bench must run under load");

    let cfg = |queue_aware_slack| ServerConfig {
        shards_per_task: 1,
        queue_capacity: load.len(),
        policy: SchedulePolicy::EarliestDeadline,
        queue_aware_slack,
        slack_floor_s: 1e-3,
        emulate_service_time: true,
        ..ServerConfig::default()
    };
    let blind = drain_load_wall_clock(&runtime, &load, cfg(false));
    let aware = drain_load_wall_clock(&runtime, &load, cfg(true));
    let blind_rows = class_reports(&load, &blind, &classes);
    let aware_rows = class_reports(&load, &aware, &classes);
    println!(
        "{}",
        render_comparison_labeled("blind", &blind_rows, "aware", &aware_rows)
    );

    // Acceptance: at ≥80 % utilization, queue-aware slack beats the
    // slack-blind EDF baseline on the tight class — strictly — for
    // both p99 sojourn and violation rate.
    let (tight_blind, tight_aware) = (&blind_rows[0].1, &aware_rows[0].1);
    assert!(
        tight_aware.p99_ms < tight_blind.p99_ms,
        "tight p99 {:.2} ms (aware) vs {:.2} ms (blind)",
        tight_aware.p99_ms,
        tight_blind.p99_ms,
    );
    assert!(
        tight_aware.violation_rate < tight_blind.violation_rate,
        "tight violations {:.1}% (aware) vs {:.1}% (blind)",
        tight_aware.violation_rate * 100.0,
        tight_blind.violation_rate * 100.0,
    );

    // Cross-check against the deterministic virtual timeline: the same
    // load through the scheduler's queue-aware drain shows the same
    // direction. (The scheduler's two lanes are task-agnostic where
    // the server's are task-bound, so the absolute numbers differ;
    // what must agree is that deducting queueing delay from the DVFS
    // budget converts blind violations into met deadlines.)
    let virt = |queue_aware_slack| {
        let responses = drain_load(
            &runtime,
            &load,
            SchedulerConfig {
                workers: 2,
                max_batch: 1,
                policy: SchedulePolicy::EarliestDeadline,
                task_switch_s: 0.0,
                queue_aware_slack,
                pressure_stretch: false,
                overload: Default::default(),
                telemetry: None,
                energy: None,
            },
        );
        class_reports(&load, &responses, &classes)
    };
    let virt_blind = virt(false);
    let virt_aware = virt(true);
    println!(
        "virtual-timeline reference:\n{}",
        render_comparison_labeled("blind", &virt_blind, "aware", &virt_aware)
    );
    assert!(virt_aware[0].1.violation_rate < virt_blind[0].1.violation_rate);

    let mut g = c.benchmark_group("server_tail_latency");
    g.sample_size(10);
    let short = generate_paced_streams(&runtime, &classes, lane_interarrival_s, 10, 0x10AE);
    g.bench_function("wall_clock_drain_aware_20req", |b| {
        b.iter(|| black_box(drain_load_wall_clock(&runtime, &short, cfg(true))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
