//! A full transformer encoder layer (post-norm, as in BERT/ALBERT).

use crate::attention::{AttentionCache, MultiHeadAttention};
use crate::ffn::{FeedForward, FeedForwardCache};
use crate::norm::{LayerNorm, LayerNormCache};
use crate::param::Parameter;
use edgebert_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

/// One transformer encoder layer, in the *pre-norm* arrangement:
///
/// ```text
/// a = x + MHA(LayerNorm(x))
/// y = a + FFN(LayerNorm(a))
/// ```
///
/// ALBERT shares one such layer's parameters across all twelve logical
/// layers; the model crate simply applies the same [`EncoderLayer`] twelve
/// times and accumulates gradients across applications.
///
/// The original ALBERT uses post-norm; this reproduction uses pre-norm
/// because a twelve-deep *shared* stack trained from scratch on small
/// synthetic corpora is numerically unstable in post-norm form (the
/// well-known warmup sensitivity), while every EdgeBERT mechanism —
/// early exit, spans, pruning, quantization, and the per-layer op counts
/// the hardware model charges — is identical between the two. See
/// `DESIGN.md` §1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EncoderLayer {
    /// Multi-head self-attention with adaptive spans.
    pub attention: MultiHeadAttention,
    /// Pre-attention layer norm.
    pub norm1: LayerNorm,
    /// Position-wise feed-forward network.
    pub ffn: FeedForward,
    /// Pre-FFN layer norm.
    pub norm2: LayerNorm,
}

/// Saved activations for [`EncoderLayer::backward`].
#[derive(Debug, Clone)]
pub struct EncoderCache {
    attn: AttentionCache,
    n1: LayerNormCache,
    ffn: FeedForwardCache,
    n2: LayerNormCache,
}

impl EncoderLayer {
    /// Creates an encoder layer.
    pub fn new(
        hidden: usize,
        num_heads: usize,
        intermediate: usize,
        max_span: usize,
        rng: &mut Rng,
    ) -> Self {
        Self {
            attention: MultiHeadAttention::new(hidden, num_heads, max_span, rng),
            norm1: LayerNorm::new(hidden),
            ffn: FeedForward::new(hidden, intermediate, rng),
            norm2: LayerNorm::new(hidden),
        }
    }

    /// Hidden width of the layer.
    pub fn hidden(&self) -> usize {
        self.attention.hidden()
    }

    /// Forward pass over a `seq_len x hidden` input.
    pub fn forward(&self, x: &Matrix) -> (Matrix, EncoderCache) {
        let (nx, n1) = self.norm1.forward(x);
        let (attn_out, attn) = self.attention.forward(&nx);
        let a = x.add(&attn_out);
        let (na, n2) = self.norm2.forward(&a);
        let (ffn_out, ffn) = self.ffn.forward(&na);
        let y = a.add(&ffn_out);
        (y, EncoderCache { attn, n1, ffn, n2 })
    }

    /// Inference-only forward.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let attn_out = self.attention.infer(&self.norm1.infer(x));
        let a = x.add(&attn_out);
        let ffn_out = self.ffn.infer(&self.norm2.infer(&a));
        a.add(&ffn_out)
    }

    /// Backward pass; accumulates parameter grads and returns `dx`.
    pub fn backward(&mut self, cache: &EncoderCache, grad_out: &Matrix) -> Matrix {
        // y = a + ffn(norm2(a)): gradient reaches `a` directly and
        // through the FFN branch.
        let d_na = self.ffn.backward(&cache.ffn, grad_out);
        let d_a_ffn_path = self.norm2.backward(&cache.n2, &d_na);
        let mut da = grad_out.clone();
        da.add_assign(&d_a_ffn_path);
        // a = x + attn(norm1(x)).
        let d_nx = self.attention.backward(&cache.attn, &da);
        let d_x_attn_path = self.norm1.backward(&cache.n1, &d_nx);
        let mut dx = da;
        dx.add_assign(&d_x_attn_path);
        dx
    }

    /// Clears all gradients.
    pub fn zero_grad(&mut self) {
        self.attention.zero_grad();
        self.norm1.zero_grad();
        self.ffn.zero_grad();
        self.norm2.zero_grad();
    }

    /// Mutable references to every parameter in the layer.
    pub fn params_mut(&mut self) -> Vec<&mut Parameter> {
        let mut ps = self.attention.params_mut();
        ps.extend(self.norm1.params_mut());
        ps.extend(self.ffn.params_mut());
        ps.extend(self.norm2.params_mut());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_preserves_shape() {
        let mut rng = Rng::seed_from(0);
        let layer = EncoderLayer::new(16, 4, 32, 8, &mut rng);
        let x = rng.gaussian_matrix(6, 16, 1.0);
        let (y, _) = layer.forward(&x);
        assert_eq!(y.shape(), (6, 16));
        assert_eq!(layer.infer(&x), y);
    }

    #[test]
    fn backward_matches_finite_difference_on_input() {
        let mut rng = Rng::seed_from(31);
        let mut layer = EncoderLayer::new(8, 2, 16, 8, &mut rng);
        layer.attention.spans[0].set_z(3.0);
        let x = rng.gaussian_matrix(4, 8, 1.0);
        let coeff = rng.gaussian_matrix(4, 8, 1.0);
        let loss = |l: &EncoderLayer, x: &Matrix| -> f32 {
            l.infer(x).hadamard(&coeff).as_slice().iter().sum()
        };
        let (_, cache) = layer.forward(&x);
        let dx = layer.backward(&cache, &coeff);
        let eps = 1e-2f32;
        for &(r, c) in &[(0usize, 0usize), (2, 5), (3, 7)] {
            let mut xp = x.clone();
            xp.set(r, c, x.get(r, c) + eps);
            let mut xm = x.clone();
            xm.set(r, c, x.get(r, c) - eps);
            let fd = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * eps);
            let an = dx.get(r, c);
            assert!(
                (fd - an).abs() < 0.1 * (1.0 + fd.abs()),
                "dx[{r},{c}] fd={fd} an={an}"
            );
        }
    }

    #[test]
    fn shared_layer_gradient_accumulates_across_applications() {
        // ALBERT applies the same layer repeatedly; two applications must
        // accumulate two gradient contributions.
        let mut rng = Rng::seed_from(7);
        let mut layer = EncoderLayer::new(8, 2, 16, 8, &mut rng);
        let x = rng.gaussian_matrix(3, 8, 1.0);
        let g = rng.gaussian_matrix(3, 8, 1.0);
        let (y1, c1) = layer.forward(&x);
        let (_, c2) = layer.forward(&y1);
        let d1 = layer.backward(&c2, &g);
        layer.backward(&c1, &d1);
        // Gradient must be non-zero on attention and ffn weights.
        assert!(layer.attention.wq.weight.grad.frobenius_norm() > 0.0);
        assert!(layer.ffn.fc1.weight.grad.frobenius_norm() > 0.0);
    }
}
