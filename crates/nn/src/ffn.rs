//! Position-wise feed-forward network (Linear → GELU → Linear).

use crate::activation::{gelu_backward, gelu_forward};
use crate::linear::{Linear, LinearCache};
use crate::param::Parameter;
use edgebert_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

/// The transformer FFN block: `y = W2 · gelu(W1 · x + b1) + b2`.
///
/// In ALBERT the intermediate width is 4× the hidden width (768 → 3072 in
/// the paper's Fig. 5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeedForward {
    /// Expansion layer (hidden → intermediate).
    pub fc1: Linear,
    /// Contraction layer (intermediate → hidden).
    pub fc2: Linear,
}

/// Saved activations for [`FeedForward::backward`].
#[derive(Debug, Clone)]
pub struct FeedForwardCache {
    c1: LinearCache,
    gelu_in: Matrix,
    c2: LinearCache,
}

impl FeedForward {
    /// Creates an FFN with the given hidden and intermediate widths.
    pub fn new(hidden: usize, intermediate: usize, rng: &mut Rng) -> Self {
        Self {
            fc1: Linear::new(hidden, intermediate, rng),
            fc2: Linear::new(intermediate, hidden, rng),
        }
    }

    /// Forward pass over a `seq_len x hidden` input.
    pub fn forward(&self, x: &Matrix) -> (Matrix, FeedForwardCache) {
        let (h, c1) = self.fc1.forward(x);
        let (a, gelu_in) = gelu_forward(&h);
        let (y, c2) = self.fc2.forward(&a);
        (y, FeedForwardCache { c1, gelu_in, c2 })
    }

    /// Inference-only forward.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        self.fc2.infer(&gelu_forward(&self.fc1.infer(x)).0)
    }

    /// Backward pass; accumulates parameter grads and returns `dx`.
    pub fn backward(&mut self, cache: &FeedForwardCache, grad_out: &Matrix) -> Matrix {
        let da = self.fc2.backward(&cache.c2, grad_out);
        let dh = gelu_backward(&cache.gelu_in, &da);
        self.fc1.backward(&cache.c1, &dh)
    }

    /// Clears gradients.
    pub fn zero_grad(&mut self) {
        self.fc1.zero_grad();
        self.fc2.zero_grad();
    }

    /// Mutable parameter references for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Parameter> {
        let mut ps = self.fc1.params_mut();
        ps.extend(self.fc2.params_mut());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape() {
        let mut rng = Rng::seed_from(0);
        let ffn = FeedForward::new(8, 32, &mut rng);
        let x = rng.gaussian_matrix(4, 8, 1.0);
        let (y, _) = ffn.forward(&x);
        assert_eq!(y.shape(), (4, 8));
        assert_eq!(ffn.infer(&x), y);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = Rng::seed_from(13);
        let mut ffn = FeedForward::new(6, 12, &mut rng);
        let x = rng.gaussian_matrix(3, 6, 1.0);
        let coeff = rng.gaussian_matrix(3, 6, 1.0);
        let loss = |f: &FeedForward, x: &Matrix| -> f32 {
            f.infer(x).hadamard(&coeff).as_slice().iter().sum()
        };
        let (_, cache) = ffn.forward(&x);
        let dx = ffn.backward(&cache, &coeff);
        let eps = 1e-2f32;

        let mut x2 = x.clone();
        let orig = x2.get(1, 2);
        x2.set(1, 2, orig + eps);
        let lp = loss(&ffn, &x2);
        x2.set(1, 2, orig - eps);
        let lm = loss(&ffn, &x2);
        let fd = (lp - lm) / (2.0 * eps);
        assert!((fd - dx.get(1, 2)).abs() < 5e-2 * (1.0 + fd.abs()));

        let orig = ffn.fc1.weight.value.get(0, 0);
        ffn.fc1.weight.value.set(0, 0, orig + eps);
        let lp = loss(&ffn, &x);
        ffn.fc1.weight.value.set(0, 0, orig - eps);
        let lm = loss(&ffn, &x);
        ffn.fc1.weight.value.set(0, 0, orig);
        let fd = (lp - lm) / (2.0 * eps);
        let an = ffn.fc1.weight.grad.get(0, 0);
        assert!((fd - an).abs() < 5e-2 * (1.0 + fd.abs()), "fd={fd} an={an}");
    }
}
