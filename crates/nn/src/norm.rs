//! Layer normalization with manual forward/backward.
//!
//! LayerNorm is load-bearing in this reproduction for two reasons: it is
//! one of the SFU's specialized datapaths (paper §7.4), and its
//! re-parameterization invariance is the stated reason NLP models need
//! floating-point rather than integer quantization (paper §3.4).

use crate::param::Parameter;
use edgebert_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Per-row layer normalization `y = gamma * (x - mu) / sigma + beta`.
///
/// # Example
///
/// ```
/// use edgebert_nn::LayerNorm;
/// use edgebert_tensor::Matrix;
///
/// let ln = LayerNorm::new(4);
/// let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
/// let (y, _) = ln.forward(&x);
/// let mean: f32 = y.row(0).iter().sum::<f32>() / 4.0;
/// assert!(mean.abs() < 1e-5);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerNorm {
    /// Scale, `1 x features`.
    pub gamma: Parameter,
    /// Shift, `1 x features`.
    pub beta: Parameter,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

/// Saved statistics for [`LayerNorm::backward`].
#[derive(Debug, Clone)]
pub struct LayerNormCache {
    /// Normalized input `(x - mu) / sigma`.
    x_hat: Matrix,
    /// Per-row `1 / sigma`.
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Creates a layer with `gamma = 1`, `beta = 0`.
    pub fn new(features: usize) -> Self {
        Self {
            gamma: Parameter::new(Matrix::filled(1, features, 1.0)),
            beta: Parameter::new(Matrix::zeros(1, features)),
            eps: 1e-5,
        }
    }

    /// Feature dimension this layer normalizes over.
    pub fn features(&self) -> usize {
        self.gamma.value.cols()
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != features`.
    pub fn forward(&self, x: &Matrix) -> (Matrix, LayerNormCache) {
        assert_eq!(x.cols(), self.features(), "layernorm width mismatch");
        let n = x.cols() as f32;
        let mut x_hat = Matrix::zeros(x.rows(), x.cols());
        let mut out = Matrix::zeros(x.rows(), x.cols());
        let mut inv_std = Vec::with_capacity(x.rows());
        let gamma = self.gamma.value.row(0);
        let beta = self.beta.value.row(0);
        for r in 0..x.rows() {
            let row = x.row(r);
            let mu: f32 = row.iter().sum::<f32>() / n;
            let var: f32 = row.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / n;
            let is = 1.0 / (var + self.eps).sqrt();
            inv_std.push(is);
            for c in 0..x.cols() {
                let xh = (row[c] - mu) * is;
                x_hat.set(r, c, xh);
                out.set(r, c, gamma[c] * xh + beta[c]);
            }
        }
        (out, LayerNormCache { x_hat, inv_std })
    }

    /// Inference-only forward (no cache).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        self.forward(x).0
    }

    /// Backward pass; accumulates `dgamma`/`dbeta` and returns `dx`.
    pub fn backward(&mut self, cache: &LayerNormCache, grad_out: &Matrix) -> Matrix {
        let (rows, cols) = grad_out.shape();
        let n = cols as f32;
        let gamma = self.gamma.value.row(0).to_vec();
        let mut dgamma = vec![0.0f32; cols];
        let mut dbeta = vec![0.0f32; cols];
        let mut dx = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let go = grad_out.row(r);
            let xh = cache.x_hat.row(r);
            // Accumulate parameter grads.
            for c in 0..cols {
                dgamma[c] += go[c] * xh[c];
                dbeta[c] += go[c];
            }
            // dx via the standard layernorm backward:
            // dx = (1/sigma) * (dxhat - mean(dxhat) - xhat * mean(dxhat*xhat))
            let dxhat: Vec<f32> = (0..cols).map(|c| go[c] * gamma[c]).collect();
            let mean_dxhat: f32 = dxhat.iter().sum::<f32>() / n;
            let mean_dxhat_xhat: f32 = dxhat
                .iter()
                .zip(xh.iter())
                .map(|(&d, &x)| d * x)
                .sum::<f32>()
                / n;
            let is = cache.inv_std[r];
            for c in 0..cols {
                dx.set(r, c, is * (dxhat[c] - mean_dxhat - xh[c] * mean_dxhat_xhat));
            }
        }
        self.gamma
            .accumulate_grad(&Matrix::from_vec(1, cols, dgamma));
        self.beta.accumulate_grad(&Matrix::from_vec(1, cols, dbeta));
        dx
    }

    /// Clears gradients.
    pub fn zero_grad(&mut self) {
        self.gamma.zero_grad();
        self.beta.zero_grad();
    }

    /// Mutable parameter references for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgebert_tensor::Rng;

    #[test]
    fn output_rows_are_normalized() {
        let ln = LayerNorm::new(8);
        let mut rng = Rng::seed_from(4);
        let x = rng.gaussian_matrix(5, 8, 3.0);
        let (y, _) = ln.forward(&x);
        for r in 0..y.rows() {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 8.0;
            let var: f32 = y
                .row(r)
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f32>()
                / 8.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn scale_invariance_property() {
        // Layer norm output is invariant to scaling the input row — the
        // property that motivates FP quantization in the paper.
        let ln = LayerNorm::new(4);
        let x = Matrix::from_rows(&[&[1.0, -2.0, 0.5, 3.0]]);
        let (y1, _) = ln.forward(&x);
        let (y2, _) = ln.forward(&x.scale(25.0));
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = Rng::seed_from(8);
        let mut ln = LayerNorm::new(6);
        // Non-trivial gamma/beta.
        ln.gamma.value = rng.gaussian_matrix(1, 6, 1.0);
        ln.beta.value = rng.gaussian_matrix(1, 6, 1.0);
        let x = rng.gaussian_matrix(3, 6, 1.5);
        let coeff = rng.gaussian_matrix(3, 6, 1.0);
        let loss = |ln: &LayerNorm, x: &Matrix| -> f32 {
            ln.forward(x).0.hadamard(&coeff).as_slice().iter().sum()
        };
        let (_, cache) = ln.forward(&x);
        let dx = ln.backward(&cache, &coeff);
        let eps = 1e-2f32;
        // dx check on several coordinates.
        for &(r, c) in &[(0usize, 0usize), (1, 3), (2, 5)] {
            let mut xp = x.clone();
            xp.set(r, c, x.get(r, c) + eps);
            let mut xm = x.clone();
            xm.set(r, c, x.get(r, c) - eps);
            let fd = (loss(&ln, &xp) - loss(&ln, &xm)) / (2.0 * eps);
            assert!(
                (fd - dx.get(r, c)).abs() < 3e-2 * (1.0 + fd.abs()),
                "dx[{r},{c}] fd={fd} an={}",
                dx.get(r, c)
            );
        }
        // dgamma check.
        let orig = ln.gamma.value.get(0, 2);
        ln.gamma.value.set(0, 2, orig + eps);
        let lp = loss(&ln, &x);
        ln.gamma.value.set(0, 2, orig - eps);
        let lm = loss(&ln, &x);
        ln.gamma.value.set(0, 2, orig);
        let fd = (lp - lm) / (2.0 * eps);
        assert!((fd - ln.gamma.grad.get(0, 2)).abs() < 3e-2 * (1.0 + fd.abs()));
        // dbeta check.
        let orig = ln.beta.value.get(0, 4);
        ln.beta.value.set(0, 4, orig + eps);
        let lp = loss(&ln, &x);
        ln.beta.value.set(0, 4, orig - eps);
        let lm = loss(&ln, &x);
        ln.beta.value.set(0, 4, orig);
        let fd = (lp - lm) / (2.0 * eps);
        assert!((fd - ln.beta.grad.get(0, 4)).abs() < 3e-2 * (1.0 + fd.abs()));
    }
}
