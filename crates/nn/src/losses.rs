//! Loss functions: cross-entropy, knowledge distillation, and MSE.
//!
//! Each returns `(loss_value, grad_wrt_logits)` so callers can feed the
//! gradient straight into a backward pass. Losses are averaged over the
//! batch (matrix rows).

use edgebert_tensor::kernels::{log_softmax, softmax_inplace};
use edgebert_tensor::Matrix;

/// Softmax cross-entropy against integer class targets.
///
/// Returns the mean loss and `dL/dlogits = (softmax(logits) - onehot)/B`.
///
/// # Panics
///
/// Panics if `targets.len() != logits.rows()` or any target is out of
/// range.
///
/// # Example
///
/// ```
/// use edgebert_nn::losses::cross_entropy;
/// use edgebert_tensor::Matrix;
///
/// let logits = Matrix::from_rows(&[&[5.0, 0.0]]);
/// let (loss, _grad) = cross_entropy(&logits, &[0]);
/// assert!(loss < 0.1); // confident and correct
/// ```
pub fn cross_entropy(logits: &Matrix, targets: &[usize]) -> (f32, Matrix) {
    assert_eq!(targets.len(), logits.rows(), "one target per row required");
    let batch = logits.rows() as f32;
    let classes = logits.cols();
    let mut grad = Matrix::zeros(logits.rows(), classes);
    let mut loss = 0.0f32;
    for (r, &t) in targets.iter().enumerate() {
        assert!(t < classes, "target {t} out of range for {classes} classes");
        let ls = log_softmax(logits.row(r));
        loss += -ls[t];
        let g = grad.row_mut(r);
        for c in 0..classes {
            g[c] = (ls[c].exp() - if c == t { 1.0 } else { 0.0 }) / batch;
        }
    }
    (loss / batch, grad)
}

/// Knowledge-distillation loss: temperature-scaled KL divergence
/// `T^2 · KL(softmax(t/T) || softmax(s/T))`, averaged over the batch.
///
/// Returns the loss and its gradient with respect to the *student* logits,
/// `T · (softmax(s/T) - softmax(t/T)) / B`.
///
/// # Panics
///
/// Panics if the two logit matrices have different shapes or `temperature
/// <= 0`.
pub fn distillation(student: &Matrix, teacher: &Matrix, temperature: f32) -> (f32, Matrix) {
    assert_eq!(student.shape(), teacher.shape(), "logit shape mismatch");
    assert!(temperature > 0.0, "temperature must be positive");
    let batch = student.rows() as f32;
    let t2 = temperature * temperature;
    let mut grad = Matrix::zeros(student.rows(), student.cols());
    let mut loss = 0.0f32;
    for r in 0..student.rows() {
        let s_scaled: Vec<f32> = student.row(r).iter().map(|&v| v / temperature).collect();
        let t_scaled: Vec<f32> = teacher.row(r).iter().map(|&v| v / temperature).collect();
        let ls_s = log_softmax(&s_scaled);
        let mut p_t = t_scaled.clone();
        softmax_inplace(&mut p_t);
        let ls_t = log_softmax(&t_scaled);
        for c in 0..student.cols() {
            if p_t[c] > 0.0 {
                loss += t2 * p_t[c] * (ls_t[c] - ls_s[c]);
            }
            let p_s = ls_s[c].exp();
            grad.set(r, c, temperature * (p_s - p_t[c]) / batch);
        }
    }
    (loss / batch, grad)
}

/// Mean squared error; returns the loss and `dL/dpred = 2(pred-target)/N`.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.len().max(1) as f32;
    let diff = pred.sub(target);
    let loss = diff.as_slice().iter().map(|d| d * d).sum::<f32>() / n;
    (loss, diff.scale(2.0 / n))
}

/// Classification accuracy of logits against integer targets, in `[0, 1]`.
///
/// # Panics
///
/// Panics if `targets.len() != logits.rows()`.
pub fn accuracy(logits: &Matrix, targets: &[usize]) -> f32 {
    assert_eq!(targets.len(), logits.rows());
    if targets.is_empty() {
        return 0.0;
    }
    let correct = (0..logits.rows())
        .filter(|&r| edgebert_tensor::stats::argmax(logits.row(r)) == targets[r])
        .count();
    correct as f32 / targets.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgebert_tensor::Rng;

    #[test]
    fn cross_entropy_gradient_matches_fd() {
        let mut rng = Rng::seed_from(2);
        let logits = rng.gaussian_matrix(3, 4, 1.0);
        let targets = [1usize, 0, 3];
        let (_, grad) = cross_entropy(&logits, &targets);
        let eps = 1e-2f32;
        for &(r, c) in &[(0usize, 0usize), (1, 2), (2, 3)] {
            let mut lp = logits.clone();
            lp.set(r, c, logits.get(r, c) + eps);
            let mut lm = logits.clone();
            lm.set(r, c, logits.get(r, c) - eps);
            let fd =
                (cross_entropy(&lp, &targets).0 - cross_entropy(&lm, &targets).0) / (2.0 * eps);
            assert!(
                (fd - grad.get(r, c)).abs() < 1e-2,
                "fd={fd} an={}",
                grad.get(r, c)
            );
        }
    }

    #[test]
    fn cross_entropy_uniform_is_ln_k() {
        let logits = Matrix::zeros(2, 5);
        let (loss, _) = cross_entropy(&logits, &[0, 4]);
        assert!((loss - (5.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn distillation_zero_when_matching() {
        let mut rng = Rng::seed_from(3);
        let logits = rng.gaussian_matrix(2, 3, 1.0);
        let (loss, grad) = distillation(&logits, &logits, 2.0);
        assert!(loss.abs() < 1e-6);
        assert!(grad.frobenius_norm() < 1e-6);
    }

    #[test]
    fn distillation_gradient_matches_fd() {
        let mut rng = Rng::seed_from(4);
        let student = rng.gaussian_matrix(2, 3, 1.0);
        let teacher = rng.gaussian_matrix(2, 3, 1.0);
        let (_, grad) = distillation(&student, &teacher, 2.0);
        let eps = 1e-2f32;
        for &(r, c) in &[(0usize, 1usize), (1, 2)] {
            let mut sp = student.clone();
            sp.set(r, c, student.get(r, c) + eps);
            let mut sm = student.clone();
            sm.set(r, c, student.get(r, c) - eps);
            let fd = (distillation(&sp, &teacher, 2.0).0 - distillation(&sm, &teacher, 2.0).0)
                / (2.0 * eps);
            assert!(
                (fd - grad.get(r, c)).abs() < 2e-2 * (1.0 + fd.abs()),
                "fd={fd} an={}",
                grad.get(r, c)
            );
        }
    }

    #[test]
    fn distillation_is_nonnegative() {
        let mut rng = Rng::seed_from(5);
        for _ in 0..10 {
            let s = rng.gaussian_matrix(2, 4, 2.0);
            let t = rng.gaussian_matrix(2, 4, 2.0);
            assert!(distillation(&s, &t, 1.5).0 >= -1e-5);
        }
    }

    #[test]
    fn mse_known_value() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[0.0, 0.0]]);
        let (loss, grad) = mse(&a, &b);
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad, Matrix::from_rows(&[&[1.0, 2.0]]));
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[3.0, 1.0]]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 1.0);
    }
}
