//! Fully-connected layer with manual forward/backward.

use crate::param::Parameter;
use edgebert_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

/// A dense affine layer `y = x W + b` with `W: (in, out)`.
///
/// The forward pass returns a [`LinearCache`] holding the input; the
/// backward pass consumes it, accumulates `dW`/`db` into the layer's
/// [`Parameter`]s and returns `dx`.
///
/// # Example
///
/// ```
/// use edgebert_nn::Linear;
/// use edgebert_tensor::{Matrix, Rng};
///
/// let mut rng = Rng::seed_from(0);
/// let layer = Linear::new(4, 2, &mut rng);
/// let x = Matrix::zeros(3, 4);
/// let (y, _cache) = layer.forward(&x);
/// assert_eq!(y.shape(), (3, 2));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weight matrix, shape `(in_features, out_features)`.
    pub weight: Parameter,
    /// Bias vector stored as a `1 x out_features` matrix.
    pub bias: Parameter,
}

/// Saved activations needed by [`Linear::backward`].
#[derive(Debug, Clone)]
pub struct LinearCache {
    input: Matrix,
}

impl Linear {
    /// Creates a layer with Xavier-initialised weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Rng) -> Self {
        Self {
            weight: Parameter::new(rng.xavier(in_features, out_features)),
            bias: Parameter::new(Matrix::zeros(1, out_features)),
        }
    }

    /// Creates a layer from explicit weights and bias.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x weight.cols()`.
    pub fn from_parts(weight: Matrix, bias: Matrix) -> Self {
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(bias.cols(), weight.cols(), "bias width must match weight");
        Self {
            weight: Parameter::new(weight),
            bias: Parameter::new(bias),
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.rows()
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.cols()
    }

    /// Forward pass: `y = x W + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_features`.
    pub fn forward(&self, x: &Matrix) -> (Matrix, LinearCache) {
        let y = x
            .matmul(&self.weight.value)
            .add_row_broadcast(self.bias.value.row(0));
        (y, LinearCache { input: x.clone() })
    }

    /// Inference-only forward pass (no cache allocation).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        x.matmul(&self.weight.value)
            .add_row_broadcast(self.bias.value.row(0))
    }

    /// Backward pass. Accumulates parameter gradients and returns `dx`.
    pub fn backward(&mut self, cache: &LinearCache, grad_out: &Matrix) -> Matrix {
        // dW = x^T * dy ; db = sum_rows(dy) ; dx = dy * W^T
        let dw = cache.input.matmul_tn(grad_out);
        self.weight.accumulate_grad(&dw);
        let db = Matrix::from_vec(1, grad_out.cols(), grad_out.sum_rows());
        self.bias.accumulate_grad(&db);
        grad_out.matmul_nt(&self.weight.value)
    }

    /// Clears gradients on both parameters.
    pub fn zero_grad(&mut self) {
        self.weight.zero_grad();
        self.bias.zero_grad();
    }

    /// Mutable references to the layer's parameters, for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.weight, &mut self.bias]
    }

    /// Number of scalar weights (excluding bias).
    pub fn weight_count(&self) -> usize {
        self.weight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(rows: usize, in_f: usize, out_f: usize, seed: u64) {
        let mut rng = Rng::seed_from(seed);
        let mut layer = Linear::new(in_f, out_f, &mut rng);
        let x = rng.gaussian_matrix(rows, in_f, 1.0);
        // Loss = sum(y * coeff) with random coefficients to make gradients
        // non-trivial.
        let coeff = rng.gaussian_matrix(rows, out_f, 1.0);
        let loss = |layer: &Linear, x: &Matrix| -> f32 {
            let (y, _) = layer.forward(x);
            y.hadamard(&coeff).as_slice().iter().sum()
        };

        let (y, cache) = layer.forward(&x);
        assert_eq!(y.shape(), (rows, out_f));
        let dx = layer.backward(&cache, &coeff);

        let eps = 1e-2f32;
        // Check dW on a few entries.
        for &(i, j) in &[(0usize, 0usize), (in_f - 1, out_f - 1)] {
            let orig = layer.weight.value.get(i, j);
            layer.weight.value.set(i, j, orig + eps);
            let lp = loss(&layer, &x);
            layer.weight.value.set(i, j, orig - eps);
            let lm = loss(&layer, &x);
            layer.weight.value.set(i, j, orig);
            let fd = (lp - lm) / (2.0 * eps);
            let an = layer.weight.grad.get(i, j);
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + fd.abs()),
                "dW[{i},{j}]: fd={fd} an={an}"
            );
        }
        // Check dx.
        let mut x2 = x.clone();
        let orig = x2.get(0, 0);
        x2.set(0, 0, orig + eps);
        let lp = loss(&layer, &x2);
        x2.set(0, 0, orig - eps);
        let lm = loss(&layer, &x2);
        let fd = (lp - lm) / (2.0 * eps);
        assert!((fd - dx.get(0, 0)).abs() < 2e-2 * (1.0 + fd.abs()));
        // Check db.
        let orig_b = layer.bias.value.get(0, 0);
        layer.bias.value.set(0, 0, orig_b + eps);
        let lp = loss(&layer, &x);
        layer.bias.value.set(0, 0, orig_b - eps);
        let lm = loss(&layer, &x);
        layer.bias.value.set(0, 0, orig_b);
        let fd = (lp - lm) / (2.0 * eps);
        assert!((fd - layer.bias.grad.get(0, 0)).abs() < 2e-2 * (1.0 + fd.abs()));
    }

    #[test]
    fn gradients_match_finite_differences() {
        finite_diff_check(3, 5, 4, 42);
        finite_diff_check(1, 2, 7, 7);
    }

    #[test]
    fn forward_shape_and_bias() {
        let layer = Linear::from_parts(
            Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]),
            Matrix::from_rows(&[&[10.0, 20.0]]),
        );
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        assert_eq!(layer.infer(&x), Matrix::from_rows(&[&[11.0, 22.0]]));
        assert_eq!(layer.in_features(), 2);
        assert_eq!(layer.out_features(), 2);
    }

    #[test]
    fn backward_accumulates_over_calls() {
        let mut rng = Rng::seed_from(1);
        let mut layer = Linear::new(2, 2, &mut rng);
        let x = Matrix::from_rows(&[&[1.0, 1.0]]);
        let g = Matrix::from_rows(&[&[1.0, 1.0]]);
        let (_, c1) = layer.forward(&x);
        layer.backward(&c1, &g);
        let after_one = layer.weight.grad.clone();
        let (_, c2) = layer.forward(&x);
        layer.backward(&c2, &g);
        assert_eq!(layer.weight.grad, after_one.scale(2.0));
        layer.zero_grad();
        assert_eq!(layer.weight.grad, Matrix::zeros(2, 2));
    }
}
