//! Optimizers: Adam and plain SGD.
//!
//! Both respect [`Parameter::frozen`] (used in training phase 2, where the
//! ALBERT backbone is frozen and only the highway off-ramps train) and
//! re-apply pruning masks after each step so pruned weights stay zero.

use crate::param::Parameter;
use edgebert_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Adam optimizer (Kingma & Ba) with optional decoupled weight decay.
///
/// # Example
///
/// ```
/// use edgebert_nn::{AdamOptimizer, Parameter};
/// use edgebert_tensor::Matrix;
///
/// let mut p = Parameter::new(Matrix::filled(1, 1, 1.0));
/// p.grad = Matrix::filled(1, 1, 1.0);
/// let mut opt = AdamOptimizer::new(0.1);
/// opt.step(&mut [&mut p]);
/// assert!(p.value.get(0, 0) < 1.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdamOptimizer {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight decay coefficient (AdamW-style).
    pub weight_decay: f32,
    t: u64,
}

impl AdamOptimizer {
    /// Creates an Adam optimizer with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
        }
    }

    /// Builder-style weight decay setter.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one update to every non-frozen parameter, then re-applies
    /// pruning masks.
    pub fn step(&mut self, params: &mut [&mut Parameter]) {
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for p in params.iter_mut() {
            if p.frozen {
                continue;
            }
            let (rows, cols) = p.shape();
            if p.adam_m.is_none() {
                p.adam_m = Some(Matrix::zeros(rows, cols));
                p.adam_v = Some(Matrix::zeros(rows, cols));
            }
            let m = p.adam_m.as_mut().expect("just initialised");
            let v = p.adam_v.as_mut().expect("just initialised");
            for i in 0..p.value.len() {
                let g = p.grad.as_slice()[i];
                let mi = self.beta1 * m.as_slice()[i] + (1.0 - self.beta1) * g;
                let vi = self.beta2 * v.as_slice()[i] + (1.0 - self.beta2) * g * g;
                m.as_mut_slice()[i] = mi;
                v.as_mut_slice()[i] = vi;
                let m_hat = mi / b1t;
                let v_hat = vi / b2t;
                let w = &mut p.value.as_mut_slice()[i];
                *w -= self.lr * (m_hat / (v_hat.sqrt() + self.eps) + self.weight_decay * *w);
            }
            p.apply_mask();
        }
    }
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SgdOptimizer {
    /// Learning rate.
    pub lr: f32,
}

impl SgdOptimizer {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }

    /// Applies `w -= lr * g` to every non-frozen parameter, then
    /// re-applies pruning masks.
    pub fn step(&mut self, params: &mut [&mut Parameter]) {
        for p in params.iter_mut() {
            if p.frozen {
                continue;
            }
            for i in 0..p.value.len() {
                p.value.as_mut_slice()[i] -= self.lr * p.grad.as_slice()[i];
            }
            p.apply_mask();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(p: &mut Parameter) {
        // L = 0.5 * ||w - 3||^2  =>  g = w - 3
        p.zero_grad();
        let g = p.value.map(|w| w - 3.0);
        p.accumulate_grad(&g);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = Parameter::new(Matrix::filled(2, 2, 0.0));
        let mut opt = AdamOptimizer::new(0.2);
        for _ in 0..300 {
            quadratic_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        for &w in p.value.as_slice() {
            assert!((w - 3.0).abs() < 0.05, "w={w}");
        }
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = Parameter::new(Matrix::filled(1, 3, 10.0));
        let mut opt = SgdOptimizer::new(0.1);
        for _ in 0..200 {
            quadratic_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        for &w in p.value.as_slice() {
            assert!((w - 3.0).abs() < 1e-3);
        }
    }

    #[test]
    fn frozen_parameters_do_not_move() {
        let mut p = Parameter::new(Matrix::filled(1, 1, 5.0));
        p.frozen = true;
        quadratic_grad(&mut p);
        let mut adam = AdamOptimizer::new(0.5);
        adam.step(&mut [&mut p]);
        let mut sgd = SgdOptimizer::new(0.5);
        sgd.step(&mut [&mut p]);
        assert_eq!(p.value.get(0, 0), 5.0);
    }

    #[test]
    fn masked_weights_stay_zero_through_updates() {
        let mut p = Parameter::new(Matrix::from_rows(&[&[1.0, 1.0]]));
        p.set_mask(Matrix::from_rows(&[&[1.0, 0.0]]));
        let mut opt = AdamOptimizer::new(0.1);
        for _ in 0..10 {
            p.zero_grad();
            p.accumulate_grad(&Matrix::from_rows(&[&[-1.0, -1.0]]));
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.get(0, 0) > 1.0); // unmasked weight trains
        assert_eq!(p.value.get(0, 1), 0.0); // pruned weight pinned at zero
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut p = Parameter::new(Matrix::filled(1, 1, 1.0));
        let mut opt = AdamOptimizer::new(0.01).with_weight_decay(0.5);
        // Zero task gradient: only decay acts.
        p.zero_grad();
        for _ in 0..50 {
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.get(0, 0) < 1.0);
    }
}
