//! Adaptive attention span (Sukhbaatar et al.), as used by EdgeBERT §3.2.
//!
//! Each attention head owns a learnable scalar `z`. A soft ramp function
//! maps token distance `d` to a multiplicative mask value:
//!
//! ```text
//! m_z(d) = clamp((R + z - d) / R, 0, 1)
//! ```
//!
//! where `R` is the ramp width. The mask is element-wise multiplied with
//! the post-softmax attention weights (paper Fig. 3 / Algorithm 3). During
//! fine-tuning a span penalty is added to the loss so heads shrink their
//! span — and more than half of them collapse to zero and can be skipped
//! entirely by the accelerator (paper Table 1).

use crate::param::Parameter;
use edgebert_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Learnable attention span for a single head.
///
/// # Example
///
/// ```
/// use edgebert_nn::AdaptiveSpan;
///
/// let mut span = AdaptiveSpan::new(8.0, 32.0, 128);
/// assert!(!span.is_off());
/// span.set_z(-span.ramp()); // collapse the span
/// assert!(span.is_off());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveSpan {
    /// The learnable span parameter `z`, stored as a `1x1` [`Parameter`].
    pub z: Parameter,
    ramp: f32,
    max_span: usize,
}

impl AdaptiveSpan {
    /// Creates a span with initial value `z0`, ramp width `ramp`, and an
    /// upper clamp of `max_span` tokens (the maximum sequence length, 128
    /// for the GLUE fine-tuning setup).
    ///
    /// # Panics
    ///
    /// Panics if `ramp <= 0`.
    pub fn new(z0: f32, ramp: f32, max_span: usize) -> Self {
        assert!(ramp > 0.0, "ramp must be positive");
        Self {
            z: Parameter::new(Matrix::filled(1, 1, z0)),
            ramp,
            max_span,
        }
    }

    /// Ramp width `R` of the soft mask.
    pub fn ramp(&self) -> f32 {
        self.ramp
    }

    /// Maximum permitted span.
    pub fn max_span(&self) -> usize {
        self.max_span
    }

    /// Current raw `z` value.
    pub fn z_value(&self) -> f32 {
        self.z.value.get(0, 0)
    }

    /// Overwrites `z` (clamped to the legal range `[-R, max_span]`).
    pub fn set_z(&mut self, z: f32) {
        self.z
            .value
            .set(0, 0, z.clamp(-self.ramp, self.max_span as f32));
    }

    /// Mask value for token distance `d`.
    #[inline]
    pub fn mask_at(&self, d: usize) -> f32 {
        ((self.ramp + self.z_value() - d as f32) / self.ramp).clamp(0.0, 1.0)
    }

    /// The effective span: the largest distance with a non-zero mask,
    /// `max(0, z + R)` clamped to the maximum span. This is the quantity
    /// reported per head in the paper's Table 1; `0` means the head can be
    /// skipped entirely.
    pub fn effective_span(&self) -> f32 {
        (self.z_value() + self.ramp).clamp(0.0, self.max_span as f32)
    }

    /// Whether the mask is identically zero (head fully off).
    pub fn is_off(&self) -> bool {
        self.effective_span() <= 0.0
    }

    /// The 1-D mask profile over distances `0..seq_len` — the "128-wide
    /// vector" the accelerator stores per head in its auxiliary buffer.
    pub fn mask_vector(&self, seq_len: usize) -> Vec<f32> {
        (0..seq_len).map(|d| self.mask_at(d)).collect()
    }

    /// The full 2-D mask over query/key positions, `m[i][j] = m_z(|i-j|)`.
    pub fn mask_matrix(&self, seq_len: usize) -> Matrix {
        let profile = self.mask_vector(seq_len);
        let mut m = Matrix::zeros(seq_len, seq_len);
        for i in 0..seq_len {
            for j in 0..seq_len {
                m.set(i, j, profile[i.abs_diff(j)]);
            }
        }
        m
    }

    /// Backward through the mask: given `dL/dmask[i][j]`, accumulates
    /// `dL/dz`. The ramp is linear, so `dm/dz = 1/R` wherever the mask is
    /// strictly between 0 and 1, else 0.
    pub fn backward_mask(&mut self, grad_mask: &Matrix, seq_len: usize) {
        let mut gz = 0.0f32;
        for i in 0..seq_len {
            for j in 0..seq_len {
                let m = self.mask_at(i.abs_diff(j));
                if m > 0.0 && m < 1.0 {
                    gz += grad_mask.get(i, j) / self.ramp;
                }
            }
        }
        let cur = self.z.grad.get(0, 0);
        self.z.grad.set(0, 0, cur + gz);
    }

    /// Adds the span-penalty gradient `lambda` (per unit of effective
    /// span) and returns the penalty value `lambda * effective_span`.
    /// This is the "average loss from the reduced span" term added back to
    /// the cross-entropy loss during fine-tuning (paper §3.2).
    pub fn apply_span_penalty(&mut self, lambda: f32) -> f32 {
        if self.effective_span() > 0.0 {
            let cur = self.z.grad.get(0, 0);
            self.z.grad.set(0, 0, cur + lambda);
        }
        lambda * self.effective_span()
    }

    /// Clamps `z` into its legal range; call after each optimizer step.
    pub fn clamp(&mut self) {
        let z = self.z_value();
        self.set_z(z);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_profile_shape() {
        let span = AdaptiveSpan::new(4.0, 8.0, 128);
        // d=0 fully attended, beyond z+R fully masked, linear in between.
        assert_eq!(span.mask_at(0), 1.0);
        assert_eq!(span.mask_at(12), 0.0);
        assert_eq!(span.mask_at(200), 0.0);
        let mid = span.mask_at(8);
        assert!(mid > 0.0 && mid < 1.0);
        assert!((span.effective_span() - 12.0).abs() < 1e-6);
    }

    #[test]
    fn off_head_has_zero_mask_everywhere() {
        let mut span = AdaptiveSpan::new(10.0, 8.0, 128);
        span.set_z(-8.0);
        assert!(span.is_off());
        assert!(span.mask_vector(128).iter().all(|&m| m == 0.0));
        let mm = span.mask_matrix(16);
        assert_eq!(mm.nnz(), 0);
    }

    #[test]
    fn mask_matrix_is_symmetric_banded() {
        let span = AdaptiveSpan::new(2.0, 4.0, 64);
        let m = span.mask_matrix(10);
        for i in 0..10 {
            for j in 0..10 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
        // Diagonal fully on.
        for i in 0..10 {
            assert_eq!(m.get(i, i), 1.0);
        }
    }

    #[test]
    fn z_is_clamped() {
        let mut span = AdaptiveSpan::new(0.0, 8.0, 32);
        span.set_z(1000.0);
        assert_eq!(span.z_value(), 32.0);
        span.set_z(-1000.0);
        assert_eq!(span.z_value(), -8.0);
    }

    #[test]
    fn backward_mask_matches_finite_difference() {
        // z chosen off the integer grid so no token distance sits exactly
        // on a clamp kink, where the subgradient is ambiguous.
        let seq = 12;
        let z0 = 3.3f32;
        let mut span = AdaptiveSpan::new(z0, 6.0, 64);
        // Random upstream gradient.
        let mut g = Matrix::zeros(seq, seq);
        for i in 0..seq {
            for j in 0..seq {
                g.set(i, j, ((i * 7 + j * 3) % 5) as f32 / 5.0 - 0.4);
            }
        }
        span.backward_mask(&g, seq);
        let analytic = span.z.grad.get(0, 0);
        let eps = 1e-3f32;
        let loss = |z: f32| -> f32 {
            let mut s = AdaptiveSpan::new(z, 6.0, 64);
            s.set_z(z);
            s.mask_matrix(seq).hadamard(&g).as_slice().iter().sum()
        };
        let fd = (loss(z0 + eps) - loss(z0 - eps)) / (2.0 * eps);
        assert!(
            (fd - analytic).abs() < 1e-2 * (1.0 + fd.abs()),
            "fd={fd} an={analytic}"
        );
    }

    #[test]
    fn span_penalty_pushes_down_only_active_heads() {
        let mut on = AdaptiveSpan::new(5.0, 4.0, 64);
        let p = on.apply_span_penalty(0.1);
        assert!(p > 0.0);
        assert!(on.z.grad.get(0, 0) > 0.0); // positive grad shrinks z under gradient descent

        let mut off = AdaptiveSpan::new(0.0, 4.0, 64);
        off.set_z(-4.0);
        let p = off.apply_span_penalty(0.1);
        assert_eq!(p, 0.0);
        assert_eq!(off.z.grad.get(0, 0), 0.0);
    }
}
