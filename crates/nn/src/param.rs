//! Trainable parameters: value, gradient, pruning mask, movement scores,
//! and Adam moments in one place.

use edgebert_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A trainable tensor.
///
/// In addition to the value and gradient, a [`Parameter`] can carry:
///
/// * a **pruning mask** (`1.0` keep / `0.0` pruned). Masked entries are
///   forced to zero after every optimizer step so sparsity is preserved
///   during continued fine-tuning;
/// * **movement scores** `S = -Σ_t w_t · g_t` accumulated each step, the
///   importance metric of movement pruning (Sanh et al., the method the
///   paper applies to encoder weights);
/// * **Adam moments** allocated lazily by the optimizer.
///
/// # Example
///
/// ```
/// use edgebert_nn::Parameter;
/// use edgebert_tensor::Matrix;
///
/// let mut p = Parameter::new(Matrix::filled(2, 2, 1.0));
/// p.grad.set(0, 0, 0.5);
/// p.zero_grad();
/// assert_eq!(p.grad.get(0, 0), 0.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Parameter {
    /// Current value.
    pub value: Matrix,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Matrix,
    /// Optional pruning mask: `1.0` = keep, `0.0` = pruned.
    pub mask: Option<Matrix>,
    /// Optional movement-pruning importance scores.
    pub movement_scores: Option<Matrix>,
    /// First Adam moment (allocated lazily).
    pub adam_m: Option<Matrix>,
    /// Second Adam moment (allocated lazily).
    pub adam_v: Option<Matrix>,
    /// When `true`, the optimizer skips this parameter (frozen backbone in
    /// training phase 2).
    pub frozen: bool,
}

impl Parameter {
    /// Wraps a value tensor with a zeroed gradient.
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Self {
            value,
            grad,
            mask: None,
            movement_scores: None,
            adam_m: None,
            adam_v: None,
            frozen: false,
        }
    }

    /// Shape of the parameter.
    pub fn shape(&self) -> (usize, usize) {
        self.value.shape()
    }

    /// Number of scalar weights.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter holds no weights.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        for g in self.grad.as_mut_slice() {
            *g = 0.0;
        }
    }

    /// Accumulates `delta` into the gradient.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn accumulate_grad(&mut self, delta: &Matrix) {
        self.grad.add_assign(delta);
    }

    /// Enables movement-score tracking (allocates a zeroed score tensor).
    pub fn enable_movement_tracking(&mut self) {
        if self.movement_scores.is_none() {
            self.movement_scores = Some(Matrix::zeros(self.value.rows(), self.value.cols()));
        }
    }

    /// Updates movement scores with the current (value, grad) pair:
    /// `S += -w * g`. Call once per optimization step *before* the weight
    /// update, as in movement pruning.
    pub fn update_movement_scores(&mut self) {
        if let Some(scores) = &mut self.movement_scores {
            for ((s, &w), &g) in scores
                .as_mut_slice()
                .iter_mut()
                .zip(self.value.as_slice().iter())
                .zip(self.grad.as_slice().iter())
            {
                *s += -w * g;
            }
        }
    }

    /// Installs a pruning mask and immediately applies it to the value.
    ///
    /// # Panics
    ///
    /// Panics if the mask shape differs from the value shape.
    pub fn set_mask(&mut self, mask: Matrix) {
        assert_eq!(mask.shape(), self.value.shape(), "mask shape mismatch");
        self.mask = Some(mask);
        self.apply_mask();
    }

    /// Re-applies the mask (if any) to the value, forcing pruned weights to
    /// zero. The optimizer calls this after every step.
    pub fn apply_mask(&mut self) {
        if let Some(mask) = &self.mask {
            for (v, &m) in self.value.as_mut_slice().iter_mut().zip(mask.as_slice()) {
                if m == 0.0 {
                    *v = 0.0;
                }
            }
        }
    }

    /// Current sparsity of the value tensor in `[0, 1]`.
    pub fn sparsity(&self) -> f32 {
        self.value.sparsity()
    }
}

impl From<Matrix> for Parameter {
    fn from(m: Matrix) -> Self {
        Parameter::new(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_has_zero_grad() {
        let p = Parameter::new(Matrix::filled(3, 2, 2.0));
        assert_eq!(p.shape(), (3, 2));
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
        assert!(!p.frozen);
    }

    #[test]
    fn accumulate_and_zero() {
        let mut p = Parameter::new(Matrix::zeros(1, 2));
        p.accumulate_grad(&Matrix::from_rows(&[&[1.0, 2.0]]));
        p.accumulate_grad(&Matrix::from_rows(&[&[0.5, -1.0]]));
        assert_eq!(p.grad, Matrix::from_rows(&[&[1.5, 1.0]]));
        p.zero_grad();
        assert_eq!(p.grad, Matrix::zeros(1, 2));
    }

    #[test]
    fn movement_scores_accumulate_negative_w_dot_g() {
        let mut p = Parameter::new(Matrix::from_rows(&[&[2.0, -1.0]]));
        p.enable_movement_tracking();
        p.grad = Matrix::from_rows(&[&[0.5, 0.5]]);
        p.update_movement_scores();
        let s = p.movement_scores.as_ref().unwrap();
        // S = -w*g: weight moving toward zero (w>0, g>0) gets negative score.
        assert_eq!(s.get(0, 0), -1.0);
        assert_eq!(s.get(0, 1), 0.5);
    }

    #[test]
    fn mask_forces_zeros() {
        let mut p = Parameter::new(Matrix::from_rows(&[&[1.0, 2.0, 3.0]]));
        p.set_mask(Matrix::from_rows(&[&[1.0, 0.0, 1.0]]));
        assert_eq!(p.value, Matrix::from_rows(&[&[1.0, 0.0, 3.0]]));
        // Simulate an optimizer writing into a pruned slot.
        p.value.set(0, 1, 9.0);
        p.apply_mask();
        assert_eq!(p.value.get(0, 1), 0.0);
        assert!((p.sparsity() - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "mask shape mismatch")]
    fn mask_shape_is_checked() {
        let mut p = Parameter::new(Matrix::zeros(2, 2));
        p.set_mask(Matrix::zeros(1, 2));
    }
}
