//! Multi-head self-attention with adaptive span masking.
//!
//! Mirrors the paper's Fig. 3/Fig. 5 datapath: per-head Q/K/V projections,
//! scaled dot-product scores, stable softmax, **post-softmax element-wise
//! multiplication with the learned span mask** (Algorithm 3), context
//! matmul, concat, and output projection. Heads whose span mask is
//! identically zero produce a zero context vector — exactly the case the
//! accelerator's SFU controller detects to skip the whole head.

use crate::linear::{Linear, LinearCache};
use crate::param::Parameter;
use crate::span::AdaptiveSpan;
use edgebert_tensor::kernels::softmax_inplace;
use edgebert_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

/// Multi-head self-attention block.
///
/// # Example
///
/// ```
/// use edgebert_nn::MultiHeadAttention;
/// use edgebert_tensor::{Matrix, Rng};
///
/// let mut rng = Rng::seed_from(0);
/// let mha = MultiHeadAttention::new(32, 4, 16, &mut rng);
/// let x = Matrix::zeros(8, 32);
/// let (y, _) = mha.forward(&x);
/// assert_eq!(y.shape(), (8, 32));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiHeadAttention {
    /// Query projection (hidden → hidden).
    pub wq: Linear,
    /// Key projection.
    pub wk: Linear,
    /// Value projection.
    pub wv: Linear,
    /// Output projection after head concat.
    pub wo: Linear,
    /// One learnable span per head.
    pub spans: Vec<AdaptiveSpan>,
    num_heads: usize,
    head_dim: usize,
}

/// Cached activations for [`MultiHeadAttention::backward`].
#[derive(Debug, Clone)]
pub struct AttentionCache {
    q: Matrix,
    k: Matrix,
    v: Matrix,
    /// Per-head post-softmax probabilities (before the span mask).
    probs: Vec<Matrix>,
    /// Per-head span-mask matrices.
    masks: Vec<Matrix>,
    cq: LinearCache,
    ck: LinearCache,
    cv: LinearCache,
    co: LinearCache,
    seq_len: usize,
}

impl MultiHeadAttention {
    /// Creates an attention block with `num_heads` heads over a `hidden`
    /// wide stream. Spans are initialised to `max_span` (fully open) so
    /// fine-tuning starts from the dense model.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not divisible by `num_heads`.
    pub fn new(hidden: usize, num_heads: usize, max_span: usize, rng: &mut Rng) -> Self {
        assert_eq!(
            hidden % num_heads,
            0,
            "hidden must divide evenly into heads"
        );
        let ramp = (max_span as f32 / 4.0).max(1.0);
        Self {
            wq: Linear::new(hidden, hidden, rng),
            wk: Linear::new(hidden, hidden, rng),
            wv: Linear::new(hidden, hidden, rng),
            wo: Linear::new(hidden, hidden, rng),
            spans: (0..num_heads)
                .map(|_| AdaptiveSpan::new(max_span as f32, ramp, max_span))
                .collect(),
            num_heads,
            head_dim: hidden / num_heads,
        }
    }

    /// Number of attention heads.
    pub fn num_heads(&self) -> usize {
        self.num_heads
    }

    /// Per-head feature width.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Hidden width (`num_heads * head_dim`).
    pub fn hidden(&self) -> usize {
        self.num_heads * self.head_dim
    }

    /// Number of heads whose span mask is identically zero (skippable).
    pub fn heads_off(&self) -> usize {
        self.spans.iter().filter(|s| s.is_off()).count()
    }

    /// Effective span per head, as reported in the paper's Table 1.
    pub fn head_spans(&self) -> Vec<f32> {
        self.spans.iter().map(|s| s.effective_span()).collect()
    }

    /// Forward pass over a `seq_len x hidden` input.
    pub fn forward(&self, x: &Matrix) -> (Matrix, AttentionCache) {
        let seq_len = x.rows();
        let (q, cq) = self.wq.forward(x);
        let (k, ck) = self.wk.forward(x);
        let (v, cv) = self.wv.forward(x);
        let scale = 1.0 / (self.head_dim as f32).sqrt();

        let mut concat = Matrix::zeros(seq_len, self.hidden());
        let mut probs = Vec::with_capacity(self.num_heads);
        let mut masks = Vec::with_capacity(self.num_heads);
        for h in 0..self.num_heads {
            let off = h * self.head_dim;
            let mask = self.spans[h].mask_matrix(seq_len);
            if self.spans[h].is_off() {
                // Whole head skipped: zero context (concat already zeroed).
                probs.push(Matrix::zeros(seq_len, seq_len));
                masks.push(mask);
                continue;
            }
            let qh = q.slice_cols(off, self.head_dim);
            let kh = k.slice_cols(off, self.head_dim);
            let vh = v.slice_cols(off, self.head_dim);
            let mut scores = qh.matmul_nt(&kh);
            scores.scale_assign(scale);
            for r in 0..seq_len {
                softmax_inplace(scores.row_mut(r));
            }
            let masked = scores.hadamard(&mask);
            let ctx = masked.matmul(&vh);
            concat.set_cols(off, &ctx);
            probs.push(scores);
            masks.push(mask);
        }
        let (out, co) = self.wo.forward(&concat);
        (
            out,
            AttentionCache {
                q,
                k,
                v,
                probs,
                masks,
                cq,
                ck,
                cv,
                co,
                seq_len,
            },
        )
    }

    /// Inference-only forward (drops the cache).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        self.forward(x).0
    }

    /// Backward pass; accumulates all parameter gradients (including the
    /// per-head span parameters) and returns `dL/dx`.
    pub fn backward(&mut self, cache: &AttentionCache, grad_out: &Matrix) -> Matrix {
        let seq_len = cache.seq_len;
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        // Through the output projection.
        let d_concat = self.wo.backward(&cache.co, grad_out);

        let mut dq = Matrix::zeros(seq_len, self.hidden());
        let mut dk = Matrix::zeros(seq_len, self.hidden());
        let mut dv = Matrix::zeros(seq_len, self.hidden());

        for h in 0..self.num_heads {
            let off = h * self.head_dim;
            if self.spans[h].is_off() {
                // No gradient flows through a fully-off head (mask = 0 and
                // dm/dz = 0 on the flat region).
                continue;
            }
            let d_ctx = d_concat.slice_cols(off, self.head_dim);
            let kh = cache.k.slice_cols(off, self.head_dim);
            let qh = cache.q.slice_cols(off, self.head_dim);
            let vh = cache.v.slice_cols(off, self.head_dim);
            let probs = &cache.probs[h];
            let mask = &cache.masks[h];

            let masked = probs.hadamard(mask);
            // ctx = masked * V  =>  d_masked = d_ctx * V^T ; dV = masked^T * d_ctx
            let d_masked = d_ctx.matmul_nt(&vh);
            let dvh = masked.matmul_tn(&d_ctx);
            dv.set_cols(off, &dvh);

            // masked = probs ⊙ mask
            let d_probs = d_masked.hadamard(mask);
            let d_mask = d_masked.hadamard(probs);
            self.spans[h].backward_mask(&d_mask, seq_len);

            // Softmax backward per row: ds = p ⊙ (g - (g·p))
            let mut d_scores = Matrix::zeros(seq_len, seq_len);
            for r in 0..seq_len {
                let p = probs.row(r);
                let g = d_probs.row(r);
                let dot: f32 = p.iter().zip(g.iter()).map(|(&a, &b)| a * b).sum();
                for c in 0..seq_len {
                    d_scores.set(r, c, p[c] * (g[c] - dot));
                }
            }
            d_scores.scale_assign(scale);

            // scores = Qh * Kh^T => dQh = d_scores * Kh ; dKh = d_scores^T * Qh
            let dqh = d_scores.matmul(&kh);
            let dkh = d_scores.matmul_tn(&qh);
            dq.set_cols(off, &dqh);
            dk.set_cols(off, &dkh);
        }

        let dxq = self.wq.backward(&cache.cq, &dq);
        let dxk = self.wk.backward(&cache.ck, &dk);
        let dxv = self.wv.backward(&cache.cv, &dv);
        let mut dx = dxq;
        dx.add_assign(&dxk);
        dx.add_assign(&dxv);
        dx
    }

    /// Adds the span penalty to all heads; returns the total penalty value.
    pub fn apply_span_penalty(&mut self, lambda: f32) -> f32 {
        self.spans
            .iter_mut()
            .map(|s| s.apply_span_penalty(lambda))
            .sum()
    }

    /// Clears gradients on all parameters.
    pub fn zero_grad(&mut self) {
        self.wq.zero_grad();
        self.wk.zero_grad();
        self.wv.zero_grad();
        self.wo.zero_grad();
        for s in &mut self.spans {
            s.z.zero_grad();
        }
    }

    /// Mutable references to all parameters (projections + spans).
    pub fn params_mut(&mut self) -> Vec<&mut Parameter> {
        let mut ps = Vec::new();
        ps.extend(self.wq.params_mut());
        ps.extend(self.wk.params_mut());
        ps.extend(self.wv.params_mut());
        ps.extend(self.wo.params_mut());
        for s in &mut self.spans {
            ps.push(&mut s.z);
        }
        ps
    }

    /// Re-clamps all span parameters; call after each optimizer step.
    pub fn clamp_spans(&mut self) {
        for s in &mut self.spans {
            s.clamp();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_attention(seed: u64) -> (MultiHeadAttention, Matrix) {
        let mut rng = Rng::seed_from(seed);
        let mut mha = MultiHeadAttention::new(8, 2, 16, &mut rng);
        // Give the two heads partial spans so mask gradients are active.
        mha.spans[0].set_z(2.0);
        mha.spans[1].set_z(1.0);
        let x = rng.gaussian_matrix(5, 8, 1.0);
        (mha, x)
    }

    #[test]
    fn forward_shapes_and_off_head_zeroing() {
        let mut rng = Rng::seed_from(1);
        let mut mha = MultiHeadAttention::new(12, 3, 16, &mut rng);
        mha.spans[1].set_z(-1000.0); // head 1 off
        let x = rng.gaussian_matrix(6, 12, 1.0);
        let (y, cache) = mha.forward(&x);
        assert_eq!(y.shape(), (6, 12));
        assert_eq!(mha.heads_off(), 1);
        assert_eq!(cache.probs[1].nnz(), 0);
    }

    #[test]
    fn all_heads_off_gives_bias_only_output() {
        let mut rng = Rng::seed_from(2);
        let mut mha = MultiHeadAttention::new(8, 2, 16, &mut rng);
        for s in &mut mha.spans {
            s.set_z(-1000.0);
        }
        let x = rng.gaussian_matrix(4, 8, 1.0);
        let y = mha.infer(&x);
        // Output = wo(0) = bias broadcast; every row identical.
        for r in 1..4 {
            assert_eq!(y.row(r), y.row(0));
        }
    }

    #[test]
    fn backward_matches_finite_difference_on_weights() {
        let (mut mha, x) = tiny_attention(3);
        let mut rng = Rng::seed_from(99);
        let coeff = rng.gaussian_matrix(5, 8, 1.0);
        let loss = |m: &MultiHeadAttention, x: &Matrix| -> f32 {
            m.infer(x).hadamard(&coeff).as_slice().iter().sum()
        };
        let (_, cache) = mha.forward(&x);
        let dx = mha.backward(&cache, &coeff);

        let eps = 1e-2f32;
        // wq weight gradient.
        let orig = mha.wq.weight.value.get(1, 2);
        mha.wq.weight.value.set(1, 2, orig + eps);
        let lp = loss(&mha, &x);
        mha.wq.weight.value.set(1, 2, orig - eps);
        let lm = loss(&mha, &x);
        mha.wq.weight.value.set(1, 2, orig);
        let fd = (lp - lm) / (2.0 * eps);
        let an = mha.wq.weight.grad.get(1, 2);
        assert!(
            (fd - an).abs() < 5e-2 * (1.0 + fd.abs()),
            "wq fd={fd} an={an}"
        );

        // wv weight gradient.
        let orig = mha.wv.weight.value.get(0, 5);
        mha.wv.weight.value.set(0, 5, orig + eps);
        let lp = loss(&mha, &x);
        mha.wv.weight.value.set(0, 5, orig - eps);
        let lm = loss(&mha, &x);
        mha.wv.weight.value.set(0, 5, orig);
        let fd = (lp - lm) / (2.0 * eps);
        let an = mha.wv.weight.grad.get(0, 5);
        assert!(
            (fd - an).abs() < 5e-2 * (1.0 + fd.abs()),
            "wv fd={fd} an={an}"
        );

        // Input gradient.
        let mut x2 = x.clone();
        let orig = x2.get(2, 3);
        x2.set(2, 3, orig + eps);
        let lp = loss(&mha, &x2);
        x2.set(2, 3, orig - eps);
        let lm = loss(&mha, &x2);
        let fd = (lp - lm) / (2.0 * eps);
        let an = dx.get(2, 3);
        assert!(
            (fd - an).abs() < 5e-2 * (1.0 + fd.abs()),
            "dx fd={fd} an={an}"
        );
    }

    #[test]
    fn span_gradient_matches_finite_difference() {
        let (mut mha, x) = tiny_attention(5);
        let mut rng = Rng::seed_from(123);
        let coeff = rng.gaussian_matrix(5, 8, 1.0);
        let (_, cache) = mha.forward(&x);
        mha.backward(&cache, &coeff);
        let analytic = mha.spans[0].z.grad.get(0, 0);

        let eps = 5e-2f32;
        let z0 = mha.spans[0].z_value();
        mha.spans[0].set_z(z0 + eps);
        let lp: f32 = mha.infer(&x).hadamard(&coeff).as_slice().iter().sum();
        mha.spans[0].set_z(z0 - eps);
        let lm: f32 = mha.infer(&x).hadamard(&coeff).as_slice().iter().sum();
        mha.spans[0].set_z(z0);
        let fd = (lp - lm) / (2.0 * eps);
        assert!(
            (fd - analytic).abs() < 0.1 * (1.0 + fd.abs()),
            "span fd={fd} an={analytic}"
        );
    }

    #[test]
    fn params_mut_exposes_projections_and_spans() {
        let (mut mha, _) = tiny_attention(6);
        // 4 linears x 2 params + 2 spans
        assert_eq!(mha.params_mut().len(), 10);
    }
}
