//! A small ReLU multi-layer perceptron.
//!
//! EdgeBERT's early-exit predictor is "a ReLU-activated five-layer
//! perceptron neural network with 64 cells in each of the hidden layers"
//! (paper §5.1). [`Mlp`] is that network, plus the generic training loop
//! used to fit it on entropy trajectories.

use crate::activation::{relu_backward, relu_forward};
use crate::linear::{Linear, LinearCache};
use crate::param::Parameter;
use edgebert_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

/// A fully-connected ReLU network with arbitrary layer sizes.
///
/// # Example
///
/// ```
/// use edgebert_nn::Mlp;
/// use edgebert_tensor::{Matrix, Rng};
///
/// let mut rng = Rng::seed_from(0);
/// // The paper's EE predictor: 1 input, three 64-wide hidden layers, 12 outputs.
/// let mlp = Mlp::new(&[1, 64, 64, 64, 12], &mut rng);
/// let y = mlp.infer(&Matrix::zeros(2, 1));
/// assert_eq!(y.shape(), (2, 12));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
}

/// Saved activations for [`Mlp::backward`].
#[derive(Debug, Clone)]
pub struct MlpCache {
    linear_caches: Vec<LinearCache>,
    relu_caches: Vec<Matrix>,
}

impl Mlp {
    /// Creates an MLP with the given layer widths (`sizes[0]` inputs,
    /// `sizes.last()` outputs). ReLU is applied between layers but not
    /// after the final one.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new(sizes: &[usize], rng: &mut Rng) -> Self {
        assert!(
            sizes.len() >= 2,
            "an MLP needs at least input and output sizes"
        );
        let layers = sizes
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Self { layers }
    }

    /// Number of affine layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.layers[0].in_features()
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.layers[self.layers.len() - 1].out_features()
    }

    /// Forward pass returning output and cache.
    pub fn forward(&self, x: &Matrix) -> (Matrix, MlpCache) {
        let mut linear_caches = Vec::with_capacity(self.layers.len());
        let mut relu_caches = Vec::with_capacity(self.layers.len() - 1);
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let (y, c) = layer.forward(&h);
            linear_caches.push(c);
            if i + 1 < self.layers.len() {
                let (a, rc) = relu_forward(&y);
                relu_caches.push(rc);
                h = a;
            } else {
                h = y;
            }
        }
        (
            h,
            MlpCache {
                linear_caches,
                relu_caches,
            },
        )
    }

    /// Inference-only forward.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.infer(&h);
            if i + 1 < self.layers.len() {
                h.map_inplace(|v| v.max(0.0));
            }
        }
        h
    }

    /// Backward pass; accumulates parameter grads and returns `dx`.
    pub fn backward(&mut self, cache: &MlpCache, grad_out: &Matrix) -> Matrix {
        let mut g = grad_out.clone();
        for i in (0..self.layers.len()).rev() {
            if i + 1 < self.layers.len() {
                g = relu_backward(&cache.relu_caches[i], &g);
            }
            g = self.layers[i].backward(&cache.linear_caches[i], &g);
        }
        g
    }

    /// Clears all gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    /// Mutable parameter references for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Parameter> {
        let mut ps = Vec::new();
        for l in &mut self.layers {
            ps.extend(l.params_mut());
        }
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::losses::cross_entropy;
    use crate::optim::AdamOptimizer;

    #[test]
    fn shapes_and_depth() {
        let mut rng = Rng::seed_from(1);
        let mlp = Mlp::new(&[3, 8, 8, 2], &mut rng);
        assert_eq!(mlp.depth(), 3);
        assert_eq!(mlp.in_features(), 3);
        assert_eq!(mlp.out_features(), 2);
        let y = mlp.infer(&Matrix::zeros(5, 3));
        assert_eq!(y.shape(), (5, 2));
    }

    #[test]
    fn forward_and_infer_agree() {
        let mut rng = Rng::seed_from(2);
        let mlp = Mlp::new(&[4, 6, 3], &mut rng);
        let x = rng.gaussian_matrix(3, 4, 1.0);
        let (y, _) = mlp.forward(&x);
        assert_eq!(mlp.infer(&x), y);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = Rng::seed_from(3);
        let mut mlp = Mlp::new(&[3, 5, 2], &mut rng);
        let x = rng.gaussian_matrix(4, 3, 1.0);
        let coeff = rng.gaussian_matrix(4, 2, 1.0);
        let loss =
            |m: &Mlp, x: &Matrix| -> f32 { m.infer(x).hadamard(&coeff).as_slice().iter().sum() };
        let (_, cache) = mlp.forward(&x);
        let dx = mlp.backward(&cache, &coeff);
        let eps = 1e-2f32;
        let mut x2 = x.clone();
        let orig = x2.get(0, 1);
        x2.set(0, 1, orig + eps);
        let lp = loss(&mlp, &x2);
        x2.set(0, 1, orig - eps);
        let lm = loss(&mlp, &x2);
        let fd = (lp - lm) / (2.0 * eps);
        assert!((fd - dx.get(0, 1)).abs() < 5e-2 * (1.0 + fd.abs()));
    }

    #[test]
    fn mlp_learns_a_simple_classification() {
        // Separable 2-class problem: sign of the first input.
        let mut rng = Rng::seed_from(4);
        let mut mlp = Mlp::new(&[2, 16, 2], &mut rng);
        let mut opt = AdamOptimizer::new(0.02);
        let n = 64;
        let mut xs = Matrix::zeros(n, 2);
        let mut ys = Vec::with_capacity(n);
        for r in 0..n {
            let a = rng.gaussian();
            let b = rng.gaussian();
            xs.set(r, 0, a);
            xs.set(r, 1, b);
            ys.push(if a > 0.0 { 1 } else { 0 });
        }
        for _ in 0..200 {
            mlp.zero_grad();
            let (logits, cache) = mlp.forward(&xs);
            let (_, grad) = cross_entropy(&logits, &ys);
            mlp.backward(&cache, &grad);
            opt.step(&mut mlp.params_mut());
        }
        let acc = crate::losses::accuracy(&mlp.infer(&xs), &ys);
        assert!(acc > 0.95, "accuracy {acc}");
    }
}
