//! Element-wise activations with cached backward passes.

use edgebert_tensor::kernels::{gelu, gelu_grad, relu};
use edgebert_tensor::Matrix;

/// GELU applied element-wise; returns `(output, cache)` where the cache is
/// the pre-activation input.
pub fn gelu_forward(x: &Matrix) -> (Matrix, Matrix) {
    (x.map(gelu), x.clone())
}

/// Backward of [`gelu_forward`]: `dx = dy * gelu'(x)`.
pub fn gelu_backward(cache: &Matrix, grad_out: &Matrix) -> Matrix {
    grad_out.hadamard(&cache.map(gelu_grad))
}

/// ReLU applied element-wise; returns `(output, cache)`.
pub fn relu_forward(x: &Matrix) -> (Matrix, Matrix) {
    (x.map(relu), x.clone())
}

/// Backward of [`relu_forward`].
pub fn relu_backward(cache: &Matrix, grad_out: &Matrix) -> Matrix {
    let mut dx = grad_out.clone();
    for (d, &x) in dx.as_mut_slice().iter_mut().zip(cache.as_slice()) {
        if x <= 0.0 {
            *d = 0.0;
        }
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgebert_tensor::Rng;

    #[test]
    fn relu_zeroes_negatives() {
        let x = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        let (y, cache) = relu_forward(&x);
        assert_eq!(y, Matrix::from_rows(&[&[0.0, 0.0, 2.0]]));
        let g = Matrix::from_rows(&[&[1.0, 1.0, 1.0]]);
        let dx = relu_backward(&cache, &g);
        assert_eq!(dx, Matrix::from_rows(&[&[0.0, 0.0, 1.0]]));
    }

    #[test]
    fn gelu_backward_matches_fd() {
        let mut rng = Rng::seed_from(3);
        let x = rng.gaussian_matrix(2, 4, 1.0);
        let g = rng.gaussian_matrix(2, 4, 1.0);
        let (_, cache) = gelu_forward(&x);
        let dx = gelu_backward(&cache, &g);
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..4 {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let lp: f32 = gelu_forward(&xp).0.hadamard(&g).as_slice().iter().sum();
                let lm: f32 = gelu_forward(&xm).0.hadamard(&g).as_slice().iter().sum();
                let fd = (lp - lm) / (2.0 * eps);
                assert!((fd - dx.get(r, c)).abs() < 2e-2 * (1.0 + fd.abs()));
            }
        }
    }
}
