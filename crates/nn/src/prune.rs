//! Network pruning: magnitude and movement pruning (paper §3.3).
//!
//! * **Magnitude pruning** (Han et al.) removes the smallest-|w| weights.
//!   EdgeBERT always applies it to the embedding layer so the pruned
//!   pattern is shared across NLP tasks (multi-task data reuse in eNVM).
//! * **Movement pruning** (Sanh et al.) removes weights whose accumulated
//!   movement score `S = -Σ w·g` is lowest, i.e. weights moving *toward*
//!   zero during fine-tuning. The paper prefers it for encoder weights in
//!   high-sparsity regimes.
//!
//! Both pruners ramp sparsity with the cubic schedule of Zhu & Gupta.

use crate::param::Parameter;
use edgebert_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Which pruning criterion to use for the encoder weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PruneMethod {
    /// Keep the largest-magnitude weights.
    Magnitude,
    /// Keep the weights with the highest movement scores.
    Movement,
}

/// Cubic sparsity ramp: `s(t) = s_f * (1 - (1 - t/T)^3)`, clamped to
/// `[0, s_f]`.
///
/// # Example
///
/// ```
/// use edgebert_nn::prune::sparsity_schedule;
/// assert_eq!(sparsity_schedule(0, 100, 0.8), 0.0);
/// assert!((sparsity_schedule(100, 100, 0.8) - 0.8).abs() < 1e-6);
/// ```
pub fn sparsity_schedule(step: usize, total_steps: usize, final_sparsity: f32) -> f32 {
    if total_steps == 0 {
        return final_sparsity;
    }
    let t = (step as f32 / total_steps as f32).clamp(0.0, 1.0);
    final_sparsity * (1.0 - (1.0 - t).powi(3))
}

/// Builds a keep-mask that retains the `1 - sparsity` fraction of entries
/// with the highest `score`, breaking ties arbitrarily but
/// deterministically.
///
/// # Panics
///
/// Panics if `sparsity` is outside `[0, 1]`.
pub fn topk_mask(scores: &Matrix, sparsity: f32) -> Matrix {
    assert!(
        (0.0..=1.0).contains(&sparsity),
        "sparsity {sparsity} out of range"
    );
    let n = scores.len();
    let prune_count = ((n as f32) * sparsity).round() as usize;
    let keep_count = n - prune_count;
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        scores.as_slice()[b]
            .total_cmp(&scores.as_slice()[a])
            .then(a.cmp(&b))
    });
    let mut mask = Matrix::zeros(scores.rows(), scores.cols());
    for &i in idx.iter().take(keep_count) {
        mask.as_mut_slice()[i] = 1.0;
    }
    mask
}

/// Builds a magnitude-pruning mask for a weight tensor.
pub fn magnitude_mask(weights: &Matrix, sparsity: f32) -> Matrix {
    topk_mask(&weights.map(f32::abs), sparsity)
}

/// A pruner that ramps a parameter to a target sparsity over the course of
/// fine-tuning.
///
/// # Example
///
/// ```
/// use edgebert_nn::prune::{Pruner, PruneMethod};
/// use edgebert_nn::Parameter;
/// use edgebert_tensor::{Matrix, Rng};
///
/// let mut rng = Rng::seed_from(0);
/// let mut p = Parameter::new(rng.gaussian_matrix(8, 8, 1.0));
/// let pruner = Pruner::new(PruneMethod::Magnitude, 0.5, 10);
/// pruner.apply(&mut p, 10);
/// assert!((p.sparsity() - 0.5).abs() < 0.02);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pruner {
    method: PruneMethod,
    final_sparsity: f32,
    total_steps: usize,
}

impl Pruner {
    /// Creates a pruner.
    ///
    /// # Panics
    ///
    /// Panics if `final_sparsity` is outside `[0, 1)`.
    pub fn new(method: PruneMethod, final_sparsity: f32, total_steps: usize) -> Self {
        assert!(
            (0.0..1.0).contains(&final_sparsity),
            "final sparsity {final_sparsity} out of range"
        );
        Self {
            method,
            final_sparsity,
            total_steps,
        }
    }

    /// The pruning criterion.
    pub fn method(&self) -> PruneMethod {
        self.method
    }

    /// Target sparsity at the end of the schedule.
    pub fn final_sparsity(&self) -> f32 {
        self.final_sparsity
    }

    /// Scheduled sparsity at `step`.
    pub fn sparsity_at(&self, step: usize) -> f32 {
        sparsity_schedule(step, self.total_steps, self.final_sparsity)
    }

    /// Recomputes and installs the pruning mask for the current step.
    ///
    /// For [`PruneMethod::Movement`], the parameter must have movement
    /// tracking enabled ([`Parameter::enable_movement_tracking`]); the
    /// accumulated scores decide survival. For magnitude pruning, |w|
    /// decides.
    ///
    /// # Panics
    ///
    /// Panics if movement pruning is requested on a parameter without
    /// movement scores.
    pub fn apply(&self, param: &mut Parameter, step: usize) {
        let s = self.sparsity_at(step);
        let mask = match self.method {
            PruneMethod::Magnitude => magnitude_mask(&param.value, s),
            PruneMethod::Movement => {
                let scores = param
                    .movement_scores
                    .as_ref()
                    .expect("movement pruning requires movement tracking");
                topk_mask(scores, s)
            }
        };
        param.set_mask(mask);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgebert_tensor::Rng;

    #[test]
    fn schedule_monotone_and_bounded() {
        let mut last = -1.0f32;
        for step in 0..=50 {
            let s = sparsity_schedule(step, 50, 0.7);
            assert!(s >= last);
            assert!(s <= 0.7 + 1e-6);
            last = s;
        }
        assert_eq!(sparsity_schedule(0, 50, 0.7), 0.0);
        assert!((sparsity_schedule(50, 50, 0.7) - 0.7).abs() < 1e-6);
        // Past-the-end steps stay at final sparsity.
        assert!((sparsity_schedule(99, 50, 0.7) - 0.7).abs() < 1e-6);
    }

    #[test]
    fn magnitude_mask_keeps_largest() {
        let w = Matrix::from_rows(&[&[0.1, -5.0, 0.01, 2.0]]);
        let mask = magnitude_mask(&w, 0.5);
        assert_eq!(mask, Matrix::from_rows(&[&[0.0, 1.0, 0.0, 1.0]]));
    }

    #[test]
    fn topk_mask_exact_sparsity() {
        let mut rng = Rng::seed_from(5);
        let scores = rng.gaussian_matrix(32, 32, 1.0);
        for &s in &[0.0f32, 0.25, 0.5, 0.9] {
            let mask = topk_mask(&scores, s);
            let actual = mask.sparsity();
            assert!(
                (actual - s).abs() < 1.5 / 1024.0,
                "requested {s} got {actual}"
            );
        }
    }

    #[test]
    fn movement_pruner_removes_weights_moving_to_zero() {
        let mut p = Parameter::new(Matrix::from_rows(&[&[1.0, 1.0, 1.0, 1.0]]));
        p.enable_movement_tracking();
        // Two weights get gradients pushing them toward zero (w>0, g>0 →
        // score -w·g < 0), two get gradients growing them.
        p.grad = Matrix::from_rows(&[&[0.5, 0.5, -0.5, -0.5]]);
        p.update_movement_scores();
        let pruner = Pruner::new(PruneMethod::Movement, 0.5, 1);
        pruner.apply(&mut p, 1);
        assert_eq!(p.value, Matrix::from_rows(&[&[0.0, 0.0, 1.0, 1.0]]));
    }

    #[test]
    fn magnitude_vs_movement_differ_on_shrinking_large_weights() {
        // A large weight that is shrinking should be kept by magnitude
        // pruning but dropped by movement pruning.
        let mut p = Parameter::new(Matrix::from_rows(&[&[10.0, 0.2]]));
        p.enable_movement_tracking();
        p.grad = Matrix::from_rows(&[&[1.0, -1.0]]); // w0 shrinking, w1 growing
        p.update_movement_scores();

        let mag = magnitude_mask(&p.value, 0.5);
        assert_eq!(mag, Matrix::from_rows(&[&[1.0, 0.0]]));

        let mov = topk_mask(p.movement_scores.as_ref().unwrap(), 0.5);
        assert_eq!(mov, Matrix::from_rows(&[&[0.0, 1.0]]));
    }

    #[test]
    #[should_panic(expected = "movement pruning requires movement tracking")]
    fn movement_without_tracking_panics() {
        let mut p = Parameter::new(Matrix::zeros(2, 2));
        Pruner::new(PruneMethod::Movement, 0.5, 1).apply(&mut p, 1);
    }
}
