//! Manual-backprop neural-network substrate for the EdgeBERT reproduction.
//!
//! The paper's training procedure (Fig. 4) fine-tunes an ALBERT model with
//! knowledge distillation, *movement pruning*, and *adaptive attention
//! span* learning, then freezes the backbone and trains highway off-ramps.
//! All of those are training-time algorithms, so this crate implements a
//! small but complete training stack from scratch:
//!
//! * [`Parameter`] — a tensor with gradient, optional pruning mask,
//!   movement-pruning importance scores, and Adam moments.
//! * [`Linear`], [`LayerNorm`], activations — forward passes that return a
//!   cache, and backward passes verified against finite differences.
//! * [`MultiHeadAttention`] with the learnable soft span mask of
//!   Sukhbaatar et al. (the mechanism EdgeBERT uses to switch whole heads
//!   off), including the gradient through the mask to the span parameter.
//! * [`losses`] — cross-entropy and distillation (soft-target KL) losses.
//! * [`AdamOptimizer`] / [`SgdOptimizer`].
//! * [`prune`] — magnitude and movement pruning with cubic sparsity
//!   schedules.
//!
//! Everything is deterministic given a seed, and every backward pass has a
//! finite-difference test.

pub mod activation;
pub mod attention;
pub mod encoder;
pub mod ffn;
pub mod linear;
pub mod losses;
pub mod mlp;
pub mod norm;
pub mod optim;
pub mod param;
pub mod prune;
pub mod span;

pub use attention::MultiHeadAttention;
pub use encoder::EncoderLayer;
pub use ffn::FeedForward;
pub use linear::Linear;
pub use mlp::Mlp;
pub use norm::LayerNorm;
pub use optim::{AdamOptimizer, SgdOptimizer};
pub use param::Parameter;
pub use span::AdaptiveSpan;
