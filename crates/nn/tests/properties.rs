//! Property-based tests for the training substrate.

use edgebert_nn::losses::{accuracy, cross_entropy, distillation};
use edgebert_nn::prune::{magnitude_mask, sparsity_schedule, topk_mask};
use edgebert_nn::AdaptiveSpan;
use edgebert_tensor::{Matrix, Rng};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cross_entropy_nonnegative_and_bounded_below_by_confidence(
        logits in prop::collection::vec(-20.0f32..20.0, 2..6),
        target_seed in 0usize..100,
    ) {
        let k = logits.len();
        let target = target_seed % k;
        let m = Matrix::from_vec(1, k, logits.clone());
        let (loss, grad) = cross_entropy(&m, &[target]);
        prop_assert!(loss >= -1e-5);
        // Gradient rows sum to ~0 (softmax minus one-hot).
        let s: f32 = grad.as_slice().iter().sum();
        prop_assert!(s.abs() < 1e-4);
    }

    #[test]
    fn distillation_nonnegative_zero_iff_equal(
        a in prop::collection::vec(-5.0f32..5.0, 3),
        b in prop::collection::vec(-5.0f32..5.0, 3),
        temp in 0.5f32..4.0,
    ) {
        let s = Matrix::from_vec(1, 3, a.clone());
        let t = Matrix::from_vec(1, 3, b.clone());
        let (loss, _) = distillation(&s, &t, temp);
        prop_assert!(loss >= -1e-4);
        let (self_loss, _) = distillation(&s, &s, temp);
        prop_assert!(self_loss.abs() < 1e-5);
    }

    #[test]
    fn sparsity_schedule_monotone_bounded(total in 1usize..1000, target in 0.0f32..0.95) {
        let mut last = -1.0f32;
        for step in (0..=total).step_by((total / 17).max(1)) {
            let s = sparsity_schedule(step, total, target);
            prop_assert!(s >= last - 1e-6);
            prop_assert!((0.0..=target + 1e-6).contains(&s));
            last = s;
        }
    }

    #[test]
    fn topk_mask_hits_requested_sparsity(seed in 0u64..500, sparsity in 0.0f32..1.0) {
        let mut rng = Rng::seed_from(seed);
        let scores = rng.gaussian_matrix(16, 16, 1.0);
        let mask = topk_mask(&scores, sparsity);
        let achieved = mask.sparsity();
        prop_assert!((achieved - sparsity).abs() <= 1.0 / 256.0 + 1e-6);
    }

    #[test]
    fn magnitude_mask_keeps_the_largest(seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let w = rng.gaussian_matrix(8, 8, 1.0);
        let mask = magnitude_mask(&w, 0.5);
        // Every kept weight is at least as large as every pruned weight.
        let mut kept_min = f32::INFINITY;
        let mut pruned_max: f32 = 0.0;
        for (v, m) in w.as_slice().iter().zip(mask.as_slice()) {
            if *m == 1.0 {
                kept_min = kept_min.min(v.abs());
            } else {
                pruned_max = pruned_max.max(v.abs());
            }
        }
        prop_assert!(kept_min + 1e-6 >= pruned_max);
    }

    #[test]
    fn span_mask_monotone_in_distance_and_z(z in -4.0f32..32.0, d1 in 0usize..64, d2 in 0usize..64) {
        let mut span = AdaptiveSpan::new(0.0, 8.0, 64);
        span.set_z(z);
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(span.mask_at(lo) + 1e-6 >= span.mask_at(hi));
        prop_assert!((0.0..=1.0).contains(&span.mask_at(d1)));
    }

    #[test]
    fn accuracy_bounded(seed in 0u64..500, n in 1usize..32) {
        let mut rng = Rng::seed_from(seed);
        let logits = rng.gaussian_matrix(n, 3, 1.0);
        let targets: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let acc = accuracy(&logits, &targets);
        prop_assert!((0.0..=1.0).contains(&acc));
    }
}
