//! Op-level cycle and energy models for the PU and SFU datapaths.
//!
//! Cycle counts follow the published microarchitecture:
//!
//! * the PU computes an `n x n x n` matmul tile in `n` cycles on its `n²`
//!   MACs; sparsity does **not** change cycle counts ("the cycle-behavior
//!   of the datapath is not affected by the sparsity of inputs due to the
//!   fixed scheduling", §7.3) — it gates MAC energy instead;
//! * the bitmask decoder/encoder move one `n`-wide vector per cycle;
//! * the SFU's softmax unit makes the three passes of Algorithm 3
//!   (max, log-sum-exp, normalize+mask) over `sfu_width` lanes;
//! * layer-norm makes two passes (statistics, normalize);
//! * the EE assessment unit evaluates the stable entropy (Eq. 3) over the
//!   class logits and indexes the predictor LUT.
//!
//! Energy coefficients are anchored at the paper's n=16 / 0.8 V / 1 GHz
//! design point (Fig. 10: PU datapath 36.9 mW, SFU 9.44 mW, SRAM buffers
//! 33.6 mW) and scale with `V²`.

use crate::config::AcceleratorConfig;
use serde::{Deserialize, Serialize};

/// Nominal reference voltage for the energy coefficients.
pub const V_REF: f32 = 0.80;

/// Which datapath an operation runs on (Fig. 10's breakdown rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// PU vector-MAC matrix multiplication.
    MacMatmul,
    /// PU bitmask decoding (compressed load).
    BitmaskDecode,
    /// PU bitmask encoding (compressed store).
    BitmaskEncode,
    /// SFU softmax + attention-span masking (Algorithm 3).
    SoftmaxMask,
    /// SFU layer normalization.
    LayerNorm,
    /// SFU element-wise addition (residual connections).
    ElemAdd,
    /// SFU early-exit entropy assessment (+ predictor LUT access).
    EarlyExit,
}

impl OpKind {
    /// All kinds in Fig. 10 reporting order.
    pub fn all() -> [OpKind; 7] {
        [
            OpKind::MacMatmul,
            OpKind::BitmaskEncode,
            OpKind::BitmaskDecode,
            OpKind::SoftmaxMask,
            OpKind::LayerNorm,
            OpKind::ElemAdd,
            OpKind::EarlyExit,
        ]
    }

    /// Display label matching the paper's figure.
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::MacMatmul => "MACs",
            OpKind::BitmaskEncode => "Bitmask Encoding",
            OpKind::BitmaskDecode => "Bitmask Decoding",
            OpKind::SoftmaxMask => "Softmax & Attn. Masking",
            OpKind::LayerNorm => "Normalization",
            OpKind::ElemAdd => "Element-Wise Addition",
            OpKind::EarlyExit => "Early Exit Assessment",
        }
    }
}

/// Cost of one operation at the reference voltage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpCost {
    /// Which datapath.
    pub kind: OpKind,
    /// Clock cycles.
    pub cycles: u64,
    /// Energy at the reference voltage (0.8 V), picojoules.
    pub energy_pj: f64,
}

/// Per-cycle energy coefficients for a configuration, at 0.8 V.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// PU datapath energy per fully-active cycle, pJ.
    pub pu_active_pj: f64,
    /// Fraction of the active-MAC energy still burned by a gated MAC
    /// (clocking, control).
    pub gated_fraction: f64,
    /// SRAM streaming energy per PU cycle, pJ.
    pub sram_stream_pj: f64,
    /// Bitmask codec logic energy per cycle (on top of its SRAM traffic).
    pub codec_logic_pj: f64,
    /// SFU datapath energy per active cycle, pJ.
    pub sfu_pj: f64,
}

impl EnergyModel {
    /// Coefficients for a MAC vector size `n`, anchored at the n=16
    /// design point of Fig. 10: 36.9 mW PU, 33.6 mW SRAM, 9.44 mW SFU at
    /// 1 GHz. PU energy scales with the MAC count (n²) times a wiring
    /// factor: operand-broadcast and accumulation wires lengthen with the
    /// array dimension, so per-MAC energy grows superlinearly for large
    /// arrays. This is what makes n=16 the energy-optimal design point in
    /// the paper's Fig. 8 ("the increase in the datapath power
    /// consumption with n = 32 starts to subdue throughput gains"). SRAM
    /// bandwidth (and hence energy/cycle) scales with the vector width.
    pub fn for_config(cfg: &AcceleratorConfig) -> Self {
        let n = cfg.mac_vector_size as f64;
        let wiring = 0.65 + 0.35 * (n / 16.0).powf(1.6);
        Self {
            pu_active_pj: 36.9 * (n * n) / 256.0 * wiring,
            gated_fraction: 0.25,
            sram_stream_pj: 33.6 * n / 16.0,
            codec_logic_pj: 0.08 * n,
            sfu_pj: 9.44,
        }
    }

    /// Effective PU energy per cycle given the fraction of MAC operations
    /// whose operands are non-zero (`active_frac`).
    pub fn pu_cycle_pj(&self, active_frac: f64) -> f64 {
        let af = active_frac.clamp(0.0, 1.0);
        self.pu_active_pj * (af + self.gated_fraction * (1.0 - af))
    }
}

/// Builds op costs for a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpModel {
    /// MAC vector size `n`.
    pub n: usize,
    /// SFU vector width.
    pub sfu_width: usize,
    /// Energy coefficients.
    pub energy: EnergyModel,
}

impl OpModel {
    /// Creates the op model for an accelerator configuration.
    pub fn new(cfg: &AcceleratorConfig) -> Self {
        Self {
            n: cfg.mac_vector_size,
            sfu_width: cfg.sfu_width,
            energy: EnergyModel::for_config(cfg),
        }
    }

    fn tiles(&self, m: usize, k: usize, n_out: usize) -> u64 {
        let t = self.n;
        (m.div_ceil(t) * k.div_ceil(t) * n_out.div_ceil(t)) as u64
    }

    /// An `(m x k) · (k x n_out)` matrix multiplication with operand
    /// densities `d_in`, `d_w` (used for energy gating only; cycles are
    /// density-independent).
    pub fn matmul(&self, m: usize, k: usize, n_out: usize, d_in: f64, d_w: f64) -> OpCost {
        let cycles = self.tiles(m, k, n_out) * self.n as u64;
        let active = (d_in * d_w).clamp(0.0, 1.0);
        // SRAM traffic shrinks with density: only non-zero payloads are
        // fetched from the compressed buffers (floor models mask traffic
        // and control).
        let sram_scale = ((d_in + d_w) / 2.0).clamp(0.25, 1.0);
        let per_cycle = self.energy.pu_cycle_pj(active) + self.energy.sram_stream_pj * sram_scale;
        OpCost {
            kind: OpKind::MacMatmul,
            cycles,
            energy_pj: cycles as f64 * per_cycle,
        }
    }

    /// Bitmask decode of an `r x c` logical matrix (one n-vector/cycle).
    pub fn decode(&self, r: usize, c: usize) -> OpCost {
        let cycles = ((r * c).div_ceil(self.n)) as u64;
        let per_cycle = 0.35 * self.energy.sram_stream_pj + self.energy.codec_logic_pj;
        OpCost {
            kind: OpKind::BitmaskDecode,
            cycles,
            energy_pj: cycles as f64 * per_cycle,
        }
    }

    /// Bitmask decode of weight tiles. Weight streams are double-buffered
    /// and prefetched while the previous tile computes, so only half the
    /// decode cycles land on the critical path (this matches the ~3.2%
    /// decode latency share of Fig. 10a); energy is charged in full.
    pub fn decode_weights(&self, r: usize, c: usize) -> OpCost {
        let full = self.decode(r, c);
        OpCost {
            kind: OpKind::BitmaskDecode,
            cycles: full.cycles / 2,
            energy_pj: full.energy_pj,
        }
    }

    /// Bitmask encode of an `r x c` output matrix.
    pub fn encode(&self, r: usize, c: usize) -> OpCost {
        let cycles = ((r * c).div_ceil(self.n)) as u64;
        let per_cycle = 0.35 * self.energy.sram_stream_pj + self.energy.codec_logic_pj;
        OpCost {
            kind: OpKind::BitmaskEncode,
            cycles,
            energy_pj: cycles as f64 * per_cycle,
        }
    }

    /// Softmax + span masking over a `rows x cols` attention score matrix
    /// (three passes per Algorithm 3).
    pub fn softmax_mask(&self, rows: usize, cols: usize) -> OpCost {
        let per_row = 3 * cols.div_ceil(self.sfu_width) + 3;
        let cycles = (rows * per_row) as u64;
        OpCost {
            kind: OpKind::SoftmaxMask,
            cycles,
            energy_pj: cycles as f64 * self.energy.sfu_pj,
        }
    }

    /// Layer normalization over a `rows x cols` activation (two passes).
    pub fn layer_norm(&self, rows: usize, cols: usize) -> OpCost {
        let per_row = 2 * cols.div_ceil(self.sfu_width) + 2;
        let cycles = (rows * per_row) as u64;
        OpCost {
            kind: OpKind::LayerNorm,
            cycles,
            energy_pj: cycles as f64 * self.energy.sfu_pj,
        }
    }

    /// Element-wise addition of two `rows x cols` activations.
    pub fn elem_add(&self, rows: usize, cols: usize) -> OpCost {
        let cycles = ((rows * cols).div_ceil(self.sfu_width)) as u64;
        OpCost {
            kind: OpKind::ElemAdd,
            cycles,
            energy_pj: cycles as f64 * self.energy.sfu_pj,
        }
    }

    /// Early-exit assessment: stable entropy over `classes` logits plus
    /// threshold compare and (in latency-aware mode) predictor-LUT index.
    pub fn early_exit(&self, classes: usize) -> OpCost {
        let cycles = (3 * classes.div_ceil(self.sfu_width) + 16) as u64;
        OpCost {
            kind: OpKind::EarlyExit,
            cycles,
            energy_pj: cycles as f64 * self.energy.sfu_pj,
        }
    }
}

/// Scales a reference-voltage energy to supply voltage `v` (`E ∝ V²`).
pub fn scale_energy_to_voltage(energy_pj: f64, v: f32) -> f64 {
    let r = (v / V_REF) as f64;
    energy_pj * r * r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model16() -> OpModel {
        OpModel::new(&AcceleratorConfig::energy_optimal())
    }

    #[test]
    fn matmul_tile_cycles() {
        let m = model16();
        // 128x768x768 with n=16: 8*48*48 tiles * 16 cycles = 294912.
        let c = m.matmul(128, 768, 768, 1.0, 1.0);
        assert_eq!(c.cycles, 8 * 48 * 48 * 16);
        // Non-multiples round up.
        let c = m.matmul(17, 17, 17, 1.0, 1.0);
        assert_eq!(c.cycles, 2 * 2 * 2 * 16);
    }

    #[test]
    fn sparsity_gates_energy_not_cycles() {
        let m = model16();
        let dense = m.matmul(64, 64, 64, 1.0, 1.0);
        let sparse = m.matmul(64, 64, 64, 1.0, 0.4);
        assert_eq!(dense.cycles, sparse.cycles);
        assert!(sparse.energy_pj < dense.energy_pj);
        // Savings bounded by the gated fraction: never below 25% of PU
        // energy plus the SRAM traffic floor.
        let floor = dense.cycles as f64
            * (m.energy.pu_active_pj * m.energy.gated_fraction + m.energy.sram_stream_pj * 0.25);
        assert!(sparse.energy_pj >= floor);
    }

    #[test]
    fn paper_sparse_savings_range() {
        // At the paper's sparsity levels (50–80% weights), compressed
        // sparse execution yields 1.4–1.7x energy savings (§7.3/Fig. 8).
        let m = model16();
        let dense = m.matmul(128, 768, 768, 1.0, 1.0);
        for (d_w, lo, hi) in [(0.5, 1.25, 1.8), (0.2, 1.4, 2.4)] {
            let sparse = m.matmul(128, 768, 768, 0.9, d_w);
            let ratio = dense.energy_pj / sparse.energy_pj;
            assert!((lo..hi).contains(&ratio), "density {d_w}: ratio {ratio}");
        }
    }

    #[test]
    fn pu_energy_scales_superquadratically_with_n() {
        // n² MAC scaling times the wiring factor: more than 256x from
        // n=2 to n=32, and exactly the Fig. 10 anchor at n=16.
        let e2 = EnergyModel::for_config(&AcceleratorConfig::with_mac_vector_size(2));
        let e16 = EnergyModel::for_config(&AcceleratorConfig::with_mac_vector_size(16));
        let e32 = EnergyModel::for_config(&AcceleratorConfig::with_mac_vector_size(32));
        assert!(e32.pu_active_pj / e2.pu_active_pj > 256.0);
        assert!((e16.pu_active_pj - 36.9).abs() < 1e-9);
    }

    #[test]
    fn energy_per_unit_work_is_minimised_at_n16() {
        // Fixed work (930M MACs, one ALBERT-base layer) across the Fig. 8
        // sweep: total matmul energy is lowest at the paper's n=16.
        let energy_at = |n: usize| {
            let m = OpModel::new(&AcceleratorConfig::with_mac_vector_size(n));
            m.matmul(128, 768, 768, 1.0, 1.0).energy_pj * 12.65 // ~a full layer
        };
        let e16 = energy_at(16);
        for n in [2usize, 4, 8, 32] {
            assert!(energy_at(n) > e16, "n={n}: {} vs n=16 {e16}", energy_at(n));
        }
    }

    #[test]
    fn decode_is_one_vector_per_cycle() {
        let m = model16();
        assert_eq!(m.decode(128, 768).cycles, 128 * 768 / 16);
        assert_eq!(m.encode(128, 768).cycles, 128 * 768 / 16);
        assert_eq!(m.decode(1, 1).cycles, 1);
    }

    #[test]
    fn sfu_ops_have_expected_scaling() {
        let m = model16();
        let s = m.softmax_mask(128, 128);
        // 3 passes of 16 words + 3 overhead per row.
        assert_eq!(s.cycles, 128 * (3 * 16 + 3));
        let ln = m.layer_norm(128, 768);
        assert_eq!(ln.cycles, 128 * (2 * 96 + 2));
        let add = m.elem_add(128, 768);
        assert_eq!(add.cycles, (128 * 768 / 8) as u64);
        let ee = m.early_exit(3);
        assert!(ee.cycles < 32);
    }

    #[test]
    fn voltage_scaling_is_quadratic() {
        let base = scale_energy_to_voltage(100.0, 0.8);
        assert!((base - 100.0).abs() < 1e-9);
        let half_v = scale_energy_to_voltage(100.0, 0.4);
        assert!((half_v - 25.0).abs() < 1e-9);
        // 0.5/0.8 gives the paper's headline quadratic saving: (5/8)² ≈ 0.39.
        let low = scale_energy_to_voltage(100.0, 0.5);
        assert!((low - 39.0625).abs() < 1e-3);
    }
}
