//! SRAM and LPDDR4 DRAM cost models, and the embedding power-on study.
//!
//! The paper's Fig. 11 compares the cost of making the word embeddings
//! available after system power-on:
//!
//! * **EdgeBERT**: embeddings are statically resident in on-chip ReRAM
//!   (non-volatile, zero standby power); after wake-up, only the rows the
//!   sentence actually touches are read.
//! * **Conventional**: embeddings live off-chip; after wake-up the DRAM
//!   must exit self-refresh and retrain, the full table is read over
//!   LPDDR4 and written into on-chip SRAM, and the sentence's rows are
//!   then read back from SRAM.
//!
//! The paper reports ~50x latency and ~66,000x energy advantages; the
//! mechanism (non-volatility removes the DRAM wake + bulk reload from the
//! critical path) is reproduced here with representative LPDDR4 numbers.

use crate::config::AcceleratorConfig;
use edgebert_envm::{CellTech, ReramArray};
use serde::{Deserialize, Serialize};

/// On-chip SRAM model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sram {
    /// Access energy, picojoules per bit.
    pub access_pj_per_bit: f64,
    /// Streaming bandwidth, bits per second.
    pub bandwidth_bps: f64,
    /// Leakage power per megabyte when retained, milliwatts.
    pub leakage_mw_per_mb: f64,
}

impl Default for Sram {
    fn default() -> Self {
        Self {
            access_pj_per_bit: 0.08,
            bandwidth_bps: 128.0 * 1.0e9, // 128-bit port at 1 GHz
            leakage_mw_per_mb: 15.0,
        }
    }
}

impl Sram {
    /// Energy to move `bits` through the SRAM port, joules.
    pub fn access_energy_j(&self, bits: usize) -> f64 {
        bits as f64 * self.access_pj_per_bit * 1e-12
    }

    /// Time to stream `bits`, seconds.
    pub fn access_latency_s(&self, bits: usize) -> f64 {
        bits as f64 / self.bandwidth_bps
    }
}

/// LPDDR4 DRAM model (representative of a DRAMsim3-extracted profile).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lpddr4 {
    /// Effective sequential-read bandwidth, bits per second.
    pub bandwidth_bps: f64,
    /// Access + I/O energy, picojoules per bit.
    pub access_pj_per_bit: f64,
    /// Self-refresh exit + controller/PHY retraining latency, seconds.
    pub wake_latency_s: f64,
    /// Energy of the wake/retrain sequence, joules.
    pub wake_energy_j: f64,
    /// Active-standby background power during the transfer, watts.
    pub background_w: f64,
}

impl Default for Lpddr4 {
    fn default() -> Self {
        Self {
            bandwidth_bps: 6.4e9 * 8.0, // 6.4 GB/s effective
            access_pj_per_bit: 25.0,
            wake_latency_s: 120e-6,
            wake_energy_j: 900e-6,
            background_w: 0.20,
        }
    }
}

impl Lpddr4 {
    /// Latency to wake the device and read `bits` sequentially, seconds.
    pub fn reload_latency_s(&self, bits: usize) -> f64 {
        self.wake_latency_s + bits as f64 / self.bandwidth_bps
    }

    /// Energy to wake the device and read `bits`, joules.
    pub fn reload_energy_j(&self, bits: usize) -> f64 {
        let transfer_s = bits as f64 / self.bandwidth_bps;
        self.wake_energy_j
            + bits as f64 * self.access_pj_per_bit * 1e-12
            + self.background_w * transfer_s
    }
}

/// Result of one side of the power-on comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootCost {
    /// Time until the first sentence's embeddings are available, seconds.
    pub latency_s: f64,
    /// Energy spent, joules.
    pub energy_j: f64,
}

/// Power-on latency of the accelerator itself (LDO ramp from 0 V,
/// ADPLL lock, controller init) — paid on both paths but shown on the
/// EdgeBERT side, where it dominates the (tiny) ReRAM read.
pub const SOC_WAKE_LATENCY_S: f64 = 5e-6;
/// Energy of that wake sequence, joules.
pub const SOC_WAKE_ENERGY_J: f64 = 50e-9;

/// The Fig. 11 comparison for an embedding table of `table_mb` megabytes
/// of which one sentence touches `sentence_bits` bits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootComparison {
    /// EdgeBERT path: ReRAM-resident embeddings.
    pub edgebert: BootCost,
    /// Conventional path: DRAM reload + SRAM staging.
    pub conventional: BootCost,
}

impl BootComparison {
    /// Computes both sides.
    pub fn compute(
        _cfg: &AcceleratorConfig,
        table_mb: f64,
        sentence_bits: usize,
        rram: &ReramArray,
        sram: &Sram,
        dram: &Lpddr4,
    ) -> Self {
        // EdgeBERT: wake the SoC, then read only the sentence's rows
        // from the (already-resident, non-volatile) ReRAM.
        let edgebert = BootCost {
            latency_s: SOC_WAKE_LATENCY_S + rram.read_latency_ns(sentence_bits) * 1e-9,
            energy_j: SOC_WAKE_ENERGY_J + rram.read_energy_pj(sentence_bits) * 1e-12,
        };
        // Conventional: wake DRAM, stream the full table, write it to
        // SRAM, then read the sentence's rows back from SRAM.
        let table_bits = (table_mb * 8.0 * 1024.0 * 1024.0) as usize;
        let latency_s = dram.reload_latency_s(table_bits)
            + sram.access_latency_s(table_bits)
            + sram.access_latency_s(sentence_bits);
        let energy_j = dram.reload_energy_j(table_bits)
            + sram.access_energy_j(table_bits)
            + sram.access_energy_j(sentence_bits);
        Self {
            edgebert,
            conventional: BootCost {
                latency_s,
                energy_j,
            },
        }
    }

    /// Computes both sides with default memory models and the paper's
    /// storage configuration (MLC2 ReRAM).
    pub fn standard(table_mb: f64, sentence_bits: usize) -> Self {
        let cfg = AcceleratorConfig::energy_optimal();
        let rram = ReramArray::new(CellTech::Mlc2, table_mb.max(0.001));
        Self::compute(
            &cfg,
            table_mb,
            sentence_bits,
            &rram,
            &Sram::default(),
            &Lpddr4::default(),
        )
    }

    /// Latency advantage (conventional / EdgeBERT).
    pub fn latency_advantage(&self) -> f64 {
        self.conventional.latency_s / self.edgebert.latency_s.max(1e-15)
    }

    /// Energy advantage (conventional / EdgeBERT).
    pub fn energy_advantage(&self) -> f64 {
        self.conventional.energy_j / self.edgebert.energy_j.max(1e-18)
    }
}

/// Bits one sentence's embedding lookups touch: `tokens x embedding_dim x
/// 8-bit x density` plus its share of the bitmask.
pub fn sentence_embedding_bits(tokens: usize, embedding_dim: usize, density: f64) -> usize {
    let payload = (tokens as f64 * embedding_dim as f64 * 8.0 * density) as usize;
    let mask = tokens * embedding_dim;
    payload + mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_linear_costs() {
        let s = Sram::default();
        assert!((s.access_energy_j(1_000_000) - 0.08e-6).abs() < 1e-12);
        assert!(s.access_latency_s(128) <= 1.1e-9);
    }

    #[test]
    fn dram_reload_dominated_by_transfer_for_big_tables() {
        let d = Lpddr4::default();
        let big = 8 * 1024 * 1024 * 8; // 8 MB in bits
        let lat = d.reload_latency_s(big);
        assert!(lat > d.wake_latency_s);
        assert!(lat < 10e-3);
    }

    #[test]
    fn paper_scale_boot_comparison() {
        // 1.73 MB table (paper §6.2), 128-token sentence, 128-dim
        // embeddings at 40% density.
        let bits = sentence_embedding_bits(128, 128, 0.4);
        let cmp = BootComparison::standard(1.73, bits);
        // Fig. 11 shape: both advantages are enormous; latency in the
        // tens-to-hundreds and energy in the thousands-to-hundreds of
        // thousands.
        let la = cmp.latency_advantage();
        let ea = cmp.energy_advantage();
        assert!(la > 30.0, "latency advantage {la}");
        assert!(ea > 5_000.0, "energy advantage {ea}");
        assert!(ea < 1.0e7, "energy advantage {ea} suspiciously large");
    }

    #[test]
    fn advantage_grows_with_table_size() {
        let bits = sentence_embedding_bits(128, 128, 0.4);
        let small = BootComparison::standard(0.5, bits);
        let large = BootComparison::standard(4.0, bits);
        assert!(large.energy_advantage() > small.energy_advantage());
        assert!(large.latency_advantage() > small.latency_advantage());
    }

    #[test]
    fn sentence_bits_accounting() {
        let bits = sentence_embedding_bits(128, 128, 0.4);
        // payload 128*128*8*0.4 = 52428 bits + mask 16384 bits
        assert_eq!(bits, 52428 + 16384);
    }
}
