//! The accelerator simulator: integrates op costs, V/F scaling, and the
//! DVFS support blocks into per-inference latency/energy numbers.

use crate::adpll::Adpll;
use crate::config::AcceleratorConfig;
use crate::ldo::Ldo;
use crate::ops::{scale_energy_to_voltage, OpKind};
use crate::workload::{EncoderWorkload, WorkloadParams};
use serde::{Deserialize, Serialize};

/// Latency/energy of an inference (or inference segment).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceCost {
    /// Total clock cycles.
    pub cycles: u64,
    /// Wall-clock time, seconds.
    pub seconds: f64,
    /// Total energy, joules (datapath + SRAM + ADPLL + LDO overhead).
    pub energy_j: f64,
    /// Per-datapath (cycles, energy-joules) breakdown.
    pub breakdown: Vec<(OpKind, u64, f64)>,
}

impl InferenceCost {
    /// A zero-cost segment.
    pub fn zero() -> Self {
        Self {
            cycles: 0,
            seconds: 0.0,
            energy_j: 0.0,
            breakdown: OpKind::all().iter().map(|&k| (k, 0, 0.0)).collect(),
        }
    }

    /// Accumulates another segment into this one.
    pub fn add(&mut self, other: &InferenceCost) {
        self.cycles += other.cycles;
        self.seconds += other.seconds;
        self.energy_j += other.energy_j;
        for (kind, c, e) in &other.breakdown {
            if let Some(entry) = self.breakdown.iter_mut().find(|(k, _, _)| k == kind) {
                entry.1 += c;
                entry.2 += e;
            } else {
                self.breakdown.push((*kind, *c, *e));
            }
        }
    }

    /// Fraction of cycles spent in a datapath.
    pub fn latency_fraction(&self, kind: OpKind) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.breakdown
            .iter()
            .filter(|(k, _, _)| *k == kind)
            .map(|(_, c, _)| *c)
            .sum::<u64>() as f64
            / self.cycles as f64
    }

    /// Fraction of datapath energy spent in a datapath (excludes
    /// ADPLL/LDO overheads).
    pub fn energy_fraction(&self, kind: OpKind) -> f64 {
        let total: f64 = self.breakdown.iter().map(|(_, _, e)| *e).sum();
        if total == 0.0 {
            return 0.0;
        }
        self.breakdown
            .iter()
            .filter(|(k, _, _)| *k == kind)
            .map(|(_, _, e)| *e)
            .sum::<f64>()
            / total
    }
}

/// The accelerator simulator.
///
/// # Example
///
/// ```
/// use edgebert_hw::{AcceleratorConfig, AcceleratorSim, WorkloadParams};
///
/// let sim = AcceleratorSim::new(AcceleratorConfig::energy_optimal());
/// let wl = sim.layer_workload(&WorkloadParams::albert_base());
/// let cost = sim.run_layers(&wl, 12, 0.8, 1.0e9);
/// assert!(cost.seconds > 0.0 && cost.energy_j > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorSim {
    cfg: AcceleratorConfig,
}

impl AcceleratorSim {
    /// Creates a simulator for a configuration.
    pub fn new(cfg: AcceleratorConfig) -> Self {
        Self { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.cfg
    }

    /// Builds the per-layer op list for the given workload parameters.
    pub fn layer_workload(&self, params: &WorkloadParams) -> EncoderWorkload {
        EncoderWorkload::build(&self.cfg, params)
    }

    /// Runs `layers` encoder layers at a fixed `(voltage, freq_hz)`
    /// operating point.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz <= 0`.
    pub fn run_layers(
        &self,
        workload: &EncoderWorkload,
        layers: usize,
        voltage: f32,
        freq_hz: f64,
    ) -> InferenceCost {
        assert!(freq_hz > 0.0, "frequency must be positive");
        let mut cost = InferenceCost::zero();
        let ldo = Ldo::new(voltage);
        for _ in 0..layers {
            for op in workload.ops() {
                let e_pj = scale_energy_to_voltage(op.energy_pj, voltage);
                let e_j = e_pj * 1e-12;
                cost.cycles += op.cycles;
                cost.energy_j += e_j;
                if let Some(entry) = cost.breakdown.iter_mut().find(|(k, _, _)| *k == op.kind) {
                    entry.1 += op.cycles;
                    entry.2 += e_j;
                }
            }
        }
        cost.seconds = cost.cycles as f64 / freq_hz;
        // Clock generation and regulator overheads over the segment.
        let mut pll = Adpll::new(freq_hz);
        let datapath = cost.energy_j;
        cost.energy_j += pll.energy_j(cost.seconds);
        let _ = pll.retune(freq_hz);
        cost.energy_j += ldo.overhead_j(datapath, voltage);
        cost
    }

    /// Runs at the nominal operating point (0.8 V, 1 GHz).
    pub fn run_layers_nominal(&self, workload: &EncoderWorkload, layers: usize) -> InferenceCost {
        self.run_layers(workload, layers, self.cfg.vdd_nominal, self.cfg.freq_max_hz)
    }

    /// Average power over an inference, watts.
    pub fn average_power_w(&self, cost: &InferenceCost) -> f64 {
        if cost.seconds == 0.0 {
            0.0
        } else {
            cost.energy_j / cost.seconds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim16() -> AcceleratorSim {
        AcceleratorSim::new(AcceleratorConfig::energy_optimal())
    }

    #[test]
    fn full_inference_matches_design_point() {
        // 12 layers at n=16, 1 GHz: ≈ 3.9 M cycles/layer ⇒ ~47 ms, and
        // average power near the reported 86 mW.
        let sim = sim16();
        let wl = sim.layer_workload(&WorkloadParams::albert_base());
        let cost = sim.run_layers_nominal(&wl, 12);
        assert!(
            (0.035..0.060).contains(&cost.seconds),
            "latency {}",
            cost.seconds
        );
        let p = sim.average_power_w(&cost);
        assert!((0.060..0.110).contains(&p), "power {p}");
    }

    #[test]
    fn voltage_scaling_reduces_energy_quadratically() {
        let sim = sim16();
        let wl = sim.layer_workload(&WorkloadParams::albert_base());
        let nominal = sim.run_layers(&wl, 12, 0.8, 1.0e9);
        let scaled = sim.run_layers(&wl, 12, 0.5, 0.4e9);
        // Same cycles, longer time, much less energy.
        assert_eq!(nominal.cycles, scaled.cycles);
        assert!(scaled.seconds > nominal.seconds * 2.0);
        let ratio = nominal.energy_j / scaled.energy_j;
        // Ideal quadratic ratio is (0.8/0.5)² = 2.56; LDO efficiency at
        // low voltage claws a little back.
        assert!((2.0..2.6).contains(&ratio), "energy ratio {ratio}");
    }

    #[test]
    fn cost_accumulation() {
        let sim = sim16();
        let wl = sim.layer_workload(&WorkloadParams::albert_base());
        let one = sim.run_layers_nominal(&wl, 1);
        let mut acc = InferenceCost::zero();
        for _ in 0..3 {
            acc.add(&one);
        }
        let three = sim.run_layers_nominal(&wl, 3);
        assert_eq!(acc.cycles, three.cycles);
        assert!((acc.energy_j - three.energy_j).abs() / three.energy_j < 1e-9);
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let sim = sim16();
        let wl = sim.layer_workload(&WorkloadParams::albert_base());
        let cost = sim.run_layers_nominal(&wl, 12);
        let lat_sum: f64 = OpKind::all()
            .iter()
            .map(|&k| cost.latency_fraction(k))
            .sum();
        assert!((lat_sum - 1.0).abs() < 1e-9);
        let e_sum: f64 = OpKind::all().iter().map(|&k| cost.energy_fraction(k)).sum();
        assert!((e_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mac_scaling_latency_drop_per_doubling() {
        // Fig. 8: latency drops ≈3.5x per doubling of n.
        let p = WorkloadParams::albert_base();
        let mut last: Option<f64> = None;
        for n in [2usize, 4, 8, 16, 32] {
            let sim = AcceleratorSim::new(AcceleratorConfig::with_mac_vector_size(n));
            let wl = sim.layer_workload(&p);
            let cost = sim.run_layers_nominal(&wl, 12);
            if let Some(prev) = last {
                let drop = prev / cost.seconds;
                assert!((2.2..4.2).contains(&drop), "n={n}: drop {drop}");
            }
            last = Some(cost.seconds);
        }
    }
}
