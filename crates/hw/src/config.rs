//! Accelerator configuration.

use serde::{Deserialize, Serialize};

/// Static configuration of the EdgeBERT accelerator instance.
///
/// The design-space knob of Fig. 8 is [`AcceleratorConfig::mac_vector_size`]
/// (`n`): the PU holds `n²` MAC units organised as `n` vector-MACs of
/// width `n`, computing an `n x n x n` matmul tile in `n` cycles.
///
/// # Example
///
/// ```
/// use edgebert_hw::AcceleratorConfig;
///
/// let cfg = AcceleratorConfig::energy_optimal();
/// assert_eq!(cfg.mac_vector_size, 16);
/// assert_eq!(cfg.mac_count(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// PU MAC vector size `n` (2–32 in the paper's sweep).
    pub mac_vector_size: usize,
    /// Maximum clock frequency at nominal voltage, Hz.
    pub freq_max_hz: f64,
    /// Nominal supply voltage, volts.
    pub vdd_nominal: f32,
    /// Minimum DVFS voltage, volts.
    pub vdd_min: f32,
    /// LDO voltage step, volts (25 mV in the paper).
    pub vdd_step: f32,
    /// Standby voltage during idle, volts.
    pub vdd_standby: f32,
    /// SFU vector width (16-bit fixed-point lanes).
    pub sfu_width: usize,
    /// Input/weight buffer capacity per decoder block, bytes.
    pub io_buffer_bytes: usize,
    /// Mask buffer capacity per decoder block, bytes.
    pub mask_buffer_bytes: usize,
    /// SFU auxiliary buffer capacity, bytes.
    pub aux_buffer_bytes: usize,
    /// ReRAM embedding buffer capacity, bytes.
    pub rram_buffer_bytes: usize,
}

impl AcceleratorConfig {
    /// The paper's energy-optimal design point (`n = 16`, 1 GHz, 0.8 V,
    /// buffer sizes of Fig. 6).
    pub fn energy_optimal() -> Self {
        Self::with_mac_vector_size(16)
    }

    /// A design point with a custom MAC vector size (the Fig. 8 sweep).
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two in `2..=64`.
    pub fn with_mac_vector_size(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && (2..=64).contains(&n),
            "mac vector size {n} out of range"
        );
        Self {
            mac_vector_size: n,
            freq_max_hz: 1.0e9,
            vdd_nominal: 0.80,
            vdd_min: 0.50,
            vdd_step: 0.025,
            vdd_standby: 0.50,
            sfu_width: 8,
            io_buffer_bytes: 128 * 1024,
            mask_buffer_bytes: 16 * 1024,
            aux_buffer_bytes: 32 * 1024,
            rram_buffer_bytes: 2 * 1024 * 1024,
        }
    }

    /// Total MAC units (`n²`).
    pub fn mac_count(&self) -> usize {
        self.mac_vector_size * self.mac_vector_size
    }

    /// Number of DVFS voltage steps between `vdd_min` and `vdd_nominal`.
    pub fn voltage_levels(&self) -> usize {
        (((self.vdd_nominal - self.vdd_min) / self.vdd_step).round() as usize) + 1
    }

    /// The discrete DVFS voltage grid, ascending.
    pub fn voltage_grid(&self) -> Vec<f32> {
        (0..self.voltage_levels())
            .map(|i| self.vdd_min + i as f32 * self.vdd_step)
            .collect()
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::energy_optimal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_optimal_matches_paper() {
        let cfg = AcceleratorConfig::energy_optimal();
        assert_eq!(cfg.mac_count(), 256);
        assert_eq!(cfg.freq_max_hz, 1.0e9);
        assert_eq!(cfg.vdd_nominal, 0.80);
        assert_eq!(cfg.vdd_min, 0.50);
    }

    #[test]
    fn voltage_grid_has_25mv_steps() {
        let cfg = AcceleratorConfig::energy_optimal();
        let grid = cfg.voltage_grid();
        assert_eq!(grid.len(), 13); // 0.500..=0.800 in 25 mV steps
        assert!((grid[0] - 0.5).abs() < 1e-6);
        assert!((grid[grid.len() - 1] - 0.8).abs() < 1e-6);
        for w in grid.windows(2) {
            assert!((w[1] - w[0] - 0.025).abs() < 1e-6);
        }
    }

    #[test]
    fn sweep_sizes_construct() {
        for n in [2usize, 4, 8, 16, 32] {
            let cfg = AcceleratorConfig::with_mac_vector_size(n);
            assert_eq!(cfg.mac_count(), n * n);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn non_power_of_two_rejected() {
        AcceleratorConfig::with_mac_vector_size(12);
    }
}
