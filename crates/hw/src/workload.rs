//! Encoder-layer workload descriptions: which ops, with which shapes and
//! densities, the accelerator executes per transformer layer.

use crate::config::AcceleratorConfig;
use crate::ops::{OpCost, OpModel};
use serde::{Deserialize, Serialize};

/// Model-side parameters that shape the hardware workload.
///
/// # Example
///
/// ```
/// use edgebert_hw::WorkloadParams;
///
/// let base = WorkloadParams::albert_base();
/// assert_eq!(base.seq_len, 128);
/// assert_eq!(base.head_spans.len(), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadParams {
    /// Padded sequence length.
    pub seq_len: usize,
    /// Hidden width `H`.
    pub hidden: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Per-head width.
    pub head_dim: usize,
    /// FFN intermediate width.
    pub intermediate: usize,
    /// Number of output classes (EE assessment width).
    pub classes: usize,
    /// Density (1 - sparsity) of encoder weights.
    pub weight_density: f64,
    /// Density of streaming activations.
    pub act_density: f64,
    /// Effective span per head; `0` means the head is skipped entirely.
    pub head_spans: Vec<f32>,
    /// Whether adaptive-attention-span predication is applied.
    pub aas_enabled: bool,
    /// Whether compressed sparse execution (energy gating) is applied.
    pub sparse_enabled: bool,
}

impl WorkloadParams {
    /// The paper's ALBERT-base shapes with dense weights and all heads
    /// fully open (the unoptimized baseline).
    pub fn albert_base() -> Self {
        Self {
            seq_len: 128,
            hidden: 768,
            heads: 12,
            head_dim: 64,
            intermediate: 3072,
            classes: 2,
            weight_density: 1.0,
            act_density: 1.0,
            head_spans: vec![128.0; 12],
            aas_enabled: false,
            sparse_enabled: false,
        }
    }

    /// Applies a task's optimization results (paper Table 3): encoder
    /// sparsity and learned head spans, enabling AAS + sparse execution.
    pub fn with_optimizations(mut self, encoder_sparsity: f32, head_spans: &[f32]) -> Self {
        self.weight_density = (1.0 - encoder_sparsity) as f64;
        self.head_spans = head_spans.to_vec();
        self.aas_enabled = true;
        self.sparse_enabled = true;
        self
    }

    /// Number of heads that are active (non-zero span) under AAS; without
    /// AAS every head is computed.
    pub fn active_heads(&self) -> usize {
        if self.aas_enabled {
            self.head_spans.iter().filter(|&&s| s > 0.0).count()
        } else {
            self.heads
        }
    }

    /// Effective attended width for a head of span `s`: the banded region
    /// `min(2s+1, seq_len)` (without AAS, the full sequence).
    pub fn attended_width(&self, span: f32) -> usize {
        if !self.aas_enabled {
            return self.seq_len;
        }
        ((2.0 * span + 1.0) as usize).min(self.seq_len)
    }

    fn densities(&self) -> (f64, f64) {
        if self.sparse_enabled {
            (self.act_density, self.weight_density)
        } else {
            (1.0, 1.0)
        }
    }
}

/// The op list for one encoder layer on a given accelerator config.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncoderWorkload {
    ops: Vec<OpCost>,
}

impl EncoderWorkload {
    /// Builds the per-layer op list.
    ///
    /// Mirrors Fig. 5/Fig. 6: bitmask decode of weights and inputs, Q/K/V
    /// projections (restricted to active heads under AAS, the source of
    /// the paper's 1.18–1.22x FLOP reduction), per-head banded
    /// score/softmax/context pipelines, dense output projection, residual
    /// add + layer-norm, FFN, residual add + layer-norm, bitmask encode of
    /// the output, and the EE assessment.
    pub fn build(cfg: &AcceleratorConfig, p: &WorkloadParams) -> Self {
        let m = OpModel::new(cfg);
        let (d_in, d_w) = p.densities();
        let s = p.seq_len;
        let h = p.hidden;
        let mut ops = Vec::new();

        let active = p.active_heads();
        let active_width = active * p.head_dim;

        // Stream in the compressed input activations and weights.
        ops.push(m.decode(s, h)); // input activations
        ops.push(m.decode_weights(h, 3 * active_width)); // QKV weights (active slices)
        ops.push(m.decode_weights(h, h)); // output-projection weights
        ops.push(m.decode_weights(h, p.intermediate)); // FFN expand weights
        ops.push(m.decode_weights(p.intermediate, h)); // FFN contract weights

        // Q/K/V projections for active heads only.
        if active_width > 0 {
            ops.push(m.matmul(s, h, 3 * active_width, d_in, d_w));
        }

        // Per-head attention pipeline over the banded span region.
        for &span in &p.head_spans {
            if p.aas_enabled && span <= 0.0 {
                continue; // SFU controller skips the whole head (§7.4.1)
            }
            let band = p.attended_width(span);
            ops.push(m.matmul(s, p.head_dim, band, d_in, d_in)); // scores QK^T
            ops.push(m.softmax_mask(s, band));
            ops.push(m.matmul(s, band, p.head_dim, d_in, d_in)); // context
        }

        // Output projection (dense: skipped heads contribute zeros).
        ops.push(m.matmul(s, h, h, d_in, d_w));
        ops.push(m.elem_add(s, h));
        ops.push(m.layer_norm(s, h));

        // Feed-forward network.
        ops.push(m.matmul(s, h, p.intermediate, d_in, d_w));
        ops.push(m.matmul(s, p.intermediate, h, d_in, d_w));
        ops.push(m.elem_add(s, h));
        ops.push(m.layer_norm(s, h));

        // Stream out the compressed layer output.
        ops.push(m.encode(s, h));

        // Early-exit entropy assessment on the off-ramp logits.
        ops.push(m.early_exit(p.classes));

        Self { ops }
    }

    /// The op list.
    pub fn ops(&self) -> &[OpCost] {
        &self.ops
    }

    /// Total cycles for one layer.
    pub fn cycles(&self) -> u64 {
        self.ops.iter().map(|o| o.cycles).sum()
    }

    /// Total energy for one layer at the reference voltage, picojoules.
    pub fn energy_pj(&self) -> f64 {
        self.ops.iter().map(|o| o.energy_pj).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpKind;

    fn base_cfg() -> AcceleratorConfig {
        AcceleratorConfig::energy_optimal()
    }

    #[test]
    fn baseline_layer_cycles_match_flops_estimate() {
        // 1.86 GFLOP per layer on 256 MACs ≈ 3.6M MAC cycles; overheads
        // push the total slightly higher.
        let wl = EncoderWorkload::build(&base_cfg(), &WorkloadParams::albert_base());
        let mac_cycles: u64 = wl
            .ops()
            .iter()
            .filter(|o| o.kind == OpKind::MacMatmul)
            .map(|o| o.cycles)
            .sum();
        let expect = 1.86e9 / 2.0 / 256.0;
        let ratio = mac_cycles as f64 / expect;
        assert!(
            (0.9..1.2).contains(&ratio),
            "mac cycles {mac_cycles}, ratio {ratio}"
        );
    }

    #[test]
    fn mac_latency_fraction_matches_fig10() {
        // Fig. 10a: MACs ≈ 90.7% of latency, decode+encode ≈ 6.4%,
        // SFU ops the remainder.
        let wl = EncoderWorkload::build(&base_cfg(), &WorkloadParams::albert_base());
        let total = wl.cycles() as f64;
        let frac = |kind: OpKind| {
            wl.ops()
                .iter()
                .filter(|o| o.kind == kind)
                .map(|o| o.cycles)
                .sum::<u64>() as f64
                / total
        };
        let mac = frac(OpKind::MacMatmul);
        assert!((0.85..0.95).contains(&mac), "mac latency fraction {mac}");
        let codec = frac(OpKind::BitmaskDecode) + frac(OpKind::BitmaskEncode);
        assert!((0.03..0.10).contains(&codec), "codec fraction {codec}");
        let ee = frac(OpKind::EarlyExit);
        assert!(ee < 0.01, "EE fraction {ee}");
    }

    #[test]
    fn mac_energy_fraction_dominates() {
        // Fig. 10a: MACs ≈ 98.8% of energy.
        let wl = EncoderWorkload::build(&base_cfg(), &WorkloadParams::albert_base());
        let total = wl.energy_pj();
        let mac: f64 = wl
            .ops()
            .iter()
            .filter(|o| o.kind == OpKind::MacMatmul)
            .map(|o| o.energy_pj)
            .sum();
        assert!(mac / total > 0.93, "mac energy fraction {}", mac / total);
    }

    #[test]
    fn aas_reduces_cycles_in_paper_range() {
        // Table 1: 8 heads off for MNLI ⇒ 1.22x fewer FLOPs; 7 off for
        // SST-2/QNLI ⇒ 1.18x. Cycle reduction should land near those.
        let cfg = base_cfg();
        let base = EncoderWorkload::build(&cfg, &WorkloadParams::albert_base());
        let mut spans = vec![0.0f32; 12];
        spans[0] = 20.0;
        spans[6] = 36.0;
        spans[7] = 81.0;
        spans[11] = 10.0;
        let opt = WorkloadParams::albert_base().with_optimizations(0.0, &spans);
        let with_aas = EncoderWorkload::build(&cfg, &opt);
        let ratio = base.cycles() as f64 / with_aas.cycles() as f64;
        assert!((1.10..1.40).contains(&ratio), "AAS cycle ratio {ratio}");
    }

    #[test]
    fn all_heads_off_still_runs_ffn() {
        let cfg = base_cfg();
        let opt = WorkloadParams::albert_base().with_optimizations(0.5, &[0.0; 12]);
        let wl = EncoderWorkload::build(&cfg, &opt);
        assert!(wl.ops().iter().any(|o| o.kind == OpKind::LayerNorm));
        assert!(wl.ops().iter().any(|o| o.kind == OpKind::MacMatmul));
        // No softmax at all: every head skipped.
        assert!(!wl.ops().iter().any(|o| o.kind == OpKind::SoftmaxMask));
    }

    #[test]
    fn sparse_execution_saves_energy_not_latency() {
        let cfg = base_cfg();
        let dense = EncoderWorkload::build(&cfg, &WorkloadParams::albert_base());
        let mut p = WorkloadParams::albert_base();
        p.sparse_enabled = true;
        p.weight_density = 0.4;
        let sparse = EncoderWorkload::build(&cfg, &p);
        assert_eq!(dense.cycles(), sparse.cycles());
        let ratio = dense.energy_pj() / sparse.energy_pj();
        assert!((1.3..1.9).contains(&ratio), "sparse energy ratio {ratio}");
    }

    #[test]
    fn smaller_mac_array_needs_more_cycles() {
        let p = WorkloadParams::albert_base();
        let c4 = EncoderWorkload::build(&AcceleratorConfig::with_mac_vector_size(4), &p);
        let c16 = EncoderWorkload::build(&AcceleratorConfig::with_mac_vector_size(16), &p);
        // 16x more MACs: close to 16x fewer cycles (overheads dilute it).
        let speedup = c4.cycles() as f64 / c16.cycles() as f64;
        assert!((8.0..16.5).contains(&speedup), "speedup {speedup}");
    }
}
