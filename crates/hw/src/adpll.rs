//! All-digital phase-locked loop (ADPLL) model.
//!
//! The clock generator from the FASoC open-source framework: 2.46 mW at
//! 1 GHz (Table 4), fast relock after a frequency update.

use serde::{Deserialize, Serialize};

/// ADPLL specification and state.
///
/// # Example
///
/// ```
/// use edgebert_hw::adpll::Adpll;
///
/// let mut pll = Adpll::new(1.0e9);
/// let relock_ns = pll.retune(0.5e9);
/// assert!(relock_ns > 0.0);
/// assert_eq!(pll.freq_hz(), 0.5e9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adpll {
    freq_hz: f64,
    /// Power at 1 GHz, milliwatts (Table 4).
    power_mw_at_1ghz: f64,
    /// Relock time after a retune, nanoseconds.
    relock_ns: f64,
}

impl Adpll {
    /// Creates an ADPLL locked at `freq_hz` with Table 4 characteristics.
    pub fn new(freq_hz: f64) -> Self {
        Self {
            freq_hz,
            power_mw_at_1ghz: 2.46,
            relock_ns: 50.0,
        }
    }

    /// Current output frequency, Hz.
    pub fn freq_hz(&self) -> f64 {
        self.freq_hz
    }

    /// Relock time after a frequency change, nanoseconds.
    pub fn relock_ns(&self) -> f64 {
        self.relock_ns
    }

    /// Power at the current frequency, milliwatts. Digital PLL power is
    /// dominated by the DCO and scales ~linearly with output frequency.
    pub fn power_mw(&self) -> f64 {
        self.power_mw_at_1ghz * self.freq_hz / 1.0e9
    }

    /// Energy consumed over `seconds` at the current frequency, joules.
    pub fn energy_j(&self, seconds: f64) -> f64 {
        self.power_mw() * 1e-3 * seconds
    }

    /// Retunes to a new frequency; returns the relock time in ns.
    pub fn retune(&mut self, freq_hz: f64) -> f64 {
        if (freq_hz - self.freq_hz).abs() < 1.0 {
            return 0.0;
        }
        self.freq_hz = freq_hz;
        self.relock_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_power_at_1ghz() {
        let pll = Adpll::new(1.0e9);
        assert!((pll.power_mw() - 2.46).abs() < 1e-9);
    }

    #[test]
    fn power_scales_with_frequency() {
        let pll = Adpll::new(0.5e9);
        assert!((pll.power_mw() - 1.23).abs() < 1e-9);
    }

    #[test]
    fn retune_relocks_fast() {
        let mut pll = Adpll::new(1.0e9);
        let t = pll.retune(0.7e9);
        assert!(t > 0.0 && t <= 100.0, "relock {t} ns");
        assert_eq!(pll.freq_hz(), 0.7e9);
        // Same-frequency retune is free.
        assert_eq!(pll.retune(0.7e9), 0.0);
    }

    #[test]
    fn energy_integration() {
        let pll = Adpll::new(1.0e9);
        // 2.46 mW for 1 ms = 2.46 µJ.
        assert!((pll.energy_j(1e-3) - 2.46e-6).abs() < 1e-12);
    }
}
