//! Area and power reporting (paper Fig. 10b).

use crate::config::AcceleratorConfig;
use serde::{Deserialize, Serialize};

/// One block's area/power row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockReport {
    /// Block name as in Fig. 10b.
    pub name: String,
    /// Silicon area, mm².
    pub area_mm2: f64,
    /// Power at 0.8 V / 1 GHz, milliwatts.
    pub power_mw: f64,
}

/// The accelerator's area/power breakdown.
///
/// Anchored at the published n=16 design point (Fig. 10b: 1.39 mm²,
/// 85.9 mW total). PU datapath area/power scale with the MAC count (n²);
/// SRAM power scales with streaming bandwidth (n); SFU, ReRAM, and ADPLL
/// are independent of n.
///
/// # Example
///
/// ```
/// use edgebert_hw::{AcceleratorConfig, report::AreaPowerReport};
///
/// let r = AreaPowerReport::at_config(&AcceleratorConfig::energy_optimal());
/// assert!((r.total_area_mm2() - 1.39).abs() < 0.01);
/// assert!((r.total_power_mw() - 85.9).abs() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaPowerReport {
    blocks: Vec<BlockReport>,
}

impl AreaPowerReport {
    /// Builds the report for a configuration.
    pub fn at_config(cfg: &AcceleratorConfig) -> Self {
        let n = cfg.mac_vector_size as f64;
        let pu_scale = (n * n) / 256.0;
        let bw_scale = n / 16.0;
        let blocks = vec![
            BlockReport {
                name: "PU Datapaths".into(),
                area_mm2: 0.52 * pu_scale,
                power_mw: 36.9 * pu_scale,
            },
            BlockReport {
                name: "SFU Datapaths".into(),
                area_mm2: 0.21,
                power_mw: 9.44,
            },
            BlockReport {
                name: "SRAM Buffers".into(),
                area_mm2: 0.50,
                power_mw: 33.6 * bw_scale,
            },
            BlockReport {
                name: "ReRAM Buffers".into(),
                area_mm2: 0.15,
                power_mw: 3.48,
            },
            BlockReport {
                name: "ADPLL".into(),
                area_mm2: 0.01,
                power_mw: 2.46,
            },
        ];
        Self { blocks }
    }

    /// The block rows.
    pub fn blocks(&self) -> &[BlockReport] {
        &self.blocks
    }

    /// Total area, mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.blocks.iter().map(|b| b.area_mm2).sum()
    }

    /// Total power, mW.
    pub fn total_power_mw(&self) -> f64 {
        self.blocks.iter().map(|b| b.power_mw).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n16_matches_fig10b() {
        let r = AreaPowerReport::at_config(&AcceleratorConfig::energy_optimal());
        assert!((r.total_area_mm2() - 1.39).abs() < 1e-9);
        assert!((r.total_power_mw() - 85.88).abs() < 0.01);
        let pu = &r.blocks()[0];
        assert!((pu.area_mm2 - 0.52).abs() < 1e-9);
        assert!((pu.power_mw - 36.9).abs() < 1e-9);
    }

    #[test]
    fn pu_scales_quadratically_sram_linearly() {
        let r32 = AreaPowerReport::at_config(&AcceleratorConfig::with_mac_vector_size(32));
        let pu = &r32.blocks()[0];
        assert!((pu.area_mm2 - 0.52 * 4.0).abs() < 1e-9);
        let sram = &r32.blocks()[2];
        assert!((sram.power_mw - 33.6 * 2.0).abs() < 1e-9);
        // SFU unchanged.
        assert!((r32.blocks()[1].power_mw - 9.44).abs() < 1e-9);
    }

    #[test]
    fn every_block_is_nonempty() {
        let r = AreaPowerReport::at_config(&AcceleratorConfig::energy_optimal());
        assert_eq!(r.blocks().len(), 5);
        for b in r.blocks() {
            assert!(!b.name.is_empty());
            assert!(b.area_mm2 > 0.0);
            assert!(b.power_mw > 0.0);
        }
    }
}
