//! The voltage/frequency table used by the DVFS controller.
//!
//! The accelerator stores "the ADPLL frequency/voltage sweep coordinates"
//! as a LUT in the SFU auxiliary buffer (paper §5.2). We model the
//! maximum frequency at a given supply with the alpha-power law in its
//! near-linear regime:
//!
//! ```text
//! f_max(V) = f_nom · (V - V_t) / (V_nom - V_t),   V_t = 0.30 V
//! ```
//!
//! which gives 1 GHz at 0.8 V and 0.4 GHz at 0.5 V.

use crate::config::AcceleratorConfig;
use serde::{Deserialize, Serialize};

/// Threshold voltage of the delay model.
pub const V_THRESHOLD: f32 = 0.30;

/// One V/F LUT entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VfPoint {
    /// Supply voltage, volts.
    pub voltage: f32,
    /// Maximum stable clock frequency at this voltage, Hz.
    pub freq_max_hz: f64,
}

/// The discrete V/F lookup table.
///
/// # Example
///
/// ```
/// use edgebert_hw::{AcceleratorConfig, VfTable};
///
/// let vf = VfTable::from_config(&AcceleratorConfig::energy_optimal());
/// // Running at half the peak frequency permits a much lower voltage.
/// let v = vf.min_voltage_for_freq(0.5e9).unwrap();
/// assert!(v < 0.7);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VfTable {
    points: Vec<VfPoint>,
}

impl VfTable {
    /// Builds the LUT over a configuration's voltage grid.
    pub fn from_config(cfg: &AcceleratorConfig) -> Self {
        let points = cfg
            .voltage_grid()
            .into_iter()
            .map(|v| VfPoint {
                voltage: v,
                freq_max_hz: Self::fmax_model(v, cfg),
            })
            .collect();
        Self { points }
    }

    /// The delay model: linear in `(V - V_t)`, anchored at
    /// `(vdd_nominal, freq_max_hz)`.
    fn fmax_model(v: f32, cfg: &AcceleratorConfig) -> f64 {
        let head = (v - V_THRESHOLD).max(0.0) as f64;
        let nom_head = (cfg.vdd_nominal - V_THRESHOLD) as f64;
        cfg.freq_max_hz * head / nom_head
    }

    /// LUT entries, ascending by voltage.
    pub fn points(&self) -> &[VfPoint] {
        &self.points
    }

    /// Maximum frequency at the highest grid voltage.
    pub fn peak_freq_hz(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.freq_max_hz)
    }

    /// Maximum frequency available at grid voltage `v` (the nearest grid
    /// point at or below `v`).
    pub fn freq_at_voltage(&self, v: f32) -> f64 {
        let mut best = 0.0f64;
        for p in &self.points {
            if p.voltage <= v + 1e-6 {
                best = p.freq_max_hz;
            }
        }
        best
    }

    /// The lowest grid voltage whose maximum frequency is at least
    /// `freq_hz` (within a 1 ppm tolerance absorbing `f32` grid rounding),
    /// or `None` if even the top voltage cannot reach it.
    pub fn min_voltage_for_freq(&self, freq_hz: f64) -> Option<f32> {
        self.points
            .iter()
            .find(|p| p.freq_max_hz >= freq_hz * (1.0 - 1e-6))
            .map(|p| p.voltage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> VfTable {
        VfTable::from_config(&AcceleratorConfig::energy_optimal())
    }

    #[test]
    fn anchored_at_nominal() {
        let vf = table();
        assert!((vf.peak_freq_hz() - 1.0e9).abs() < 1.0);
        // 0.5 V → (0.5-0.3)/(0.8-0.3) = 0.4 GHz.
        assert!((vf.freq_at_voltage(0.5) - 0.4e9).abs() < 1e6);
    }

    #[test]
    fn monotone_in_voltage() {
        let vf = table();
        for w in vf.points().windows(2) {
            assert!(w[1].freq_max_hz > w[0].freq_max_hz);
        }
    }

    #[test]
    fn min_voltage_lookup() {
        let vf = table();
        // Peak frequency needs nominal voltage.
        assert_eq!(vf.min_voltage_for_freq(1.0e9), Some(0.80));
        // 0.4 GHz is satisfied by the floor voltage.
        assert_eq!(vf.min_voltage_for_freq(0.4e9), Some(0.50));
        // Anything at/below the floor's fmax maps to the floor.
        assert_eq!(vf.min_voltage_for_freq(0.1e9), Some(0.50));
        // Beyond peak is infeasible.
        assert_eq!(vf.min_voltage_for_freq(1.2e9), None);
    }

    #[test]
    fn lookup_is_tight() {
        // The returned voltage is the *lowest* feasible one: one step
        // lower must be insufficient.
        let vf = table();
        for target in [0.45e9, 0.6e9, 0.75e9, 0.9e9] {
            let v = vf.min_voltage_for_freq(target).unwrap();
            let lower = v - 0.025;
            if lower >= 0.5 - 1e-6 {
                assert!(vf.freq_at_voltage(lower) < target, "v={v} target={target}");
            }
        }
    }
}
