//! Cycle/energy model of the EdgeBERT 12 nm accelerator system.
//!
//! This crate is the silicon-side substrate of the reproduction: an
//! analytic (op-level) model of the accelerator in the paper's Fig. 6 —
//! a processing unit (PU) with `n²` FP8 vector MACs and bitmask
//! encode/decode, a special function unit (SFU) with softmax/span-mask,
//! layer-norm, element-wise add and early-exit assessment datapaths, a
//! fast-switching LDO and fast-locking ADPLL for per-sentence DVFS, SRAM
//! working buffers, and a 2 MB ReRAM buffer for the task-shared embedding
//! weights.
//!
//! Cycle counts follow deterministically from the published
//! microarchitecture (an `n x n x n` MAC tile takes `n` cycles; decoders
//! process one `n`-vector per cycle; the SFU makes the three passes of
//! Algorithm 3). Energy coefficients are anchored at the published design
//! point — 85.9 mW / 1.39 mm² at 0.8 V, 1 GHz, `n = 16` (Fig. 10) — and
//! scale as `E ∝ C·V²` per component.
//!
//! The crate also carries the comparison baselines used by the paper's
//! evaluation: an analytic Nvidia Jetson TX2 mobile-GPU model (Fig. 8)
//! and an LPDDR4 DRAM + SRAM path for the embedding power-on study
//! (Fig. 11).

pub mod adpll;
pub mod config;
pub mod dvfs;
pub mod ldo;
pub mod memory;
pub mod mgpu;
pub mod ops;
pub mod report;
pub mod sim;
pub mod vf;
pub mod workload;

pub use adpll::Adpll;
pub use config::AcceleratorConfig;
pub use dvfs::{DvfsController, DvfsDecision};
pub use ldo::Ldo;
pub use mgpu::MobileGpu;
pub use sim::{AcceleratorSim, InferenceCost};
pub use vf::VfTable;
pub use workload::{EncoderWorkload, WorkloadParams};
