//! The sentence-level DVFS controller (paper §5.2 / §7.4.3).
//!
//! After the early-exit predictor forecasts the exit layer, the
//! controller knows the remaining work `N_cycles` and the remaining time
//! budget. It sets:
//!
//! ```text
//! Freq_opt = N_cycles / (T - T_elapsed)
//! VDD_opt  = lowest grid voltage with f_max(VDD) ≥ Freq_opt
//! ```
//!
//! If even the peak frequency cannot meet the target the controller runs
//! at nominal V/F and flags the violation.

use crate::adpll::Adpll;
use crate::config::AcceleratorConfig;
use crate::ldo::Ldo;
use crate::vf::VfTable;
use serde::{Deserialize, Serialize};

/// Outcome of a DVFS decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvfsDecision {
    /// Selected supply voltage, volts.
    pub voltage: f32,
    /// Selected clock frequency, Hz.
    pub freq_hz: f64,
    /// Whether the latency target is achievable.
    pub feasible: bool,
}

/// The DVFS finite-state controller.
///
/// # Example
///
/// ```
/// use edgebert_hw::{AcceleratorConfig, DvfsController};
///
/// let ctl = DvfsController::new(AcceleratorConfig::energy_optimal());
/// // 10M cycles in 50 ms needs only 0.2 GHz: deep voltage scaling.
/// let d = ctl.decide(10_000_000, 50e-3);
/// assert!(d.feasible);
/// assert!(d.voltage <= 0.525);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsController {
    cfg: AcceleratorConfig,
    vf: VfTable,
}

impl DvfsController {
    /// Creates a controller with the configuration's V/F table.
    pub fn new(cfg: AcceleratorConfig) -> Self {
        let vf = VfTable::from_config(&cfg);
        Self { cfg, vf }
    }

    /// The V/F table (stored as a LUT in the SFU auxiliary buffer).
    pub fn vf_table(&self) -> &VfTable {
        &self.vf
    }

    /// Time to move the rail and clock from nominal V/F to the floor
    /// (`vdd_min`): LDO slew plus ADPLL relock, in seconds. This is the
    /// worst-case transition an engine must reserve out of its budget
    /// before asking for a decision, and the window [`decide`]
    /// (Self::decide) holds nominal inside when no work remains.
    pub fn floor_transition_s(&self) -> f64 {
        let ldo = Ldo::new(self.cfg.vdd_nominal);
        let pll = Adpll::new(self.cfg.freq_max_hz);
        ldo.transition_time_ns(self.cfg.vdd_nominal, self.cfg.vdd_min) * 1e-9
            + pll.relock_ns() * 1e-9
    }

    /// Decides the V/F point for `remaining_cycles` of work within
    /// `remaining_seconds`. A non-positive budget forces nominal V/F with
    /// `feasible = false`.
    pub fn decide(&self, remaining_cycles: u64, remaining_seconds: f64) -> DvfsDecision {
        let nominal = DvfsDecision {
            voltage: self.cfg.vdd_nominal,
            freq_hz: self.cfg.freq_max_hz,
            feasible: false,
        };
        if remaining_seconds <= 0.0 {
            return nominal;
        }
        if remaining_cycles == 0 {
            // No work remains, so the deadline is met wherever the rail
            // sits — but resting at the floor is only reachable if the
            // remaining budget covers the nominal → vdd_min transition
            // (LDO slew + ADPLL relock). Inside that window the
            // controller holds nominal V/F rather than starting a
            // transition it cannot finish.
            return if remaining_seconds > self.floor_transition_s() {
                DvfsDecision {
                    voltage: self.cfg.vdd_min,
                    freq_hz: self.vf.freq_at_voltage(self.cfg.vdd_min),
                    feasible: true,
                }
            } else {
                DvfsDecision {
                    feasible: true,
                    ..nominal
                }
            };
        }
        let freq_req = remaining_cycles as f64 / remaining_seconds;
        // Degenerate demands off the wire must not reach the clock:
        // an unbounded budget asks for 0 Hz (rest at the floor point
        // instead — the clock cannot stop), and a NaN budget has no
        // meaningful answer (hold nominal, flagged infeasible).
        if freq_req <= 0.0 || freq_req.is_nan() {
            return if freq_req == 0.0 {
                DvfsDecision {
                    voltage: self.cfg.vdd_min,
                    freq_hz: self.vf.freq_at_voltage(self.cfg.vdd_min),
                    feasible: true,
                }
            } else {
                nominal
            };
        }
        match self.vf.min_voltage_for_freq(freq_req) {
            // Clamp to the grid voltage's fmax: the lookup tolerates ppm-
            // level f32 grid rounding, and the clock must never outrun the
            // supply.
            Some(v) => DvfsDecision {
                voltage: v,
                freq_hz: freq_req.min(self.vf.freq_at_voltage(v)),
                feasible: true,
            },
            None => nominal,
        }
    }

    /// [`decide`](Self::decide) with queueing delay deducted from the
    /// budget: the V/F point for `remaining_cycles` of work when
    /// `elapsed_queue_s` of the `remaining_seconds` budget was already
    /// burned waiting in a queue.
    ///
    /// This is the serving-stack entry point (paper §5.2 computes
    /// `Freq_opt = N_cycles / (T − T_elapsed)`): a sentence that sat
    /// queued has *less* true slack than its target implies, so handing
    /// the controller the undeducted budget makes it scale V/F as if the
    /// wait never happened — the sentence then finishes compute "on
    /// time" while its sojourn blows the deadline. With
    /// `elapsed_queue_s = 0` this is exactly [`decide`](Self::decide).
    pub fn decide_with_elapsed(
        &self,
        remaining_cycles: u64,
        remaining_seconds: f64,
        elapsed_queue_s: f64,
    ) -> DvfsDecision {
        debug_assert!(
            elapsed_queue_s >= 0.0 && elapsed_queue_s.is_finite(),
            "queueing delay must be finite and non-negative, got {elapsed_queue_s}"
        );
        self.decide(remaining_cycles, remaining_seconds - elapsed_queue_s)
    }

    /// Convenience: the decision for running `remaining_cycles` at
    /// maximum performance (nominal V/F).
    pub fn nominal(&self) -> DvfsDecision {
        DvfsDecision {
            voltage: self.cfg.vdd_nominal,
            freq_hz: self.cfg.freq_max_hz,
            feasible: true,
        }
    }

    /// Power draw of grid point `(voltage, freq_hz)` relative to the
    /// nominal point: `(V/V_nom)² · (f/f_nom)` — the dynamic-power
    /// scaling a fleet power budget divides operating points by. The
    /// nominal point is 1.0; the floor point is well under 0.2 on the
    /// energy-optimal grid.
    pub fn relative_power(&self, voltage: f32, freq_hz: f64) -> f64 {
        let vr = voltage as f64 / self.cfg.vdd_nominal as f64;
        vr * vr * (freq_hz / self.cfg.freq_max_hz)
    }

    /// The fastest V/F grid point whose relative power (see
    /// [`relative_power`](Self::relative_power)) stays within
    /// `rel_cap`. Degenerate caps never stall the clock: a NaN, zero,
    /// or negative cap — and any cap below even the floor point's draw
    /// — returns the floor point (`vdd_min` at its grid frequency),
    /// the least power the accelerator can run at.
    pub fn power_capped_point(&self, rel_cap: f64) -> (f32, f64) {
        let floor = (self.cfg.vdd_min, self.vf.freq_at_voltage(self.cfg.vdd_min));
        // NaN, zero, and negative caps all fall back to the floor.
        if rel_cap.is_nan() || rel_cap <= 0.0 {
            return floor;
        }
        let mut best = floor;
        for p in self.vf.points() {
            if self.relative_power(p.voltage, p.freq_max_hz) <= rel_cap && p.freq_max_hz > best.1 {
                best = (p.voltage, p.freq_max_hz);
            }
        }
        best
    }

    /// [`decide`](Self::decide) under a relative power cap: the chosen
    /// operating point may not draw more than `rel_cap` of nominal
    /// power. When the unconstrained decision fits under the cap (or
    /// no work remains — zero cycles draw no sustained power), it is
    /// returned unchanged, bit for bit; otherwise the decision clamps
    /// to the fastest grid point within the cap and feasibility is
    /// recomputed *honestly* against the clamped frequency — a cap
    /// that forbids the deadline-meeting point yields an infeasible
    /// decision, never a silently re-priced one. A cap at or above
    /// 1.0 is unconstrained; degenerate caps fall back to the floor
    /// point (see [`power_capped_point`](Self::power_capped_point)),
    /// never a stalled clock.
    pub fn decide_power_capped(
        &self,
        remaining_cycles: u64,
        remaining_seconds: f64,
        rel_cap: f64,
    ) -> DvfsDecision {
        if rel_cap >= 1.0 {
            return self.decide(remaining_cycles, remaining_seconds);
        }
        let uncapped = self.decide(remaining_cycles, remaining_seconds);
        let (v_cap, f_cap) = self.power_capped_point(rel_cap);
        if remaining_cycles == 0 || uncapped.freq_hz <= f_cap * (1.0 + 1e-9) {
            return uncapped;
        }
        let need_s = remaining_cycles as f64 / f_cap;
        DvfsDecision {
            voltage: v_cap,
            freq_hz: f_cap,
            feasible: remaining_seconds > 0.0 && need_s <= remaining_seconds * (1.0 + 1e-9),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> DvfsController {
        DvfsController::new(AcceleratorConfig::energy_optimal())
    }

    #[test]
    fn loose_target_bottoms_out_at_vmin() {
        let ctl = controller();
        // 1M cycles in 100 ms = 10 MHz: far below fmax(0.5 V).
        let d = ctl.decide(1_000_000, 100e-3);
        assert!(d.feasible);
        assert_eq!(d.voltage, 0.50);
        assert!((d.freq_hz - 1e7).abs() < 1.0);
    }

    #[test]
    fn tight_target_needs_nominal() {
        let ctl = controller();
        // 0.99 GHz requirement: only nominal voltage suffices.
        let d = ctl.decide(990_000_000, 1.0);
        assert!(d.feasible);
        assert_eq!(d.voltage, 0.80);
    }

    #[test]
    fn infeasible_target_flags_violation() {
        let ctl = controller();
        let d = ctl.decide(2_000_000_000, 1.0); // needs 2 GHz
        assert!(!d.feasible);
        assert_eq!(d.voltage, 0.80);
        assert_eq!(d.freq_hz, 1.0e9);
    }

    #[test]
    fn deadline_is_always_met_when_feasible() {
        let ctl = controller();
        for &(cycles, secs) in &[
            (5_000_000u64, 12e-3f64),
            (40_000_000, 50e-3),
            (430_000_000, 500e-3),
        ] {
            let d = ctl.decide(cycles, secs);
            assert!(d.feasible);
            let finish = cycles as f64 / d.freq_hz;
            assert!(finish <= secs * 1.0001, "{finish} > {secs}");
            // Voltage supports the chosen frequency.
            assert!(ctl.vf_table().freq_at_voltage(d.voltage) + 1.0 >= d.freq_hz);
        }
    }

    #[test]
    fn lower_demand_never_increases_voltage() {
        let ctl = controller();
        let mut last_v = f32::INFINITY;
        for layers in (1..=12).rev() {
            let cycles = 3_600_000u64 * layers;
            let d = ctl.decide(cycles, 50e-3);
            assert!(d.voltage <= last_v + 1e-6);
            last_v = d.voltage;
        }
    }

    #[test]
    fn zero_work_rests_at_floor() {
        let ctl = controller();
        let d = ctl.decide(0, 10e-3);
        assert!(d.feasible);
        assert_eq!(d.voltage, 0.50);
    }

    #[test]
    fn zero_work_inside_transition_window_holds_nominal() {
        // Regression: zero remaining cycles used to return the floor
        // voltage as feasible even when the remaining budget could not
        // cover the nominal → vdd_min LDO slew + ADPLL relock. The
        // deadline is still met (there is no work), but the rail must
        // not start a transition it cannot finish.
        let ctl = controller();
        let cfg = AcceleratorConfig::energy_optimal();
        let transition_s = ctl.floor_transition_s();
        assert!(transition_s > 0.0);

        // Budget inside the transition window: hold nominal, feasible.
        let d = ctl.decide(0, transition_s * 0.5);
        assert!(d.feasible);
        assert_eq!(d.voltage, cfg.vdd_nominal);
        assert_eq!(d.freq_hz, cfg.freq_max_hz);

        // Budget past the window: rest at the floor as before.
        let d = ctl.decide(0, transition_s * 2.0);
        assert!(d.feasible);
        assert_eq!(d.voltage, cfg.vdd_min);
    }

    #[test]
    fn degenerate_budgets_never_ask_for_a_stopped_clock() {
        // Regression: an infinite budget (a "no deadline" request off
        // the wire) computed Freq_opt = cycles/∞ = 0 Hz, which the
        // accelerator simulator rejects with a panic. The controller
        // now rests at the floor point instead; a NaN budget holds
        // nominal, flagged infeasible.
        let ctl = controller();
        let cfg = AcceleratorConfig::energy_optimal();
        let d = ctl.decide(1_000_000, f64::INFINITY);
        assert!(d.feasible);
        assert_eq!(d.voltage, cfg.vdd_min);
        assert!(d.freq_hz > 0.0);
        let d = ctl.decide(1_000_000, f64::NAN);
        assert!(!d.feasible);
        assert_eq!(d.voltage, cfg.vdd_nominal);
        assert!(d.freq_hz > 0.0);
    }

    #[test]
    fn zero_elapsed_queue_is_bit_identical_to_decide() {
        let ctl = controller();
        for &(cycles, secs) in &[
            (0u64, 10e-3f64),
            (1_000_000, 100e-3),
            (40_000_000, 50e-3),
            (2_000_000_000, 1.0),
        ] {
            assert_eq!(
                ctl.decide_with_elapsed(cycles, secs, 0.0),
                ctl.decide(cycles, secs),
                "{cycles} cycles in {secs}s"
            );
        }
    }

    #[test]
    fn elapsed_queue_shrinks_slack_monotonically() {
        // More time burned in queue can only push the operating point
        // up (or leave it unchanged) — never let it relax further.
        let ctl = controller();
        let cycles = 40_000_000u64;
        let target = 100e-3;
        let mut last_v = 0.0f32;
        for elapsed in [0.0, 20e-3, 40e-3, 60e-3, 80e-3] {
            let d = ctl.decide_with_elapsed(cycles, target, elapsed);
            assert!(
                d.voltage >= last_v - 1e-6,
                "elapsed {elapsed}: voltage {} under previous {last_v}",
                d.voltage
            );
            last_v = d.voltage;
        }
        // Queueing past the whole budget is an infeasible decision.
        let d = ctl.decide_with_elapsed(cycles, target, target);
        assert!(!d.feasible);
    }

    #[test]
    fn mid_sentence_redecide_tracks_remaining_work() {
        // The resumable-session contract at the controller level: a
        // sentence preempted mid-stretch re-decides with the layers
        // already run and the time already spent (compute + parked)
        // deducted. The re-decision must stay feasible whenever the
        // original plan plus the parked stall still fits the budget,
        // and must come back at least as fast as the original rate
        // when the stall consumed proportionally more budget than the
        // completed work returned.
        let ctl = controller();
        let layer = 3_600_000u64;
        let total = layer * 12;
        let target = 100e-3;
        let first = ctl.decide(total, target);
        assert!(first.feasible);
        for done in [2u64, 6, 11] {
            let spent = done as f64 * layer as f64 / first.freq_hz;
            for parked in [0.0, 10e-3, 30e-3] {
                let remaining = total - layer * done;
                let re = ctl.decide(remaining, target - spent - parked);
                if target - spent - parked > remaining as f64 / ctl.cfg.freq_max_hz {
                    assert!(re.feasible, "done {done} parked {parked}");
                }
                if parked > 0.0 {
                    assert!(
                        re.freq_hz >= first.freq_hz - 1.0,
                        "a stall can only push the clock up: {} vs {}",
                        re.freq_hz,
                        first.freq_hz
                    );
                }
            }
        }
    }

    #[test]
    fn expired_budget_is_infeasible() {
        let ctl = controller();
        let d = ctl.decide(1000, 0.0);
        assert!(!d.feasible);
        let d = ctl.decide(1000, -1.0);
        assert!(!d.feasible);
    }

    #[test]
    fn relative_power_is_anchored_at_nominal() {
        let ctl = controller();
        let cfg = AcceleratorConfig::energy_optimal();
        let nominal = ctl.relative_power(cfg.vdd_nominal, cfg.freq_max_hz);
        assert!((nominal - 1.0).abs() < 1e-12);
        let floor = ctl.relative_power(cfg.vdd_min, ctl.vf_table().freq_at_voltage(cfg.vdd_min));
        assert!(floor > 0.0 && floor < 0.2, "floor draw {floor}");
        // Monotone along the grid: every step up in voltage draws more.
        let mut last = 0.0;
        for p in ctl.vf_table().points() {
            let rp = ctl.relative_power(p.voltage, p.freq_max_hz);
            assert!(rp > last, "{rp} at {} V", p.voltage);
            last = rp;
        }
    }

    #[test]
    fn power_cap_clamps_the_point_and_judges_feasibility_honestly() {
        let ctl = controller();
        let cfg = AcceleratorConfig::energy_optimal();
        // A 0.99 GHz demand needs nominal; a 50% power cap forbids it.
        let uncapped = ctl.decide(990_000_000, 1.0);
        assert!(uncapped.feasible);
        assert_eq!(uncapped.voltage, cfg.vdd_nominal);
        let capped = ctl.decide_power_capped(990_000_000, 1.0, 0.5);
        assert!(capped.voltage < uncapped.voltage);
        assert!(capped.freq_hz < uncapped.freq_hz);
        assert!(
            ctl.relative_power(capped.voltage, capped.freq_hz) <= 0.5 + 1e-12,
            "capped point must respect the cap"
        );
        // The clamped clock cannot finish 0.99 G cycles in 1 s iff it
        // runs under 0.99 GHz — feasibility is recomputed, not copied.
        assert_eq!(
            capped.feasible,
            990_000_000.0 / capped.freq_hz <= 1.0 + 1e-9
        );
        assert!(!capped.feasible, "the cap forbids the deadline here");

        // A demand the capped point *can* still meet stays feasible.
        let (_, f_cap) = ctl.power_capped_point(0.5);
        let cycles = (f_cap * 0.5) as u64;
        let ok = ctl.decide_power_capped(cycles, 1.0, 0.5);
        assert!(ok.feasible);
        assert!(cycles as f64 / ok.freq_hz <= 1.0 + 1e-9);
    }

    #[test]
    fn generous_power_cap_is_bit_identical_to_uncapped() {
        let ctl = controller();
        for &(cycles, secs) in &[
            (0u64, 10e-3f64),
            (1_000_000, 100e-3),
            (40_000_000, 50e-3),
            (990_000_000, 1.0),
            (2_000_000_000, 1.0),
            (1000, 0.0),
        ] {
            for cap in [1.0, 2.5, f64::INFINITY] {
                assert_eq!(
                    ctl.decide_power_capped(cycles, secs, cap),
                    ctl.decide(cycles, secs),
                    "{cycles} cycles in {secs}s under cap {cap}"
                );
            }
        }
    }

    #[test]
    fn slow_decisions_under_the_cap_are_untouched() {
        let ctl = controller();
        // A loose budget already rests far below the cap point: the
        // cap must not perturb it.
        let uncapped = ctl.decide(1_000_000, 100e-3);
        assert_eq!(uncapped.voltage, 0.50);
        assert_eq!(ctl.decide_power_capped(1_000_000, 100e-3, 0.5), uncapped);
    }

    #[test]
    fn degenerate_power_caps_fall_back_to_the_floor_not_a_stalled_clock() {
        // The envelope arrives from a coordinator thread and, on custom
        // backends, from arbitrary arithmetic: zero, negative, NaN, and
        // below-floor caps must land on the floor point — a running
        // clock — never 0 Hz (the accelerator simulator panics on a
        // stopped clock) and never a voltage below the grid.
        let ctl = controller();
        let cfg = AcceleratorConfig::energy_optimal();
        let f_floor = ctl.vf_table().freq_at_voltage(cfg.vdd_min);
        let floor_draw = ctl.relative_power(cfg.vdd_min, f_floor);
        for cap in [0.0, -1.0, f64::NAN, floor_draw * 0.5, f64::MIN_POSITIVE] {
            let (v, f) = ctl.power_capped_point(cap);
            assert_eq!(v, cfg.vdd_min, "cap {cap}");
            assert_eq!(f, f_floor, "cap {cap}");
            assert!(f > 0.0);
            let d = ctl.decide_power_capped(40_000_000, 50e-3, cap);
            assert_eq!(d.voltage, cfg.vdd_min, "cap {cap}");
            assert_eq!(d.freq_hz, f_floor, "cap {cap}");
            // Honest verdict: feasible iff the floor clock fits.
            assert_eq!(d.feasible, 40_000_000.0 / f_floor <= 50e-3 * (1.0 + 1e-9));
        }
    }
}
