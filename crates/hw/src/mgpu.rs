//! Analytic Nvidia Jetson TX2 mobile-GPU baseline (paper Fig. 8).
//!
//! The paper measured CUDA implementations on a TX2; we anchor an
//! analytic model to the reported per-sentence latencies (~113–129 ms for
//! full 12-layer inference) and a board-level GPU power representative of
//! small-batch Transformer inference on that part. Adaptive attention
//! span is the only model optimization that transfers to the GPU (the
//! paper applies AAS to the mGPU as well); bitmask sparse execution does
//! not help dense GPU kernels.

use serde::{Deserialize, Serialize};

/// The TX2-class mobile GPU model.
///
/// # Example
///
/// ```
/// use edgebert_hw::MobileGpu;
///
/// let gpu = MobileGpu::tegra_x2();
/// let full = gpu.inference_latency_s(12, 1.0);
/// assert!(full > 0.1 && full < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobileGpu {
    /// Latency of one full 12-layer ALBERT inference, seconds.
    pub full_inference_s: f64,
    /// Average board GPU power during inference, watts.
    pub power_w: f64,
    /// Fixed per-sentence overhead (kernel launch, host sync), seconds.
    pub overhead_s: f64,
}

impl MobileGpu {
    /// The Jetson TX2 anchor point.
    pub fn tegra_x2() -> Self {
        Self {
            full_inference_s: 0.122,
            power_w: 1.8,
            overhead_s: 0.004,
        }
    }

    /// Latency for `layers` encoder layers with a FLOP scale factor
    /// (`flop_scale = 1/1.22` models MNLI's AAS reduction, for example).
    pub fn inference_latency_s(&self, layers: usize, flop_scale: f64) -> f64 {
        let per_layer = (self.full_inference_s - self.overhead_s) / 12.0;
        self.overhead_s + per_layer * layers as f64 * flop_scale
    }

    /// Energy for `layers` encoder layers, joules.
    pub fn inference_energy_j(&self, layers: usize, flop_scale: f64) -> f64 {
        self.inference_latency_s(layers, flop_scale) * self.power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_near_reported_range() {
        let gpu = MobileGpu::tegra_x2();
        let l = gpu.inference_latency_s(12, 1.0);
        assert!((0.110..0.135).contains(&l), "latency {l}");
        let e = gpu.inference_energy_j(12, 1.0);
        assert!((0.15..0.30).contains(&e), "energy {e}");
    }

    #[test]
    fn aas_scales_compute_only() {
        let gpu = MobileGpu::tegra_x2();
        let base = gpu.inference_latency_s(12, 1.0);
        let aas = gpu.inference_latency_s(12, 1.0 / 1.22);
        assert!(aas < base);
        // Overhead is not scaled.
        assert!(aas > base / 1.22);
    }

    #[test]
    fn fewer_layers_cost_less() {
        let gpu = MobileGpu::tegra_x2();
        assert!(gpu.inference_latency_s(4, 1.0) < gpu.inference_latency_s(12, 1.0));
        assert!(gpu.inference_energy_j(1, 1.0) < gpu.inference_energy_j(2, 1.0));
    }
}
