//! Analytic Nvidia Jetson TX2 mobile-GPU baseline (paper Fig. 8).
//!
//! The paper measured CUDA implementations on a TX2; we anchor an
//! analytic model to the reported per-sentence latencies (~113–129 ms for
//! full 12-layer inference) and a board-level GPU power representative of
//! small-batch Transformer inference on that part. Adaptive attention
//! span is the only model optimization that transfers to the GPU (the
//! paper applies AAS to the mGPU as well); bitmask sparse execution does
//! not help dense GPU kernels.

use serde::{Deserialize, Serialize};

/// The TX2-class mobile GPU model.
///
/// # Example
///
/// ```
/// use edgebert_hw::MobileGpu;
///
/// let gpu = MobileGpu::tegra_x2();
/// let full = gpu.inference_latency_s(12, 1.0);
/// assert!(full > 0.1 && full < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobileGpu {
    /// Latency of one full `anchor_layers`-deep inference, seconds.
    pub full_inference_s: f64,
    /// Average board GPU power during inference, watts.
    pub power_w: f64,
    /// Fixed per-sentence overhead (kernel launch, host sync), seconds.
    pub overhead_s: f64,
    /// Encoder depth the `full_inference_s` anchor was measured at. The
    /// per-layer cost is `(full_inference_s − overhead_s) / anchor_layers`,
    /// so pricing an early exit or a non-ALBERT-base depth stays anchored
    /// to the measurement instead of assuming 12 layers.
    pub anchor_layers: usize,
}

impl Default for MobileGpu {
    /// The Jetson TX2 anchor point ([`tegra_x2`](Self::tegra_x2)).
    fn default() -> Self {
        Self::tegra_x2()
    }
}

impl MobileGpu {
    /// The Jetson TX2 anchor point (a 12-layer ALBERT measurement).
    pub fn tegra_x2() -> Self {
        Self {
            full_inference_s: 0.122,
            power_w: 1.8,
            overhead_s: 0.004,
            anchor_layers: 12,
        }
    }

    /// A FLOP scale as the cost functions will apply it: scales arrive
    /// from the wire and from derived workload ratios, so a non-finite
    /// or non-positive value falls back to 1.0 (unscaled) instead of
    /// propagating NaN into report tables.
    pub fn effective_flop_scale(flop_scale: f64) -> f64 {
        if flop_scale.is_finite() && flop_scale > 0.0 {
            flop_scale
        } else {
            1.0
        }
    }

    /// The fixed per-sentence overhead as charged: a non-finite or
    /// negative overhead sanitizes to zero (`f64::max` discards NaN).
    pub fn effective_overhead_s(&self) -> f64 {
        self.overhead_s.max(0.0)
    }

    /// The board power as charged: a non-finite or negative power
    /// sanitizes to zero rather than propagating NaN (or negative
    /// energy) into report tables.
    pub fn effective_power_w(&self) -> f64 {
        self.power_w.max(0.0)
    }

    /// Latency of one encoder layer at a FLOP scale factor, seconds.
    /// Derived from the anchor measurement; a degenerate anchor (zero
    /// depth, non-finite or negative compute time) prices to zero rather
    /// than NaN or negative time.
    pub fn per_layer_latency_s(&self, flop_scale: f64) -> f64 {
        let anchor = self.anchor_layers.max(1) as f64;
        let compute_s = (self.full_inference_s - self.effective_overhead_s()).max(0.0);
        compute_s / anchor * Self::effective_flop_scale(flop_scale)
    }

    /// Latency for `layers` encoder layers with a FLOP scale factor
    /// (`flop_scale = 1/1.22` models MNLI's AAS reduction, for example).
    pub fn inference_latency_s(&self, layers: usize, flop_scale: f64) -> f64 {
        self.effective_overhead_s() + self.per_layer_latency_s(flop_scale) * layers as f64
    }

    /// Energy for `layers` encoder layers, joules.
    pub fn inference_energy_j(&self, layers: usize, flop_scale: f64) -> f64 {
        self.inference_latency_s(layers, flop_scale) * self.effective_power_w()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_near_reported_range() {
        let gpu = MobileGpu::tegra_x2();
        let l = gpu.inference_latency_s(12, 1.0);
        assert!((0.110..0.135).contains(&l), "latency {l}");
        let e = gpu.inference_energy_j(12, 1.0);
        assert!((0.15..0.30).contains(&e), "energy {e}");
    }

    #[test]
    fn aas_scales_compute_only() {
        let gpu = MobileGpu::tegra_x2();
        let base = gpu.inference_latency_s(12, 1.0);
        let aas = gpu.inference_latency_s(12, 1.0 / 1.22);
        assert!(aas < base);
        // Overhead is not scaled.
        assert!(aas > base / 1.22);
    }

    #[test]
    fn fewer_layers_cost_less() {
        let gpu = MobileGpu::tegra_x2();
        assert!(gpu.inference_latency_s(4, 1.0) < gpu.inference_latency_s(12, 1.0));
        assert!(gpu.inference_energy_j(1, 1.0) < gpu.inference_energy_j(2, 1.0));
    }

    #[test]
    fn per_layer_cost_follows_the_anchor_depth() {
        // Regression: the per-layer derivation hardcoded `/ 12.0`, so an
        // anchor measured at a different encoder depth mispriced every
        // layer. The same measured compute time spread over 6 layers
        // must cost twice as much per layer.
        let tx2 = MobileGpu::tegra_x2();
        assert_eq!(tx2.anchor_layers, 12);
        let shallow = MobileGpu {
            anchor_layers: 6,
            ..tx2
        };
        let per12 = tx2.per_layer_latency_s(1.0);
        let per6 = shallow.per_layer_latency_s(1.0);
        assert!((per6 / per12 - 2.0).abs() < 1e-12, "ratio {}", per6 / per12);
        // Full inference at each model's own depth costs the same: both
        // anchors describe the same measurement.
        assert!(
            (tx2.inference_latency_s(12, 1.0) - shallow.inference_latency_s(6, 1.0)).abs() < 1e-15
        );
        // A zero-depth anchor prices like depth 1 instead of dividing by 0.
        let degenerate = MobileGpu {
            anchor_layers: 0,
            ..tx2
        };
        assert!(degenerate.per_layer_latency_s(1.0).is_finite());
    }

    #[test]
    fn wire_garbage_scales_and_anchors_never_produce_nan() {
        // Regression: a NaN/∞/negative flop scale propagated straight
        // into report tables. Degenerate scales now fall back to 1.0.
        let gpu = MobileGpu::tegra_x2();
        let clean_lat = gpu.inference_latency_s(12, 1.0);
        let clean_e = gpu.inference_energy_j(12, 1.0);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.5, 0.0] {
            assert_eq!(gpu.inference_latency_s(12, bad), clean_lat, "scale {bad}");
            assert_eq!(gpu.inference_energy_j(12, bad), clean_e, "scale {bad}");
        }
        // A wire-deserialized model with garbage anchor fields still
        // prices finite, non-negative costs.
        let garbage = MobileGpu {
            full_inference_s: f64::NAN,
            power_w: 1.8,
            overhead_s: f64::NAN,
            anchor_layers: 12,
        };
        let lat = garbage.inference_latency_s(12, 1.0);
        assert!(lat.is_finite() && lat >= 0.0, "latency {lat}");
        // Garbage power must not leak NaN or negative energy either.
        for bad_power in [f64::NAN, f64::NEG_INFINITY, -1.8] {
            let garbage = MobileGpu {
                power_w: bad_power,
                ..MobileGpu::tegra_x2()
            };
            let e = garbage.inference_energy_j(12, 1.0);
            assert!(e.is_finite() && e >= 0.0, "energy {e} at power {bad_power}");
        }
        let inverted = MobileGpu {
            overhead_s: 1.0, // overhead above the full anchor latency
            ..MobileGpu::tegra_x2()
        };
        let lat = inverted.inference_latency_s(12, 1.0);
        assert!(lat.is_finite() && lat >= 0.0, "latency {lat}");
    }

    #[test]
    fn default_is_the_tegra_anchor() {
        assert_eq!(MobileGpu::default(), MobileGpu::tegra_x2());
    }
}
