//! Synthesizable low-dropout regulator (LDO) transient model.
//!
//! Table 4 of the paper: 3.8 ns per 50 mV response time, 99.2 % peak
//! current efficiency, 200 mA maximum load. The LDO scales the
//! accelerator supply between 0.5 V and 0.8 V in 25 mV steps; Fig. 7's
//! SPICE traces show transitions settling within 100 ns.

use serde::{Deserialize, Serialize};

/// LDO performance specification (paper Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LdoSpec {
    /// Slew response, nanoseconds per 50 mV of voltage change.
    pub response_ns_per_50mv: f64,
    /// Peak current efficiency at maximum load (fraction).
    pub peak_current_efficiency: f64,
    /// Maximum load current, milliamps.
    pub max_load_ma: f64,
    /// Dropout between the (tracking) input rail and the output, volts.
    /// The distributed power-header LDO sits under a rail that follows
    /// the requested output with a fixed headroom, so the regulator loss
    /// is the dropout rather than a full linear-regulator `V_in - V_out`
    /// drop — this is what preserves the paper's quadratic DVFS savings.
    pub dropout_v: f32,
}

impl Default for LdoSpec {
    fn default() -> Self {
        Self {
            response_ns_per_50mv: 3.8,
            peak_current_efficiency: 0.992,
            max_load_ma: 200.0,
            dropout_v: 0.05,
        }
    }
}

/// One point of a voltage transition waveform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Time since the transition request, nanoseconds.
    pub t_ns: f64,
    /// Output voltage, volts.
    pub voltage: f32,
}

/// The LDO with its current output state.
///
/// # Example
///
/// ```
/// use edgebert_hw::Ldo;
///
/// let mut ldo = Ldo::new(0.80);
/// let trace = ldo.transition(0.70);
/// // Fig. 7: transitions settle within 100 ns.
/// assert!(trace.last().unwrap().t_ns <= 100.0);
/// assert!((ldo.voltage() - 0.70).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ldo {
    spec: LdoSpec,
    voltage: f32,
}

impl Ldo {
    /// Creates an LDO with the default (Table 4) spec at an initial
    /// output voltage.
    pub fn new(initial_v: f32) -> Self {
        Self {
            spec: LdoSpec::default(),
            voltage: initial_v,
        }
    }

    /// Creates an LDO with a custom spec.
    pub fn with_spec(spec: LdoSpec, initial_v: f32) -> Self {
        Self {
            spec,
            voltage: initial_v,
        }
    }

    /// The spec in use.
    pub fn spec(&self) -> &LdoSpec {
        &self.spec
    }

    /// Current output voltage.
    pub fn voltage(&self) -> f32 {
        self.voltage
    }

    /// Time to slew between two voltages, nanoseconds.
    pub fn transition_time_ns(&self, from: f32, to: f32) -> f64 {
        ((to - from).abs() as f64 / 0.050) * self.spec.response_ns_per_50mv
    }

    /// Performs a transition to `target`, returning the waveform sampled
    /// every nanosecond (linear slew, matching the near-linear Fig. 7
    /// traces). Updates the output state.
    pub fn transition(&mut self, target: f32) -> Vec<TracePoint> {
        let from = self.voltage;
        let duration = self.transition_time_ns(from, target);
        let steps = (duration.ceil() as usize).max(1);
        let mut trace = Vec::with_capacity(steps + 1);
        for i in 0..=steps {
            let t = duration * i as f64 / steps as f64;
            let v = from + (target - from) * (t / duration.max(1e-12)) as f32;
            trace.push(TracePoint {
                t_ns: t,
                voltage: v,
            });
        }
        self.voltage = target;
        trace
    }

    /// Power efficiency at output voltage `v`: current efficiency
    /// (99.2 % peak) times the voltage ratio across the dropout,
    /// `V_out / (V_out + V_dropout)` — the paper's "nearly linear scaled
    /// power efficiency".
    pub fn efficiency(&self, v_out: f32) -> f64 {
        let ratio = (v_out / (v_out + self.spec.dropout_v)) as f64;
        self.spec.peak_current_efficiency * ratio
    }

    /// Energy overhead (joules) the LDO dissipates while delivering
    /// `load_energy_j` to the accelerator at output voltage `v`.
    pub fn overhead_j(&self, load_energy_j: f64, v: f32) -> f64 {
        let eff = self.efficiency(v).max(1e-3);
        load_energy_j * (1.0 / eff - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_spec_defaults() {
        let spec = LdoSpec::default();
        assert_eq!(spec.response_ns_per_50mv, 3.8);
        assert_eq!(spec.peak_current_efficiency, 0.992);
        assert_eq!(spec.max_load_ma, 200.0);
    }

    #[test]
    fn full_range_transition_within_100ns() {
        // Largest DVFS swing: 0.5 ↔ 0.8 V = 300 mV = 6 x 50 mV => 22.8 ns
        // of slew; Fig. 7's "within 100 ns" bound holds with margin.
        let mut ldo = Ldo::new(0.50);
        let t = ldo.transition_time_ns(0.50, 0.80);
        assert!((t - 22.8).abs() < 1e-3);
        let trace = ldo.transition(0.80);
        assert!(trace.last().unwrap().t_ns <= 100.0);
        assert!((trace.last().unwrap().voltage - 0.80).abs() < 1e-6);
    }

    #[test]
    fn waveform_is_monotone_and_endpoints_exact() {
        let mut ldo = Ldo::new(0.80);
        let trace = ldo.transition(0.65);
        assert!((trace[0].voltage - 0.80).abs() < 1e-6);
        assert!((trace.last().unwrap().voltage - 0.65).abs() < 1e-6);
        for w in trace.windows(2) {
            assert!(w[1].voltage <= w[0].voltage + 1e-6);
            assert!(w[1].t_ns >= w[0].t_ns);
        }
    }

    #[test]
    fn zero_transition_is_instant() {
        let mut ldo = Ldo::new(0.7);
        assert_eq!(ldo.transition_time_ns(0.7, 0.7), 0.0);
        let trace = ldo.transition(0.7);
        assert!(!trace.is_empty());
    }

    #[test]
    fn efficiency_peaks_at_nominal_and_scales_down() {
        let ldo = Ldo::new(0.8);
        // 0.992 x 0.8/0.85 ~= 0.934 at nominal; never above the current
        // efficiency ceiling.
        let at_nom = ldo.efficiency(0.80);
        assert!(
            (at_nom - 0.9336).abs() < 1e-3,
            "nominal efficiency {at_nom}"
        );
        let at_low = ldo.efficiency(0.50);
        assert!(at_low < at_nom);
        assert!(at_low > 0.85);
        // Overhead grows as efficiency falls.
        assert!(ldo.overhead_j(1.0, 0.5) > ldo.overhead_j(1.0, 0.8));
    }
}
