//! Property-based tests for the hardware model.

use edgebert_hw::workload::EncoderWorkload;
use edgebert_hw::{AcceleratorConfig, AcceleratorSim, Ldo, VfTable, WorkloadParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ldo_transitions_settle_within_spec(from_step in 0usize..13, to_step in 0usize..13) {
        let from = 0.5 + from_step as f32 * 0.025;
        let to = 0.5 + to_step as f32 * 0.025;
        let mut ldo = Ldo::new(from);
        let trace = ldo.transition(to);
        // Fig. 7 bound: every DVFS transition settles within 100 ns.
        prop_assert!(trace.last().unwrap().t_ns <= 100.0);
        prop_assert!((ldo.voltage() - to).abs() < 1e-6);
        // Waveform is monotone toward the target.
        for w in trace.windows(2) {
            if to >= from {
                prop_assert!(w[1].voltage + 1e-6 >= w[0].voltage);
            } else {
                prop_assert!(w[1].voltage <= w[0].voltage + 1e-6);
            }
        }
    }

    #[test]
    fn vf_lookup_is_sound_and_tight(freq_mhz in 1.0f64..1000.0) {
        let vf = VfTable::from_config(&AcceleratorConfig::energy_optimal());
        let freq = freq_mhz * 1e6;
        if let Some(v) = vf.min_voltage_for_freq(freq) {
            prop_assert!(vf.freq_at_voltage(v) >= freq * 0.999);
            let lower = v - 0.025;
            if lower >= 0.5 - 1e-6 {
                prop_assert!(vf.freq_at_voltage(lower) < freq);
            }
        } else {
            prop_assert!(freq > 1.0e9);
        }
    }

    #[test]
    fn sparsity_never_changes_cycles_only_energy(
        density_pct in 5u32..100,
        spans_off in 0usize..12,
    ) {
        let cfg = AcceleratorConfig::energy_optimal();
        let mut spans = vec![64.0f32; 12];
        for s in spans.iter_mut().take(spans_off) {
            *s = 0.0;
        }
        let mut base = WorkloadParams::albert_base();
        base.head_spans = spans.clone();
        base.aas_enabled = true;
        let dense_wl = EncoderWorkload::build(&cfg, &base);
        let mut sparse = base.clone();
        sparse.sparse_enabled = true;
        sparse.weight_density = density_pct as f64 / 100.0;
        let sparse_wl = EncoderWorkload::build(&cfg, &sparse);
        prop_assert_eq!(dense_wl.cycles(), sparse_wl.cycles());
        prop_assert!(sparse_wl.energy_pj() <= dense_wl.energy_pj() + 1e-6);
    }

    #[test]
    fn energy_monotone_in_voltage(steps in 0usize..13, layers in 1usize..13) {
        let sim = AcceleratorSim::new(AcceleratorConfig::energy_optimal());
        let wl = sim.layer_workload(&WorkloadParams::albert_base());
        let v = 0.5 + steps as f32 * 0.025;
        let low = sim.run_layers(&wl, layers, v, 0.4e9);
        let nom = sim.run_layers(&wl, layers, 0.8, 0.4e9);
        if v < 0.8 {
            prop_assert!(low.energy_j < nom.energy_j);
        }
        prop_assert_eq!(low.cycles, nom.cycles);
    }

    #[test]
    fn more_heads_off_never_costs_more(off_a in 0usize..=12, off_b in 0usize..=12) {
        prop_assume!(off_a <= off_b);
        let cfg = AcceleratorConfig::energy_optimal();
        let build = |off: usize| {
            let mut spans = vec![32.0f32; 12];
            for s in spans.iter_mut().take(off) {
                *s = 0.0;
            }
            let wl = WorkloadParams::albert_base().with_optimizations(0.5, &spans);
            EncoderWorkload::build(&cfg, &wl)
        };
        let a = build(off_a);
        let b = build(off_b);
        prop_assert!(b.cycles() <= a.cycles());
        prop_assert!(b.energy_pj() <= a.energy_pj() + 1e-6);
    }
}
