//! The analyzer run on its own workspace: the repo must be clean under
//! the checked-in baseline, and the contracts the serving stack claims
//! in its comments — hot-path telemetry push, hot-path lane pop — must
//! actually carry the annotations the analyzer verifies.

use edgebert_analyzer::{analyze, baseline, collect_workspace_files, workspace_root};
use std::path::Path;

fn workspace_report() -> edgebert_analyzer::Report {
    let root = workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("analyzer lives inside the workspace");
    let files = collect_workspace_files(&root).expect("walk workspace sources");
    assert!(
        files.len() > 20,
        "workspace walk looks wrong: {} files",
        files.len()
    );
    analyze(&files)
}

#[test]
fn workspace_is_clean_under_checked_in_baseline() {
    let root = workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let text =
        std::fs::read_to_string(root.join("analyzer-baseline.toml")).expect("baseline present");
    let entries = baseline::parse(&text).expect("baseline parses");
    let report = workspace_report();
    let (remaining, _baselined, unused) = baseline::apply(report.findings, &entries);
    assert!(
        remaining.is_empty(),
        "unbaselined findings:\n{}",
        remaining
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        unused.is_empty(),
        "stale baseline entries: {unused:?} — remove them from analyzer-baseline.toml"
    );
}

#[test]
fn telemetry_push_and_lane_pop_paths_are_declared_hot() {
    let report = workspace_report();
    let hot: Vec<&str> = report
        .hot_path_fns
        .iter()
        .map(|(_, q)| q.as_str())
        .collect();
    for expected in [
        // Telemetry push path.
        "Ring::push",
        "TraceRing::record",
        "SeriesRing::record",
        "SpanRecorder::emit",
        "SpanRecorder::emit_at",
        "Telemetry::record_at",
        "Telemetry::sample",
        // Lane pop path.
        "Lane::pop_work",
        "Lane::best",
        "Lane::finish_pop",
    ] {
        assert!(
            hot.contains(&expected),
            "{expected} lost its hot-path annotation (have: {hot:?})"
        );
    }
}

#[test]
fn shard_drain_loops_are_declared_worker_loops() {
    let report = workspace_report();
    let loops: Vec<&str> = report
        .worker_loop_fns
        .iter()
        .map(|(_, q)| q.as_str())
        .collect();
    for expected in ["static_shard_loop", "elastic_shard_loop", "sampler_loop"] {
        assert!(
            loops.contains(&expected),
            "{expected} lost its worker-loop annotation (have: {loops:?})"
        );
    }
}
