//! Fixture: interprocedural nested lock — the helper returns a guard,
//! and the caller invokes it while already holding one.

use std::sync::{Mutex, MutexGuard};

pub struct State {
    pub stats: Mutex<u64>,
    pub queue: Mutex<Vec<u32>>,
}

impl State {
    pub fn stats_lock(&self) -> MutexGuard<'_, u64> {
        self.stats.lock().unwrap()
    }

    pub fn drain(&self) -> u64 {
        let queue = self.queue.lock().unwrap();
        let stats = self.stats_lock(); // line 18: nested-lock (one level deep)
        *stats + queue.len() as u64
    }
}
