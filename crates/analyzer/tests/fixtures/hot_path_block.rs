//! Fixture: a blocking lock inside a declared hot path — `try_lock`
//! (count a drop on contention) is the contract here.

use std::sync::Mutex;

// analyzer: hot-path
pub fn push(ring: &Mutex<[u32; 8]>, head: &mut usize, x: u32) {
    let mut slots = ring.lock(); // line 8: hot-path-block
    if let Ok(slots) = slots.as_mut() {
        slots[*head % 8] = x;
        *head += 1;
    }
}
