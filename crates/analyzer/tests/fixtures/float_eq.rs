//! Fixture: exact float equality against a non-zero literal — the
//! value is computed, so bit-exact comparison is a latent flake.

pub fn at_quarter(x: f64) -> bool {
    x == 0.25 // line 5: float-eq
}
