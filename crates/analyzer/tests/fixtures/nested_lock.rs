//! Fixture: direct nested lock acquisition — the second `lock()` runs
//! while the first guard is still live.

use std::sync::Mutex;

pub struct Pair {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}

pub fn sum(p: &Pair) -> u32 {
    let ga = p.a.lock().unwrap();
    let gb = p.b.lock().unwrap(); // line 13: nested-lock
    *ga + *gb
}
