//! Fixture: a lane lock held across an inference-session step — the
//! whole queue stalls for the duration of a forward pass.

use std::sync::Mutex;

pub struct Session;

impl Session {
    pub fn step(&mut self) {}
}

pub fn serve_locked(queue: &Mutex<Vec<u32>>, session: &mut Session) {
    let guard = queue.lock().unwrap();
    session.step(); // line 14: lock-across-step
    drop(guard);
}
