//! Fixture: heap allocation inside a declared hot path.

// analyzer: hot-path
pub fn record(values: &mut Vec<u32>, x: u32) {
    let staged = vec![x, x + 1]; // line 5: hot-path-alloc
    values.extend_from_slice(&staged);
}
