//! Fixture: disciplined code — deterministic comparisons, scoped
//! locks released before the next acquisition, no hot-path sins.

use std::sync::Mutex;

pub struct Tally {
    pub served: Mutex<u64>,
    pub queue: Mutex<Vec<f64>>,
}

pub fn serve(t: &Tally, deadline_s: f64) -> Option<f64> {
    let popped = {
        let mut queue = t.queue.lock().unwrap();
        queue.pop()
    };
    let value = popped?;
    let mut served = t.served.lock().unwrap();
    *served += 1;
    if value.total_cmp(&deadline_s).is_le() {
        Some(value)
    } else {
        None
    }
}
