//! Fixture: a wall-clock read outside any allowlisted wall-clock
//! module — nondeterminism leaking into reproducible code.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now() // line 5: wall-clock
}
