//! Fixture: a panicking unwrap inside a declared hot path.

// analyzer: hot-path
pub fn latest(samples: &[f64]) -> f64 {
    *samples.last().unwrap() // line 5: hot-path-panic
}
