//! Fixture: a suppression without its mandatory reason string — the
//! directive itself is the finding, and it cannot be suppressed.

// analyzer: allow(wall-clock)
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
