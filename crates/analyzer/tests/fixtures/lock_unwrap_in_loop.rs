//! Fixture: `lock().expect()` inside an annotated worker drain loop —
//! one poisoned mutex cascades a panic across every sibling shard.

use std::sync::Mutex;

// analyzer: worker-loop
pub fn drain(queue: &Mutex<Vec<u32>>) {
    loop {
        let mut q = queue.lock().expect("queue mutex"); // line 9: lock-unwrap-in-loop
        if q.pop().is_none() {
            break;
        }
    }
}
