//! Fixture: iterating a HashMap — order varies run to run, so any
//! derived output is nondeterministic.

use std::collections::HashMap;

pub fn total(counts: &HashMap<String, u64>) -> u64 {
    let mut sum = 0;
    for (_k, v) in counts {
        // line 8: hash-iteration
        sum += v;
    }
    sum
}
