//! Fixture: an unseeded RNG — every run draws a different stream.

pub fn jitter() -> u64 {
    let mut rng = rand::thread_rng(); // line 4: unseeded-rng
    rng.next_u64()
}
