//! Fixture corpus: every lint family has a minimal source file under
//! `tests/fixtures/` that must produce *exactly* its expected finding —
//! same lint, same line, same function — plus a clean fixture that must
//! stay silent and a broken-suppression fixture whose directive is
//! itself the finding.

use edgebert_analyzer::{analyze, Finding, Lint};
use std::path::Path;

fn run_fixture(name: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    analyze(&[(name.to_string(), src)]).findings
}

/// Asserts the fixture yields exactly one finding of `lint` at `line`
/// inside `function`.
fn assert_single(name: &str, lint: Lint, line: u32, function: &str) {
    let findings = run_fixture(name);
    assert_eq!(
        findings.len(),
        1,
        "{name}: expected exactly one finding, got {findings:?}"
    );
    let f = &findings[0];
    assert_eq!(f.lint, lint, "{name}: wrong lint: {f}");
    assert_eq!(f.line, line, "{name}: wrong line: {f}");
    assert_eq!(f.function, function, "{name}: wrong function: {f}");
}

#[test]
fn nested_lock_direct() {
    assert_single("nested_lock.rs", Lint::NestedLock, 13, "sum");
}

#[test]
fn nested_lock_one_level_interprocedural() {
    assert_single(
        "nested_lock_interprocedural.rs",
        Lint::NestedLock,
        18,
        "State::drain",
    );
}

#[test]
fn lock_held_across_session_step() {
    assert_single(
        "lock_across_step.rs",
        Lint::LockAcrossStep,
        14,
        "serve_locked",
    );
}

#[test]
fn lock_unwrap_inside_worker_loop() {
    assert_single("lock_unwrap_in_loop.rs", Lint::LockUnwrapInLoop, 9, "drain");
}

#[test]
fn hot_path_allocation() {
    assert_single("hot_path_alloc.rs", Lint::HotPathAlloc, 5, "record");
}

#[test]
fn hot_path_blocking_lock() {
    assert_single("hot_path_block.rs", Lint::HotPathBlock, 8, "push");
}

#[test]
fn hot_path_panicking_unwrap() {
    assert_single("hot_path_panic.rs", Lint::HotPathPanic, 5, "latest");
}

#[test]
fn wall_clock_read_outside_module() {
    assert_single("wall_clock.rs", Lint::WallClock, 5, "stamp");
}

#[test]
fn hash_map_iteration() {
    assert_single("hash_iter.rs", Lint::HashIter, 8, "total");
}

#[test]
fn float_exact_equality() {
    assert_single("float_eq.rs", Lint::FloatEq, 5, "at_quarter");
}

#[test]
fn unseeded_rng() {
    assert_single("unseeded_rng.rs", Lint::UnseededRng, 4, "jitter");
}

#[test]
fn clean_fixture_is_silent() {
    let findings = run_fixture("clean.rs");
    assert!(findings.is_empty(), "clean.rs flagged: {findings:?}");
}

#[test]
fn allow_without_reason_is_invalid_and_suppresses_nothing() {
    let findings = run_fixture("allow_no_reason.rs");
    let invalid: Vec<_> = findings
        .iter()
        .filter(|f| f.lint == Lint::InvalidDirective)
        .collect();
    assert_eq!(
        invalid.len(),
        1,
        "expected one invalid-directive: {findings:?}"
    );
    assert_eq!(invalid[0].line, 4);
    // The malformed allow must not silence the underlying finding.
    assert!(
        findings
            .iter()
            .any(|f| f.lint == Lint::WallClock && f.line == 6),
        "broken allow silenced the wall-clock read: {findings:?}"
    );
    assert_eq!(findings.len(), 2, "unexpected extras: {findings:?}");
}
