//! CLI for `edgebert-analyzer`.
//!
//! ```text
//! edgebert-analyzer [--workspace | <paths>...] [--baseline <file>]
//!                   [--json] [--emit-baseline]
//! ```
//!
//! Exit codes: 0 clean (or everything baselined/allowed), 1 findings,
//! 2 usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use edgebert_analyzer::report::{render_json, render_text, Totals};
use edgebert_analyzer::{baseline, scan};

struct Args {
    workspace: bool,
    paths: Vec<PathBuf>,
    baseline: Option<PathBuf>,
    json: bool,
    emit_baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        paths: Vec::new(),
        baseline: None,
        json: false,
        emit_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--baseline" => {
                let v = it.next().ok_or("--baseline requires a path")?;
                args.baseline = Some(PathBuf::from(v));
            }
            "--json" => args.json = true,
            "--emit-baseline" => args.emit_baseline = true,
            "--help" | "-h" => {
                return Err("usage: edgebert-analyzer [--workspace | <paths>...] \
                     [--baseline <file>] [--json] [--emit-baseline]"
                    .to_string())
            }
            p if !p.starts_with('-') => args.paths.push(PathBuf::from(p)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if !args.workspace && args.paths.is_empty() {
        return Err("pass --workspace or at least one file/directory".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    // Assemble the file set.
    let mut files: Vec<(String, String)> = Vec::new();
    let mut baseline_path = args.baseline.clone();
    if args.workspace {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        let Some(root) = edgebert_analyzer::workspace_root(&cwd) else {
            eprintln!("--workspace: no [workspace] Cargo.toml found above {cwd:?}");
            return ExitCode::from(2);
        };
        match edgebert_analyzer::collect_workspace_files(&root) {
            Ok(f) => files = f,
            Err(e) => {
                eprintln!("walking workspace: {e}");
                return ExitCode::from(2);
            }
        }
        // --workspace auto-loads the checked-in baseline when present.
        if baseline_path.is_none() {
            let candidate = root.join("analyzer-baseline.toml");
            if candidate.is_file() {
                baseline_path = Some(candidate);
            }
        }
    }
    for p in &args.paths {
        if p.is_dir() {
            if let Err(e) = edgebert_analyzer::collect_rs_files(p, Path::new(""), &mut files) {
                eprintln!("walking {p:?}: {e}");
                return ExitCode::from(2);
            }
        } else {
            match std::fs::read_to_string(p) {
                Ok(src) => files.push((p.to_string_lossy().replace('\\', "/"), src)),
                Err(e) => {
                    eprintln!("reading {p:?}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }

    let report = scan::analyze(&files);

    if args.emit_baseline {
        print!("{}", baseline::render(&report.findings));
        return ExitCode::SUCCESS;
    }

    let (findings, baselined, unused) = match &baseline_path {
        Some(p) => {
            let text = match std::fs::read_to_string(p) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("reading baseline {p:?}: {e}");
                    return ExitCode::from(2);
                }
            };
            let entries = match baseline::parse(&text) {
                Ok(e) => e,
                Err(msg) => {
                    eprintln!("{msg}");
                    return ExitCode::from(2);
                }
            };
            baseline::apply(report.findings, &entries)
        }
        None => (report.findings, 0, Vec::new()),
    };

    let totals = Totals {
        suppressed: report.suppressed,
        baselined,
    };
    if args.json {
        print!("{}", render_json(&findings, totals, &unused));
    } else {
        print!("{}", render_text(&findings, totals, &unused));
    }
    // Stale baseline entries fail the run too: the baseline may only
    // ever shrink, and a fixed finding must take its entry with it.
    if findings.is_empty() && unused.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
