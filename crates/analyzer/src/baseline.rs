//! The grandfathering baseline: a checked-in TOML file that names
//! triaged pre-existing findings so new violations fail CI while the
//! backlog burns down.
//!
//! Entries match on `(lint, file, function)` — deliberately not on
//! line numbers, which shift with every edit. The parser handles the
//! subset of TOML the analyzer emits: `[[finding]]` tables with
//! `key = "value"` pairs and `#` comments. `invalid-directive`
//! findings can never be baselined.

use crate::lints::{Finding, Lint};

/// One grandfathered finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub lint: Lint,
    pub file: String,
    pub function: String,
}

/// Parse baseline TOML text.
pub fn parse(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut entries = Vec::new();
    let mut current: Option<(Option<Lint>, Option<String>, Option<String>)> = None;
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[finding]]" {
            if let Some(entry) = current.take() {
                entries.push(finish(entry, n)?);
            }
            current = Some((None, None, None));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("baseline line {}: expected key = \"value\"", n + 1));
        };
        let key = key.trim();
        let value = value.trim();
        let Some(value) = value.strip_prefix('"').and_then(|v| v.split('"').next()) else {
            return Err(format!(
                "baseline line {}: value for `{key}` must be double-quoted",
                n + 1
            ));
        };
        let Some(entry) = current.as_mut() else {
            return Err(format!(
                "baseline line {}: `{key}` outside a [[finding]] table",
                n + 1
            ));
        };
        match key {
            "lint" => {
                let lint = Lint::from_id(value)
                    .ok_or_else(|| format!("baseline line {}: unknown lint `{value}`", n + 1))?;
                if lint.unsuppressible() {
                    return Err(format!(
                        "baseline line {}: lint `{value}` cannot be baselined",
                        n + 1
                    ));
                }
                entry.0 = Some(lint);
            }
            "file" => entry.1 = Some(value.to_string()),
            "function" => entry.2 = Some(value.to_string()),
            other => {
                return Err(format!("baseline line {}: unknown key `{other}`", n + 1));
            }
        }
    }
    if let Some(entry) = current.take() {
        entries.push(finish(entry, text.lines().count())?);
    }
    Ok(entries)
}

fn finish(
    (lint, file, function): (Option<Lint>, Option<String>, Option<String>),
    line: usize,
) -> Result<BaselineEntry, String> {
    Ok(BaselineEntry {
        lint: lint.ok_or(format!(
            "baseline entry ending at line {line}: missing `lint`"
        ))?,
        file: file.ok_or(format!(
            "baseline entry ending at line {line}: missing `file`"
        ))?,
        function: function.ok_or(format!(
            "baseline entry ending at line {line}: missing `function`"
        ))?,
    })
}

/// Render findings as baseline TOML (for `--emit-baseline`).
/// `invalid-directive` findings are never emitted.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# edgebert-analyzer baseline — triaged pre-existing findings.\n\
         # Entries match on (lint, file, function); new findings outside\n\
         # this list fail the analyzer. Regenerate a candidate list with\n\
         # `cargo run -p edgebert-analyzer -- --workspace --emit-baseline`.\n",
    );
    let mut seen: Vec<(Lint, &str, &str)> = Vec::new();
    for f in findings {
        if f.lint.unsuppressible() {
            continue;
        }
        let key = (f.lint, f.file.as_str(), f.function.as_str());
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        out.push_str(&format!(
            "\n[[finding]]\nlint = \"{}\"\nfile = \"{}\"\nfunction = \"{}\"\n",
            f.lint, f.file, f.function
        ));
    }
    out
}

/// Split findings into (remaining, baselined count, unused entries).
pub fn apply(
    findings: Vec<Finding>,
    baseline: &[BaselineEntry],
) -> (Vec<Finding>, usize, Vec<BaselineEntry>) {
    let mut used = vec![false; baseline.len()];
    let mut remaining = Vec::new();
    let mut matched = 0usize;
    for f in findings {
        let hit = baseline
            .iter()
            .position(|b| b.lint == f.lint && b.file == f.file && b.function == f.function);
        match hit {
            Some(i) if !f.lint.unsuppressible() => {
                used[i] = true;
                matched += 1;
            }
            _ => remaining.push(f),
        }
    }
    let unused = baseline
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(b, _)| b.clone())
        .collect();
    (remaining, matched, unused)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_render_and_parse() {
        let findings = vec![
            Finding {
                lint: Lint::WallClock,
                file: "crates/core/src/scheduler.rs".into(),
                line: 242,
                function: "DeadlineScheduler::drain".into(),
                message: "m".into(),
            },
            Finding {
                lint: Lint::InvalidDirective,
                file: "x.rs".into(),
                line: 1,
                function: "<module>".into(),
                message: "never baselined".into(),
            },
        ];
        let toml = render(&findings);
        let entries = parse(&toml).expect("parse");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].lint, Lint::WallClock);
        assert_eq!(entries[0].function, "DeadlineScheduler::drain");
    }

    #[test]
    fn apply_matches_on_lint_file_function() {
        let baseline = vec![BaselineEntry {
            lint: Lint::FloatEq,
            file: "a.rs".into(),
            function: "f".into(),
        }];
        let findings = vec![
            Finding {
                lint: Lint::FloatEq,
                file: "a.rs".into(),
                line: 10,
                function: "f".into(),
                message: "m".into(),
            },
            Finding {
                lint: Lint::FloatEq,
                file: "a.rs".into(),
                line: 20,
                function: "g".into(),
                message: "m".into(),
            },
        ];
        let (remaining, matched, unused) = apply(findings, &baseline);
        assert_eq!(matched, 1);
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].function, "g");
        assert!(unused.is_empty());
    }

    #[test]
    fn unknown_lint_in_baseline_is_an_error() {
        let err = parse("[[finding]]\nlint = \"bogus\"\nfile = \"a\"\nfunction = \"b\"\n");
        assert!(err.is_err());
    }

    #[test]
    fn invalid_directive_cannot_be_baselined() {
        let err =
            parse("[[finding]]\nlint = \"invalid-directive\"\nfile = \"a\"\nfunction = \"b\"\n");
        assert!(err.is_err());
    }
}
