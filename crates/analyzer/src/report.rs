//! Human-readable and JSON rendering of analysis results. JSON is
//! hand-rolled — the analyzer has zero dependencies by design.

use crate::baseline::BaselineEntry;
use crate::lints::Finding;

/// Counters accompanying the findings list.
#[derive(Debug, Default, Clone, Copy)]
pub struct Totals {
    pub suppressed: usize,
    pub baselined: usize,
}

/// Plain-text report: one line per finding plus a summary.
pub fn render_text(findings: &[Finding], totals: Totals, unused: &[BaselineEntry]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    for b in unused {
        out.push_str(&format!(
            "note: unused baseline entry [{}] {} (in {})\n",
            b.lint, b.file, b.function
        ));
    }
    out.push_str(&format!(
        "{} finding{} ({} suppressed by allow, {} baselined)\n",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" },
        totals.suppressed,
        totals.baselined,
    ));
    out
}

/// JSON report (`--json`): findings, counters, and unused baseline
/// entries in one object.
pub fn render_json(findings: &[Finding], totals: Totals, unused: &[BaselineEntry]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"function\": {}, \"message\": {}}}",
            json_str(f.lint.id()),
            json_str(&f.file),
            f.line,
            json_str(&f.function),
            json_str(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"unused_baseline\": [");
    for (i, b) in unused.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"lint\": {}, \"file\": {}, \"function\": {}}}",
            json_str(b.lint.id()),
            json_str(&b.file),
            json_str(&b.function)
        ));
    }
    if !unused.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"suppressed\": {},\n  \"baselined\": {}\n}}\n",
        totals.suppressed, totals.baselined
    ));
    out
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::Lint;

    #[test]
    fn json_escapes_and_structures() {
        let findings = vec![Finding {
            lint: Lint::FloatEq,
            file: "a\"b.rs".into(),
            line: 3,
            function: "f".into(),
            message: "uses \"==\"".into(),
        }];
        let json = render_json(
            &findings,
            Totals {
                suppressed: 1,
                baselined: 2,
            },
            &[],
        );
        assert!(json.contains("\"lint\": \"float-eq\""));
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("\"suppressed\": 1"));
        assert!(json.contains("\"baselined\": 2"));
    }

    #[test]
    fn text_summary_counts() {
        let text = render_text(
            &[],
            Totals {
                suppressed: 3,
                baselined: 4,
            },
            &[],
        );
        assert!(text.contains("0 findings (3 suppressed by allow, 4 baselined)"));
    }
}
