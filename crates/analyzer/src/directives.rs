//! Parsing of `// analyzer:` directives out of line comments.
//!
//! Grammar (one directive per line comment):
//!
//! ```text
//! // analyzer: hot-path
//! // analyzer: worker-loop
//! // analyzer: wall-clock-module reason="..."
//! // analyzer: allow(<lint-id>) reason="..."
//! ```
//!
//! `hot-path` and `worker-loop` attach to the next `fn` item below
//! them. `wall-clock-module` is file-scoped. `allow` suppresses the
//! named lint on its own line and on the next line that carries code.
//! The `reason` is mandatory wherever it appears — a directive without
//! one is itself a finding (`invalid-directive`), and that finding can
//! be neither suppressed nor baselined.

use crate::lexer::LineComment;
use crate::lints::{Finding, Lint};

/// A well-formed directive with the comment line it came from.
#[derive(Debug, Clone, PartialEq)]
pub enum Directive {
    /// Marks the next `fn`: no alloc / block / panic inside.
    HotPath,
    /// Marks the next `fn` as a shard/worker drain loop.
    WorkerLoop,
    /// Marks the whole file as legitimately wall-clock-reading.
    WallClockModule { reason: String },
    /// Suppresses `lint` on this line and the next code line.
    Allow { lint: Lint, reason: String },
}

/// Directives plus the malformed ones (already rendered as findings).
#[derive(Debug, Default)]
pub struct ParsedDirectives {
    pub directives: Vec<(u32, Directive)>,
    pub errors: Vec<Finding>,
}

/// Extract directives from a file's line comments. `file` is the
/// workspace-relative path used in error findings.
pub fn parse(file: &str, comments: &[LineComment]) -> ParsedDirectives {
    let mut out = ParsedDirectives::default();
    for c in comments {
        let text = c.text.trim();
        let Some(body) = text.strip_prefix("analyzer:") else {
            continue;
        };
        let body = body.trim();
        match parse_one(body) {
            Ok(d) => out.directives.push((c.line, d)),
            Err(msg) => out.errors.push(Finding {
                lint: Lint::InvalidDirective,
                file: file.to_string(),
                line: c.line,
                function: "<module>".to_string(),
                message: msg,
            }),
        }
    }
    out
}

fn parse_one(body: &str) -> Result<Directive, String> {
    if body == "hot-path" {
        return Ok(Directive::HotPath);
    }
    if body == "worker-loop" {
        return Ok(Directive::WorkerLoop);
    }
    if let Some(rest) = body.strip_prefix("wall-clock-module") {
        let reason = parse_reason(rest)?;
        return Ok(Directive::WallClockModule { reason });
    }
    if let Some(rest) = body.strip_prefix("allow") {
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            return Err("allow directive needs a parenthesized lint id: allow(<lint>)".to_string());
        };
        let Some(close) = rest.find(')') else {
            return Err("allow directive missing closing parenthesis".to_string());
        };
        let id = rest[..close].trim();
        let Some(lint) = Lint::from_id(id) else {
            return Err(format!("unknown lint id `{id}` in allow directive"));
        };
        if lint.unsuppressible() {
            return Err(format!("lint `{id}` cannot be suppressed"));
        }
        let reason = parse_reason(&rest[close + 1..])?;
        return Ok(Directive::Allow { lint, reason });
    }
    Err(format!(
        "unknown analyzer directive `{}`; expected hot-path, worker-loop, wall-clock-module, or allow(<lint>)",
        body.split_whitespace().next().unwrap_or("")
    ))
}

/// Parse the mandatory ` reason="..."` tail.
fn parse_reason(rest: &str) -> Result<String, String> {
    let rest = rest.trim();
    let Some(rest) = rest.strip_prefix("reason=") else {
        return Err("directive requires reason=\"...\"".to_string());
    };
    let Some(rest) = rest.strip_prefix('"') else {
        return Err("reason must be a double-quoted string".to_string());
    };
    let Some(close) = rest.find('"') else {
        return Err("reason string is unterminated".to_string());
    };
    let reason = rest[..close].trim();
    if reason.is_empty() {
        return Err("reason must not be empty".to_string());
    }
    Ok(reason.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(text: &str) -> Vec<LineComment> {
        vec![LineComment {
            line: 1,
            text: text.to_string(),
        }]
    }

    #[test]
    fn parses_all_forms() {
        let p = parse(
            "f.rs",
            &[
                LineComment {
                    line: 1,
                    text: " analyzer: hot-path".into(),
                },
                LineComment {
                    line: 2,
                    text: " analyzer: worker-loop".into(),
                },
                LineComment {
                    line: 3,
                    text: " analyzer: wall-clock-module reason=\"bench timing\"".into(),
                },
                LineComment {
                    line: 4,
                    text: " analyzer: allow(float-eq) reason=\"exact sentinel\"".into(),
                },
                LineComment {
                    line: 5,
                    text: " ordinary comment".into(),
                },
            ],
        );
        assert_eq!(p.directives.len(), 4);
        assert!(p.errors.is_empty());
        assert_eq!(
            p.directives[3].1,
            Directive::Allow {
                lint: Lint::FloatEq,
                reason: "exact sentinel".into()
            }
        );
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let p = parse("f.rs", &comment(" analyzer: allow(float-eq)"));
        assert_eq!(p.directives.len(), 0);
        assert_eq!(p.errors.len(), 1);
        assert_eq!(p.errors[0].lint, Lint::InvalidDirective);
        assert!(p.errors[0].message.contains("reason"));
    }

    #[test]
    fn unknown_lint_is_rejected() {
        let p = parse("f.rs", &comment(" analyzer: allow(made-up) reason=\"x\""));
        assert_eq!(p.errors.len(), 1);
        assert!(p.errors[0].message.contains("made-up"));
    }

    #[test]
    fn invalid_directive_itself_cannot_be_allowed() {
        let p = parse(
            "f.rs",
            &comment(" analyzer: allow(invalid-directive) reason=\"no\""),
        );
        assert_eq!(p.errors.len(), 1);
        assert!(p.errors[0].message.contains("cannot be suppressed"));
    }

    #[test]
    fn empty_reason_is_rejected() {
        let p = parse(
            "f.rs",
            &comment(" analyzer: wall-clock-module reason=\"  \""),
        );
        assert_eq!(p.errors.len(), 1);
    }
}
