//! A hand-rolled lexer for the subset of Rust the analyzer needs.
//!
//! The goal is not a faithful grammar: it is a token stream precise
//! enough to track identifiers, call sites, braces, and line comments
//! (which carry `// analyzer:` directives). Multi-character operators
//! are only fused when the fusion can never split a generic-argument
//! list — `>>`, `<<`, `<=`, `>=` stay single characters so
//! `Vec<Vec<u8>>` lexes the same way the compiler sees it.

/// What a token is. String payloads are owned so the token stream can
/// outlive the source buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer or float literal, verbatim (including suffix).
    Number(String),
    /// String literal (contents dropped).
    Str,
    /// Character literal (contents dropped).
    Char,
    /// Lifetime such as `'a` (name dropped).
    Lifetime,
    /// Punctuation; multi-character only for the fused set.
    Punct(&'static str),
}

/// One token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    pub line: u32,
}

impl Token {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when this token is exactly the given punctuation.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(&self.kind, TokKind::Punct(q) if *q == p)
    }
}

/// One `//` line comment with its 1-based line and the text after the
/// slashes (untrimmed). Block comments are skipped — directives must
/// be line comments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineComment {
    pub line: u32,
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<LineComment>,
}

/// Operators fused into one token. Deliberately excludes `>>`/`<<`/
/// `<=`/`>=` (generic-list ambiguity) — order matters: longest first
/// within a shared prefix.
const FUSED: &[&str] = &[
    "::", "->", "=>", "==", "!=", "&&", "||", "..", "+=", "-=", "*=", "/=",
];

/// Lex `src` into tokens plus line comments.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\n' {
                    j += 1;
                }
                out.comments.push(LineComment {
                    line,
                    text: src[start..j].to_string(),
                });
                i = j;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comments, newline-counted, not recorded.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            b'"' => {
                i = skip_string(bytes, i, &mut line);
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    line,
                });
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let is_lifetime = match bytes.get(i + 1) {
                    Some(&n) if n.is_ascii_alphabetic() || n == b'_' => {
                        // `'a'` is a char; `'a` followed by non-quote is
                        // a lifetime. `'ab'` is not valid Rust anyway.
                        bytes.get(i + 2) != Some(&b'\'')
                    }
                    _ => false,
                };
                if is_lifetime {
                    let mut j = i + 1;
                    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_')
                    {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        line,
                    });
                    i = j;
                } else {
                    let mut j = i + 1;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        if bytes[j] == b'\\' {
                            j += 1;
                        }
                        if bytes[j] == b'\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Char,
                        line,
                    });
                    i = (j + 1).min(bytes.len());
                }
            }
            _ if c.is_ascii_digit() => {
                let (j, text) = lex_number(src, bytes, i);
                out.tokens.push(Token {
                    kind: TokKind::Number(text),
                    line,
                });
                i = j;
            }
            _ if c.is_ascii_alphabetic() || c == b'_' || c >= 0x80 => {
                let mut j = i;
                while j < bytes.len()
                    && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_' || bytes[j] >= 0x80)
                {
                    j += 1;
                }
                let word = &src[i..j];
                // Raw / byte string prefixes: r"", r#""#, b"", br"".
                if matches!(word, "r" | "b" | "br" | "rb")
                    && matches!(bytes.get(j), Some(&b'"') | Some(&b'#'))
                    && word.contains('r')
                {
                    i = skip_raw_string(bytes, j, &mut line);
                    out.tokens.push(Token {
                        kind: TokKind::Str,
                        line,
                    });
                } else if word == "b" && bytes.get(j) == Some(&b'"') {
                    i = skip_string(bytes, j, &mut line);
                    out.tokens.push(Token {
                        kind: TokKind::Str,
                        line,
                    });
                } else {
                    out.tokens.push(Token {
                        kind: TokKind::Ident(word.to_string()),
                        line,
                    });
                    i = j;
                }
            }
            _ => {
                let rest = &src[i..];
                let fused = FUSED.iter().find(|op| rest.starts_with(**op));
                if let Some(op) = fused {
                    out.tokens.push(Token {
                        kind: TokKind::Punct(op),
                        line,
                    });
                    i += op.len();
                } else {
                    out.tokens.push(Token {
                        kind: TokKind::Punct(single_punct(c)),
                        line,
                    });
                    i += 1;
                }
            }
        }
    }
    out
}

/// Skip a normal (escaped) string literal starting at the opening
/// quote; returns the index past the closing quote.
fn skip_string(bytes: &[u8], open: usize, line: &mut u32) -> usize {
    let mut j = open + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            b'\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// Skip a raw string starting at the first `#` or `"` after the `r`
/// prefix; returns the index past the closing delimiter.
fn skip_raw_string(bytes: &[u8], mut j: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&b'"') {
        return j;
    }
    j += 1;
    while j < bytes.len() {
        if bytes[j] == b'\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if bytes[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(k) == Some(&b'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        j += 1;
    }
    j
}

/// Lex a numeric literal; returns (index past the literal, verbatim
/// text). Handles hex/octal/binary prefixes, fractions, exponents
/// (including signed), and type suffixes. `1.0` vs `1..n` vs tuple
/// indexing `x.0` are disambiguated by requiring a digit after `.`.
fn lex_number(src: &str, bytes: &[u8], start: usize) -> (usize, String) {
    let mut j = start;
    let radix_prefixed = bytes[j] == b'0'
        && matches!(
            bytes.get(j + 1),
            Some(&b'x') | Some(&b'X') | Some(&b'o') | Some(&b'O') | Some(&b'b') | Some(&b'B')
        );
    if radix_prefixed {
        j += 2;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        return (j, src[start..j].to_string());
    }
    while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
        j += 1;
    }
    if bytes.get(j) == Some(&b'.') && bytes.get(j + 1).is_some_and(|b| b.is_ascii_digit()) {
        j += 1;
        while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
            j += 1;
        }
    }
    if matches!(bytes.get(j), Some(&b'e') | Some(&b'E'))
        && (bytes.get(j + 1).is_some_and(|b| b.is_ascii_digit())
            || (matches!(bytes.get(j + 1), Some(&b'+') | Some(&b'-'))
                && bytes.get(j + 2).is_some_and(|b| b.is_ascii_digit())))
    {
        j += 2;
        while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
            j += 1;
        }
    }
    // Type suffix (f64, u32, usize, ...).
    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
        j += 1;
    }
    (j, src[start..j].to_string())
}

/// Intern single-byte punctuation as a static str.
fn single_punct(c: u8) -> &'static str {
    match c {
        b'{' => "{",
        b'}' => "}",
        b'(' => "(",
        b')' => ")",
        b'[' => "[",
        b']' => "]",
        b';' => ";",
        b',' => ",",
        b'.' => ".",
        b':' => ":",
        b'<' => "<",
        b'>' => ">",
        b'=' => "=",
        b'+' => "+",
        b'-' => "-",
        b'*' => "*",
        b'/' => "/",
        b'%' => "%",
        b'&' => "&",
        b'|' => "|",
        b'^' => "^",
        b'!' => "!",
        b'?' => "?",
        b'#' => "#",
        b'@' => "@",
        b'~' => "~",
        b'$' => "$",
        _ => "?",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn generics_are_not_fused() {
        let toks = lex("let x: Vec<Vec<u8>> = v;").tokens;
        assert!(toks.iter().any(|t| t.is_punct(">")));
        assert!(!toks.iter().any(|t| t.is_punct(">>")));
    }

    #[test]
    fn fused_operators_survive() {
        let toks = lex("a::b -> c == d != e && f || g .. h").tokens;
        for op in ["::", "->", "==", "!=", "&&", "||", ".."] {
            assert!(toks.iter().any(|t| t.is_punct(op)), "missing {op}");
        }
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }").tokens;
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let l = lex("fn a() {}\n// analyzer: hot-path\nfn b() {}\n/* block\ncomment */ fn c() {}");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].line, 2);
        assert_eq!(l.comments[0].text.trim(), "analyzer: hot-path");
        assert_eq!(idents("fn c() {}"), vec!["fn", "c"]);
        // Block comment newlines still advance line numbers.
        let c_tok = l
            .tokens
            .iter()
            .find(|t| t.ident() == Some("c"))
            .expect("c token");
        assert_eq!(c_tok.line, 5);
    }

    #[test]
    fn numbers_with_exponents_and_suffixes() {
        let toks = lex("let a = 1e-3; let b = 2.5f64; let c = 0xFF; let d = x.0;").tokens;
        let nums: Vec<&str> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Number(n) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["1e-3", "2.5f64", "0xFF", "0"]);
    }

    #[test]
    fn raw_and_byte_strings_skip_contents() {
        let l = lex(r###"let a = r#"no // directive in "here""#; let b = b"bytes";"###);
        assert_eq!(l.comments.len(), 0);
        let strs = l.tokens.iter().filter(|t| t.kind == TokKind::Str).count();
        assert_eq!(strs, 2);
    }
}
