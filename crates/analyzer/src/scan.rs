//! The item scanner and lint passes.
//!
//! Phase A walks every file, collects `fn` items (with their impl
//! context, signature, and body extent), and builds per-function
//! summaries: does it acquire a blocking lock, does it return a
//! `MutexGuard`, does it call into the engine forward path. Phase B
//! re-walks each function body with a brace-scoped set of live lock
//! guards and emits findings, consulting the summaries for the
//! one-level interprocedural checks (nested-lock, lock-across-step).
//!
//! `#[cfg(test)]` / `#[test]` items are skipped entirely: the
//! bit-identity oracles compare floats exactly and take locks freely
//! on purpose.

use std::collections::{BTreeMap, BTreeSet};

use crate::directives::{self, Directive};
use crate::lexer::{self, TokKind, Token};
use crate::lints::{Finding, Lint};

/// Functions that constitute the engine forward path. A lock held
/// across a call to any of these (directly, or through a callee that
/// calls one) is a `lock-across-step` finding.
const FORWARD_FNS: &[&str] = &[
    "step",
    "begin",
    "begin_degraded",
    "begin_forward",
    "forward",
    "forward_next_layer",
    "run_layers",
    "run_layers_nominal",
    "serve",
    "serve_degraded",
    "run_base",
    "run_latency_aware",
    "run_latency_aware_queued",
    "run_conventional_ee",
];

/// Allocating macros (hot-path only).
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Panicking macros (hot-path only).
const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// Allocating methods (hot-path only). `.clone()` is included: on the
/// hot path a clone of a heap type is an allocation, and `Copy` types
/// don't need `.clone()` (`Arc::clone(&x)` is the sanctioned
/// refcount-bump spelling and is not flagged).
const ALLOC_METHODS: &[&str] = &[
    "to_vec",
    "to_string",
    "to_owned",
    "clone",
    "collect",
    "push",
    "push_str",
    "insert",
    "extend",
    "reserve",
    "append",
    "repeat",
    "into_boxed_slice",
];

/// Heap-container paths whose constructors allocate (hot-path only).
const ALLOC_PATH_TYPES: &[&str] = &[
    "Box", "Vec", "String", "Arc", "Rc", "VecDeque", "BTreeMap", "BTreeSet", "HashMap", "HashSet",
];
const ALLOC_PATH_FNS: &[&str] = &["new", "with_capacity", "from", "from_iter"];

/// Blocking free/assoc functions and methods (hot-path only). `park`
/// is deliberately absent: `InferenceSession::park` shadows
/// `std::thread::park` throughout the serving stack.
const BLOCK_FNS: &[&str] = &["sleep", "join", "recv", "recv_timeout"];

/// Condvar blocking waits. Blocking for hot-path purposes, but never a
/// nested-lock trigger: `wait` atomically releases the mutex.
const WAIT_METHODS: &[&str] = &["wait", "wait_timeout", "wait_while", "wait_timeout_while"];

/// Ambient-entropy RNG constructors.
const RNG_FNS: &[&str] = &["thread_rng", "from_entropy", "from_os_rng"];

/// Iteration methods whose order is nondeterministic on hash
/// containers.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Pattern idents that are wrappers, not bindings.
const PATTERN_NOISE: &[&str] = &["mut", "ref", "box", "Ok", "Err", "Some", "None"];

/// Names too ubiquitous for bare-name summary lookups: `Box::new`
/// colliding with some constructor that does forward work would flag
/// every allocation under a lock. Interprocedural checks skip these.
const COMMON_NAMES: &[&str] = &[
    "new",
    "default",
    "from",
    "clone",
    "get",
    "get_mut",
    "set",
    "len",
    "is_empty",
    "push",
    "insert",
    "remove",
    "with_capacity",
    "min",
    "max",
    "take",
    "iter",
];

/// Forward-path names generic enough to need a receiver gate: only a
/// `session`/`engine` receiver counts (`queue.controller.step()` is
/// the overload ladder's rung read, not the inference step).
const GATED_FORWARD: &[&str] = &["step", "begin", "serve", "forward"];
const SESSION_RECEIVERS: &[&str] = &["session", "sess", "engine", "eng"];

/// Item keywords that consume a pending `#[cfg(test)]`/`#[test]`.
const ITEM_KEYWORDS: &[&str] = &[
    "mod",
    "fn",
    "impl",
    "struct",
    "enum",
    "trait",
    "const",
    "static",
    "type",
    "union",
    "use",
    "macro_rules",
];

/// One `fn` item found in a file.
#[derive(Debug)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// `Type::name` inside an impl block, else the bare name.
    pub qual: String,
    /// Token index of the `fn` keyword.
    fn_idx: usize,
    /// Token indices of the body `{` and its matching `}`, if any.
    body: Option<(usize, usize)>,
    /// Parameters whose type mentions `HashMap`/`HashSet`.
    hash_params: Vec<String>,
    pub hot_path: bool,
    pub worker_loop: bool,
}

/// Merged per-name function summary (phase A output). Names collide
/// across impls and files; facts are OR-merged, which errs toward
/// reporting — the `allow` escape hatch handles the rare false merge.
#[derive(Debug, Default, Clone)]
pub struct FnSummary {
    /// Directly acquires a blocking `lock()`, or calls a
    /// guard-returning function.
    pub blocking_lock: bool,
    /// Direct `.lock(` site (pre-propagation).
    direct_lock: bool,
    /// Return type mentions `MutexGuard` — a call to this function is
    /// itself a lock acquisition at the caller.
    pub returns_guard: bool,
    /// Calls into the engine forward path.
    pub forward_call: bool,
    /// Bare names of functions this one calls (for propagation).
    calls: BTreeSet<String>,
}

/// One lexed, directive-parsed, item-indexed file.
pub struct FileUnit {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    tokens: Vec<Token>,
    pub items: Vec<FnItem>,
    /// Line → lints allowed there (the directive's own line plus the
    /// next line carrying code).
    allow: BTreeMap<u32, Vec<Lint>>,
    pub wall_clock_module: bool,
    /// Malformed/dangling directive findings.
    pub directive_errors: Vec<Finding>,
}

/// Full analysis output for a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by (file, line, lint).
    pub findings: Vec<Finding>,
    /// Findings silenced by an `allow` directive.
    pub suppressed: usize,
    /// (file, qualified fn) pairs carrying `// analyzer: hot-path`.
    pub hot_path_fns: Vec<(String, String)>,
    /// (file, qualified fn) pairs carrying `// analyzer: worker-loop`.
    pub worker_loop_fns: Vec<(String, String)>,
}

/// Analyze a set of `(path, source)` files as one unit (summaries are
/// shared across all of them).
pub fn analyze(files: &[(String, String)]) -> Report {
    let mut units: Vec<FileUnit> = files.iter().map(|(p, s)| parse_file(p, s)).collect();
    let summaries = build_summaries(&units);
    let mut report = Report::default();
    let mut findings = Vec::new();
    for unit in &mut units {
        findings.append(&mut unit.directive_errors);
        let unit = &*unit;
        for idx in 0..unit.items.len() {
            if unit.items[idx].hot_path {
                report
                    .hot_path_fns
                    .push((unit.path.clone(), unit.items[idx].qual.clone()));
            }
            if unit.items[idx].worker_loop {
                report
                    .worker_loop_fns
                    .push((unit.path.clone(), unit.items[idx].qual.clone()));
            }
            scan_body(unit, idx, &summaries, &mut findings);
        }
        // Apply allow directives; invalid-directive is never
        // suppressible.
        findings.retain(|f| {
            let allowed = f.lint != Lint::InvalidDirective
                && f.file == unit.path
                && unit
                    .allow
                    .get(&f.line)
                    .is_some_and(|lints| lints.contains(&f.lint));
            if allowed {
                report.suppressed += 1;
            }
            !allowed
        });
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.lint, &a.function).cmp(&(&b.file, b.line, b.lint, &b.function))
    });
    report.findings = findings;
    report
}

/// Lex + directive-parse + item-index one file.
pub fn parse_file(path: &str, src: &str) -> FileUnit {
    let lexed = lexer::lex(src);
    let parsed = directives::parse(path, &lexed.comments);
    let mut wall_clock_module = false;
    let mut fn_directives: Vec<(
        u32,
        bool, /* hot-path? else worker-loop */
        bool, /* consumed */
    )> = Vec::new();
    let mut allow: BTreeMap<u32, Vec<Lint>> = BTreeMap::new();
    let mut allow_sites: Vec<(u32, Lint)> = Vec::new();
    for (line, d) in &parsed.directives {
        match d {
            Directive::HotPath => fn_directives.push((*line, true, false)),
            Directive::WorkerLoop => fn_directives.push((*line, false, false)),
            Directive::WallClockModule { .. } => wall_clock_module = true,
            Directive::Allow { lint, .. } => allow_sites.push((*line, *lint)),
        }
    }
    // An allow covers its own line and the next line holding any code.
    for (line, lint) in allow_sites {
        allow.entry(line).or_default().push(lint);
        if let Some(next) = lexed.tokens.iter().map(|t| t.line).find(|l| *l > line) {
            allow.entry(next).or_default().push(lint);
        }
    }
    let mut errors = parsed.errors;
    let items = collect_items(&lexed.tokens, &mut fn_directives);
    for (line, is_hot, consumed) in &fn_directives {
        if !consumed {
            errors.push(Finding {
                lint: Lint::InvalidDirective,
                file: path.to_string(),
                line: *line,
                function: "<module>".to_string(),
                message: format!(
                    "dangling `{}` directive: no function item follows it",
                    if *is_hot { "hot-path" } else { "worker-loop" }
                ),
            });
        }
    }
    FileUnit {
        path: path.to_string(),
        tokens: lexed.tokens,
        items,
        allow,
        wall_clock_module,
        directive_errors: errors,
    }
}

/// Index of the `)`/`}`/`]` matching the opener at `open`.
fn matching(tokens: &[Token], open: usize) -> usize {
    let (o, c) = match &tokens[open].kind {
        TokKind::Punct("(") => ("(", ")"),
        TokKind::Punct("{") => ("{", "}"),
        TokKind::Punct("[") => ("[", "]"),
        _ => return open,
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct(o) {
            depth += 1;
        } else if tokens[i].is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    tokens.len() - 1
}

/// Walk the token stream and collect `fn` items with impl context,
/// skipping `#[cfg(test)]`/`#[test]` items wholesale.
fn collect_items(tokens: &[Token], fn_directives: &mut [(u32, bool, bool)]) -> Vec<FnItem> {
    let mut items = Vec::new();
    let mut depth = 0usize;
    let mut impl_stack: Vec<(String, usize)> = Vec::new();
    let mut pending_impl: Option<String> = None;
    let mut pending_test = false;
    let mut skip_body_until = 0usize; // token index: inside a fn body
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("{") {
            depth += 1;
            if let Some(name) = pending_impl.take() {
                impl_stack.push((name, depth));
            }
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            if impl_stack.last().is_some_and(|(_, d)| *d == depth) {
                impl_stack.pop();
            }
            depth = depth.saturating_sub(1);
            i += 1;
            continue;
        }
        if i < skip_body_until {
            i += 1;
            continue;
        }
        if t.is_punct("#") && i + 1 < tokens.len() && tokens[i + 1].is_punct("[") {
            let close = matching(tokens, i + 1);
            let attrs: Vec<&str> = tokens[i + 1..=close]
                .iter()
                .filter_map(Token::ident)
                .collect();
            let is_test_cfg = (attrs.contains(&"cfg") || attrs.len() == 1)
                && attrs.contains(&"test")
                && !attrs.contains(&"not");
            pending_test |= is_test_cfg;
            i = close + 1;
            continue;
        }
        if let Some(word) = t.ident() {
            if pending_test && ITEM_KEYWORDS.contains(&word) {
                // Skip the whole test item: to its `;`, or over its
                // brace block.
                let mut j = i + 1;
                let mut paren = 0i32;
                while j < tokens.len() {
                    match &tokens[j].kind {
                        TokKind::Punct("(") => paren += 1,
                        TokKind::Punct(")") => paren -= 1,
                        TokKind::Punct(";") if paren == 0 => break,
                        TokKind::Punct("{") if paren == 0 => {
                            j = matching(tokens, j);
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                pending_test = false;
                i = j + 1;
                continue;
            }
            match word {
                "impl" => {
                    // Self type: last path-segment ident at angle
                    // depth 0 before `{` / `where`.
                    let mut angle = 0i32;
                    let mut j = i + 1;
                    let mut name = String::from("impl");
                    while j < tokens.len() {
                        match &tokens[j].kind {
                            TokKind::Punct("<") => angle += 1,
                            TokKind::Punct(">") => angle -= 1,
                            TokKind::Punct("{") if angle <= 0 => break,
                            TokKind::Ident(id) if angle <= 0 => {
                                if id == "where" {
                                    break;
                                }
                                name.clear();
                                name.push_str(id);
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    pending_impl = Some(name);
                    i += 1;
                }
                // `fn` item — but not a fn-pointer type (`fn(u32)`),
                // which has no name ident after the keyword.
                "fn" if tokens.get(i + 1).and_then(Token::ident).is_some() => {
                    let name = tokens[i + 1].ident().unwrap_or("").to_string();
                    // Find the body `{` (or `;` for a bodyless decl)
                    // at paren depth 0, skipping the signature.
                    let mut paren = 0i32;
                    let mut j = i + 1;
                    let mut body = None;
                    while j < tokens.len() {
                        match &tokens[j].kind {
                            TokKind::Punct("(") => paren += 1,
                            TokKind::Punct(")") => paren -= 1,
                            TokKind::Punct(";") if paren == 0 => break,
                            TokKind::Punct("{") if paren == 0 => {
                                body = Some((j, matching(tokens, j)));
                                break;
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    let qual = match impl_stack.last() {
                        Some((ty, _)) => format!("{ty}::{name}"),
                        None => name.clone(),
                    };
                    let fn_line = t.line;
                    let mut hot_path = false;
                    let mut worker_loop = false;
                    for (line, is_hot, consumed) in fn_directives.iter_mut() {
                        if !*consumed && *line < fn_line {
                            *consumed = true;
                            if *is_hot {
                                hot_path = true;
                            } else {
                                worker_loop = true;
                            }
                        }
                    }
                    let sig_end = body.map_or(j, |(open, _)| open);
                    let hash_params = hash_typed_params(&tokens[i..sig_end]);
                    items.push(FnItem {
                        name,
                        qual,
                        fn_idx: i,
                        body,
                        hash_params,
                        hot_path,
                        worker_loop,
                    });
                    if let Some((open, close)) = body {
                        // Continue from the body open brace so depth
                        // bookkeeping stays exact; item detection is
                        // muted inside via `skip_body_until`.
                        skip_body_until = close;
                        i = open;
                    } else {
                        i = j + 1;
                    }
                }
                _ => i += 1,
            }
        } else {
            i += 1;
        }
    }
    items
}

/// Parameter names whose declared type mentions `HashMap`/`HashSet`,
/// from the signature token slice (starting at `fn`).
fn hash_typed_params(sig: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    let Some(open) = sig.iter().position(|t| t.is_punct("(")) else {
        return out;
    };
    let close = matching(sig, open);
    let mut depth = 0i32;
    let mut i = open;
    while i < close {
        match &sig[i].kind {
            TokKind::Punct("(") => depth += 1,
            TokKind::Punct(")") => depth -= 1,
            TokKind::Punct(":") if depth == 1 => {
                let name = sig[..i]
                    .iter()
                    .rev()
                    .filter_map(Token::ident)
                    .find(|id| !PATTERN_NOISE.contains(id))
                    .unwrap_or("")
                    .to_string();
                // Type extends to the `,` at depth 1 (or the close).
                let mut j = i + 1;
                let mut d2 = depth;
                let mut mentions_hash = false;
                while j < close {
                    match &sig[j].kind {
                        TokKind::Punct("(") => d2 += 1,
                        TokKind::Punct(")") => d2 -= 1,
                        TokKind::Punct(",") if d2 == 1 => break,
                        TokKind::Ident(id) if id == "HashMap" || id == "HashSet" => {
                            mentions_hash = true;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if mentions_hash && !name.is_empty() {
                    out.push(name);
                }
                i = j;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Phase A: per-name summaries, OR-merged across the whole file set,
/// with one propagation round so calling a guard-returning helper
/// counts as acquiring a lock.
pub fn build_summaries(units: &[FileUnit]) -> BTreeMap<String, FnSummary> {
    let mut map: BTreeMap<String, FnSummary> = BTreeMap::new();
    for unit in units {
        for item in &unit.items {
            let Some((open, close)) = item.body else {
                continue;
            };
            let mut s = FnSummary::default();
            // Return type after `->` mentioning MutexGuard.
            let sig = &unit.tokens[item.fn_idx..open];
            if let Some(arrow) = sig.iter().position(|t| t.is_punct("->")) {
                s.returns_guard = sig[arrow..].iter().any(|t| t.ident() == Some("MutexGuard"));
            }
            let body = &unit.tokens[open..=close];
            for (k, t) in body.iter().enumerate() {
                let Some(id) = t.ident() else { continue };
                if !body.get(k + 1).is_some_and(|n| n.is_punct("(")) {
                    continue;
                }
                let is_method = k > 0 && body[k - 1].is_punct(".");
                if id == "lock" && is_method {
                    s.direct_lock = true;
                }
                if FORWARD_FNS.contains(&id) {
                    s.forward_call = true;
                }
                s.calls.insert(id.to_string());
            }
            let entry = map.entry(item.name.clone()).or_default();
            entry.direct_lock |= s.direct_lock;
            entry.returns_guard |= s.returns_guard;
            entry.forward_call |= s.forward_call;
            entry.calls.extend(s.calls);
        }
    }
    // Propagation: a call to a guard-returning fn is a blocking lock.
    let guard_fns: BTreeSet<String> = map
        .iter()
        .filter(|(_, s)| s.returns_guard)
        .map(|(n, _)| n.clone())
        .collect();
    for s in map.values_mut() {
        s.blocking_lock = s.direct_lock || s.calls.iter().any(|c| guard_fns.contains(c));
    }
    map
}

/// A `let` statement being tracked mid-parse.
struct LetState {
    names: Vec<String>,
    after_eq: bool,
    /// Inside the `: Type` annotation — stop collecting names.
    in_type: bool,
    /// RHS begins with `*` — a deref copy, so any guard in the chain
    /// is a temporary, not a binding.
    leading_star: bool,
    /// `if let` / `while let`: a matched guard lives in the block that
    /// follows, not the current scope.
    is_cond: bool,
}

/// Phase B: walk one function body and emit findings.
fn scan_body(
    unit: &FileUnit,
    item_idx: usize,
    summaries: &BTreeMap<String, FnSummary>,
    out: &mut Vec<Finding>,
) {
    let item = &unit.items[item_idx];
    let Some((open, close)) = item.body else {
        return;
    };
    let toks = &unit.tokens[..];
    let mut scopes: Vec<Vec<String>> = vec![Vec::new()];
    let mut pending_cond_guards: Vec<String> = Vec::new();
    let mut temp_guard = false;
    let mut let_state: Option<LetState> = None;
    let mut hash_idents: BTreeSet<String> = item.hash_params.iter().cloned().collect();
    let mut paren = 0i32;
    let mut bracket = 0i32;
    // Paren/bracket depth at each open brace, so a `;` inside a closure
    // body nested in call parens (`.map(|x| { ...; ... })`) still ends
    // a statement relative to its own block.
    let mut depth_at_brace: Vec<(i32, i32)> = Vec::new();

    let emit = |out: &mut Vec<Finding>, lint: Lint, line: u32, msg: String| {
        out.push(Finding {
            lint,
            file: unit.path.clone(),
            line,
            function: item.qual.clone(),
            message: msg,
        });
    };

    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        match &t.kind {
            TokKind::Punct("(") => paren += 1,
            TokKind::Punct(")") => paren -= 1,
            TokKind::Punct("[") => bracket += 1,
            TokKind::Punct("]") => bracket -= 1,
            TokKind::Punct("{") => {
                scopes.push(std::mem::take(&mut pending_cond_guards));
                depth_at_brace.push((paren, bracket));
                let_state = None;
            }
            TokKind::Punct("}") => {
                if scopes.len() > 1 {
                    scopes.pop();
                }
                depth_at_brace.pop();
                temp_guard = false;
                let_state = None;
            }
            TokKind::Punct(";")
                if (paren, bracket) == depth_at_brace.last().copied().unwrap_or((0, 0)) =>
            {
                temp_guard = false;
                let_state = None;
            }
            TokKind::Punct(":") => {
                if let Some(ls) = let_state.as_mut() {
                    if !ls.after_eq {
                        ls.in_type = true;
                    }
                }
            }
            TokKind::Punct("=") => {
                if let Some(ls) = let_state.as_mut() {
                    if !ls.after_eq {
                        ls.after_eq = true;
                        ls.leading_star = toks.get(i + 1).is_some_and(|n| n.is_punct("*"));
                    }
                }
            }
            TokKind::Punct("==") | TokKind::Punct("!=") => {
                let float_neighbor =
                    float_literal_value(i.checked_sub(1).and_then(|p| toks.get(p))).or_else(|| {
                        // `x == -1.5`: unary minus before the literal.
                        if toks.get(i + 1).is_some_and(|n| n.is_punct("-")) {
                            float_literal_value(toks.get(i + 2)).map(|v| -v)
                        } else {
                            float_literal_value(toks.get(i + 1))
                        }
                    });
                if let Some(v) = float_neighbor {
                    // Exact-zero sentinels are idiomatic here (unset
                    // field ⇔ 0.0 written verbatim, never computed).
                    if v != 0.0 {
                        emit(
                            out,
                            Lint::FloatEq,
                            t.line,
                            format!("float compared for exact equality against literal {v}"),
                        );
                    }
                }
            }
            TokKind::Ident(word) => {
                let word = word.as_str();
                let next_paren = toks.get(i + 1).is_some_and(|n| n.is_punct("("));
                let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct("!"));
                let is_method = i > 0 && toks[i - 1].is_punct(".");
                match word {
                    "let" => {
                        let prev_is_cond = matches!(
                            i.checked_sub(1)
                                .and_then(|p| toks.get(p))
                                .and_then(Token::ident),
                            Some("if") | Some("while")
                        );
                        let_state = Some(LetState {
                            names: Vec::new(),
                            after_eq: false,
                            in_type: false,
                            leading_star: false,
                            is_cond: prev_is_cond,
                        });
                        i += 1;
                        continue;
                    }
                    "Instant"
                        if !unit.wall_clock_module
                            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                            && toks.get(i + 2).and_then(Token::ident) == Some("now") =>
                    {
                        emit(
                            out,
                            Lint::WallClock,
                            t.line,
                            "`Instant::now()` outside a wall-clock module".to_string(),
                        );
                    }
                    "SystemTime" if !unit.wall_clock_module => {
                        emit(
                            out,
                            Lint::WallClock,
                            t.line,
                            "`SystemTime` outside a wall-clock module".to_string(),
                        );
                    }
                    "elapsed" if !unit.wall_clock_module && is_method && next_paren => {
                        emit(
                            out,
                            Lint::WallClock,
                            t.line,
                            "`.elapsed()` reads the wall clock outside a wall-clock module"
                                .to_string(),
                        );
                    }
                    "drop" if next_paren && !is_method => {
                        // `drop(guard)` releases: remove the name.
                        if let Some(name) = toks.get(i + 2).and_then(Token::ident) {
                            if toks.get(i + 3).is_some_and(|n| n.is_punct(")")) {
                                for scope in scopes.iter_mut() {
                                    scope.retain(|g| g != name);
                                }
                                i += 4;
                                continue;
                            }
                        }
                    }
                    "HashMap" | "HashSet" => {
                        if let Some(ls) = &let_state {
                            if ls.after_eq {
                                hash_idents.extend(ls.names.iter().cloned());
                            }
                        }
                    }
                    "in" => {
                        // `for pat in [&][mut] h` where h is a tracked
                        // hash container (method chains like
                        // `h.keys()` are caught by the method rule).
                        let mut j = i + 1;
                        while toks.get(j).is_some_and(|n| n.is_punct("&"))
                            || toks.get(j).and_then(Token::ident) == Some("mut")
                        {
                            j += 1;
                        }
                        if let Some(name) = toks.get(j).and_then(Token::ident) {
                            if hash_idents.contains(name)
                                && !toks.get(j + 1).is_some_and(|n| n.is_punct("."))
                            {
                                emit(
                                    out,
                                    Lint::HashIter,
                                    t.line,
                                    format!("iteration over hash container `{name}`"),
                                );
                            }
                        }
                    }
                    "partial_cmp" if is_method && next_paren => {
                        let end = matching(toks, i + 1);
                        if toks.get(end + 1).is_some_and(|n| n.is_punct("."))
                            && matches!(
                                toks.get(end + 2).and_then(Token::ident),
                                Some("unwrap") | Some("expect")
                            )
                        {
                            emit(
                                out,
                                Lint::FloatEq,
                                t.line,
                                "`partial_cmp().unwrap()/expect()` — use `total_cmp`".to_string(),
                            );
                        }
                    }
                    _ => {}
                }
                if next_bang
                    && toks
                        .get(i + 2)
                        .is_some_and(|n| n.is_punct("(") || n.is_punct("[") || n.is_punct("{"))
                {
                    if item.hot_path {
                        if ALLOC_MACROS.contains(&word) {
                            emit(
                                out,
                                Lint::HotPathAlloc,
                                t.line,
                                format!("`{word}!` allocates on a hot path"),
                            );
                        }
                        if PANIC_MACROS.contains(&word) {
                            emit(
                                out,
                                Lint::HotPathPanic,
                                t.line,
                                format!("`{word}!` can panic on a hot path"),
                            );
                        }
                    }
                } else if next_paren && word != "let" && word != "drop" && word != "partial_cmp" {
                    let holding = temp_guard || scopes.iter().any(|s| !s.is_empty());
                    let qualifier = if i >= 2 && toks[i - 1].is_punct("::") {
                        toks[i - 2].ident()
                    } else {
                        None
                    };
                    if word == "lock" && is_method {
                        acquire(
                            toks,
                            i,
                            true,
                            item,
                            holding,
                            &let_state,
                            &mut scopes,
                            &mut pending_cond_guards,
                            &mut temp_guard,
                            out,
                            &emit,
                        );
                    } else if word == "try_lock" && is_method {
                        acquire(
                            toks,
                            i,
                            false,
                            item,
                            holding,
                            &let_state,
                            &mut scopes,
                            &mut pending_cond_guards,
                            &mut temp_guard,
                            out,
                            &emit,
                        );
                    } else if WAIT_METHODS.contains(&word) && is_method {
                        // Condvar wait: blocking but releases its
                        // mutex, so never nested-lock.
                        if item.hot_path {
                            emit(
                                out,
                                Lint::HotPathBlock,
                                t.line,
                                format!("`.{word}()` blocks on a hot path"),
                            );
                        }
                    } else {
                        let summary = if COMMON_NAMES.contains(&word) {
                            None
                        } else {
                            summaries.get(word)
                        };
                        if summary.is_some_and(|s| s.returns_guard) {
                            acquire(
                                toks,
                                i,
                                true,
                                item,
                                holding,
                                &let_state,
                                &mut scopes,
                                &mut pending_cond_guards,
                                &mut temp_guard,
                                out,
                                &emit,
                            );
                        } else {
                            if holding {
                                if summary.is_some_and(|s| s.blocking_lock) {
                                    emit(
                                        out,
                                        Lint::NestedLock,
                                        t.line,
                                        format!(
                                            "call to `{word}` (which acquires a lock) while a guard is live"
                                        ),
                                    );
                                }
                                let receiver_ok = !GATED_FORWARD.contains(&word)
                                    || (is_method
                                        && i >= 2
                                        && toks[i - 2]
                                            .ident()
                                            .is_some_and(|r| SESSION_RECEIVERS.contains(&r)));
                                if (FORWARD_FNS.contains(&word)
                                    || summary.is_some_and(|s| s.forward_call))
                                    && receiver_ok
                                {
                                    emit(
                                        out,
                                        Lint::LockAcrossStep,
                                        t.line,
                                        format!(
                                            "lock held across call to `{word}` on the engine forward path"
                                        ),
                                    );
                                }
                            }
                            if item.hot_path {
                                if is_alloc_call(word, is_method, qualifier) {
                                    emit(
                                        out,
                                        Lint::HotPathAlloc,
                                        t.line,
                                        format!("`{word}` allocates on a hot path"),
                                    );
                                }
                                if BLOCK_FNS.contains(&word) {
                                    emit(
                                        out,
                                        Lint::HotPathBlock,
                                        t.line,
                                        format!("`{word}` blocks on a hot path"),
                                    );
                                }
                                if is_method && (word == "unwrap" || word == "expect") {
                                    emit(
                                        out,
                                        Lint::HotPathPanic,
                                        t.line,
                                        format!("`.{word}()` can panic on a hot path"),
                                    );
                                }
                            }
                        }
                        if RNG_FNS.contains(&word) {
                            emit(
                                out,
                                Lint::UnseededRng,
                                t.line,
                                format!("`{word}` constructs an unseeded RNG"),
                            );
                        }
                    }
                    // Hash-container iteration through a method.
                    if is_method && HASH_ITER_METHODS.contains(&word) && i >= 2 {
                        if let Some(recv) = toks[i - 2].ident() {
                            if hash_idents.contains(recv) {
                                emit(
                                    out,
                                    Lint::HashIter,
                                    t.line,
                                    format!("`.{word}()` iterates hash container `{recv}`"),
                                );
                            }
                        }
                    }
                }
                // Pattern idents before `=` in a let.
                if let Some(ls) = let_state.as_mut() {
                    if !ls.after_eq
                        && !ls.in_type
                        && word != "let"
                        && !PATTERN_NOISE.contains(&word)
                    {
                        ls.names.push(word.to_string());
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Handle a lock acquisition at token `idx` (the `lock`/`try_lock`
/// ident, or a guard-returning call). Emits nesting/hot-path/worker
/// findings and decides whether the guard binds into a scope, a
/// conditional block, or dies as a statement temporary.
type EmitFn<'a> = &'a dyn Fn(&mut Vec<Finding>, Lint, u32, String);

#[allow(clippy::too_many_arguments)]
fn acquire(
    toks: &[Token],
    idx: usize,
    blocking: bool,
    item: &FnItem,
    holding: bool,
    let_state: &Option<LetState>,
    scopes: &mut [Vec<String>],
    pending_cond_guards: &mut Vec<String>,
    temp_guard: &mut bool,
    out: &mut Vec<Finding>,
    emit: EmitFn,
) {
    let line = toks[idx].line;
    let name = toks[idx].ident().unwrap_or("lock");
    if blocking && holding {
        emit(
            out,
            Lint::NestedLock,
            line,
            format!("blocking `{name}()` while another guard is live"),
        );
    }
    if blocking && item.hot_path {
        emit(
            out,
            Lint::HotPathBlock,
            line,
            format!("blocking `{name}()` on a hot path (use `try_lock`)"),
        );
    }
    // Walk the adapter chain after the call's closing paren.
    let mut j = matching(toks, idx + 1) + 1;
    let mut chained_panic = false;
    loop {
        if toks.get(j).is_some_and(|t| t.is_punct("?")) {
            j += 1;
            continue;
        }
        if toks.get(j).is_some_and(|t| t.is_punct(".")) {
            match toks.get(j + 1).and_then(Token::ident) {
                Some("unwrap") | Some("expect") => chained_panic = true,
                Some("unwrap_or_else") => {}
                _ => break,
            }
            if toks.get(j + 2).is_some_and(|t| t.is_punct("(")) {
                j = matching(toks, j + 2) + 1;
                continue;
            }
            break;
        }
        break;
    }
    if blocking && item.worker_loop && chained_panic {
        emit(
            out,
            Lint::LockUnwrapInLoop,
            line,
            "`lock().unwrap()/expect()` in a worker drain loop: poisoning cascades across sibling shards"
                .to_string(),
        );
    }
    // Binding decision.
    let after = toks.get(j);
    let mut bound = false;
    if let Some(ls) = let_state.as_ref() {
        if ls.after_eq && !ls.leading_star {
            let ends_stmt = after.is_some_and(|t| t.is_punct(";"))
                || after.and_then(Token::ident) == Some("else");
            let opens_block = after.is_some_and(|t| t.is_punct("{"));
            if ends_stmt {
                if let Some(scope) = scopes.last_mut() {
                    scope.extend(ls.names.iter().cloned());
                }
                bound = true;
            } else if opens_block && ls.is_cond {
                pending_cond_guards.extend(ls.names.iter().cloned());
                bound = true;
            }
        }
    }
    if !bound {
        *temp_guard = true;
    }
}

/// Heap-allocating call on a hot path?
fn is_alloc_call(word: &str, is_method: bool, qualifier: Option<&str>) -> bool {
    if is_method && ALLOC_METHODS.contains(&word) {
        return true;
    }
    if let Some(q) = qualifier {
        if ALLOC_PATH_TYPES.contains(&q) && ALLOC_PATH_FNS.contains(&word) {
            return true;
        }
    }
    false
}

/// The numeric value of a float literal token (has `.` or a decimal
/// exponent), if `t` is one.
fn float_literal_value(t: Option<&Token>) -> Option<f64> {
    let t = t?;
    let TokKind::Number(raw) = &t.kind else {
        return None;
    };
    if raw.starts_with("0x") || raw.starts_with("0X") {
        return None;
    }
    let body: String = raw.chars().filter(|c| *c != '_').collect();
    let trimmed = body.trim_end_matches("f32").trim_end_matches("f64");
    let is_float = trimmed.contains('.') || trimmed.contains('e') || trimmed.contains('E');
    if !is_float {
        return None;
    }
    trimmed.parse::<f64>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_of(src: &str) -> Vec<Finding> {
        analyze(&[("test.rs".to_string(), src.to_string())]).findings
    }

    #[test]
    fn items_get_impl_qualified_names() {
        let unit = parse_file(
            "t.rs",
            "impl Foo { fn a(&self) {} }\nimpl Bar for Baz { fn b() {} }\nfn free() {}",
        );
        let quals: Vec<&str> = unit.items.iter().map(|i| i.qual.as_str()).collect();
        assert_eq!(quals, vec!["Foo::a", "Baz::b", "free"]);
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let unit = parse_file(
            "t.rs",
            "fn real() {}\n#[cfg(test)]\nmod tests {\n fn helper() {}\n #[test]\n fn t() {}\n}\n",
        );
        let names: Vec<&str> = unit.items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn guard_scope_tracks_binding_and_drop() {
        // Bound guard → nested; after drop() → clean.
        let f = findings_of(
            "fn f(a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32>) {\n\
             let g = a.lock().unwrap();\n\
             let h = b.lock().unwrap();\n\
             }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, Lint::NestedLock);
        assert_eq!(f[0].line, 3);

        let f = findings_of(
            "fn f(a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32>) {\n\
             let g = a.lock().unwrap();\n\
             drop(g);\n\
             let h = b.lock().unwrap();\n\
             }\n",
        );
        assert!(f.is_empty(), "unexpected: {f:?}");
    }

    #[test]
    fn deref_copy_is_a_temporary_not_a_binding() {
        let f = findings_of(
            "fn f(a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32>) {\n\
             let x = *a.lock().unwrap();\n\
             let h = b.lock().unwrap();\n\
             }\n",
        );
        assert!(f.is_empty(), "unexpected: {f:?}");
    }

    #[test]
    fn guard_returning_helper_counts_as_acquisition() {
        let f = findings_of(
            "impl L {\n\
             fn tally_lock(&self) -> std::sync::MutexGuard<'_, T> { self.t.lock().unwrap() }\n\
             fn caller(&self) {\n\
             let q = self.q.lock().unwrap();\n\
             let t = self.tally_lock();\n\
             }\n\
             }\n",
        );
        assert!(
            f.iter()
                .any(|x| x.lint == Lint::NestedLock && x.function == "L::caller"),
            "unexpected: {f:?}"
        );
    }

    #[test]
    fn condvar_wait_is_not_nested_lock() {
        let f = findings_of(
            "fn f(m: std::sync::Mutex<u32>, cv: std::sync::Condvar) {\n\
             let mut g = m.lock().unwrap();\n\
             g = cv.wait(g).unwrap();\n\
             }\n",
        );
        assert!(f.is_empty(), "unexpected: {f:?}");
    }

    #[test]
    fn interprocedural_forward_call_is_flagged() {
        let f = findings_of(
            "fn helper(s: &mut S) { s.run_layers(3); }\n\
             fn holder(m: std::sync::Mutex<u32>, s: &mut S) {\n\
             let g = m.lock().unwrap();\n\
             helper(s);\n\
             }\n",
        );
        assert!(
            f.iter()
                .any(|x| x.lint == Lint::LockAcrossStep && x.line == 4),
            "unexpected: {f:?}"
        );
    }

    #[test]
    fn zero_literal_float_eq_is_exempt() {
        assert!(findings_of("fn f(x: f64) -> bool { x == 0.0 }").is_empty());
        let f = findings_of("fn f(x: f64) -> bool { x == 0.25 }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, Lint::FloatEq);
    }

    #[test]
    fn allow_suppresses_on_next_code_line() {
        let f = analyze(&[(
            "t.rs".to_string(),
            "fn f(x: f64) -> bool {\n// analyzer: allow(float-eq) reason=\"exact sentinel\"\nx == 0.25\n}\n"
                .to_string(),
        )]);
        assert!(f.findings.is_empty(), "unexpected: {:?}", f.findings);
        assert_eq!(f.suppressed, 1);
    }

    #[test]
    fn dangling_fn_directive_is_reported() {
        let f = findings_of("fn f() {}\n// analyzer: hot-path\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, Lint::InvalidDirective);
    }

    #[test]
    fn hot_path_lints_fire_only_when_annotated() {
        let src = "fn cold(v: &[u32]) -> Vec<u32> { v.to_vec() }\n\
                   // analyzer: hot-path\n\
                   fn hot(v: &[u32]) -> Vec<u32> { v.to_vec() }\n";
        let f = findings_of(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, Lint::HotPathAlloc);
        assert_eq!(f[0].function, "hot");
    }

    #[test]
    fn worker_loop_lock_unwrap_is_flagged() {
        let src = "fn plain(m: &std::sync::Mutex<u32>) { let g = m.lock().expect(\"x\"); }\n\
                   // analyzer: worker-loop\n\
                   fn drainer(m: &std::sync::Mutex<u32>) { let g = m.lock().expect(\"x\"); }\n";
        let f = findings_of(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, Lint::LockUnwrapInLoop);
        assert_eq!(f[0].function, "drainer");
    }

    #[test]
    fn hash_iteration_is_flagged_for_let_and_param_bindings() {
        let f = findings_of(
            "use std::collections::HashMap;\n\
             fn f(param: &HashMap<u32, u32>) {\n\
             let local = HashMap::new();\n\
             for x in param {}\n\
             for y in &local {}\n\
             let _v: Vec<u32> = local.keys().cloned().collect();\n\
             }\n",
        );
        let hash: Vec<u32> = f
            .iter()
            .filter(|x| x.lint == Lint::HashIter)
            .map(|x| x.line)
            .collect();
        assert_eq!(hash, vec![4, 5, 6]);
    }

    #[test]
    fn deref_copied_guard_inside_closure_is_released_at_statement_end() {
        // `;` inside a closure body that is itself inside call parens
        // must still end the statement: the temp guard from the first
        // lock is gone before the second lock on the next line.
        let f = findings_of(
            "struct L { a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32> }\n\
             fn f(ls: &[L]) -> Vec<u32> {\n\
             ls.iter().map(|l| {\n\
             let x = *l.a.lock().unwrap();\n\
             let g = l.b.lock().unwrap();\n\
             x + *g\n\
             }).collect()\n\
             }\n",
        );
        assert!(
            !f.iter().any(|x| x.lint == Lint::NestedLock),
            "unexpected: {f:?}"
        );
    }

    #[test]
    fn wall_clock_module_directive_silences_instant() {
        let dirty = findings_of("fn f() { let t = std::time::Instant::now(); }");
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].lint, Lint::WallClock);
        let clean = findings_of(
            "// analyzer: wall-clock-module reason=\"bench timing\"\n\
             fn f() { let t = std::time::Instant::now(); }",
        );
        assert!(clean.is_empty(), "unexpected: {clean:?}");
    }
}
