//! `edgebert-analyzer` — an in-repo static analysis pass enforcing
//! the serving stack's concurrency, hot-path, and determinism
//! contracts. Hand-rolled lexer + item scanner; zero dependencies
//! (the build environment is offline by design).
//!
//! Run it over the workspace:
//!
//! ```text
//! cargo run -p edgebert-analyzer -- --workspace
//! ```
//!
//! # Lint catalog
//!
//! **Lock discipline** — per-function lock summaries, interprocedural
//! one level deep:
//!
//! - `nested-lock` — a blocking `lock()` (or a call to a function
//!   that acquires one, including guard-returning helpers like
//!   `Lane::tally_lock`) while another guard is live. Lanes promise
//!   "one lock at a time" during work-stealing; the only sanctioned
//!   order is queue → tally (leaf), and each such site carries an
//!   `allow` spelling that out.
//! - `lock-across-step` — a guard held across a call into
//!   `InferenceSession::step` or the engine forward paths (`begin`,
//!   `run_layers`, `serve`, ...). Forward work under a lane lock
//!   serializes sibling shards for milliseconds at a time.
//! - `lock-unwrap-in-loop` — `lock().unwrap()/expect()` inside a
//!   function annotated `// analyzer: worker-loop`. A panicking
//!   worker poisons the mutex and the unwrap cascades the panic
//!   across every sibling shard; repairable state (tallies, stats)
//!   should recover via `PoisonError::into_inner`.
//!
//! **Hot-path discipline** — functions annotated
//! `// analyzer: hot-path` may not:
//!
//! - allocate (`hot-path-alloc`): `Box::new`, `Vec::`/`String::`
//!   constructors, `format!`/`vec!`, `.to_vec()`, `.clone()`,
//!   `.collect()`, `.push()`, ... (`Arc::clone(&x)` is exempt — it
//!   is the sanctioned refcount-bump spelling);
//! - block (`hot-path-block`): blocking `lock()` (use `try_lock` and
//!   count a drop), `Condvar::wait`, `sleep`, `join`, `recv`;
//! - panic (`hot-path-panic`): `panic!`/`assert!`-family macros,
//!   `.unwrap()`, `.expect()`.
//!
//! This statically complements the PR 8 counting-allocator runtime
//! pin on the telemetry push path.
//!
//! **Determinism** — the bit-identity oracles rule out hidden
//! nondeterminism in modeled-timeline code:
//!
//! - `wall-clock` — `Instant::now()`, `SystemTime`, or `.elapsed()`
//!   outside a file annotated
//!   `// analyzer: wall-clock-module reason="..."`.
//! - `hash-iter` — iteration over a `HashMap`/`HashSet` (`for`,
//!   `.iter()`, `.keys()`, `.values()`, `.drain()`, `.retain()`,
//!   ...): hash order is seeded per process.
//! - `float-eq` — float `==`/`!=` against a nonzero literal, or
//!   `partial_cmp().unwrap()/expect()`; use `f64::total_cmp`.
//!   Comparisons against a literal `0.0` are exempt (the unset-field
//!   sentinel idiom: written verbatim, never computed).
//! - `unseeded-rng` — `thread_rng`/`from_entropy`/`from_os_rng`; all
//!   randomness must flow from explicit seeds.
//!
//! **Directive hygiene**:
//!
//! - `invalid-directive` — a malformed `analyzer:` comment: unknown
//!   directive or lint id, missing/empty `reason`, or a dangling
//!   `hot-path`/`worker-loop` with no function below it. Never
//!   suppressible, never baselinable.
//!
//! # Annotations and suppression
//!
//! ```text
//! // analyzer: hot-path                          (next fn: no alloc/block/panic)
//! // analyzer: worker-loop                       (next fn: lock-unwrap-in-loop applies)
//! // analyzer: wall-clock-module reason="..."    (file: wall-clock reads sanctioned)
//! // analyzer: allow(<lint>) reason="..."        (this line + next code line)
//! ```
//!
//! The `reason` is mandatory wherever it appears. `#[cfg(test)]` and
//! `#[test]` items are skipped wholesale — the oracles compare floats
//! exactly and take locks freely on purpose.
//!
//! # Baseline workflow
//!
//! Pre-existing findings are grandfathered in `analyzer-baseline.toml`
//! at the workspace root (matched on `(lint, file, function)`, not
//! line numbers). `--workspace` loads it automatically; new findings
//! outside the baseline fail with exit code 1. To triage after a
//! refactor: `--emit-baseline` prints a candidate file for the
//! current findings.

pub mod baseline;
pub mod directives;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod scan;

pub use baseline::BaselineEntry;
pub use lints::{Finding, Lint};
pub use scan::{analyze, Report};

use std::io;
use std::path::{Path, PathBuf};

/// Locate the workspace root by searching upward from `start` for a
/// `Cargo.toml` containing a `[workspace]` table.
pub fn workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collect every `.rs` file under `<root>/src`, `<root>/crates/*/src`,
/// and `<root>/crates/*/*/src` (nested crates like the offline shims)
/// as `(workspace-relative path, contents)`, sorted by path.
pub fn collect_workspace_files(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let mut roots = vec![root.join("src")];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut names: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        names.sort();
        for c in names {
            if c.join("src").is_dir() {
                roots.push(c.join("src"));
            } else {
                let mut nested: Vec<PathBuf> = std::fs::read_dir(&c)?
                    .filter_map(Result::ok)
                    .map(|e| e.path())
                    .filter(|p| p.join("src").is_dir())
                    .collect();
                nested.sort();
                for n in nested {
                    roots.push(n.join("src"));
                }
            }
        }
    }
    for src_dir in roots {
        if src_dir.is_dir() {
            collect_rs_files(&src_dir, root, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(files)
}

/// Recursively gather `.rs` files under `dir`, recording paths
/// relative to `root` with `/` separators.
pub fn collect_rs_files(
    dir: &Path,
    root: &Path,
    out: &mut Vec<(String, String)>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs_files(&p, root, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, std::fs::read_to_string(&p)?));
        }
    }
    Ok(())
}
