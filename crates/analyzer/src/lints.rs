//! The lint catalog and the [`Finding`] record.

use std::fmt;

/// Every lint the analyzer can emit. See the crate-level docs for the
/// full catalog with rationale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// A blocking lock acquired while another guard is already live.
    NestedLock,
    /// A lock held across a call into `InferenceSession::step` or the
    /// engine forward paths.
    LockAcrossStep,
    /// `lock().unwrap()/expect()` inside a shard/worker drain loop,
    /// where poisoning cascades across sibling shards.
    LockUnwrapInLoop,
    /// Heap allocation inside a `// analyzer: hot-path` function.
    HotPathAlloc,
    /// Blocking primitive inside a `// analyzer: hot-path` function.
    HotPathBlock,
    /// Panic path inside a `// analyzer: hot-path` function.
    HotPathPanic,
    /// `Instant::now`/`SystemTime` outside a wall-clock module.
    WallClock,
    /// Iteration over a `HashMap`/`HashSet` (nondeterministic order).
    HashIter,
    /// Float `==`/`!=` against a nonzero literal, or
    /// `partial_cmp().unwrap()/expect()`.
    FloatEq,
    /// RNG constructed from ambient entropy (`thread_rng`, ...).
    UnseededRng,
    /// Malformed `// analyzer:` directive (unknown lint, missing
    /// reason, dangling annotation). Not suppressible, not baselinable.
    InvalidDirective,
}

impl Lint {
    /// Every lint, in catalog order.
    pub const ALL: [Lint; 11] = [
        Lint::NestedLock,
        Lint::LockAcrossStep,
        Lint::LockUnwrapInLoop,
        Lint::HotPathAlloc,
        Lint::HotPathBlock,
        Lint::HotPathPanic,
        Lint::WallClock,
        Lint::HashIter,
        Lint::FloatEq,
        Lint::UnseededRng,
        Lint::InvalidDirective,
    ];

    /// The stable kebab-case id used in `allow(...)`, the baseline
    /// file, and reports.
    pub fn id(self) -> &'static str {
        match self {
            Lint::NestedLock => "nested-lock",
            Lint::LockAcrossStep => "lock-across-step",
            Lint::LockUnwrapInLoop => "lock-unwrap-in-loop",
            Lint::HotPathAlloc => "hot-path-alloc",
            Lint::HotPathBlock => "hot-path-block",
            Lint::HotPathPanic => "hot-path-panic",
            Lint::WallClock => "wall-clock",
            Lint::HashIter => "hash-iter",
            Lint::FloatEq => "float-eq",
            Lint::UnseededRng => "unseeded-rng",
            Lint::InvalidDirective => "invalid-directive",
        }
    }

    /// Parse a lint id as written in an `allow(...)` directive or the
    /// baseline file.
    pub fn from_id(id: &str) -> Option<Lint> {
        Lint::ALL.into_iter().find(|l| l.id() == id)
    }

    /// True for lints that may never be suppressed or baselined.
    pub fn unsuppressible(self) -> bool {
        self == Lint::InvalidDirective
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One analyzer finding, anchored to a file/line/function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub lint: Lint,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Qualified function name (`Type::method` or `free_fn`), or
    /// `<module>` for file-level findings.
    pub function: String,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} (in {})",
            self.file, self.line, self.lint, self.message, self.function
        )
    }
}
