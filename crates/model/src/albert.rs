//! The ALBERT-style model: factorized embedding + one shared encoder
//! layer applied `num_layers` times + per-layer highway off-ramps.

use crate::config::AlbertConfig;
use crate::embedding::FactorizedEmbedding;
use crate::offramp::OffRamp;
use edgebert_nn::encoder::EncoderCache;
use edgebert_nn::norm::LayerNormCache;
use edgebert_nn::{EncoderLayer, LayerNorm, Parameter};
use edgebert_quant::tensor::fake_quantize;
use edgebert_tasks::{Dataset, VocabLayout};
use edgebert_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

/// Output of a full (no-early-exit) forward pass.
#[derive(Debug, Clone)]
pub struct LayerwiseOutput {
    /// Hidden state after each logical layer (`num_layers` entries).
    pub hidden_states: Vec<Matrix>,
    /// Off-ramp logits after each layer.
    pub logits: Vec<Vec<f32>>,
    /// Off-ramp output entropy after each layer.
    pub entropies: Vec<f32>,
}

impl LayerwiseOutput {
    /// The layer (1-based) at which a conventional early-exit inference
    /// with threshold `et` would stop, and the logits it would emit.
    /// Runs to the final layer if no entropy falls below the threshold.
    pub fn exit_at_threshold(&self, et: f32) -> (usize, &[f32]) {
        for (i, &h) in self.entropies.iter().enumerate() {
            if h < et {
                return (i + 1, &self.logits[i]);
            }
        }
        let last = self.entropies.len() - 1;
        (last + 1, &self.logits[last])
    }

    /// Predicted class if exiting at `layer` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn prediction_at(&self, layer: usize) -> usize {
        edgebert_tensor::stats::argmax(&self.logits[layer - 1])
    }
}

/// Layer-at-a-time forward execution: the software half of a resumable
/// inference session.
///
/// Where [`AlbertModel::forward_layers`] computes every layer eagerly,
/// a `ForwardSession` carries the live hidden state between layer
/// applications, so execution can stop at any layer boundary, be
/// checkpointed (the struct *is* the checkpoint: hidden state plus the
/// off-ramp outputs seen so far), and resume later — on the same thread
/// or another. Each [`AlbertModel::forward_next_layer`] call performs
/// exactly the per-layer operation sequence of `forward_layers`, so the
/// logits and entropies observed after layer *k* are bit-identical to
/// `forward_layers`'s entries for that layer, no matter where the
/// session was parked in between.
///
/// Sessions serialize (serde): the hidden state and off-ramp outputs
/// round-trip exactly (f32 values pass through f64 losslessly), so a
/// checkpoint can cross a process boundary and resume bit-identically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForwardSession {
    /// The live (unnormalized) hidden state entering the next layer.
    hidden: Matrix,
    /// Off-ramp logits after each completed layer.
    logits: Vec<Vec<f32>>,
    /// Off-ramp entropies after each completed layer.
    entropies: Vec<f32>,
}

impl ForwardSession {
    /// Layers completed so far.
    pub fn layers_done(&self) -> usize {
        self.logits.len()
    }

    /// Off-ramp logits after `layer` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `layer` has not been computed yet.
    pub fn logits_at(&self, layer: usize) -> &[f32] {
        &self.logits[layer - 1]
    }

    /// Off-ramp entropy after `layer` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `layer` has not been computed yet.
    pub fn entropy_at(&self, layer: usize) -> f32 {
        self.entropies[layer - 1]
    }
}

/// Training-time forward cache (one per sentence).
#[derive(Debug)]
pub struct TrainCache {
    /// Low-dimensional embedding sum (input to the projection).
    pub low: Matrix,
    /// Input hidden state of each layer application.
    pub layer_inputs: Vec<Matrix>,
    /// Encoder caches, one per layer application.
    pub encoder_caches: Vec<EncoderCache>,
    /// Final hidden state (pre final-norm).
    pub final_hidden: Matrix,
    /// Normalized final hidden state (what the classifier reads).
    pub final_normed: Matrix,
    /// Cache of the final layer norm.
    pub final_norm_cache: LayerNormCache,
}

/// The full model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlbertModel {
    /// Model shape.
    pub config: AlbertConfig,
    /// Factorized, frozen-table embedding.
    pub embedding: FactorizedEmbedding,
    /// The single shared encoder layer (applied `num_layers` times).
    pub encoder: EncoderLayer,
    /// Output layer norm applied before every off-ramp (the pre-norm
    /// architecture leaves the residual stream unnormalized).
    pub final_norm: LayerNorm,
    /// One off-ramp per logical layer; the last one doubles as the final
    /// classifier.
    pub off_ramps: Vec<OffRamp>,
    /// When `Some(exp_bits)`, activations are FP8 fake-quantized between
    /// layers (evaluation-time quantization of Fig. 4).
    pub activation_fp8: Option<u8>,
}

impl AlbertModel {
    /// Creates a model with random weights.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: AlbertConfig, rng: &mut Rng) -> Self {
        cfg.validate().expect("invalid model configuration");
        Self {
            embedding: FactorizedEmbedding::new(&cfg, rng),
            encoder: EncoderLayer::new(
                cfg.hidden_size,
                cfg.num_heads,
                cfg.intermediate_size,
                cfg.max_seq_len,
                rng,
            ),
            final_norm: LayerNorm::new(cfg.hidden_size),
            off_ramps: (0..cfg.num_layers)
                .map(|_| OffRamp::new(cfg.hidden_size, cfg.num_classes, rng))
                .collect(),
            config: cfg,
            activation_fp8: None,
        }
    }

    /// Creates a model with the synthetic "pre-trained" embedding space
    /// (see [`FactorizedEmbedding::pretrained`]).
    pub fn pretrained(cfg: AlbertConfig, layout: &VocabLayout, rng: &mut Rng) -> Self {
        let mut model = Self::new(cfg, rng);
        model.embedding = FactorizedEmbedding::pretrained(&cfg, layout, rng);
        model
    }

    /// Number of logical encoder layers.
    pub fn num_layers(&self) -> usize {
        self.config.num_layers
    }

    fn maybe_quantize(&self, m: Matrix) -> Matrix {
        match self.activation_fp8 {
            Some(bits) => fake_quantize(&m, bits),
            None => m,
        }
    }

    /// Full forward pass computing every layer and every off-ramp.
    pub fn forward_layers(&self, tokens: &[u32]) -> LayerwiseOutput {
        let mut hidden = self.maybe_quantize(self.embedding.embed(tokens));
        let mut hidden_states = Vec::with_capacity(self.num_layers());
        let mut logits = Vec::with_capacity(self.num_layers());
        let mut entropies = Vec::with_capacity(self.num_layers());
        for l in 0..self.num_layers() {
            hidden = self.maybe_quantize(self.encoder.infer(&hidden));
            let normed = self.final_norm.infer(&hidden);
            let (lg, h) = self.off_ramps[l].classify_with_entropy(&normed);
            hidden_states.push(normed);
            logits.push(lg);
            entropies.push(h);
        }
        LayerwiseOutput {
            hidden_states,
            logits,
            entropies,
        }
    }

    /// Starts a layer-at-a-time forward session: the embedding is
    /// computed (and optionally quantized) immediately, and each
    /// subsequent [`forward_next_layer`](Self::forward_next_layer) call
    /// advances one encoder layer. See [`ForwardSession`].
    pub fn begin_forward(&self, tokens: &[u32]) -> ForwardSession {
        ForwardSession {
            hidden: self.maybe_quantize(self.embedding.embed(tokens)),
            logits: Vec::new(),
            entropies: Vec::new(),
        }
    }

    /// Runs the next encoder layer of `session` (the same operation
    /// sequence as one iteration of [`forward_layers`](Self::forward_layers))
    /// and returns the 1-based layer just completed with its off-ramp
    /// entropy.
    ///
    /// # Panics
    ///
    /// Panics if every layer has already been computed.
    pub fn forward_next_layer(&self, session: &mut ForwardSession) -> (usize, f32) {
        let l = session.logits.len();
        assert!(
            l < self.num_layers(),
            "forward session already ran all {} layers",
            self.num_layers()
        );
        session.hidden = self.maybe_quantize(self.encoder.infer(&session.hidden));
        let normed = self.final_norm.infer(&session.hidden);
        let (lg, h) = self.off_ramps[l].classify_with_entropy(&normed);
        session.logits.push(lg);
        session.entropies.push(h);
        (l + 1, h)
    }

    /// Conventional early-exit inference (paper Algorithm 1): stop at the
    /// first layer whose off-ramp entropy is below `entropy_threshold`.
    /// Returns `(exit_layer (1-based), logits, entropies seen)`.
    pub fn infer_early_exit(
        &self,
        tokens: &[u32],
        entropy_threshold: f32,
    ) -> (usize, Vec<f32>, Vec<f32>) {
        let mut hidden = self.maybe_quantize(self.embedding.embed(tokens));
        let mut entropies = Vec::new();
        for l in 0..self.num_layers() {
            hidden = self.maybe_quantize(self.encoder.infer(&hidden));
            let normed = self.final_norm.infer(&hidden);
            let (lg, h) = self.off_ramps[l].classify_with_entropy(&normed);
            entropies.push(h);
            if h < entropy_threshold || l + 1 == self.num_layers() {
                return (l + 1, lg, entropies);
            }
        }
        unreachable!("loop always returns at the final layer");
    }

    /// Training forward pass (keeps every cache for the backward pass).
    pub fn forward_train(&self, tokens: &[u32]) -> (Vec<Matrix>, TrainCache) {
        let (hidden0, low) = self.embedding.embed_with_cache(tokens);
        let mut layer_inputs = Vec::with_capacity(self.num_layers());
        let mut encoder_caches = Vec::with_capacity(self.num_layers());
        let mut hidden_states = Vec::with_capacity(self.num_layers());
        let mut hidden = hidden0;
        for _ in 0..self.num_layers() {
            layer_inputs.push(hidden.clone());
            let (next, cache) = self.encoder.forward(&hidden);
            encoder_caches.push(cache);
            hidden_states.push(next.clone());
            hidden = next;
        }
        let final_hidden = hidden;
        let (final_normed, final_norm_cache) = self.final_norm.forward(&final_hidden);
        (
            hidden_states,
            TrainCache {
                low,
                layer_inputs,
                encoder_caches,
                final_hidden,
                final_normed,
                final_norm_cache,
            },
        )
    }

    /// Backward pass from a gradient on the final layer's hidden state;
    /// accumulates gradients into the shared encoder (once per layer
    /// application) and the embedding projection.
    pub fn backward_from_final(&mut self, cache: &TrainCache, grad_final_hidden: &Matrix) {
        let mut g = grad_final_hidden.clone();
        for l in (0..self.num_layers()).rev() {
            g = self.encoder.backward(&cache.encoder_caches[l], &g);
        }
        self.embedding.backward_projection(&cache.low, &g);
    }

    /// Gradient of the final off-ramp's logits w.r.t. the final hidden
    /// state (through the final layer norm; only the CLS row carries
    /// gradient). Also accumulates the off-ramp's and final norm's
    /// parameter grads.
    pub fn backward_final_classifier(&mut self, cache: &TrainCache, grad_logits: &[f32]) -> Matrix {
        let last = self.off_ramps.len() - 1;
        let normed = &cache.final_normed;
        let cls = Matrix::from_vec(1, normed.cols(), normed.row(0).to_vec());
        let g = Matrix::from_vec(1, grad_logits.len(), grad_logits.to_vec());
        let ramp = &mut self.off_ramps[last];
        ramp.backward_batch(&cls, &g);
        let d_cls = g.matmul_nt(&ramp.head.weight.value);
        let mut grad_normed = Matrix::zeros(normed.rows(), normed.cols());
        grad_normed.row_mut(0).copy_from_slice(d_cls.row(0));
        self.final_norm
            .backward(&cache.final_norm_cache, &grad_normed)
    }

    /// Logits of the final classifier for a training cache.
    pub fn final_logits(&self, cache: &TrainCache) -> Vec<f32> {
        self.off_ramps[self.off_ramps.len() - 1].classify(&cache.final_normed)
    }

    /// Fake-quantizes every weight tensor in place (evaluation-time FP8).
    pub fn quantize_weights(&mut self, exp_bits: u8) {
        let params = self.params_mut();
        for p in params {
            p.value = fake_quantize(&p.value, exp_bits);
        }
    }

    /// Enables FP8 fake-quantization of activations during inference.
    pub fn enable_activation_quant(&mut self, exp_bits: u8) {
        self.activation_fp8 = Some(exp_bits);
    }

    /// Classification accuracy over a dataset using the full (12-layer)
    /// model.
    pub fn evaluate_accuracy(&self, data: &Dataset) -> f32 {
        if data.is_empty() {
            return 0.0;
        }
        let mut correct = 0usize;
        for ex in data {
            let out = self.forward_layers(&ex.tokens);
            if out.prediction_at(self.num_layers()) == ex.label {
                correct += 1;
            }
        }
        correct as f32 / data.len() as f32
    }

    /// Accuracy and mean exit layer under conventional early exit at
    /// threshold `et`.
    pub fn evaluate_early_exit(&self, data: &Dataset, et: f32) -> (f32, f32) {
        if data.is_empty() {
            return (0.0, 0.0);
        }
        let mut correct = 0usize;
        let mut exit_sum = 0usize;
        for ex in data {
            let (layer, logits, _) = self.infer_early_exit(&ex.tokens, et);
            exit_sum += layer;
            if edgebert_tensor::stats::argmax(&logits) == ex.label {
                correct += 1;
            }
        }
        (
            correct as f32 / data.len() as f32,
            exit_sum as f32 / data.len() as f32,
        )
    }

    /// Per-head effective attention spans (paper Table 1 quantities).
    pub fn head_spans(&self) -> Vec<f32> {
        self.encoder.attention.head_spans()
    }

    /// Encoder weight sparsity (mean over the four projection matrices
    /// and the two FFN matrices).
    pub fn encoder_sparsity(&self) -> f32 {
        let mats = [
            &self.encoder.attention.wq.weight.value,
            &self.encoder.attention.wk.weight.value,
            &self.encoder.attention.wv.weight.value,
            &self.encoder.attention.wo.weight.value,
            &self.encoder.ffn.fc1.weight.value,
            &self.encoder.ffn.fc2.weight.value,
        ];
        let total: usize = mats.iter().map(|m| m.len()).sum();
        let zeros: usize = mats.iter().map(|m| m.len() - m.nnz()).sum();
        zeros as f32 / total as f32
    }

    /// Clears all gradients.
    pub fn zero_grad(&mut self) {
        self.embedding.zero_grad();
        self.encoder.zero_grad();
        self.final_norm.zero_grad();
        for r in &mut self.off_ramps {
            r.zero_grad();
        }
    }

    /// Every trainable parameter (embedding projection, shared encoder,
    /// all off-ramps).
    pub fn params_mut(&mut self) -> Vec<&mut Parameter> {
        let mut ps = self.embedding.params_mut();
        ps.extend(self.encoder.params_mut());
        ps.extend(self.final_norm.params_mut());
        for r in &mut self.off_ramps {
            ps.extend(r.params_mut());
        }
        ps
    }

    /// Freezes the backbone (embedding projection + encoder + final
    /// classifier included or excluded per `freeze_final`), used for
    /// training phase 2.
    pub fn set_backbone_frozen(&mut self, frozen: bool) {
        for p in self.embedding.params_mut() {
            p.frozen = frozen;
        }
        for p in self.encoder.params_mut() {
            p.frozen = frozen;
        }
        for p in self.final_norm.params_mut() {
            p.frozen = frozen;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgebert_tasks::vocab::CLS;

    fn tiny_model(seed: u64) -> AlbertModel {
        let mut rng = Rng::seed_from(seed);
        let cfg = AlbertConfig::tiny(64, 2);
        AlbertModel::new(cfg, &mut rng)
    }

    #[test]
    fn forward_layers_shapes() {
        let model = tiny_model(0);
        let out = model.forward_layers(&[CLS, 5, 6, 7]);
        assert_eq!(out.hidden_states.len(), 4);
        assert_eq!(out.logits.len(), 4);
        assert_eq!(out.entropies.len(), 4);
        assert_eq!(out.logits[0].len(), 2);
        for h in &out.entropies {
            assert!(*h >= 0.0 && *h <= (2.0f32).ln() + 1e-5);
        }
    }

    #[test]
    fn forward_session_is_bit_identical_to_forward_layers() {
        // The resumable-session contract: stepping layer by layer (with
        // the session cloned mid-way, i.e. checkpointed and resumed)
        // reproduces the eager pass bit for bit.
        for seed in [0u64, 1, 6] {
            let mut model = tiny_model(seed);
            if seed == 6 {
                model.enable_activation_quant(4); // quantized path too
            }
            let tokens = [CLS, 9, 10, 11, 12];
            let eager = model.forward_layers(&tokens);
            let mut session = model.begin_forward(&tokens);
            for l in 1..=model.num_layers() {
                if l == 3 {
                    // Park and resume: the clone is the checkpoint.
                    session = session.clone();
                }
                let (layer, h) = model.forward_next_layer(&mut session);
                assert_eq!(layer, l);
                assert_eq!(session.layers_done(), l);
                assert_eq!(h, eager.entropies[l - 1], "seed {seed} layer {l}");
                assert_eq!(session.entropy_at(l), eager.entropies[l - 1]);
                assert_eq!(
                    session.logits_at(l),
                    &eager.logits[l - 1][..],
                    "seed {seed} layer {l}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "already ran all")]
    fn forward_session_refuses_to_overrun_the_model() {
        let model = tiny_model(8);
        let mut session = model.begin_forward(&[CLS, 3, 4]);
        for _ in 0..=model.num_layers() {
            model.forward_next_layer(&mut session);
        }
    }

    #[test]
    fn early_exit_consistent_with_layerwise() {
        let model = tiny_model(1);
        let tokens = [CLS, 9, 10, 11, 12];
        let out = model.forward_layers(&tokens);
        for &et in &[0.05f32, 0.3, 0.69, 10.0] {
            let (layer, logits, _) = model.infer_early_exit(&tokens, et);
            let (expect_layer, expect_logits) = out.exit_at_threshold(et);
            assert_eq!(layer, expect_layer, "threshold {et}");
            for (a, b) in logits.iter().zip(expect_logits.iter()) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn huge_threshold_exits_at_layer_one() {
        let model = tiny_model(2);
        let (layer, _, seen) = model.infer_early_exit(&[CLS, 3, 4], f32::INFINITY);
        assert_eq!(layer, 1);
        assert_eq!(seen.len(), 1);
    }

    #[test]
    fn zero_threshold_runs_to_the_end() {
        let model = tiny_model(3);
        let (layer, _, seen) = model.infer_early_exit(&[CLS, 3, 4], 0.0);
        assert_eq!(layer, 4);
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn backward_reaches_encoder_and_projection() {
        let mut model = tiny_model(4);
        let (_, cache) = model.forward_train(&[CLS, 5, 6]);
        let grad_logits = vec![0.5f32, -0.5];
        let grad_hidden = model.backward_final_classifier(&cache, &grad_logits);
        model.backward_from_final(&cache, &grad_hidden);
        assert!(model.encoder.attention.wq.weight.grad.frobenius_norm() > 0.0);
        assert!(model.embedding.projection.weight.grad.frobenius_norm() > 0.0);
        let last = model.off_ramps.len() - 1;
        assert!(model.off_ramps[last].head.weight.grad.frobenius_norm() > 0.0);
    }

    #[test]
    fn weight_quantization_changes_but_approximates() {
        let mut model = tiny_model(5);
        let tokens = [CLS, 7, 8, 9];
        let before = model.forward_layers(&tokens);
        model.quantize_weights(4);
        let after = model.forward_layers(&tokens);
        // Quantization perturbs but does not destroy the logits.
        for (a, b) in before.logits[3].iter().zip(after.logits[3].iter()) {
            assert!((a - b).abs() < 1.0, "a={a} b={b}");
        }
    }

    #[test]
    fn activation_quantization_path_runs() {
        let mut model = tiny_model(6);
        model.enable_activation_quant(4);
        let out = model.forward_layers(&[CLS, 3]);
        assert_eq!(out.logits.len(), 4);
    }

    #[test]
    fn freeze_backbone_marks_parameters() {
        let mut model = tiny_model(7);
        model.set_backbone_frozen(true);
        assert!(model.embedding.projection.weight.frozen);
        assert!(model.encoder.attention.wq.weight.frozen);
        // Off-ramps stay trainable.
        assert!(!model.off_ramps[0].head.weight.frozen);
        model.set_backbone_frozen(false);
        assert!(!model.encoder.attention.wq.weight.frozen);
    }
}
