//! Factorized embedding layer (ALBERT-style) with a frozen, shareable
//! token table.
//!
//! The token table (`vocab x E`) and position table (`seq x E`) play the
//! role of ALBERT's word embeddings: they are *shared across tasks*,
//! frozen during fine-tuning, magnitude-pruned, FP8-quantized, and stored
//! in eNVM (paper §4). The `E -> H` projection is task-trainable like the
//! encoder.

use crate::config::AlbertConfig;
use edgebert_nn::{Linear, Parameter};
use edgebert_tasks::VocabLayout;
use edgebert_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

/// Factorized embedding: `hidden = proj(table[token] + pos[position])`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FactorizedEmbedding {
    /// Token embedding table, `vocab x E`. Frozen during fine-tuning.
    pub table: Parameter,
    /// Positional embedding table, `max_seq x E`. Frozen during
    /// fine-tuning.
    pub positions: Parameter,
    /// Trainable up-projection `E -> H`.
    pub projection: Linear,
}

impl FactorizedEmbedding {
    /// Random initialisation (no synthetic pre-training structure).
    pub fn new(cfg: &AlbertConfig, rng: &mut Rng) -> Self {
        let mut emb = Self {
            table: Parameter::new(rng.gaussian_matrix(cfg.vocab_size, cfg.embedding_size, 0.5)),
            positions: Parameter::new(rng.gaussian_matrix(
                cfg.max_seq_len,
                cfg.embedding_size,
                0.1,
            )),
            projection: Linear::new(cfg.embedding_size, cfg.hidden_size, rng),
        };
        emb.table.frozen = true;
        emb.positions.frozen = true;
        emb
    }

    /// Initialisation with synthetic "pre-trained" structure: every
    /// keyword token of a (task, class) pair shares a class-direction
    /// component, ambiguous tokens blend the directions of all classes of
    /// their task, and background tokens are isotropic noise.
    ///
    /// This stands in for the large-corpus pre-training we cannot run; it
    /// gives the embedding space the property fine-tuning relies on —
    /// class-relevant tokens are linearly separable in `E` dimensions.
    pub fn pretrained(cfg: &AlbertConfig, layout: &VocabLayout, rng: &mut Rng) -> Self {
        let mut emb = Self::new(cfg, rng);
        let e = cfg.embedding_size;
        // One unit direction per (task, class) pair.
        let mut directions: Vec<Vec<Matrix>> = Vec::new();
        for _task in 0..4u32 {
            let mut class_dirs = Vec::new();
            for _class in 0..3u32 {
                let mut d = rng.gaussian_matrix(1, e, 1.0);
                let norm = d.frobenius_norm().max(1e-6);
                d.scale_assign(1.0 / norm);
                class_dirs.push(d);
            }
            directions.push(class_dirs);
        }
        for task in 0..4u32 {
            for class in 0..3u32 {
                for k in 0..layout.keywords_per_class() {
                    let tok = layout.class_keyword(task, class, k) as usize;
                    if tok >= cfg.vocab_size {
                        continue;
                    }
                    let dir = &directions[task as usize][class as usize];
                    for c in 0..e {
                        let noise = rng.gaussian() * 0.25;
                        emb.table.value.set(tok, c, 1.6 * dir.get(0, c) + noise);
                    }
                }
            }
            // Ambiguous token 0 is the task's negator: it gets its own
            // salient direction, orthogonal-ish to the class directions,
            // so the encoder can learn to condition on its presence.
            // Remaining ambiguous tokens blend the class directions.
            let mut neg_dir = rng.gaussian_matrix(1, e, 1.0);
            let norm = neg_dir.frobenius_norm().max(1e-6);
            neg_dir.scale_assign(1.0 / norm);
            for k in 0..layout.keywords_per_class() {
                let tok = layout.ambiguous_token(task, k) as usize;
                if tok >= cfg.vocab_size {
                    continue;
                }
                for c in 0..e {
                    let noise = rng.gaussian() * 0.25;
                    let base = if k == 0 {
                        2.0 * neg_dir.get(0, c)
                    } else {
                        let blend: f32 = (0..3)
                            .map(|cl| directions[task as usize][cl].get(0, c))
                            .sum::<f32>()
                            / 3.0;
                        1.6 * blend
                    };
                    emb.table.value.set(tok, c, base + noise);
                }
            }
        }
        // PAD embeds to zero so padding carries no signal.
        for c in 0..e {
            emb.table
                .value
                .set(edgebert_tasks::vocab::PAD as usize, c, 0.0);
        }
        emb
    }

    /// Embeds a token sequence into a `seq_len x H` matrix.
    ///
    /// # Panics
    ///
    /// Panics if any token id is out of range or the sequence exceeds the
    /// position table.
    pub fn embed(&self, tokens: &[u32]) -> Matrix {
        assert!(
            tokens.len() <= self.positions.value.rows(),
            "sequence longer than position table"
        );
        let e = self.table.value.cols();
        let mut low = Matrix::zeros(tokens.len(), e);
        for (i, &tok) in tokens.iter().enumerate() {
            let tok = tok as usize;
            assert!(
                tok < self.table.value.rows(),
                "token {tok} out of vocabulary"
            );
            let row = self.table.value.row(tok);
            let pos = self.positions.value.row(i);
            for c in 0..e {
                low.set(i, c, row[c] + pos[c]);
            }
        }
        self.projection.infer(&low)
    }

    /// Embeds and returns the low-dimensional sum too (needed by the
    /// projection's backward pass).
    pub fn embed_with_cache(&self, tokens: &[u32]) -> (Matrix, Matrix) {
        let e = self.table.value.cols();
        let mut low = Matrix::zeros(tokens.len(), e);
        for (i, &tok) in tokens.iter().enumerate() {
            let row = self.table.value.row(tok as usize);
            let pos = self.positions.value.row(i);
            for c in 0..e {
                low.set(i, c, row[c] + pos[c]);
            }
        }
        let (hidden, _) = self.projection.forward(&low);
        (hidden, low)
    }

    /// Backward through the projection only (the tables are frozen).
    /// `low` is the cached low-dimensional input from
    /// [`FactorizedEmbedding::embed_with_cache`].
    pub fn backward_projection(&mut self, low: &Matrix, grad_hidden: &Matrix) {
        // Manual linear backward with the cached input.
        let dw = low.matmul_tn(grad_hidden);
        self.projection.weight.accumulate_grad(&dw);
        let db = Matrix::from_vec(1, grad_hidden.cols(), grad_hidden.sum_rows());
        self.projection.bias.accumulate_grad(&db);
    }

    /// Replaces the token table (e.g. with an eNVM fault-injected image).
    ///
    /// # Panics
    ///
    /// Panics if the shape differs from the current table.
    pub fn set_table(&mut self, table: Matrix) {
        assert_eq!(
            table.shape(),
            self.table.value.shape(),
            "table shape mismatch"
        );
        self.table.value = table;
        self.table.frozen = true;
    }

    /// Current sparsity of the token table.
    pub fn table_sparsity(&self) -> f32 {
        self.table.value.sparsity()
    }

    /// Clears the projection gradient.
    pub fn zero_grad(&mut self) {
        self.projection.zero_grad();
    }

    /// Trainable parameters (the projection; tables are frozen).
    pub fn params_mut(&mut self) -> Vec<&mut Parameter> {
        self.projection.params_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgebert_tasks::vocab::{CLS, PAD};

    fn cfg() -> AlbertConfig {
        AlbertConfig::tiny(VocabLayout::standard().vocab_size(), 2)
    }

    #[test]
    fn embed_shape() {
        let mut rng = Rng::seed_from(0);
        let emb = FactorizedEmbedding::new(&cfg(), &mut rng);
        let out = emb.embed(&[CLS, 5, 9, PAD]);
        assert_eq!(out.shape(), (4, 16));
    }

    #[test]
    fn pretrained_keywords_cluster_by_class() {
        let mut rng = Rng::seed_from(1);
        let layout = VocabLayout::standard();
        let emb = FactorizedEmbedding::pretrained(&cfg(), &layout, &mut rng);
        let cos = |a: &[f32], b: &[f32]| {
            let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            dot / (na * nb).max(1e-9)
        };
        let t0c0a = layout.class_keyword(0, 0, 0) as usize;
        let t0c0b = layout.class_keyword(0, 0, 1) as usize;
        let t0c1 = layout.class_keyword(0, 1, 0) as usize;
        let same = cos(emb.table.value.row(t0c0a), emb.table.value.row(t0c0b));
        let diff = cos(emb.table.value.row(t0c0a), emb.table.value.row(t0c1));
        assert!(same > diff + 0.2, "same {same} diff {diff}");
    }

    #[test]
    fn pad_token_embeds_to_zero_vector() {
        let mut rng = Rng::seed_from(2);
        let layout = VocabLayout::standard();
        let emb = FactorizedEmbedding::pretrained(&cfg(), &layout, &mut rng);
        assert!(emb.table.value.row(PAD as usize).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn tables_are_frozen_projection_is_not() {
        let mut rng = Rng::seed_from(3);
        let mut emb = FactorizedEmbedding::new(&cfg(), &mut rng);
        assert!(emb.table.frozen);
        assert!(emb.positions.frozen);
        assert!(emb.params_mut().iter().all(|p| !p.frozen));
    }

    #[test]
    fn projection_backward_accumulates() {
        let mut rng = Rng::seed_from(4);
        let mut emb = FactorizedEmbedding::new(&cfg(), &mut rng);
        let (hidden, low) = emb.embed_with_cache(&[CLS, 7, 8]);
        let g = Matrix::filled(hidden.rows(), hidden.cols(), 1.0);
        emb.backward_projection(&low, &g);
        assert!(emb.projection.weight.grad.frobenius_norm() > 0.0);
    }

    #[test]
    fn set_table_swaps_weights() {
        let mut rng = Rng::seed_from(5);
        let mut emb = FactorizedEmbedding::new(&cfg(), &mut rng);
        let zeros = Matrix::zeros(emb.table.value.rows(), emb.table.value.cols());
        emb.set_table(zeros.clone());
        assert_eq!(emb.table.value, zeros);
        assert_eq!(emb.table_sparsity(), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn out_of_vocab_token_panics() {
        let mut rng = Rng::seed_from(6);
        let emb = FactorizedEmbedding::new(&cfg(), &mut rng);
        let _ = emb.embed(&[u32::MAX]);
    }
}
