//! ALBERT-style transformer with highway off-ramps and the EdgeBERT
//! two-phase training procedure (paper Fig. 4).
//!
//! The model mirrors the paper's efficient baseline (§2.2):
//!
//! * **factorized embeddings** — a `vocab x E` token table (E ≪ H)
//!   projected up to the hidden width `H`;
//! * **cross-layer parameter sharing** — one [`edgebert_nn::EncoderLayer`]
//!   applied `num_layers` times (gradients accumulate across
//!   applications);
//! * **highway off-ramps** — one lightweight classifier per logical layer
//!   whose output entropy drives early exit (§3.1).
//!
//! Training follows Fig. 4: *phase 1* fine-tunes the backbone with
//! knowledge distillation from a dense teacher, movement/magnitude
//! pruning, and adaptive-span learning; *phase 2* freezes the backbone and
//! fine-tunes the off-ramps. At evaluation time weights and activations
//! are FP8-quantized and the embedding table can be swapped for a
//! fault-injected eNVM image.

pub mod albert;
pub mod config;
pub mod embedding;
pub mod offramp;
pub mod tokenizer;
pub mod trainer;

pub use albert::{AlbertModel, ForwardSession, LayerwiseOutput};
pub use config::AlbertConfig;
pub use embedding::FactorizedEmbedding;
pub use offramp::OffRamp;
pub use tokenizer::HashTokenizer;
pub use trainer::{TrainOptions, Trainer, TrainingSummary};
