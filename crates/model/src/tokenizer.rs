//! A small deterministic tokenizer for demo inputs.
//!
//! Real EdgeBERT uses WordPiece over a 30k vocabulary. For the examples in
//! this repository we need something that maps English-ish text onto the
//! *synthetic* vocabulary: a tiny sentiment lexicon maps opinion words to
//! the SST-2 class-keyword blocks (so the quickstart sentence "smart,
//! provocative and blisteringly funny" actually lands on positive-class
//! keywords), and everything else hashes into the background-token range.

use edgebert_tasks::generator::task_index;
use edgebert_tasks::vocab::{CLS, PAD, SEP};
use edgebert_tasks::{Task, VocabLayout};
use serde::{Deserialize, Serialize};

/// Deterministic text → token-id tokenizer over the synthetic vocabulary.
///
/// # Example
///
/// ```
/// use edgebert_model::HashTokenizer;
/// use edgebert_tasks::Task;
///
/// let tok = HashTokenizer::new(Task::Sst2, 32);
/// let ids = tok.encode("smart , provocative and blisteringly funny");
/// assert_eq!(ids.len(), 32);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HashTokenizer {
    task: Task,
    layout: VocabLayout,
    seq_len: usize,
}

const POSITIVE_WORDS: &[&str] = &[
    "good",
    "great",
    "smart",
    "funny",
    "brilliant",
    "excellent",
    "love",
    "wonderful",
    "provocative",
    "blisteringly",
    "best",
    "beautiful",
    "enjoyable",
    "delightful",
    "masterpiece",
];

const NEGATIVE_WORDS: &[&str] = &[
    "bad",
    "boring",
    "awful",
    "terrible",
    "dull",
    "worst",
    "hate",
    "poor",
    "mediocre",
    "tedious",
    "disappointing",
    "mess",
    "flat",
    "lifeless",
];

impl HashTokenizer {
    /// Creates a tokenizer for a task with the standard vocabulary layout.
    pub fn new(task: Task, seq_len: usize) -> Self {
        Self {
            task,
            layout: VocabLayout::standard(),
            seq_len,
        }
    }

    /// The fixed output length.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// The vocabulary layout used.
    pub fn layout(&self) -> &VocabLayout {
        &self.layout
    }

    /// Encodes text into a fixed-length token sequence
    /// (`[CLS] tokens… [SEP] [PAD]…`). Lowercases and splits on
    /// non-alphanumeric characters; sentiment words map to the task's
    /// class-keyword blocks, other words hash into background tokens.
    pub fn encode(&self, text: &str) -> Vec<u32> {
        let mut ids = vec![CLS];
        let t = task_index(self.task);
        for word in text
            .to_lowercase()
            .split(|c: char| !c.is_alphanumeric())
            .filter(|w| !w.is_empty())
        {
            if ids.len() + 1 >= self.seq_len {
                break;
            }
            let kpc = self.layout.keywords_per_class();
            let id = if POSITIVE_WORDS.contains(&word) {
                self.layout.class_keyword(t, 1, Self::hash(word) % kpc)
            } else if NEGATIVE_WORDS.contains(&word) {
                self.layout.class_keyword(t, 0, Self::hash(word) % kpc)
            } else {
                self.layout
                    .background_token(Self::hash(word) % self.layout.background_count())
            };
            ids.push(id);
        }
        ids.push(SEP);
        ids.resize(self.seq_len, PAD);
        ids
    }

    /// FNV-1a hash of a word.
    fn hash(word: &str) -> u32 {
        let mut h: u32 = 0x811c_9dc5;
        for b in word.bytes() {
            h ^= b as u32;
            h = h.wrapping_mul(0x0100_0193);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_fixed_length() {
        let tok = HashTokenizer::new(Task::Sst2, 16);
        let a = tok.encode("a great movie");
        let b = tok.encode("a great movie");
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert_eq!(a[0], CLS);
        assert!(a.contains(&SEP));
    }

    #[test]
    fn sentiment_words_map_to_class_keywords() {
        let tok = HashTokenizer::new(Task::Sst2, 16);
        let t = task_index(Task::Sst2);
        let ids = tok.encode("great");
        assert!(
            tok.layout().is_class_keyword(ids[1], t, 1),
            "token {}",
            ids[1]
        );
        let ids = tok.encode("awful");
        assert!(tok.layout().is_class_keyword(ids[1], t, 0));
    }

    #[test]
    fn unknown_words_hash_to_background() {
        let tok = HashTokenizer::new(Task::Sst2, 16);
        let ids = tok.encode("zyxwv");
        let bg0 = tok.layout().background_token(0);
        assert!(ids[1] >= bg0);
    }

    #[test]
    fn truncates_long_inputs() {
        let tok = HashTokenizer::new(Task::Sst2, 8);
        let long = "word ".repeat(50);
        let ids = tok.encode(&long);
        assert_eq!(ids.len(), 8);
        assert!(ids.contains(&SEP));
    }

    #[test]
    fn tokens_fit_vocabulary() {
        let tok = HashTokenizer::new(Task::Qnli, 24);
        let ids = tok.encode("Some arbitrary 123 question? With punctuation!!");
        let vs = tok.layout().vocab_size() as u32;
        assert!(ids.iter().all(|&t| t < vs));
    }
}
