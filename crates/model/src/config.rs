//! Model hyper-parameters.

use serde::{Deserialize, Serialize};

/// Configuration of an ALBERT-style model.
///
/// Three presets are provided:
///
/// * [`AlbertConfig::base`] — the paper's ALBERT-base shapes (E=128,
///   H=768, 12 heads, FFN 3072, seq 128). Used by the *hardware* model for
///   cycle/energy accounting; never trained in software here.
/// * [`AlbertConfig::small`] — a proportionally scaled model that is
///   actually trained on the synthetic tasks (12 shared layers, 12 heads).
/// * [`AlbertConfig::tiny`] — a minimal configuration for unit tests.
///
/// # Example
///
/// ```
/// use edgebert_model::AlbertConfig;
///
/// let cfg = AlbertConfig::base(30_000, 3);
/// assert_eq!(cfg.hidden_size, 768);
/// assert_eq!(cfg.num_layers, 12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlbertConfig {
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Factorized embedding width `E` (128 in ALBERT vs 768 in BERT).
    pub embedding_size: usize,
    /// Hidden width `H` of the encoder stream.
    pub hidden_size: usize,
    /// Number of logical encoder layers (parameters are shared).
    pub num_layers: usize,
    /// Number of attention heads.
    pub num_heads: usize,
    /// FFN intermediate width (4·H in ALBERT).
    pub intermediate_size: usize,
    /// Maximum (padded) sequence length.
    pub max_seq_len: usize,
    /// Number of output classes of the task head.
    pub num_classes: usize,
}

impl AlbertConfig {
    /// The paper's ALBERT-base shape.
    pub fn base(vocab_size: usize, num_classes: usize) -> Self {
        Self {
            vocab_size,
            embedding_size: 128,
            hidden_size: 768,
            num_layers: 12,
            num_heads: 12,
            intermediate_size: 3072,
            max_seq_len: 128,
            num_classes,
        }
    }

    /// A trainable scale model keeping the paper's *structure* (12 shared
    /// layers, 12 heads, 4x FFN expansion, E < H factorization).
    pub fn small(vocab_size: usize, num_classes: usize) -> Self {
        Self {
            vocab_size,
            embedding_size: 24,
            hidden_size: 48,
            num_layers: 12,
            num_heads: 12,
            intermediate_size: 96,
            max_seq_len: 32,
            num_classes,
        }
    }

    /// Minimal configuration for unit tests.
    pub fn tiny(vocab_size: usize, num_classes: usize) -> Self {
        Self {
            vocab_size,
            embedding_size: 8,
            hidden_size: 16,
            num_layers: 4,
            num_heads: 4,
            intermediate_size: 32,
            max_seq_len: 16,
            num_classes,
        }
    }

    /// Head dimension `H / heads`.
    pub fn head_dim(&self) -> usize {
        self.hidden_size / self.num_heads
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.hidden_size.is_multiple_of(self.num_heads) {
            return Err(format!(
                "hidden {} not divisible by heads {}",
                self.hidden_size, self.num_heads
            ));
        }
        if self.num_layers == 0 {
            return Err("at least one layer required".into());
        }
        if self.num_classes < 2 {
            return Err("at least two classes required".into());
        }
        if self.max_seq_len < 2 {
            return Err("sequence length too short".into());
        }
        if self.vocab_size == 0 {
            return Err("empty vocabulary".into());
        }
        Ok(())
    }

    /// FLOPs of one full encoder-stack forward pass at this configuration
    /// (multiply-accumulate counted as 2 FLOPs), following the paper's
    /// Fig. 5 shape accounting.
    pub fn encoder_flops(&self) -> u64 {
        let s = self.max_seq_len as u64;
        let h = self.hidden_size as u64;
        let i = self.intermediate_size as u64;
        // Per layer: QKV projections (3·s·h·h), scores (s·s·h), context
        // (s·s·h), output projection (s·h·h), FFN (2·s·h·i).
        let per_layer = 2 * (3 * s * h * h + 2 * s * s * h + s * h * h + 2 * s * h * i);
        per_layer * self.num_layers as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(AlbertConfig::base(30_000, 3).validate().is_ok());
        assert!(AlbertConfig::small(1000, 2).validate().is_ok());
        assert!(AlbertConfig::tiny(100, 2).validate().is_ok());
    }

    #[test]
    fn base_matches_paper_flops() {
        // Paper §7.1: "the transformer encoder requires 1.9 GFLOPs" for a
        // 128-token sentence — that figure is for ONE encoder layer
        // (12 layers ≈ 22.8 GFLOPs total for full inference).
        let cfg = AlbertConfig::base(30_000, 2);
        let per_layer = cfg.encoder_flops() / cfg.num_layers as u64;
        let gflops = per_layer as f64 / 1e9;
        assert!((1.5..2.3).contains(&gflops), "per-layer GFLOPs {gflops}");
    }

    #[test]
    fn validation_catches_errors() {
        let mut cfg = AlbertConfig::tiny(100, 2);
        cfg.num_heads = 3; // 16 % 3 != 0
        assert!(cfg.validate().is_err());
        let mut cfg = AlbertConfig::tiny(100, 2);
        cfg.num_classes = 1;
        assert!(cfg.validate().is_err());
        let mut cfg = AlbertConfig::tiny(100, 2);
        cfg.vocab_size = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn head_dim() {
        assert_eq!(AlbertConfig::base(10, 2).head_dim(), 64);
        assert_eq!(AlbertConfig::tiny(10, 2).head_dim(), 4);
    }
}
