//! Highway off-ramps: per-layer early-exit classifiers.
//!
//! Each logical encoder layer gets a lightweight classifier reading the
//! `[CLS]` token's hidden state. The entropy of its output distribution is
//! the early-exit signal (paper §3.1). Off-ramps are fine-tuned in phase 2
//! with the backbone frozen (Fig. 4).

use edgebert_nn::{Linear, Parameter};
use edgebert_tensor::{entropy, Matrix, Rng};
use serde::{Deserialize, Serialize};

/// One early-exit classifier head.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OffRamp {
    /// The classifier, `H -> num_classes`.
    pub head: Linear,
}

impl OffRamp {
    /// Creates an off-ramp for a `hidden`-wide stream.
    pub fn new(hidden: usize, num_classes: usize, rng: &mut Rng) -> Self {
        Self {
            head: Linear::new(hidden, num_classes, rng),
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.head.out_features()
    }

    /// Classifies the `[CLS]` hidden vector (row 0 of the layer output),
    /// returning the logits.
    pub fn classify(&self, layer_output: &Matrix) -> Vec<f32> {
        let cls = Matrix::from_vec(1, layer_output.cols(), layer_output.row(0).to_vec());
        self.head.infer(&cls).row(0).to_vec()
    }

    /// Logits plus the entropy of their induced distribution — the
    /// quantity compared against the exit threshold `E_T`.
    pub fn classify_with_entropy(&self, layer_output: &Matrix) -> (Vec<f32>, f32) {
        let logits = self.classify(layer_output);
        let h = entropy(&logits);
        (logits, h)
    }

    /// Training step ingredients: forward on a batch of CLS vectors
    /// (`batch x H`) producing `batch x classes` logits.
    pub fn forward_batch(&self, cls_vectors: &Matrix) -> Matrix {
        self.head.infer(cls_vectors)
    }

    /// Backward for [`OffRamp::forward_batch`]; accumulates grads.
    pub fn backward_batch(&mut self, cls_vectors: &Matrix, grad_logits: &Matrix) {
        let dw = cls_vectors.matmul_tn(grad_logits);
        self.head.weight.accumulate_grad(&dw);
        let db = Matrix::from_vec(1, grad_logits.cols(), grad_logits.sum_rows());
        self.head.bias.accumulate_grad(&db);
    }

    /// Clears gradients.
    pub fn zero_grad(&mut self) {
        self.head.zero_grad();
    }

    /// Mutable parameter references.
    pub fn params_mut(&mut self) -> Vec<&mut Parameter> {
        self.head.params_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgebert_nn::losses::cross_entropy;
    use edgebert_nn::AdamOptimizer;

    #[test]
    fn classify_reads_cls_row() {
        let mut rng = Rng::seed_from(0);
        let ramp = OffRamp::new(8, 3, &mut rng);
        let mut layer_out = rng.gaussian_matrix(5, 8, 1.0);
        let a = ramp.classify(&layer_out);
        // Changing non-CLS rows must not affect the logits.
        for r in 1..5 {
            for c in 0..8 {
                layer_out.set(r, c, 0.0);
            }
        }
        let b = ramp.classify(&layer_out);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn entropy_bounded_by_ln_classes() {
        let mut rng = Rng::seed_from(1);
        let ramp = OffRamp::new(8, 3, &mut rng);
        let x = rng.gaussian_matrix(4, 8, 1.0);
        let (_, h) = ramp.classify_with_entropy(&x);
        assert!(h >= 0.0 && h <= (3.0f32).ln() + 1e-5);
    }

    #[test]
    fn off_ramp_trains_on_cls_features() {
        // Linearly separable CLS vectors must be learnable.
        let mut rng = Rng::seed_from(2);
        let mut ramp = OffRamp::new(4, 2, &mut rng);
        let mut opt = AdamOptimizer::new(0.05);
        let n = 32;
        let mut xs = Matrix::zeros(n, 4);
        let mut ys = Vec::new();
        for r in 0..n {
            let label = r % 2;
            for c in 0..4 {
                let base = if label == 0 { 1.0 } else { -1.0 };
                xs.set(r, c, base + rng.gaussian() * 0.3);
            }
            ys.push(label);
        }
        for _ in 0..150 {
            ramp.zero_grad();
            let logits = ramp.forward_batch(&xs);
            let (_, grad) = cross_entropy(&logits, &ys);
            ramp.backward_batch(&xs, &grad);
            opt.step(&mut ramp.params_mut());
        }
        let acc = edgebert_nn::losses::accuracy(&ramp.forward_batch(&xs), &ys);
        assert!(acc > 0.95, "accuracy {acc}");
    }
}
