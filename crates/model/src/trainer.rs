//! The EdgeBERT training procedure (paper Fig. 4).
//!
//! * **Teacher**: the base model fine-tuned densely on the task (no
//!   pruning, spans left open). Its logits are the distillation targets.
//! * **Phase 1 (student)**: fine-tune with cross-entropy + knowledge
//!   distillation while (a) movement- or magnitude-pruning the encoder
//!   weights on a cubic schedule, (b) magnitude-pruning the frozen
//!   embedding table, and (c) learning per-head adaptive attention spans
//!   under a span penalty.
//! * **Phase 2**: freeze every backbone parameter and fine-tune the
//!   highway off-ramps on per-layer `[CLS]` features.

use crate::albert::AlbertModel;
use crate::config::AlbertConfig;
use edgebert_nn::losses::{cross_entropy, distillation};
use edgebert_nn::prune::{PruneMethod, Pruner};
use edgebert_nn::AdamOptimizer;
use edgebert_tasks::{Dataset, VocabLayout};
use edgebert_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for the two-phase procedure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainOptions {
    /// Fine-tuning epochs for the teacher and for student phase 1.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Distillation temperature.
    pub distill_temperature: f32,
    /// Weight of the distillation loss relative to cross-entropy.
    pub distill_weight: f32,
    /// Span penalty coefficient (per head, per unit of span).
    pub span_penalty: f32,
    /// Dedicated SGD learning rate for the span parameters. Spans are
    /// scalar knobs whose penalty gradient is tiny and constant; updating
    /// them with Adam (which normalizes gradient magnitude) would let the
    /// task gradient's sign flip-flop dominate, so they get their own
    /// plain-SGD rate as in Sukhbaatar et al.
    pub span_lr: f32,
    /// Encoder pruning method and final sparsity; `None` disables.
    pub encoder_prune: Option<(PruneMethod, f32)>,
    /// Final sparsity for magnitude pruning of the embedding table.
    pub embedding_sparsity: f32,
    /// Adam steps for each off-ramp in phase 2.
    pub offramp_steps: usize,
    /// RNG seed for initialisation and shuffling.
    pub seed: u64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            epochs: 3,
            lr: 1.5e-3,
            distill_temperature: 2.0,
            distill_weight: 0.5,
            span_penalty: 2e-3,
            span_lr: 25.0,
            encoder_prune: Some((PruneMethod::Movement, 0.5)),
            embedding_sparsity: 0.6,
            offramp_steps: 200,
            seed: 0xED6E,
        }
    }
}

/// Summary statistics of a completed training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingSummary {
    /// Dev accuracy of the dense teacher.
    pub teacher_accuracy: f32,
    /// Dev accuracy of the optimized student (full-depth inference).
    pub student_accuracy: f32,
    /// Final encoder weight sparsity.
    pub encoder_sparsity: f32,
    /// Final embedding table sparsity.
    pub embedding_sparsity: f32,
    /// Learned per-head spans.
    pub head_spans: Vec<f32>,
    /// Mean of [`TrainingSummary::head_spans`].
    pub avg_span: f32,
    /// Number of fully-off heads.
    pub heads_off: usize,
}

/// Runs the Fig. 4 procedure end to end.
#[derive(Debug, Clone)]
pub struct Trainer {
    cfg: AlbertConfig,
    layout: VocabLayout,
    opts: TrainOptions,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(cfg: AlbertConfig, layout: VocabLayout, opts: TrainOptions) -> Self {
        Self { cfg, layout, opts }
    }

    /// The options in use.
    pub fn options(&self) -> &TrainOptions {
        &self.opts
    }

    /// Trains the dense teacher: plain cross-entropy fine-tuning, no
    /// pruning, no span penalty, spans pinned fully open.
    pub fn train_teacher(&self, train: &Dataset) -> AlbertModel {
        let mut rng = Rng::seed_from(self.opts.seed);
        let mut model = AlbertModel::pretrained(self.cfg, &self.layout, &mut rng);
        for span in &mut model.encoder.attention.spans {
            span.z.frozen = true;
        }
        let mut opt = AdamOptimizer::new(self.opts.lr);
        let mut order: Vec<usize> = (0..train.len()).collect();
        for _epoch in 0..self.opts.epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                let ex = &train.examples()[i];
                model.zero_grad();
                let (_, cache) = model.forward_train(&ex.tokens);
                let logits = Matrix::from_vec(1, self.cfg.num_classes, model.final_logits(&cache));
                let (_, grad) = cross_entropy(&logits, &[ex.label]);
                let grad_hidden = model.backward_final_classifier(&cache, grad.row(0));
                model.backward_from_final(&cache, &grad_hidden);
                opt.step(&mut model.params_mut());
            }
        }
        model
    }

    /// Phase 1: student fine-tuning with KD + pruning + adaptive spans.
    /// Returns the optimized student (off-ramps still untrained except the
    /// final classifier).
    pub fn train_student_phase1(&self, teacher: &AlbertModel, train: &Dataset) -> AlbertModel {
        let mut rng = Rng::seed_from(self.opts.seed ^ 0x5EED);
        let mut model = AlbertModel::pretrained(self.cfg, &self.layout, &mut rng);
        // Spans train via their dedicated SGD rate below, not via Adam.
        for span in &mut model.encoder.attention.spans {
            span.z.frozen = true;
        }
        let mut opt = AdamOptimizer::new(self.opts.lr);
        let total_steps = (self.opts.epochs * train.len()).max(1);

        // Enable movement tracking on encoder weight matrices.
        let encoder_pruner = self
            .opts
            .encoder_prune
            .map(|(method, sparsity)| Pruner::new(method, sparsity, total_steps));
        if matches!(self.opts.encoder_prune, Some((PruneMethod::Movement, _))) {
            for p in Self::encoder_weight_params(&mut model) {
                p.enable_movement_tracking();
            }
        }
        let embedding_pruner = Pruner::new(
            PruneMethod::Magnitude,
            self.opts.embedding_sparsity,
            total_steps,
        );

        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut step = 0usize;
        let prune_every = (total_steps / 20).max(1);
        for _epoch in 0..self.opts.epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                let ex = &train.examples()[i];
                model.zero_grad();
                let (_, cache) = model.forward_train(&ex.tokens);
                let logits = Matrix::from_vec(1, self.cfg.num_classes, model.final_logits(&cache));
                // Task loss.
                let (_, ce_grad) = cross_entropy(&logits, &[ex.label]);
                // Distillation against the teacher's final logits.
                let teacher_out = teacher.forward_layers(&ex.tokens);
                let teacher_logits = Matrix::from_vec(
                    1,
                    self.cfg.num_classes,
                    teacher_out.logits[self.cfg.num_layers - 1].clone(),
                );
                let (_, kd_grad) =
                    distillation(&logits, &teacher_logits, self.opts.distill_temperature);
                let mut grad = ce_grad;
                grad.add_assign(&kd_grad.scale(self.opts.distill_weight));

                let grad_hidden = model.backward_final_classifier(&cache, grad.row(0));
                model.backward_from_final(&cache, &grad_hidden);
                // Span penalty (adds to span grads), delayed until the
                // task loss has had time to establish which heads matter —
                // otherwise weakly-learning tasks lose every head before
                // the gradient can defend the useful ones.
                if step >= total_steps / 3 {
                    model
                        .encoder
                        .attention
                        .apply_span_penalty(self.opts.span_penalty);
                }

                // Movement scores use the pre-step (weight, grad) pair.
                for p in Self::encoder_weight_params(&mut model) {
                    p.update_movement_scores();
                }
                opt.step(&mut model.params_mut());
                // Dedicated span update (plain SGD on the scalar z's).
                for span in &mut model.encoder.attention.spans {
                    let g = span.z.grad.get(0, 0);
                    let z = span.z_value();
                    span.set_z(z - self.opts.span_lr * g);
                }
                model.encoder.attention.clamp_spans();

                step += 1;
                if step.is_multiple_of(prune_every) {
                    if let Some(pruner) = &encoder_pruner {
                        for p in Self::encoder_weight_params(&mut model) {
                            pruner.apply(p, step);
                        }
                    }
                    embedding_pruner.apply(&mut model.embedding.table, step);
                }
            }
        }
        // Final mask application at full sparsity.
        if let Some(pruner) = &encoder_pruner {
            for p in Self::encoder_weight_params(&mut model) {
                pruner.apply(p, total_steps);
            }
        }
        embedding_pruner.apply(&mut model.embedding.table, total_steps);
        model
    }

    /// Phase 2: freeze the backbone, fine-tune every non-final off-ramp
    /// on per-layer `[CLS]` features.
    pub fn train_offramps_phase2(&self, model: &mut AlbertModel, train: &Dataset) {
        model.set_backbone_frozen(true);
        let layers = self.cfg.num_layers;
        // Collect per-layer CLS features with one forward pass per example.
        let mut features: Vec<Matrix> = (0..layers)
            .map(|_| Matrix::zeros(train.len(), self.cfg.hidden_size))
            .collect();
        let labels = train.labels();
        for (i, ex) in train.iter().enumerate() {
            let out = model.forward_layers(&ex.tokens);
            for (l, hs) in out.hidden_states.iter().enumerate() {
                features[l].row_mut(i).copy_from_slice(hs.row(0));
            }
        }
        // Train each intermediate off-ramp (the final classifier was
        // trained in phase 1 and stays frozen by convention).
        for (l, feats) in features.iter().enumerate().take(layers - 1) {
            let mut opt = AdamOptimizer::new(self.opts.lr);
            for _ in 0..self.opts.offramp_steps {
                let ramp = &mut model.off_ramps[l];
                ramp.zero_grad();
                let logits = ramp.forward_batch(feats);
                let (_, grad) = cross_entropy(&logits, &labels);
                ramp.backward_batch(feats, &grad);
                opt.step(&mut ramp.params_mut());
            }
        }
        model.set_backbone_frozen(false);
    }

    /// Runs the complete procedure: teacher → phase 1 → phase 2. Returns
    /// the student and a summary evaluated on `dev`.
    pub fn run(&self, train: &Dataset, dev: &Dataset) -> (AlbertModel, TrainingSummary) {
        let teacher = self.train_teacher(train);
        let teacher_accuracy = teacher.evaluate_accuracy(dev);
        let mut student = self.train_student_phase1(&teacher, train);
        self.train_offramps_phase2(&mut student, train);
        let student_accuracy = student.evaluate_accuracy(dev);
        let head_spans = student.head_spans();
        let avg_span = head_spans.iter().sum::<f32>() / head_spans.len().max(1) as f32;
        let heads_off = head_spans.iter().filter(|&&s| s == 0.0).count();
        let summary = TrainingSummary {
            teacher_accuracy,
            student_accuracy,
            encoder_sparsity: student.encoder_sparsity(),
            embedding_sparsity: student.embedding.table_sparsity(),
            head_spans,
            avg_span,
            heads_off,
        };
        (student, summary)
    }

    /// The six encoder weight matrices subject to network pruning.
    fn encoder_weight_params(model: &mut AlbertModel) -> Vec<&mut edgebert_nn::Parameter> {
        vec![
            &mut model.encoder.attention.wq.weight,
            &mut model.encoder.attention.wk.weight,
            &mut model.encoder.attention.wv.weight,
            &mut model.encoder.attention.wo.weight,
            &mut model.encoder.ffn.fc1.weight,
            &mut model.encoder.ffn.fc2.weight,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgebert_tasks::{Task, TaskGenerator};

    fn tiny_setup(task: Task, n: usize) -> (AlbertConfig, VocabLayout, Dataset, Dataset) {
        let layout = VocabLayout::standard();
        let cfg = AlbertConfig::tiny(layout.vocab_size(), task.num_classes());
        let gen = TaskGenerator::standard(task, cfg.max_seq_len);
        let data = gen.generate(n, 99);
        let (train, dev) = data.split(0.8);
        (cfg, layout, train, dev)
    }

    #[test]
    fn teacher_learns_above_chance() {
        let (cfg, layout, train, dev) = tiny_setup(Task::Sst2, 100);
        let opts = TrainOptions {
            epochs: 3,
            ..Default::default()
        };
        let trainer = Trainer::new(cfg, layout, opts);
        let teacher = trainer.train_teacher(&train);
        let acc = teacher.evaluate_accuracy(&dev);
        assert!(acc > 0.6, "teacher accuracy {acc}");
    }

    #[test]
    fn full_procedure_produces_sparse_student() {
        let (cfg, layout, train, dev) = tiny_setup(Task::Sst2, 80);
        let opts = TrainOptions {
            epochs: 2,
            offramp_steps: 60,
            encoder_prune: Some((PruneMethod::Movement, 0.5)),
            embedding_sparsity: 0.6,
            ..Default::default()
        };
        let trainer = Trainer::new(cfg, layout, opts);
        let (student, summary) = trainer.run(&train, &dev);
        assert!(
            (summary.encoder_sparsity - 0.5).abs() < 0.05,
            "{}",
            summary.encoder_sparsity
        );
        assert!(
            (summary.embedding_sparsity - 0.6).abs() < 0.05,
            "{}",
            summary.embedding_sparsity
        );
        assert!(
            summary.student_accuracy > 0.55,
            "{}",
            summary.student_accuracy
        );
        // Off-ramps produce finite entropies at every layer.
        let out = student.forward_layers(&train.examples()[0].tokens);
        assert!(out.entropies.iter().all(|h| h.is_finite()));
    }

    #[test]
    fn phase2_improves_intermediate_offramps() {
        let (cfg, layout, train, _dev) = tiny_setup(Task::Sst2, 100);
        let opts = TrainOptions {
            epochs: 2,
            offramp_steps: 120,
            ..Default::default()
        };
        let trainer = Trainer::new(cfg, layout, opts.clone());
        let teacher = trainer.train_teacher(&train);
        let mut student = trainer.train_student_phase1(&teacher, &train);

        // Off-ramp quality measured where phase 2 optimizes it: the
        // training set's per-layer CLS features.
        let layer1_acc = |m: &AlbertModel| {
            let mut correct = 0;
            for ex in &train {
                let out = m.forward_layers(&ex.tokens);
                if out.prediction_at(1) == ex.label {
                    correct += 1;
                }
            }
            correct as f32 / train.len() as f32
        };
        let before = layer1_acc(&student);
        trainer.train_offramps_phase2(&mut student, &train);
        let after = layer1_acc(&student);
        assert!(
            after + 0.05 >= before,
            "phase 2 should not hurt: {before} -> {after}"
        );
        assert!(after > 0.55, "layer-1 ramp after phase 2: {after}");
    }
}
