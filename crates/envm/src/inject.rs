//! Monte-Carlo fault injection over stored bit images (Ares-style).
//!
//! Faults are injected at *cell* granularity: each cell holds
//! `bits_per_cell` adjacent bits of the byte stream, and a faulty cell
//! reads back at an adjacent level (±1), the dominant error mode of
//! multi-level ReRAM. The injector perturbs the raw bytes of a
//! [`StoredEmbedding`]; the caller then decodes and evaluates task
//! accuracy, exactly like the paper's Table 2 campaign.

use crate::cells::CellTech;
use crate::storage::StoredEmbedding;
use edgebert_tensor::Rng;
use serde::{Deserialize, Serialize};

/// Configurable fault injector.
///
/// # Example
///
/// ```
/// use edgebert_envm::{CellTech, FaultInjector};
/// use edgebert_tensor::Rng;
///
/// let injector = FaultInjector::new(CellTech::Mlc3).with_error_rate(0.5);
/// let mut bytes = vec![0u8; 64];
/// let mut rng = Rng::seed_from(0);
/// let faults = injector.inject_bytes(&mut bytes, &mut rng);
/// assert!(faults > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultInjector {
    tech: CellTech,
    error_rate: f64,
}

impl FaultInjector {
    /// Creates an injector using the technology's default error rate.
    pub fn new(tech: CellTech) -> Self {
        Self {
            tech,
            error_rate: tech.level_error_rate(),
        }
    }

    /// Overrides the per-cell error rate (for sensitivity sweeps).
    pub fn with_error_rate(mut self, rate: f64) -> Self {
        self.error_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// The cell technology faults are modelled for.
    pub fn tech(&self) -> CellTech {
        self.tech
    }

    /// The per-cell error rate in use.
    pub fn error_rate(&self) -> f64 {
        self.error_rate
    }

    /// Injects adjacent-level faults into a byte stream interpreted as a
    /// sequence of `bits_per_cell`-bit cells (LSB-first within each byte,
    /// cells never straddle bytes' logical bit order). Returns the number
    /// of faulted cells.
    pub fn inject_bytes(&self, bytes: &mut [u8], rng: &mut Rng) -> usize {
        let k = self.tech.bits_per_cell() as usize;
        let total_bits = bytes.len() * 8;
        let total_cells = total_bits.div_ceil(k);
        let mut faults = 0usize;

        // For low error rates, sampling the number of faulty cells from a
        // binomial via per-cell Bernoulli would be O(cells); instead draw
        // the expected count then place faults uniformly. For high rates
        // (sweeps), fall back to per-cell trials.
        if self.error_rate < 0.01 {
            let expected = self.error_rate * total_cells as f64;
            // Poisson approximation to the binomial.
            let n_faults = sample_poisson(expected, rng);
            for _ in 0..n_faults {
                let cell = rng.below(total_cells.max(1));
                self.fault_cell(bytes, cell, rng);
                faults += 1;
            }
        } else {
            for cell in 0..total_cells {
                if rng.chance(self.error_rate) {
                    self.fault_cell(bytes, cell, rng);
                    faults += 1;
                }
            }
        }
        faults
    }

    /// Applies an adjacent-level shift to cell index `cell`.
    fn fault_cell(&self, bytes: &mut [u8], cell: usize, rng: &mut Rng) {
        let k = self.tech.bits_per_cell() as usize;
        let bit_start = cell * k;
        let levels = 1u32 << k;
        // Gather the (up to k) bits of this cell.
        let mut value = 0u32;
        let mut width = 0usize;
        for i in 0..k {
            let bit = bit_start + i;
            if bit >= bytes.len() * 8 {
                break;
            }
            let b = (bytes[bit / 8] >> (bit % 8)) & 1;
            value |= (b as u32) << i;
            width += 1;
        }
        if width == 0 {
            return;
        }
        // Shift to an adjacent level, clamped to the valid range.
        let shifted = if value == 0 {
            1
        } else if value == levels - 1 {
            value - 1
        } else if rng.chance(0.5) {
            value + 1
        } else {
            value - 1
        };
        // Scatter back.
        for (i, _) in (0..width).enumerate() {
            let bit = bit_start + i;
            let mask = 1u8 << (bit % 8);
            if (shifted >> i) & 1 == 1 {
                bytes[bit / 8] |= mask;
            } else {
                bytes[bit / 8] &= !mask;
            }
        }
    }

    /// Injects faults into a stored embedding: payload cells use this
    /// injector's technology; the bitmask is protected in SLC and uses the
    /// SLC error rate, per the paper's layout.
    pub fn inject_storage(&self, storage: &mut StoredEmbedding, rng: &mut Rng) -> usize {
        let payload_faults = self.inject_bytes(storage.payload_bytes_mut(), rng);
        let mask_injector = FaultInjector::new(CellTech::Slc);
        let mask_faults = mask_injector.inject_bytes(storage.mask_bytes_mut(), rng);
        payload_faults + mask_faults
    }
}

/// Sample from a Poisson distribution (Knuth's method for small lambda,
/// normal approximation above 50).
fn sample_poisson(lambda: f64, rng: &mut Rng) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 50.0 {
        let g = rng.gaussian() as f64;
        return (lambda + lambda.sqrt() * g).round().max(0.0) as usize;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.uniform() as f64;
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // safety valve
        }
    }
}

/// Aggregate result of a fault-injection campaign (one Table 2 cell).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Mean metric (e.g. accuracy) across trials.
    pub mean: f32,
    /// Worst-case metric across trials.
    pub min: f32,
    /// Number of trials run.
    pub trials: usize,
    /// Mean number of faulted cells per trial.
    pub mean_faults: f32,
}

impl CampaignResult {
    /// Runs `trials` Monte-Carlo trials: each trial clones the pristine
    /// storage, injects faults, and scores it with `evaluate`.
    pub fn run(
        pristine: &StoredEmbedding,
        injector: &FaultInjector,
        trials: usize,
        rng: &mut Rng,
        mut evaluate: impl FnMut(&StoredEmbedding) -> f32,
    ) -> CampaignResult {
        let mut sum = 0.0f32;
        let mut min = f32::INFINITY;
        let mut fault_sum = 0usize;
        for _ in 0..trials {
            let mut trial = pristine.clone();
            let mut trial_rng = rng.fork();
            fault_sum += injector.inject_storage(&mut trial, &mut trial_rng);
            let score = evaluate(&trial);
            sum += score;
            min = min.min(score);
        }
        CampaignResult {
            mean: sum / trials.max(1) as f32,
            min: if trials == 0 { 0.0 } else { min },
            trials,
            mean_faults: fault_sum as f32 / trials.max(1) as f32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgebert_tensor::{Matrix, Rng};

    #[test]
    fn zero_error_rate_is_noop() {
        let injector = FaultInjector::new(CellTech::Mlc2).with_error_rate(0.0);
        let mut bytes = vec![0xA5u8; 128];
        let orig = bytes.clone();
        let mut rng = Rng::seed_from(1);
        assert_eq!(injector.inject_bytes(&mut bytes, &mut rng), 0);
        assert_eq!(bytes, orig);
    }

    #[test]
    fn full_error_rate_faults_every_cell() {
        let injector = FaultInjector::new(CellTech::Slc).with_error_rate(1.0);
        let mut bytes = vec![0u8; 4];
        let mut rng = Rng::seed_from(2);
        let faults = injector.inject_bytes(&mut bytes, &mut rng);
        assert_eq!(faults, 32);
        // SLC level shift from 0 is always to 1: all bits set.
        assert_eq!(bytes, vec![0xFFu8; 4]);
    }

    #[test]
    fn fault_count_scales_with_rate() {
        let mut rng = Rng::seed_from(3);
        let mut low_total = 0usize;
        let mut high_total = 0usize;
        for _ in 0..20 {
            let mut b1 = vec![0u8; 4096];
            let mut b2 = vec![0u8; 4096];
            low_total += FaultInjector::new(CellTech::Mlc2)
                .with_error_rate(1e-3)
                .inject_bytes(&mut b1, &mut rng);
            high_total += FaultInjector::new(CellTech::Mlc2)
                .with_error_rate(1e-2)
                .inject_bytes(&mut b2, &mut rng);
        }
        assert!(
            high_total > low_total * 5,
            "low {low_total} high {high_total}"
        );
    }

    #[test]
    fn adjacent_level_shift_is_small() {
        // An MLC3 fault changes a 3-bit group by exactly ±1 level.
        let injector = FaultInjector::new(CellTech::Mlc3).with_error_rate(1.0);
        let mut rng = Rng::seed_from(4);
        let mut bytes = vec![0b0010_1010u8, 0b0000_0101]; // cells: 010,101,00|101(...)
        let before = bytes.clone();
        injector.inject_bytes(&mut bytes, &mut rng);
        // Decode cells of 3 bits across the 16-bit stream and compare.
        let get_cells = |bs: &[u8]| -> Vec<u32> {
            let mut cells = Vec::new();
            let total_bits = bs.len() * 8;
            let mut bit = 0usize;
            while bit < total_bits {
                let mut v = 0u32;
                for i in 0..3 {
                    if bit + i < total_bits {
                        v |= ((bs[(bit + i) / 8] >> ((bit + i) % 8)) as u32 & 1) << i;
                    }
                }
                cells.push(v);
                bit += 3;
            }
            cells
        };
        for (a, b) in get_cells(&before).iter().zip(get_cells(&bytes).iter()) {
            let d = (*a as i32 - *b as i32).abs();
            assert!(d == 1 || (d == 0 && *a == *b), "level moved by {d}");
        }
    }

    #[test]
    fn campaign_statistics() {
        let mut rng = Rng::seed_from(5);
        let table = rng.sparse_gaussian(32, 32, 0.5);
        let stored = StoredEmbedding::encode(&table, 4);
        let injector = FaultInjector::new(CellTech::Mlc3).with_error_rate(0.05);
        let reference = stored.decode();
        let result = CampaignResult::run(&stored, &injector, 20, &mut rng, |s| {
            // Score = negative RMSE against the pristine decode.
            let d = s.decode();
            -edgebert_tensor::stats::rmse(d.as_slice(), reference.as_slice())
        });
        assert_eq!(result.trials, 20);
        assert!(result.mean_faults > 0.0);
        assert!(result.min <= result.mean);
        assert!(result.mean < 0.0, "faults must perturb the payload");
    }

    #[test]
    fn campaign_trials_are_independent_of_each_other() {
        // The pristine image must not accumulate faults across trials.
        let mut rng = Rng::seed_from(6);
        let table = Matrix::filled(8, 8, 1.0);
        let stored = StoredEmbedding::encode(&table, 4);
        let injector = FaultInjector::new(CellTech::Mlc3).with_error_rate(0.3);
        let _ = CampaignResult::run(&stored, &injector, 10, &mut rng, |_| 0.0);
        // `stored` is untouched.
        assert_eq!(stored.decode(), table);
    }

    #[test]
    fn poisson_sampler_mean() {
        let mut rng = Rng::seed_from(7);
        let lambda = 4.0;
        let n = 3000;
        let total: usize = (0..n).map(|_| sample_poisson(lambda, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.2, "mean {mean}");
    }
}
