//! Area, latency, and energy cost model for on-chip ReRAM arrays.

use crate::cells::CellTech;
use serde::{Deserialize, Serialize};

/// An on-chip ReRAM buffer of a given capacity and cell technology.
///
/// The EdgeBERT accelerator integrates a 2 MB ReRAM buffer (paper §7.2):
/// bitmask region in SLC, payload region in MLC2.
///
/// # Example
///
/// ```
/// use edgebert_envm::{CellTech, ReramArray};
///
/// let arr = ReramArray::new(CellTech::Mlc2, 2.0);
/// assert!((arr.area_mm2() - 0.16).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReramArray {
    tech: CellTech,
    capacity_mb: f64,
    /// Word width of one array access, bits.
    access_width_bits: u32,
}

impl ReramArray {
    /// Creates an array with a 128-bit access port (16 bytes per access).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_mb <= 0`.
    pub fn new(tech: CellTech, capacity_mb: f64) -> Self {
        assert!(capacity_mb > 0.0, "capacity must be positive");
        Self {
            tech,
            capacity_mb,
            access_width_bits: 128,
        }
    }

    /// Cell technology of the array.
    pub fn tech(&self) -> CellTech {
        self.tech
    }

    /// Capacity in megabytes.
    pub fn capacity_mb(&self) -> f64 {
        self.capacity_mb
    }

    /// Access-port width in bits.
    pub fn access_width_bits(&self) -> u32 {
        self.access_width_bits
    }

    /// Silicon area in mm² (Table 2 density).
    pub fn area_mm2(&self) -> f64 {
        self.tech.area_mm2_per_mb() * self.capacity_mb
    }

    /// Latency to read `bits` bits, in nanoseconds: one array access per
    /// `access_width_bits`, each at the Table 2 read latency. Reads
    /// pipeline at one access per latency (conservative: no banking).
    pub fn read_latency_ns(&self, bits: usize) -> f64 {
        let accesses = bits.div_ceil(self.access_width_bits as usize) as f64;
        accesses * self.tech.read_latency_ns()
    }

    /// Energy to read `bits` bits, in picojoules.
    pub fn read_energy_pj(&self, bits: usize) -> f64 {
        bits as f64 * self.tech.read_energy_pj_per_bit()
    }

    /// Leakage power. ReRAM is non-volatile: zero standby leakage, the
    /// property EdgeBERT exploits for intermittent operation.
    pub fn standby_leakage_mw(&self) -> f64 {
        0.0
    }
}

/// The paper's ReRAM buffer configuration: 2 MB, MLC2 payload cells
/// (Fig. 6 / §7.2).
pub fn edgebert_rram_buffer() -> ReramArray {
    ReramArray::new(CellTech::Mlc2, 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_follows_table2_density() {
        assert!((ReramArray::new(CellTech::Slc, 1.0).area_mm2() - 0.28).abs() < 1e-12);
        assert!((ReramArray::new(CellTech::Mlc2, 2.0).area_mm2() - 0.16).abs() < 1e-12);
        assert!((ReramArray::new(CellTech::Mlc3, 2.0).area_mm2() - 0.08).abs() < 1e-12);
    }

    #[test]
    fn paper_buffer_close_to_reported_area() {
        // Fig. 10 reports 0.15 mm² for the ReRAM buffers; 2MB of MLC2 at
        // Table 2 density is 0.16 mm² — same design point.
        let arr = edgebert_rram_buffer();
        assert!((arr.area_mm2() - 0.15).abs() < 0.02);
    }

    #[test]
    fn read_latency_scales_with_size() {
        let arr = ReramArray::new(CellTech::Mlc2, 2.0);
        let one = arr.read_latency_ns(128);
        assert!((one - 1.54).abs() < 1e-9);
        let big = arr.read_latency_ns(128 * 100);
        assert!((big - 154.0).abs() < 1e-9);
        // Partial word rounds up.
        assert_eq!(arr.read_latency_ns(1), one);
    }

    #[test]
    fn energy_scales_linearly() {
        let arr = ReramArray::new(CellTech::Mlc2, 2.0);
        assert!((arr.read_energy_pj(1000) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn nonvolatile_means_zero_standby() {
        for tech in CellTech::all() {
            assert_eq!(ReramArray::new(tech, 1.0).standby_leakage_mw(), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        ReramArray::new(CellTech::Slc, 0.0);
    }
}
