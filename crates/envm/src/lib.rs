//! Embedded non-volatile memory (eNVM) subsystem: ReRAM cell models,
//! Monte-Carlo fault injection, and storage cost models.
//!
//! EdgeBERT stores the task-shared word embeddings on chip in dense
//! multi-level-cell (MLC) ReRAM so they survive power-off between
//! inferences (paper §4). Density comes at a reliability cost, so the
//! paper runs 100 fault-injection trials per cell configuration (an
//! extension of the Ares framework) and finds:
//!
//! * SLC and MLC2 (2 bits/cell) never degrade task accuracy;
//! * MLC3 (3 bits/cell) degrades the mean and is catastrophic in the worst
//!   case for QNLI — so the accelerator uses **MLC2 for payload data and
//!   SLC for the pruning bitmask** (bitmask bits are known to be the
//!   vulnerable ones, Pentecost et al.).
//!
//! This crate reproduces that methodology over the *actual stored bit
//! image*: the FP8-quantized non-zero payloads and the bitmask produced by
//! [`edgebert_tensor::BitmaskMatrix`].
//!
//! Cell characteristics (area density, read latency) follow the paper's
//! Table 2; error rates are parametric with defaults chosen to land in the
//! same qualitative regime (see `DESIGN.md` §1).

pub mod cells;
pub mod cost;
pub mod inject;
pub mod storage;

pub use cells::CellTech;
pub use cost::ReramArray;
pub use inject::{CampaignResult, FaultInjector};
pub use storage::StoredEmbedding;
