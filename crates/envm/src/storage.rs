//! The on-chip storage layout for pruned, quantized embeddings.
//!
//! Following §4.1/§7.2 of the paper: after magnitude pruning, the non-zero
//! embedding weights are FP8-quantized and stored in MLC2 ReRAM, while the
//! bitmask that records the pruning pattern is stored in safer SLC cells
//! (bitmask bits are highly fault-sensitive: one flipped mask bit shifts
//! the payload alignment for the rest of the row).

use crate::cells::CellTech;
use edgebert_quant::Fp8Format;
use edgebert_tensor::{BitmaskMatrix, Matrix};
use serde::{Deserialize, Serialize};

/// A pruned embedding table in its stored (bitmask + FP8 payload) form.
///
/// # Example
///
/// ```
/// use edgebert_envm::StoredEmbedding;
/// use edgebert_tensor::Matrix;
///
/// let table = Matrix::from_rows(&[&[0.0, 0.5], &[1.0, 0.0]]);
/// let stored = StoredEmbedding::encode(&table, 4);
/// let decoded = stored.decode();
/// assert_eq!(decoded.get(0, 0), 0.0);
/// assert!((decoded.get(1, 0) - 1.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredEmbedding {
    rows: usize,
    cols: usize,
    /// Packed pruning bitmask (one bit per element), stored in SLC.
    mask: Vec<u8>,
    /// FP8-encoded non-zero payloads, stored in MLC2.
    payload: Vec<u8>,
    /// The FP8 format (with the AdaptivFloat per-tensor bias).
    format: Fp8Format,
}

impl StoredEmbedding {
    /// Encodes a (pruned) dense embedding table: bitmask extraction
    /// followed by FP8 quantization of the non-zeros with an optimal
    /// per-tensor exponent bias.
    pub fn encode(table: &Matrix, exp_bits: u8) -> Self {
        let sparse = BitmaskMatrix::encode(table);
        let bias = edgebert_quant::QuantizedTensor::optimal_bias(table, exp_bits);
        let format = Fp8Format::new(exp_bits, bias);
        let payload = sparse.values().iter().map(|&v| format.encode(v)).collect();
        Self {
            rows: table.rows(),
            cols: table.cols(),
            mask: sparse.mask_bytes().to_vec(),
            payload,
            format,
        }
    }

    /// Decodes back to a dense matrix (zeros re-inserted from the mask).
    /// Tolerates mask/payload count mismatches introduced by mask faults,
    /// mirroring the hardware decoder.
    pub fn decode(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        let data = out.as_mut_slice();
        let mut vi = 0usize;
        for (i, slot) in data.iter_mut().enumerate() {
            let bit = (self.mask[i / 8] >> (i % 8)) & 1 == 1;
            if bit {
                if let Some(&b) = self.payload.get(vi) {
                    *slot = self.format.decode(b);
                }
                vi += 1;
            }
        }
        out
    }

    /// Logical shape of the embedding table.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored non-zero payload bytes.
    pub fn nnz(&self) -> usize {
        self.payload.len()
    }

    /// Density (`nnz / rows*cols`).
    pub fn density(&self) -> f32 {
        self.payload.len() as f32 / (self.rows * self.cols).max(1) as f32
    }

    /// The FP8 format in use.
    pub fn format(&self) -> Fp8Format {
        self.format
    }

    /// Bitmask bytes (SLC region), immutable.
    pub fn mask_bytes(&self) -> &[u8] {
        &self.mask
    }

    /// Bitmask bytes (SLC region), mutable — fault-injection surface.
    pub fn mask_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.mask
    }

    /// Payload bytes (MLC region), immutable.
    pub fn payload_bytes(&self) -> &[u8] {
        &self.payload
    }

    /// Payload bytes (MLC region), mutable — fault-injection surface.
    pub fn payload_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.payload
    }

    /// Bits occupied by the bitmask region.
    pub fn mask_bits(&self) -> usize {
        self.rows * self.cols
    }

    /// Bits occupied by the payload region.
    pub fn payload_bits(&self) -> usize {
        self.payload.len() * 8
    }

    /// Total footprint in megabytes for a given payload cell technology
    /// (the bitmask always occupies SLC cells at one bit each, but its
    /// *capacity* in bytes is tech-independent).
    pub fn footprint_mb(&self) -> f64 {
        (self.mask_bits() + self.payload_bits()) as f64 / 8.0 / 1024.0 / 1024.0
    }

    /// Number of ReRAM cells used when payloads are stored in `tech`
    /// (mask always in SLC).
    pub fn cell_count(&self, tech: CellTech) -> usize {
        CellTech::Slc.cells_for_bits(self.mask_bits()) + tech.cells_for_bits(self.payload_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgebert_tensor::Rng;

    fn pruned_table(rng: &mut Rng, rows: usize, cols: usize, sparsity: f32) -> Matrix {
        rng.sparse_gaussian(rows, cols, sparsity)
    }

    #[test]
    fn round_trip_small_error() {
        let mut rng = Rng::seed_from(1);
        let table = pruned_table(&mut rng, 32, 16, 0.6);
        let stored = StoredEmbedding::encode(&table, 4);
        let decoded = stored.decode();
        assert_eq!(decoded.shape(), table.shape());
        // Zeros preserved exactly.
        for (&a, &b) in table.as_slice().iter().zip(decoded.as_slice()) {
            if a == 0.0 {
                assert_eq!(b, 0.0);
            } else {
                assert!((a - b).abs() / a.abs() < 0.07, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn density_matches_table_sparsity() {
        let mut rng = Rng::seed_from(2);
        let table = pruned_table(&mut rng, 64, 64, 0.6);
        let stored = StoredEmbedding::encode(&table, 4);
        assert!((stored.density() - (1.0 - table.sparsity())).abs() < 1e-6);
    }

    #[test]
    fn footprint_shrinks_with_sparsity() {
        let mut rng = Rng::seed_from(3);
        let dense = pruned_table(&mut rng, 64, 64, 0.0);
        let sparse = pruned_table(&mut rng, 64, 64, 0.6);
        let fd = StoredEmbedding::encode(&dense, 4).footprint_mb();
        let fs = StoredEmbedding::encode(&sparse, 4).footprint_mb();
        assert!(fs < fd * 0.55, "sparse {fs} dense {fd}");
    }

    #[test]
    fn paper_scale_footprint_is_about_1_7_mb() {
        // ALBERT embeddings: 30k vocab x 128 dims at 40% density ≈ 1.73MB
        // claimed in the paper. Verify our layout math reproduces the
        // order: 30000*128 mask bits / 8 = 480KB + 0.4*30000*128 payload
        // bytes = 1.536MB ⇒ ≈ 1.99MB total; the paper's 1.73MB counts the
        // payload plus mask at the stated density. We assert the right
        // ballpark rather than the exact figure.
        let rows = 30_000usize;
        let cols = 128usize;
        let mask_mb = (rows * cols) as f64 / 8.0 / 1024.0 / 1024.0;
        let payload_mb = 0.4 * (rows * cols) as f64 / 1024.0 / 1024.0;
        let total = mask_mb + payload_mb;
        assert!((1.4..2.2).contains(&total), "footprint {total}");
    }

    #[test]
    fn cell_counts_by_tech() {
        let mut rng = Rng::seed_from(4);
        let table = pruned_table(&mut rng, 16, 16, 0.5);
        let stored = StoredEmbedding::encode(&table, 4);
        let slc = stored.cell_count(CellTech::Slc);
        let mlc2 = stored.cell_count(CellTech::Mlc2);
        let mlc3 = stored.cell_count(CellTech::Mlc3);
        assert!(mlc2 < slc);
        assert!(mlc3 < mlc2);
        // Mask cells are common to all three.
        let mask_cells = CellTech::Slc.cells_for_bits(stored.mask_bits());
        assert_eq!(slc - mask_cells, stored.payload_bits());
    }

    #[test]
    fn mask_fault_shifts_alignment() {
        // Demonstrate why the bitmask is stored in SLC: a single mask-bit
        // fault corrupts payload alignment for everything after it.
        let table = Matrix::from_rows(&[&[1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 4.0, 0.0]]);
        let mut stored = StoredEmbedding::encode(&table, 4);
        stored.mask_bytes_mut()[0] |= 1 << 1; // spurious non-zero at index 1
        let decoded = stored.decode();
        // Payloads after the fault are shifted off their positions.
        assert!((decoded.get(0, 1) - 2.0).abs() < 0.2);
        assert!((decoded.get(0, 2) - 3.0).abs() < 0.3);
        assert_eq!(decoded.get(0, 7), 0.0);
    }
}
