//! ReRAM cell technologies and their fault characteristics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A ReRAM cell configuration: how many bits each cell stores.
///
/// Characteristics follow the paper's Table 2 (28 nm ReRAM, scaled to the
/// 12 nm system): denser cells are smaller and slower, and their tighter
/// level margins make them dramatically less reliable.
///
/// # Example
///
/// ```
/// use edgebert_envm::CellTech;
///
/// assert!(CellTech::Mlc3.area_mm2_per_mb() < CellTech::Slc.area_mm2_per_mb());
/// assert!(CellTech::Mlc3.level_error_rate() > CellTech::Mlc2.level_error_rate());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellTech {
    /// Single-level cell: 1 bit per cell.
    Slc,
    /// Multi-level cell, 2 bits per cell.
    Mlc2,
    /// Multi-level cell, 3 bits per cell.
    Mlc3,
}

impl CellTech {
    /// All configurations in Table 2 order.
    pub fn all() -> [CellTech; 3] {
        [CellTech::Slc, CellTech::Mlc2, CellTech::Mlc3]
    }

    /// Bits stored per cell.
    pub fn bits_per_cell(self) -> u32 {
        match self {
            CellTech::Slc => 1,
            CellTech::Mlc2 => 2,
            CellTech::Mlc3 => 3,
        }
    }

    /// Area density from Table 2, mm² per MB.
    pub fn area_mm2_per_mb(self) -> f64 {
        match self {
            CellTech::Slc => 0.28,
            CellTech::Mlc2 => 0.08,
            CellTech::Mlc3 => 0.04,
        }
    }

    /// Read latency from Table 2, nanoseconds per array access.
    pub fn read_latency_ns(self) -> f64 {
        match self {
            CellTech::Slc => 1.21,
            CellTech::Mlc2 => 1.54,
            CellTech::Mlc3 => 2.96,
        }
    }

    /// Read energy per bit, picojoules. More levels need finer sensing;
    /// values are representative of dense 28 nm ReRAM arrays scaled to
    /// 12 nm (see `DESIGN.md` §1 — not from Table 2, which omits energy).
    pub fn read_energy_pj_per_bit(self) -> f64 {
        match self {
            CellTech::Slc => 0.30,
            CellTech::Mlc2 => 0.20,
            CellTech::Mlc3 => 0.35,
        }
    }

    /// Probability that a stored cell reads back at an adjacent level
    /// (the dominant MLC ReRAM fault mode). Defaults are chosen so that
    /// over 100 trials of a ~1.7 MB embedding image, SLC and MLC2 produce
    /// no perceptible accuracy change while MLC3 visibly degrades — the
    /// qualitative outcome of the paper's Table 2.
    pub fn level_error_rate(self) -> f64 {
        match self {
            CellTech::Slc => 1.0e-9,
            CellTech::Mlc2 => 5.0e-8,
            CellTech::Mlc3 => 1.5e-3,
        }
    }

    /// Number of cells needed to store `bits` bits, packing
    /// [`CellTech::bits_per_cell`] bits per cell.
    pub fn cells_for_bits(self, bits: usize) -> usize {
        bits.div_ceil(self.bits_per_cell() as usize)
    }
}

impl fmt::Display for CellTech {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellTech::Slc => write!(f, "SLC"),
            CellTech::Mlc2 => write!(f, "MLC2"),
            CellTech::Mlc3 => write!(f, "MLC3"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_density_and_latency() {
        assert_eq!(CellTech::Slc.area_mm2_per_mb(), 0.28);
        assert_eq!(CellTech::Mlc2.area_mm2_per_mb(), 0.08);
        assert_eq!(CellTech::Mlc3.area_mm2_per_mb(), 0.04);
        assert_eq!(CellTech::Slc.read_latency_ns(), 1.21);
        assert_eq!(CellTech::Mlc2.read_latency_ns(), 1.54);
        assert_eq!(CellTech::Mlc3.read_latency_ns(), 2.96);
    }

    #[test]
    fn density_reliability_tradeoff() {
        // Denser ⇒ less reliable, the central tension of §4.
        let mut last_area = f64::INFINITY;
        let mut last_err = 0.0;
        for tech in CellTech::all() {
            assert!(tech.area_mm2_per_mb() < last_area);
            assert!(tech.level_error_rate() > last_err);
            last_area = tech.area_mm2_per_mb();
            last_err = tech.level_error_rate();
        }
    }

    #[test]
    fn cell_packing() {
        assert_eq!(CellTech::Slc.cells_for_bits(8), 8);
        assert_eq!(CellTech::Mlc2.cells_for_bits(8), 4);
        assert_eq!(CellTech::Mlc3.cells_for_bits(8), 3);
        assert_eq!(CellTech::Mlc3.cells_for_bits(9), 3);
        assert_eq!(CellTech::Mlc3.cells_for_bits(10), 4);
        assert_eq!(CellTech::Mlc2.cells_for_bits(0), 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(CellTech::Slc.to_string(), "SLC");
        assert_eq!(CellTech::Mlc2.to_string(), "MLC2");
        assert_eq!(CellTech::Mlc3.to_string(), "MLC3");
    }
}
