//! Property-based tests for eNVM storage and fault injection.

use edgebert_envm::{CellTech, FaultInjector, StoredEmbedding};
use edgebert_tensor::{Matrix, Rng};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn storage_round_trip_bounded_error(
        values in prop::collection::vec(-8.0f32..8.0, 8..128),
        sparsity_mod in 2usize..5,
    ) {
        let mut vals = values.clone();
        for (i, v) in vals.iter_mut().enumerate() {
            if i % sparsity_mod == 0 { *v = 0.0; }
        }
        let cols = 8usize;
        let rows = vals.len() / cols;
        prop_assume!(rows > 0);
        let dense = Matrix::from_vec(rows, cols, vals[..rows * cols].to_vec());
        let stored = StoredEmbedding::encode(&dense, 4);
        let decoded = stored.decode();
        for (a, b) in dense.as_slice().iter().zip(decoded.as_slice()) {
            if *a == 0.0 {
                prop_assert_eq!(*b, 0.0);
            } else {
                prop_assert!((a - b).abs() / a.abs() < 0.07);
            }
        }
    }

    #[test]
    fn fault_counts_scale_with_rate(seed in 0u64..500, len in 512usize..4096) {
        let mut rng = Rng::seed_from(seed);
        let mut low_bytes = vec![0x5Au8; len];
        let mut high_bytes = vec![0x5Au8; len];
        let low = FaultInjector::new(CellTech::Mlc2).with_error_rate(5e-3)
            .inject_bytes(&mut low_bytes, &mut rng);
        let high = FaultInjector::new(CellTech::Mlc2).with_error_rate(5e-2)
            .inject_bytes(&mut high_bytes, &mut rng);
        // 10x the rate: allow wide slack for small-sample noise but the
        // ordering must hold decisively.
        prop_assert!(high > low, "high {high} low {low}");
    }

    #[test]
    fn zero_rate_never_mutates(seed in 0u64..500, len in 1usize..512) {
        let mut rng = Rng::seed_from(seed);
        let mut bytes: Vec<u8> = (0..len).map(|i| (i * 37 % 256) as u8).collect();
        let orig = bytes.clone();
        for tech in CellTech::all() {
            let n = FaultInjector::new(tech).with_error_rate(0.0)
                .inject_bytes(&mut bytes, &mut rng);
            prop_assert_eq!(n, 0);
        }
        prop_assert_eq!(bytes, orig);
    }

    #[test]
    fn cell_packing_is_exact(bits in 0usize..10_000) {
        for tech in CellTech::all() {
            let cells = tech.cells_for_bits(bits);
            let k = tech.bits_per_cell() as usize;
            prop_assert!(cells * k >= bits);
            prop_assert!(cells == 0 || (cells - 1) * k < bits);
        }
    }
}
