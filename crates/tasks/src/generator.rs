//! Synthetic sentence generators with calibrated difficulty mixes.
//!
//! Each example carries a latent difficulty `d ∈ [0, 1]`. The generator
//! plants class-indicative *keyword* tokens with rate proportional to
//! `1 - d`, and distractors (wrong-class keywords, ambiguous tokens) with
//! rate proportional to `d`. A model trained on these sequences therefore
//! classifies easy sentences confidently from shallow layers, while hard
//! sentences need deeper aggregation — the behaviour that drives
//! entropy-based early exit in the paper.
//!
//! Per-task difficulty mixes are calibrated against the paper's Table 3
//! exit-layer ordering (SST-2 earliest, then QQP, then QNLI/MNLI).

use crate::dataset::{Dataset, Example};
use crate::task::Task;
use crate::vocab::{VocabLayout, CLS, PAD, SEP};
use edgebert_tensor::Rng;
use serde::{Deserialize, Serialize};

/// Index of a task inside the shared vocabulary layout.
pub fn task_index(task: Task) -> u32 {
    match task {
        Task::Mnli => 0,
        Task::Qqp => 1,
        Task::Sst2 => 2,
        Task::Qnli => 3,
    }
}

/// Mixture weights over easy / medium / hard sentences.
///
/// # Example
///
/// ```
/// use edgebert_tasks::{DifficultyProfile, Task};
///
/// let sst2 = DifficultyProfile::for_task(Task::Sst2);
/// let mnli = DifficultyProfile::for_task(Task::Mnli);
/// assert!(sst2.easy_frac() > mnli.easy_frac());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DifficultyProfile {
    easy: f32,
    hard: f32,
}

impl DifficultyProfile {
    /// Creates a profile; the medium fraction is `1 - easy - hard`.
    ///
    /// # Panics
    ///
    /// Panics if the fractions are negative or sum above 1.
    pub fn new(easy: f32, hard: f32) -> Self {
        assert!(
            easy >= 0.0 && hard >= 0.0 && easy + hard <= 1.0,
            "invalid fractions"
        );
        Self { easy, hard }
    }

    /// Calibrated profile for a task. Larger easy fractions produce
    /// earlier average exits, matching the paper's per-task ordering.
    pub fn for_task(task: Task) -> Self {
        match task {
            // Avg conventional-EE exit layers @1% drop (Table 3):
            // SST-2 4.30 < QQP 5.84 < QNLI 8.46 ~ MNLI 8.55
            Task::Sst2 => Self::new(0.62, 0.10),
            Task::Qqp => Self::new(0.48, 0.16),
            Task::Qnli => Self::new(0.25, 0.32),
            Task::Mnli => Self::new(0.22, 0.34),
        }
    }

    /// Fraction of easy sentences.
    pub fn easy_frac(&self) -> f32 {
        self.easy
    }

    /// Fraction of hard sentences.
    pub fn hard_frac(&self) -> f32 {
        self.hard
    }

    /// Samples a difficulty value from the mixture.
    pub fn sample(&self, rng: &mut Rng) -> f32 {
        let u = rng.uniform();
        if u < self.easy {
            rng.uniform_in(0.0, 0.30)
        } else if u < self.easy + self.hard {
            rng.uniform_in(0.70, 0.95)
        } else {
            rng.uniform_in(0.30, 0.70)
        }
    }
}

/// Generator for one task's synthetic corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskGenerator {
    task: Task,
    layout: VocabLayout,
    seq_len: usize,
    profile: DifficultyProfile,
    /// Keyword-planting rate for a trivially easy sentence.
    keyword_rate: f32,
    /// Wrong-class keyword rate for a maximally hard sentence.
    distractor_rate: f32,
    /// Ambiguous-token rate for a maximally hard sentence.
    ambiguous_rate: f32,
}

impl TaskGenerator {
    /// Creates a generator with the standard vocabulary layout and
    /// calibrated difficulty profile.
    pub fn standard(task: Task, seq_len: usize) -> Self {
        Self::with_layout(task, seq_len, VocabLayout::standard())
    }

    /// Creates a generator with a custom vocabulary layout.
    ///
    /// # Panics
    ///
    /// Panics if `seq_len < 4` (room for CLS, SEP, and content).
    pub fn with_layout(task: Task, seq_len: usize, layout: VocabLayout) -> Self {
        assert!(seq_len >= 4, "sequence length too short");
        Self {
            task,
            layout,
            seq_len,
            profile: DifficultyProfile::for_task(task),
            keyword_rate: 0.35,
            distractor_rate: 0.12,
            ambiguous_rate: 0.30,
        }
    }

    /// Overrides the difficulty profile (used by calibration sweeps).
    pub fn with_profile(mut self, profile: DifficultyProfile) -> Self {
        self.profile = profile;
        self
    }

    /// The task this generator produces data for.
    pub fn task(&self) -> Task {
        self.task
    }

    /// Fixed (padded) sequence length.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// The vocabulary layout.
    pub fn layout(&self) -> &VocabLayout {
        &self.layout
    }

    /// Generates `n` examples deterministically from `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> Dataset {
        let mut rng = Rng::seed_from(seed ^ (task_index(self.task) as u64) << 32);
        let examples = (0..n).map(|_| self.generate_one(&mut rng)).collect();
        Dataset::new(self.task, examples)
    }

    /// Generates a single example.
    pub fn generate_one(&self, rng: &mut Rng) -> Example {
        let difficulty = self.profile.sample(rng);
        let label = rng.below(self.task.num_classes());
        let tokens = self.sentence(label, difficulty, rng);
        Example {
            tokens,
            label,
            difficulty,
        }
    }

    /// Difficulty above which a sentence's evidence is *negated*: its
    /// keywords come from the rotated (wrong) class and a negator token
    /// flips the meaning, so the label is only recoverable by composing
    /// keyword and negator.
    pub const NEGATION_DIFFICULTY: f32 = 0.55;

    /// Difficulty above which evidence is placed *far from* the `[CLS]`
    /// position (in the final third of the sentence). Combined with the
    /// narrow learned attention spans, distant evidence needs several
    /// encoder applications to propagate to the classification position —
    /// the structural source of depth-dependent classification and thus
    /// of the paper's spread in early-exit layers.
    pub const FAR_EVIDENCE_DIFFICULTY: f32 = 0.30;

    /// The task's negator token (the reserved ambiguous token 0).
    pub fn negator_token(&self) -> u32 {
        self.layout.ambiguous_token(task_index(self.task), 0)
    }

    /// Generates a sentence with a specific label and difficulty — used by
    /// tests and the calibration harness.
    pub fn sentence(&self, label: usize, difficulty: f32, rng: &mut Rng) -> Vec<u32> {
        let t = task_index(self.task);
        let kpc = self.layout.keywords_per_class();
        let classes = self.task.num_classes();
        let min_len = (self.seq_len * 3 / 4).max(2);
        let content_len = min_len + rng.below((self.seq_len - 1 - min_len).max(1));
        let negated = difficulty > Self::NEGATION_DIFFICULTY;
        let far_only = difficulty > Self::FAR_EVIDENCE_DIFFICULTY;
        let evidence_class = if negated {
            (label + 1) % classes
        } else {
            label
        };

        // Background filler with ambiguous noise scaled by difficulty.
        let p_amb = self.ambiguous_rate * difficulty;
        let mut tokens = Vec::with_capacity(self.seq_len);
        tokens.push(CLS);
        for _ in 0..content_len {
            let tok = if rng.uniform() < p_amb {
                self.layout
                    .ambiguous_token(t, 1 + rng.below(kpc as usize - 1) as u32)
            } else {
                self.layout
                    .background_token(rng.below(self.layout.background_count() as usize) as u32)
            };
            tokens.push(tok);
        }

        // Evidence zone: anywhere for easy sentences, the final third for
        // harder ones (far from CLS at position 0).
        let zone_start = if far_only { 1 + content_len * 2 / 3 } else { 1 };
        let zone_len = (content_len + 1 - zone_start).max(1);
        let kw_count = {
            let rate = self.keyword_rate * (1.0 - 0.55 * difficulty);
            let expected = rate * zone_len as f32;
            (expected.round() as usize).clamp(2, zone_len)
        };
        for _ in 0..kw_count {
            let pos = zone_start + rng.below(zone_len);
            tokens[pos] =
                self.layout
                    .class_keyword(t, evidence_class as u32, rng.below(kpc as usize) as u32);
        }
        // Distractor keywords of other classes, scattered anywhere.
        let wrong_count =
            ((self.distractor_rate * difficulty * content_len as f32).round()) as usize;
        for _ in 0..wrong_count {
            let wrong = (evidence_class + 1 + rng.below(classes - 1)) % classes;
            let pos = 1 + rng.below(content_len);
            tokens[pos] =
                self.layout
                    .class_keyword(t, wrong as u32, rng.below(kpc as usize) as u32);
        }
        if negated {
            // One negator inside the evidence zone; the model must
            // compose it with the (rotated-class) keywords.
            let pos = zone_start + rng.below(zone_len);
            tokens[pos] = self.negator_token();
            // Re-guarantee evidence survives the overwrites.
            let mut planted = 0usize;
            let mut guard = 0usize;
            while planted < 2 && guard < 64 {
                let pos2 = zone_start + rng.below(zone_len);
                guard += 1;
                if pos2 != pos {
                    tokens[pos2] = self.layout.class_keyword(
                        t,
                        evidence_class as u32,
                        rng.below(kpc as usize) as u32,
                    );
                    planted += 1;
                }
            }
        }
        tokens.push(SEP);
        tokens.resize(self.seq_len, PAD);
        tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let g = TaskGenerator::standard(Task::Mnli, 32);
        let a = g.generate(20, 7);
        let b = g.generate(20, 7);
        assert_eq!(a.examples(), b.examples());
        let c = g.generate(20, 8);
        assert_ne!(a.examples(), c.examples());
    }

    #[test]
    fn sequences_are_well_formed() {
        let g = TaskGenerator::standard(Task::Qnli, 24);
        let data = g.generate(50, 3);
        for ex in &data {
            assert_eq!(ex.tokens.len(), 24);
            assert_eq!(ex.tokens[0], CLS);
            assert!(ex.tokens.contains(&SEP));
            assert!(ex.label < Task::Qnli.num_classes());
            assert!((0.0..=1.0).contains(&ex.difficulty));
            // Tokens must be within the vocabulary.
            let vs = g.layout().vocab_size() as u32;
            assert!(ex.tokens.iter().all(|&t| t < vs));
        }
    }

    #[test]
    fn easy_sentences_carry_direct_evidence_hard_carry_negated() {
        let g = TaskGenerator::standard(Task::Sst2, 64);
        let mut rng = Rng::seed_from(11);
        let t = task_index(Task::Sst2);
        let count_kw = |tokens: &[u32], class: u32| {
            tokens
                .iter()
                .filter(|&&tok| g.layout().is_class_keyword(tok, t, class))
                .count()
        };
        let neg = g.negator_token();
        let mut easy_direct = 0usize;
        let mut easy_negators = 0usize;
        let mut hard_negators = 0usize;
        for _ in 0..50 {
            let e = g.sentence(1, 0.05, &mut rng);
            easy_direct += count_kw(&e, 1);
            easy_negators += e.iter().filter(|&&x| x == neg).count();
            let h = g.sentence(1, 0.95, &mut rng);
            hard_negators += h.iter().filter(|&&x| x == neg).count();
        }
        assert!(
            easy_direct > 100,
            "easy sentences carry direct keywords: {easy_direct}"
        );
        assert_eq!(easy_negators, 0, "easy sentences have no negators");
        assert!(
            hard_negators >= 50,
            "hard sentences carry negators: {hard_negators}"
        );
    }

    #[test]
    fn difficulty_profile_ordering() {
        let mut rng = Rng::seed_from(5);
        let mut mean_d = |task: Task| {
            let p = DifficultyProfile::for_task(task);
            (0..2000).map(|_| p.sample(&mut rng)).sum::<f32>() / 2000.0
        };
        let sst2 = mean_d(Task::Sst2);
        let qqp = mean_d(Task::Qqp);
        let mnli = mean_d(Task::Mnli);
        assert!(sst2 < qqp, "sst2 {sst2} qqp {qqp}");
        assert!(qqp < mnli, "qqp {qqp} mnli {mnli}");
    }

    #[test]
    fn class_balance_is_roughly_uniform() {
        let g = TaskGenerator::standard(Task::Mnli, 16);
        let data = g.generate(3000, 1);
        for frac in data.class_balance() {
            assert!((frac - 1.0 / 3.0).abs() < 0.05, "class fraction {frac}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid fractions")]
    fn profile_rejects_bad_fractions() {
        DifficultyProfile::new(0.8, 0.5);
    }
}
