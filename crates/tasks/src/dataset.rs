//! Labeled examples and dataset containers.

use crate::task::Task;
use serde::{Deserialize, Serialize};

/// One tokenized, labeled sentence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Example {
    /// Token ids, fixed length (padded with [`crate::vocab::PAD`]).
    pub tokens: Vec<u32>,
    /// Gold class label.
    pub label: usize,
    /// Latent difficulty in `[0, 1]` used by the generator (0 = trivially
    /// classifiable, 1 = nearly signal-free). Kept for analysis; the model
    /// never sees it.
    pub difficulty: f32,
}

/// A set of examples for one task.
///
/// # Example
///
/// ```
/// use edgebert_tasks::{Task, TaskGenerator};
///
/// let gen = TaskGenerator::standard(Task::Sst2, 32);
/// let data = gen.generate(10, 42);
/// assert_eq!(data.len(), 10);
/// let (train, dev) = data.split(0.8);
/// assert_eq!(train.len(), 8);
/// assert_eq!(dev.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    task: Task,
    examples: Vec<Example>,
}

impl Dataset {
    /// Creates a dataset from parts.
    pub fn new(task: Task, examples: Vec<Example>) -> Self {
        Self { task, examples }
    }

    /// The task these examples belong to.
    pub fn task(&self) -> Task {
        self.task
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Immutable view of the examples.
    pub fn examples(&self) -> &[Example] {
        &self.examples
    }

    /// Iterates over the examples.
    pub fn iter(&self) -> std::slice::Iter<'_, Example> {
        self.examples.iter()
    }

    /// Splits into `(train, dev)` at `train_frac` (clamped to `[0, 1]`).
    pub fn split(&self, train_frac: f32) -> (Dataset, Dataset) {
        let frac = train_frac.clamp(0.0, 1.0);
        let cut = (self.examples.len() as f32 * frac).round() as usize;
        let cut = cut.min(self.examples.len());
        (
            Dataset::new(self.task, self.examples[..cut].to_vec()),
            Dataset::new(self.task, self.examples[cut..].to_vec()),
        )
    }

    /// Gold labels in order.
    pub fn labels(&self) -> Vec<usize> {
        self.examples.iter().map(|e| e.label).collect()
    }

    /// Mean latent difficulty.
    pub fn mean_difficulty(&self) -> f32 {
        if self.examples.is_empty() {
            return 0.0;
        }
        self.examples.iter().map(|e| e.difficulty).sum::<f32>() / self.examples.len() as f32
    }

    /// Fraction of examples per class.
    pub fn class_balance(&self) -> Vec<f32> {
        let k = self.task.num_classes();
        let mut counts = vec![0usize; k];
        for e in &self.examples {
            counts[e.label] += 1;
        }
        counts
            .into_iter()
            .map(|c| c as f32 / self.examples.len().max(1) as f32)
            .collect()
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Example;
    type IntoIter = std::slice::Iter<'a, Example>;

    fn into_iter(self) -> Self::IntoIter {
        self.examples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            Task::Qqp,
            (0..10)
                .map(|i| Example {
                    tokens: vec![1, 2, 3],
                    label: i % 2,
                    difficulty: i as f32 / 10.0,
                })
                .collect(),
        )
    }

    #[test]
    fn split_fractions() {
        let d = toy();
        let (tr, dev) = d.split(0.7);
        assert_eq!(tr.len(), 7);
        assert_eq!(dev.len(), 3);
        let (all, none) = d.split(1.5);
        assert_eq!(all.len(), 10);
        assert!(none.is_empty());
    }

    #[test]
    fn labels_and_balance() {
        let d = toy();
        assert_eq!(d.labels().len(), 10);
        let bal = d.class_balance();
        assert_eq!(bal.len(), 2);
        assert!((bal[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn mean_difficulty() {
        let d = toy();
        assert!((d.mean_difficulty() - 0.45).abs() < 1e-6);
        let empty = Dataset::new(Task::Qqp, vec![]);
        assert_eq!(empty.mean_difficulty(), 0.0);
    }

    #[test]
    fn iteration() {
        let d = toy();
        assert_eq!(d.iter().count(), 10);
        assert_eq!((&d).into_iter().count(), 10);
    }
}
