//! Vocabulary layout shared by the generator and the tokenizer.
//!
//! The synthetic vocabulary is partitioned into special tokens, per-class
//! keyword blocks, ambiguous tokens (weakly indicative of several
//! classes), and neutral background tokens. The embedding table over this
//! vocabulary plays the role of ALBERT's word embeddings: it is *shared
//! across tasks*, frozen during fine-tuning, magnitude-pruned, and stored
//! in eNVM (paper §4).

use serde::{Deserialize, Serialize};

/// Padding token id.
pub const PAD: u32 = 0;
/// Classification token id (prepended to every sequence, its output row is
/// what the off-ramp classifiers read — BERT's `[CLS]`).
pub const CLS: u32 = 1;
/// Separator token id.
pub const SEP: u32 = 2;
/// Number of reserved special tokens.
pub const NUM_SPECIAL: u32 = 3;

/// Describes how the synthetic vocabulary is partitioned.
///
/// # Example
///
/// ```
/// use edgebert_tasks::VocabLayout;
///
/// let layout = VocabLayout::new(4, 3, 16, 32);
/// assert!(layout.vocab_size() > 0);
/// let kw = layout.class_keyword(2, 0, 5);
/// assert!(layout.is_class_keyword(kw, 2, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VocabLayout {
    num_tasks: u32,
    max_classes: u32,
    keywords_per_class: u32,
    ambiguous_per_task: u32,
    background: u32,
}

impl VocabLayout {
    /// Creates a layout with `keywords_per_class` strong keywords for each
    /// (task, class) pair, `ambiguous_per_task` weak tokens per task, and
    /// `background` neutral tokens.
    pub fn new(num_tasks: u32, max_classes: u32, keywords_per_class: u32, background: u32) -> Self {
        Self {
            num_tasks,
            max_classes,
            keywords_per_class,
            ambiguous_per_task: keywords_per_class,
            background,
        }
    }

    /// The default layout used across the workspace: 4 tasks, up to 3
    /// classes, 24 keywords per class, 512 background tokens.
    pub fn standard() -> Self {
        Self::new(4, 3, 24, 512)
    }

    /// Total vocabulary size.
    pub fn vocab_size(&self) -> usize {
        (NUM_SPECIAL
            + self.num_tasks * self.max_classes * self.keywords_per_class
            + self.num_tasks * self.ambiguous_per_task
            + self.background) as usize
    }

    /// Number of keyword tokens per (task, class) pair.
    pub fn keywords_per_class(&self) -> u32 {
        self.keywords_per_class
    }

    /// The `k`-th keyword token for `(task_idx, class)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn class_keyword(&self, task_idx: u32, class: u32, k: u32) -> u32 {
        assert!(task_idx < self.num_tasks, "task index out of range");
        assert!(class < self.max_classes, "class out of range");
        assert!(k < self.keywords_per_class, "keyword index out of range");
        NUM_SPECIAL + (task_idx * self.max_classes + class) * self.keywords_per_class + k
    }

    /// Whether `token` is a keyword of `(task_idx, class)`.
    pub fn is_class_keyword(&self, token: u32, task_idx: u32, class: u32) -> bool {
        let base = NUM_SPECIAL + (task_idx * self.max_classes + class) * self.keywords_per_class;
        token >= base && token < base + self.keywords_per_class
    }

    /// The `k`-th ambiguous token for `task_idx` (weak, class-neutral but
    /// task-correlated — these appear in hard sentences).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn ambiguous_token(&self, task_idx: u32, k: u32) -> u32 {
        assert!(task_idx < self.num_tasks, "task index out of range");
        assert!(k < self.ambiguous_per_task, "ambiguous index out of range");
        NUM_SPECIAL
            + self.num_tasks * self.max_classes * self.keywords_per_class
            + task_idx * self.ambiguous_per_task
            + k
    }

    /// The `k`-th neutral background token.
    ///
    /// # Panics
    ///
    /// Panics if `k >= background`.
    pub fn background_token(&self, k: u32) -> u32 {
        assert!(k < self.background, "background index out of range");
        NUM_SPECIAL
            + self.num_tasks * self.max_classes * self.keywords_per_class
            + self.num_tasks * self.ambiguous_per_task
            + k
    }

    /// Number of background tokens.
    pub fn background_count(&self) -> u32 {
        self.background
    }
}

impl Default for VocabLayout {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_ranges_do_not_overlap() {
        let l = VocabLayout::new(2, 3, 4, 8);
        let mut seen = std::collections::HashSet::new();
        seen.insert(PAD);
        seen.insert(CLS);
        seen.insert(SEP);
        for t in 0..2 {
            for c in 0..3 {
                for k in 0..4 {
                    assert!(seen.insert(l.class_keyword(t, c, k)), "keyword overlap");
                }
            }
            for k in 0..4 {
                assert!(seen.insert(l.ambiguous_token(t, k)), "ambiguous overlap");
            }
        }
        for k in 0..8 {
            assert!(seen.insert(l.background_token(k)), "background overlap");
        }
        assert_eq!(seen.len(), l.vocab_size());
    }

    #[test]
    fn keyword_membership() {
        let l = VocabLayout::standard();
        let tok = l.class_keyword(1, 2, 3);
        assert!(l.is_class_keyword(tok, 1, 2));
        assert!(!l.is_class_keyword(tok, 1, 1));
        assert!(!l.is_class_keyword(tok, 0, 2));
        assert!(!l.is_class_keyword(PAD, 0, 0));
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn out_of_range_class_panics() {
        VocabLayout::standard().class_keyword(0, 5, 0);
    }
}
