//! Synthetic GLUE-analog task suite.
//!
//! The paper evaluates on the four largest-corpus GLUE tasks — MNLI, QQP,
//! SST-2, and QNLI — which we cannot redistribute. This crate provides a
//! calibrated synthetic substitute: for each task, a generator emits token
//! sequences whose *class signal strength varies per sentence*, so a real
//! model trained on them exhibits the paper's central phenomenon — easy
//! sentences become classifiable (low entropy) at shallow transformer
//! depth while hard sentences need the full stack.
//!
//! Per-task difficulty mixes are calibrated so the *ordering* of average
//! early-exit layers matches the paper's Table 3 (SST-2 and QQP exit
//! early, MNLI and QNLI late) and MNLI is 3-way while the rest are binary.
//!
//! See `DESIGN.md` §1 for the substitution argument.

pub mod dataset;
pub mod generator;
pub mod task;
pub mod vocab;

pub use dataset::{Dataset, Example};
pub use generator::{DifficultyProfile, TaskGenerator};
pub use task::Task;
pub use vocab::VocabLayout;
