//! The four evaluation tasks and their paper-reported reference numbers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the four GLUE tasks the paper evaluates on (§2.1).
///
/// # Example
///
/// ```
/// use edgebert_tasks::Task;
///
/// assert_eq!(Task::Mnli.num_classes(), 3);
/// assert_eq!(Task::Sst2.num_classes(), 2);
/// assert_eq!(Task::all().len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Task {
    /// MultiNLI: 3-way textual entailment (Inference category).
    Mnli,
    /// Quora Question Pairs: binary paraphrase detection (Similarity).
    Qqp,
    /// Stanford Sentiment Treebank: binary sentiment (Single-Sentence).
    Sst2,
    /// Question NLI: binary answerability (Inference category).
    Qnli,
}

impl Task {
    /// All four tasks in the paper's reporting order.
    pub fn all() -> [Task; 4] {
        [Task::Mnli, Task::Qqp, Task::Sst2, Task::Qnli]
    }

    /// Canonical lowercase task name.
    pub fn name(self) -> &'static str {
        match self {
            Task::Mnli => "mnli",
            Task::Qqp => "qqp",
            Task::Sst2 => "sst-2",
            Task::Qnli => "qnli",
        }
    }

    /// Number of output classes.
    pub fn num_classes(self) -> usize {
        match self {
            Task::Mnli => 3,
            _ => 2,
        }
    }

    /// Baseline ALBERT accuracy reported in the paper (Table 1 caption):
    /// MNLI 85.16, QQP 90.76, SST-2 92.20, QNLI 89.48.
    pub fn paper_baseline_accuracy(self) -> f32 {
        match self {
            Task::Mnli => 85.16,
            Task::Qqp => 90.76,
            Task::Sst2 => 92.20,
            Task::Qnli => 89.48,
        }
    }

    /// Encoder sparsity achieved per task in the paper's Table 3.
    pub fn paper_encoder_sparsity(self) -> f32 {
        match self {
            Task::Mnli => 0.50,
            Task::Qqp => 0.80,
            Task::Sst2 => 0.50,
            Task::Qnli => 0.60,
        }
    }

    /// Embedding sparsity per Table 3 (uniform 60% across tasks).
    pub fn paper_embedding_sparsity(self) -> f32 {
        0.60
    }

    /// Average attention span per Table 3.
    pub fn paper_avg_attention_span(self) -> f32 {
        match self {
            Task::Mnli => 12.7,
            Task::Qqp => 11.3,
            Task::Sst2 => 18.4,
            Task::Qnli => 21.5,
        }
    }

    /// Average conventional-EE exit layer at a 1%-pt accuracy drop
    /// (Table 3). Used as the calibration target for the synthetic
    /// difficulty mix.
    pub fn paper_avg_exit_layer_1pct(self) -> f32 {
        match self {
            Task::Mnli => 8.55,
            Task::Qqp => 5.84,
            Task::Sst2 => 4.30,
            Task::Qnli => 8.46,
        }
    }

    /// Learned per-head spans from the paper's Table 1 (12 heads).
    pub fn paper_head_spans(self) -> [f32; 12] {
        match self {
            Task::Mnli => [
                20.0, 0.0, 0.0, 0.0, 0.0, 0.0, 36.0, 81.0, 0.0, 0.0, 0.0, 10.0,
            ],
            Task::Qqp => [
                16.0, 0.0, 0.0, 0.0, 0.0, 0.0, 40.0, 75.0, 0.0, 0.0, 0.0, 2.0,
            ],
            Task::Sst2 => [
                31.0, 0.0, 0.0, 0.0, 0.0, 101.0, 14.0, 5.0, 0.0, 36.0, 0.0, 0.0,
            ],
            Task::Qnli => [
                39.0, 0.0, 0.0, 0.0, 0.0, 105.0, 22.0, 19.0, 0.0, 51.0, 0.0, 0.0,
            ],
        }
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Task::Mnli => write!(f, "MNLI"),
            Task::Qqp => write!(f, "QQP"),
            Task::Sst2 => write!(f, "SST-2"),
            Task::Qnli => write!(f, "QNLI"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_counts() {
        assert_eq!(Task::Mnli.num_classes(), 3);
        assert_eq!(Task::Qqp.num_classes(), 2);
        assert_eq!(Task::Sst2.num_classes(), 2);
        assert_eq!(Task::Qnli.num_classes(), 2);
    }

    #[test]
    fn paper_table1_spans_average_matches_caption() {
        // Table 1 reports avg spans 12.3 / 11.0 / 15.6 / 19.6.
        let expect = [12.3f32, 11.0, 15.6, 19.6];
        for (task, e) in Task::all().iter().zip(expect.iter()) {
            let avg: f32 = task.paper_head_spans().iter().sum::<f32>() / 12.0;
            assert!((avg - e).abs() < 0.1, "{task}: {avg} vs {e}");
        }
    }

    #[test]
    fn more_than_half_heads_off_in_paper_spans() {
        for task in Task::all() {
            let off = task
                .paper_head_spans()
                .iter()
                .filter(|&&s| s == 0.0)
                .count();
            assert!(off >= 7, "{task} has only {off} heads off");
        }
    }

    #[test]
    fn display_and_name() {
        assert_eq!(Task::Sst2.to_string(), "SST-2");
        assert_eq!(Task::Sst2.name(), "sst-2");
    }

    #[test]
    fn exit_layer_ordering_matches_paper() {
        // SST-2 < QQP < QNLI ~ MNLI
        assert!(Task::Sst2.paper_avg_exit_layer_1pct() < Task::Qqp.paper_avg_exit_layer_1pct());
        assert!(Task::Qqp.paper_avg_exit_layer_1pct() < Task::Qnli.paper_avg_exit_layer_1pct());
        assert!(Task::Qqp.paper_avg_exit_layer_1pct() < Task::Mnli.paper_avg_exit_layer_1pct());
    }
}
