//! Entropy-threshold calibration (paper §5.1, Table 3 methodology).
//!
//! "We set a fixed accuracy degradation threshold of 1%, 2%, or 5%
//! (relative to the inference accuracy of the full ALBERT model) and
//! increased the entropy threshold until the accuracy dropped to the
//! desired threshold."
//!
//! Two calibrations exist: conventional EE exits on true entropies alone;
//! latency-aware inference (LAI) additionally *stops* at the predictor's
//! forecast layer, so its accuracy at a given threshold differs and it
//! ends up needing a lower threshold for the same accuracy target.

use crate::predictor::{EntropyDataset, PredictorLut};
use edgebert_model::AlbertModel;
use edgebert_tasks::Dataset;
use edgebert_tensor::stats::argmax;
use serde::{Deserialize, Serialize};

/// A calibrated operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// The accuracy-drop target this point was calibrated for (e.g. 0.01).
    pub accuracy_drop_target: f32,
    /// The calibrated entropy threshold.
    pub entropy_threshold: f32,
    /// Accuracy achieved at this threshold.
    pub accuracy: f32,
    /// Mean exit layer (actual layers computed).
    pub avg_exit_layer: f32,
    /// Mean predicted exit layer (LAI only; equals `avg_exit_layer` for
    /// conventional EE).
    pub avg_predicted_layer: f32,
}

/// Precomputed per-sentence layerwise outputs so threshold sweeps don't
/// re-run the model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepCache {
    /// Per sentence: entropies at every layer.
    pub entropies: Vec<Vec<f32>>,
    /// Per sentence: predicted class at every layer.
    pub predictions: Vec<Vec<usize>>,
    /// Gold labels.
    pub labels: Vec<usize>,
    /// Number of logical layers.
    pub num_layers: usize,
    /// Number of output classes (bounds the entropy range).
    pub num_classes: usize,
}

impl SweepCache {
    /// Runs the model once over the dataset.
    pub fn build(model: &AlbertModel, data: &Dataset) -> Self {
        let mut entropies = Vec::with_capacity(data.len());
        let mut predictions = Vec::with_capacity(data.len());
        for ex in data {
            let out = model.forward_layers(&ex.tokens);
            predictions.push(out.logits.iter().map(|lg| argmax(lg)).collect());
            entropies.push(out.entropies);
        }
        Self {
            entropies,
            predictions,
            labels: data.labels(),
            num_layers: model.num_layers(),
            num_classes: model.config.num_classes,
        }
    }

    /// The entropy dataset view (for predictor training).
    pub fn entropy_dataset(&self) -> EntropyDataset {
        EntropyDataset {
            trajectories: self.entropies.clone(),
        }
    }

    /// Accuracy of the full-depth model.
    pub fn full_accuracy(&self) -> f32 {
        if self.labels.is_empty() {
            return 0.0;
        }
        let last = self.num_layers - 1;
        let hits = self
            .predictions
            .iter()
            .zip(&self.labels)
            .filter(|(p, &l)| p[last] == l)
            .count();
        hits as f32 / self.labels.len() as f32
    }

    /// Simulates conventional EE at threshold `et`:
    /// `(accuracy, avg_exit_layer)`.
    pub fn conventional_ee(&self, et: f32) -> (f32, f32) {
        let mut hits = 0usize;
        let mut exit_sum = 0usize;
        for (i, traj) in self.entropies.iter().enumerate() {
            let mut exit = self.num_layers;
            for (l, &h) in traj.iter().enumerate() {
                if h < et {
                    exit = l + 1;
                    break;
                }
            }
            exit_sum += exit;
            if self.predictions[i][exit - 1] == self.labels[i] {
                hits += 1;
            }
        }
        let n = self.labels.len().max(1) as f32;
        (hits as f32 / n, exit_sum as f32 / n)
    }

    /// Simulates latency-aware inference at threshold `et` with a
    /// predictor LUT: exit early when the true entropy crosses `et`, but
    /// stop unconditionally at the forecast layer (Algorithm 2).
    /// Returns `(accuracy, avg_actual_exit, avg_predicted_exit)`.
    pub fn latency_aware(&self, et: f32, lut: &PredictorLut) -> (f32, f32, f32) {
        let mut hits = 0usize;
        let mut actual_sum = 0usize;
        let mut predicted_sum = 0usize;
        for (i, traj) in self.entropies.iter().enumerate() {
            // Layer 1 check first (Algorithm 2).
            let exit = if traj[0] < et {
                predicted_sum += 1;
                1
            } else {
                let predicted = lut.predict_exit_layer(traj[0], et).max(2);
                predicted_sum += predicted;
                let mut exit = predicted.min(self.num_layers);
                for l in 2..=predicted.min(self.num_layers) {
                    if traj[l - 1] < et {
                        exit = l;
                        break;
                    }
                }
                exit
            };
            actual_sum += exit;
            if self.predictions[i][exit - 1] == self.labels[i] {
                hits += 1;
            }
        }
        let n = self.labels.len().max(1) as f32;
        (
            hits as f32 / n,
            actual_sum as f32 / n,
            predicted_sum as f32 / n,
        )
    }
}

/// The threshold grid swept during calibration.
fn threshold_grid(max_entropy: f32) -> Vec<f32> {
    (1..=120).map(|i| i as f32 * max_entropy / 120.0).collect()
}

/// Calibrates conventional EE: the largest threshold whose accuracy stays
/// within `drop` of the full model.
pub fn calibrate_conventional(cache: &SweepCache, drop: f32) -> Calibration {
    let baseline = cache.full_accuracy();
    let floor = baseline - drop;
    let max_h = (cache.num_classes as f32).ln() * 1.02;
    let mut best = Calibration {
        accuracy_drop_target: drop,
        entropy_threshold: 0.0,
        accuracy: baseline,
        avg_exit_layer: cache.num_layers as f32,
        avg_predicted_layer: cache.num_layers as f32,
    };
    for et in threshold_grid(max_h) {
        let (acc, avg_exit) = cache.conventional_ee(et);
        if acc + 1e-6 >= floor {
            best = Calibration {
                accuracy_drop_target: drop,
                entropy_threshold: et,
                accuracy: acc,
                avg_exit_layer: avg_exit,
                avg_predicted_layer: avg_exit,
            };
        }
    }
    best
}

/// Calibrates latency-aware inference with a given predictor LUT.
pub fn calibrate_latency_aware(cache: &SweepCache, lut: &PredictorLut, drop: f32) -> Calibration {
    let baseline = cache.full_accuracy();
    let floor = baseline - drop;
    let max_h = (cache.num_classes as f32).ln() * 1.02;
    let mut best = Calibration {
        accuracy_drop_target: drop,
        entropy_threshold: 0.0,
        accuracy: baseline,
        avg_exit_layer: cache.num_layers as f32,
        avg_predicted_layer: cache.num_layers as f32,
    };
    for et in threshold_grid(max_h) {
        let (acc, avg_actual, avg_pred) = cache.latency_aware(et, lut);
        if acc + 1e-6 >= floor {
            best = Calibration {
                accuracy_drop_target: drop,
                entropy_threshold: et,
                accuracy: acc,
                avg_exit_layer: avg_actual,
                avg_predicted_layer: avg_pred,
            };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::EntropyPredictor;
    use edgebert_tensor::Rng;

    /// Hand-built cache: predictions correct from a sentence-specific
    /// "ready layer" onwards, entropies decay past the threshold at that
    /// layer.
    fn synthetic_cache(n: usize, layers: usize, seed: u64) -> SweepCache {
        let mut rng = Rng::seed_from(seed);
        let mut entropies = Vec::new();
        let mut predictions = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let ready = 1 + rng.below(layers);
            let label = rng.below(2);
            let mut traj = Vec::new();
            let mut preds = Vec::new();
            for l in 0..layers {
                if l + 1 >= ready {
                    traj.push(0.05 + 0.01 * (l as f32));
                    preds.push(label);
                } else {
                    traj.push(0.6 + 0.4 * rng.uniform());
                    preds.push(1 - label); // wrong before ready
                }
            }
            entropies.push(traj);
            predictions.push(preds);
            labels.push(label);
        }
        SweepCache {
            entropies,
            predictions,
            labels,
            num_layers: layers,
            num_classes: 2,
        }
    }

    #[test]
    fn conventional_sweep_tradeoff_is_monotone() {
        let cache = synthetic_cache(200, 12, 1);
        let c1 = calibrate_conventional(&cache, 0.01);
        let c5 = calibrate_conventional(&cache, 0.05);
        // Looser accuracy budget ⇒ higher threshold ⇒ earlier exits.
        assert!(c5.entropy_threshold >= c1.entropy_threshold);
        assert!(c5.avg_exit_layer <= c1.avg_exit_layer);
        // Accuracy constraint honoured.
        assert!(c1.accuracy >= cache.full_accuracy() - 0.01 - 1e-5);
        assert!(c5.accuracy >= cache.full_accuracy() - 0.05 - 1e-5);
    }

    #[test]
    fn latency_aware_needs_lower_threshold_for_same_drop() {
        // The paper's observation: "the entropy threshold for entropy
        // prediction was lower than the entropy threshold for conventional
        // EE" at the same accuracy target.
        let cache = synthetic_cache(300, 12, 2);
        let pred = EntropyPredictor::train(&cache.entropy_dataset(), 300, 3);
        let lut = pred.to_lut(64, 1.1);
        let conv = calibrate_conventional(&cache, 0.02);
        let lai = calibrate_latency_aware(&cache, &lut, 0.02);
        assert!(
            lai.entropy_threshold <= conv.entropy_threshold + 1e-6,
            "LAI {} vs conventional {}",
            lai.entropy_threshold,
            conv.entropy_threshold
        );
        // Predicted exit comes later than actual (conservative forecasts).
        assert!(lai.avg_predicted_layer + 1e-3 >= lai.avg_exit_layer);
    }

    #[test]
    fn zero_drop_keeps_baseline_accuracy() {
        let cache = synthetic_cache(150, 8, 4);
        let c = calibrate_conventional(&cache, 0.0);
        assert!(c.accuracy + 1e-6 >= cache.full_accuracy());
    }

    #[test]
    fn full_accuracy_counts_last_layer() {
        let cache = synthetic_cache(50, 6, 5);
        // By construction every sentence is correct at the last layer.
        assert_eq!(cache.full_accuracy(), 1.0);
    }

    #[test]
    fn lai_respects_forced_stop_at_predicted_layer() {
        // A LUT that always forecasts layer 2 forces exit at 2 even when
        // the true entropy stays high.
        let cache = synthetic_cache(50, 6, 6);
        let constant_lut = {
            // Train on trajectories that always exit at 2 so the LUT
            // forecasts 2 everywhere.
            let data = crate::predictor::EntropyDataset {
                trajectories: (0..64)
                    .map(|_| vec![0.9, 0.01, 0.01, 0.01, 0.01, 0.01])
                    .collect(),
            };
            EntropyPredictor::train(&data, 200, 7).to_lut(32, 1.1)
        };
        let (_, avg_actual, avg_pred) = cache.latency_aware(0.3, &constant_lut);
        assert!(avg_pred <= 2.6, "avg predicted {avg_pred}");
        assert!(avg_actual <= avg_pred + 1e-6);
    }
}
