//! Plain-text table rendering shared by the experiment drivers.

/// A simple fixed-width text table builder.
///
/// # Example
///
/// ```
/// use edgebert::report::TextTable;
///
/// let mut t = TextTable::new(&["task", "accuracy"]);
/// t.row(&["SST-2", "92.2"]);
/// let s = t.render();
/// assert!(s.contains("SST-2"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, cells: &[&str]) {
        let mut r: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
    }

    /// Appends a row of already-owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        let mut r = cells;
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(r[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}  ", cell, width = widths[c]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * cols));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with the given decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Formats joules as the most readable SI unit.
pub fn energy(j: f64) -> String {
    if j >= 1.0 {
        format!("{j:.2} J")
    } else if j >= 1e-3 {
        format!("{:.2} mJ", j * 1e3)
    } else if j >= 1e-6 {
        format!("{:.2} µJ", j * 1e6)
    } else if j >= 1e-9 {
        format!("{:.2} nJ", j * 1e9)
    } else {
        format!("{:.2} pJ", j * 1e12)
    }
}

/// Formats seconds as the most readable SI unit.
pub fn time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.2} µs", s * 1e6)
    } else {
        format!("{:.2} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["a", "long-header"]);
        t.row(&["x", "1"]);
        t.row(&["longer-cell", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[3].starts_with("longer-cell"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(&["a", "b", "c"]);
        t.row(&["only-one"]);
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(energy(2.5), "2.50 J");
        assert_eq!(energy(2.5e-3), "2.50 mJ");
        assert_eq!(energy(2.5e-6), "2.50 µJ");
        assert_eq!(energy(2.5e-9), "2.50 nJ");
        assert_eq!(energy(2.5e-13), "0.25 pJ");
        assert_eq!(time(0.05), "50.00 ms");
        assert_eq!(time(3.8e-9), "3.80 ns");
        assert_eq!(f(1.23456, 2), "1.23");
    }
}
