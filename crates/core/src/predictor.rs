//! The early-exit predictor (paper §5.1).
//!
//! "The EE predictor is a ReLU-activated five-layer perceptron neural
//! network with 64 cells in each of the hidden layers. It takes the
//! entropy of encoder layer 1 as input and forecasts the early exit
//! Transformer layer which has an entropy below the desired threshold.
//! [...] The EE predictor is distilled as a lookup table (LUT)."
//!
//! We fit the MLP to regress the *full entropy trajectory* (one output
//! per layer) from the layer-1 entropy. The exit-layer forecast for any
//! threshold `E_T` is then the first layer whose predicted entropy falls
//! below `E_T` — equivalent to the paper's per-threshold classifier but
//! reusable across the threshold sweep of Table 3. The LUT bins the
//! layer-1 entropy and stores the precomputed forecast per bin, exactly
//! what the accelerator's auxiliary buffer holds.

use edgebert_model::AlbertModel;
use edgebert_nn::losses::mse;
use edgebert_nn::{AdamOptimizer, Mlp};
use edgebert_tasks::Dataset;
use edgebert_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

/// Per-sentence entropy trajectories collected from a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntropyDataset {
    /// One row per sentence: entropies at each of the `num_layers`
    /// off-ramps.
    pub trajectories: Vec<Vec<f32>>,
}

impl EntropyDataset {
    /// Runs the model over a dataset and records every off-ramp entropy.
    pub fn collect(model: &AlbertModel, data: &Dataset) -> Self {
        let trajectories = data
            .iter()
            .map(|ex| model.forward_layers(&ex.tokens).entropies)
            .collect();
        Self { trajectories }
    }

    /// Number of sentences.
    pub fn len(&self) -> usize {
        self.trajectories.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.trajectories.is_empty()
    }

    /// The entropy-based exit layer (1-based) of trajectory `i` under
    /// threshold `et` (last layer when never below threshold).
    pub fn exit_layer(&self, i: usize, et: f32) -> usize {
        let traj = &self.trajectories[i];
        for (l, &h) in traj.iter().enumerate() {
            if h < et {
                return l + 1;
            }
        }
        traj.len()
    }
}

/// The MLP-based entropy-trajectory predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EntropyPredictor {
    mlp: Mlp,
    num_layers: usize,
}

impl EntropyPredictor {
    /// Trains the five-layer predictor on collected trajectories.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn train(data: &EntropyDataset, epochs: usize, seed: u64) -> Self {
        assert!(!data.is_empty(), "cannot train a predictor on no data");
        let num_layers = data.trajectories[0].len();
        let mut rng = Rng::seed_from(seed);
        // Five affine layers: 1 -> 64 -> 64 -> 64 -> 64 -> num_layers.
        let mut mlp = Mlp::new(&[1, 64, 64, 64, 64, num_layers], &mut rng);
        let n = data.len();
        let mut xs = Matrix::zeros(n, 1);
        let mut ys = Matrix::zeros(n, num_layers);
        for (i, traj) in data.trajectories.iter().enumerate() {
            xs.set(i, 0, traj[0]);
            ys.row_mut(i).copy_from_slice(traj);
        }
        let mut opt = AdamOptimizer::new(2e-3);
        for _ in 0..epochs {
            mlp.zero_grad();
            let (pred, cache) = mlp.forward(&xs);
            let (_, grad) = mse(&pred, &ys);
            mlp.backward(&cache, &grad);
            opt.step(&mut mlp.params_mut());
        }
        Self { mlp, num_layers }
    }

    /// Number of logical layers the predictor forecasts.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Predicted entropy trajectory from a layer-1 entropy.
    pub fn predict_trajectory(&self, entropy1: f32) -> Vec<f32> {
        let x = Matrix::from_vec(1, 1, vec![entropy1]);
        self.mlp.infer(&x).row(0).to_vec()
    }

    /// Forecast exit layer for threshold `et` (1-based; the final layer
    /// when the predicted trajectory never crosses the threshold).
    pub fn predict_exit_layer(&self, entropy1: f32, et: f32) -> usize {
        let traj = self.predict_trajectory(entropy1);
        for (l, &h) in traj.iter().enumerate() {
            if h < et {
                return l + 1;
            }
        }
        self.num_layers
    }

    /// Distills the predictor into the accelerator's LUT form.
    pub fn to_lut(&self, bins: usize, max_entropy: f32) -> PredictorLut {
        let trajectories = (0..bins)
            .map(|b| {
                let h = (b as f32 + 0.5) / bins as f32 * max_entropy;
                self.predict_trajectory(h)
            })
            .collect();
        PredictorLut {
            bins,
            max_entropy,
            trajectories,
            num_layers: self.num_layers,
        }
    }

    /// Mean absolute error (in layers) of exit-layer forecasts against
    /// the true entropy-based exits at threshold `et`.
    pub fn exit_mae(&self, data: &EntropyDataset, et: f32) -> f32 {
        if data.is_empty() {
            return 0.0;
        }
        let total: f32 = (0..data.len())
            .map(|i| {
                let truth = data.exit_layer(i, et) as f32;
                let pred = self.predict_exit_layer(data.trajectories[i][0], et) as f32;
                (truth - pred).abs()
            })
            .sum();
        total / data.len() as f32
    }
}

/// The distilled lookup table stored in the SFU auxiliary buffer.
///
/// # Example
///
/// ```no_run
/// use edgebert::predictor::{EntropyDataset, EntropyPredictor};
/// # let data: EntropyDataset = unimplemented!();
/// let predictor = EntropyPredictor::train(&data, 300, 7);
/// let lut = predictor.to_lut(64, 1.1);
/// let layer = lut.predict_exit_layer(0.42, 0.3);
/// assert!(layer >= 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictorLut {
    bins: usize,
    max_entropy: f32,
    trajectories: Vec<Vec<f32>>,
    num_layers: usize,
}

impl PredictorLut {
    /// Number of entropy bins.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Number of layers forecast per bin.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Storage footprint in bytes (16-bit entries, as the SFU datapaths
    /// are 16-bit fixed-point).
    pub fn storage_bytes(&self) -> usize {
        self.bins * self.num_layers * 2
    }

    fn bin_for(&self, entropy1: f32) -> usize {
        let idx = (entropy1 / self.max_entropy * self.bins as f32).floor() as isize;
        idx.clamp(0, self.bins as isize - 1) as usize
    }

    /// Forecast trajectory from the LUT.
    pub fn predict_trajectory(&self, entropy1: f32) -> &[f32] {
        &self.trajectories[self.bin_for(entropy1)]
    }

    /// Forecast exit layer for threshold `et` (1-based).
    pub fn predict_exit_layer(&self, entropy1: f32, et: f32) -> usize {
        let traj = self.predict_trajectory(entropy1);
        for (l, &h) in traj.iter().enumerate() {
            if h < et {
                return l + 1;
            }
        }
        self.num_layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic trajectories: entropy decays geometrically from a
    /// sentence-specific start; harder sentences (higher start) decay
    /// slower — the qualitative structure of real trajectories.
    fn synthetic_dataset(n: usize, layers: usize, seed: u64) -> EntropyDataset {
        let mut rng = Rng::seed_from(seed);
        let trajectories = (0..n)
            .map(|_| {
                let h0 = rng.uniform_in(0.05, 1.05);
                let decay = 0.55 + 0.4 * (h0 / 1.05);
                (0..layers)
                    .map(|l| (h0 * decay.powi(l as i32)).max(0.005))
                    .collect()
            })
            .collect();
        EntropyDataset { trajectories }
    }

    #[test]
    fn exit_layer_from_trajectory() {
        let data = EntropyDataset {
            trajectories: vec![vec![0.9, 0.5, 0.2, 0.05]],
        };
        assert_eq!(data.exit_layer(0, 1.0), 1);
        assert_eq!(data.exit_layer(0, 0.3), 3);
        assert_eq!(data.exit_layer(0, 0.01), 4); // never crosses: last layer
    }

    #[test]
    fn predictor_learns_monotone_structure() {
        let data = synthetic_dataset(256, 12, 3);
        let pred = EntropyPredictor::train(&data, 400, 5);
        // Confident layer-1 entropy ⇒ early exit; uncertain ⇒ late.
        let early = pred.predict_exit_layer(0.08, 0.25);
        let late = pred.predict_exit_layer(1.0, 0.25);
        assert!(early < late, "early {early} late {late}");
        // MAE is materially better than always predicting the last layer.
        let mae = pred.exit_mae(&data, 0.25);
        let naive: f32 = (0..data.len())
            .map(|i| (12.0 - data.exit_layer(i, 0.25) as f32).abs())
            .sum::<f32>()
            / data.len() as f32;
        assert!(mae < naive * 0.6, "mae {mae} vs naive {naive}");
    }

    #[test]
    fn lut_matches_mlp_closely() {
        let data = synthetic_dataset(256, 12, 7);
        let pred = EntropyPredictor::train(&data, 300, 9);
        let lut = pred.to_lut(64, 1.1);
        let mut diffs = 0usize;
        for i in 0..40 {
            let h = i as f32 * 1.1 / 40.0;
            let a = pred.predict_exit_layer(h, 0.3);
            let b = lut.predict_exit_layer(h, 0.3);
            if (a as isize - b as isize).abs() > 1 {
                diffs += 1;
            }
        }
        assert!(
            diffs <= 2,
            "{diffs} LUT forecasts off by more than one layer"
        );
    }

    #[test]
    fn lut_is_small_enough_for_aux_buffer() {
        let data = synthetic_dataset(64, 12, 11);
        let pred = EntropyPredictor::train(&data, 50, 13);
        let lut = pred.to_lut(64, 1.1);
        // Must fit comfortably in the 32 KB auxiliary buffer.
        assert!(lut.storage_bytes() <= 4096, "{} bytes", lut.storage_bytes());
    }

    #[test]
    fn lut_clamps_out_of_range_entropy() {
        let data = synthetic_dataset(64, 4, 15);
        let pred = EntropyPredictor::train(&data, 50, 17);
        let lut = pred.to_lut(16, 1.0);
        // Values beyond the bin range clamp instead of panicking.
        let lo = lut.predict_exit_layer(-0.5, 0.2);
        let hi = lut.predict_exit_layer(99.0, 0.2);
        assert!((1..=4).contains(&lo));
        assert!((1..=4).contains(&hi));
    }
}
