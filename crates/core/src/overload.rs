//! Overload control plane: a per-lane admission ladder that trades
//! accuracy for survival under flash crowds.
//!
//! EdgeBERT's calibrated entropy/accuracy knob (§5.1: thresholds
//! calibrated at 1/2/5 % accuracy drop) is request-scoped — but a
//! frozen knob gives an overloaded serving lane only two bad options:
//! queue work that will miss its deadline anyway, or reject it outright
//! at admission. This module adds the missing third option: under
//! pressure, *degrade* — serve at a cheaper accuracy tier and a higher
//! entropy-exit threshold so sentences exit earlier and the backlog
//! drains — and only when degradation cannot restore feasibility,
//! *shed* work at admission with a typed retry hint instead of letting
//! it queue and die.
//!
//! The control plane is a three-rung ladder driven by an observed
//! pressure signal (see [`pressure`]):
//!
//! ```text
//!              p ≥ degrade_enter           p ≥ shed_enter
//!   Nominal ───────────────────▶ Degrade ───────────────▶ Shed
//!      ▲                            │  ▲                    │
//!      └────────────────────────────┘  └────────────────────┘
//!              p < degrade_exit           p < shed_exit
//! ```
//!
//! * **[`LadderStep::Degrade`]** — requests popped for service are
//!   degraded by one notch: the accuracy tier drops one step
//!   ([`DropTarget::degraded`](crate::engine::DropTarget::degraded))
//!   and the entropy-exit threshold is scaled up by
//!   [`OverloadConfig::entropy_scale_per_notch`], bounded by the
//!   request's own [`max_degradation`](crate::engine::InferenceRequest::max_degradation)
//!   floor (default 0: no degradation, ever — existing behavior is
//!   bit-identical).
//! * **[`LadderStep::Shed`]** — degradation is already at two notches
//!   and pressure still exceeds the shed threshold: admission starts
//!   rejecting requests whose deadline-feasibility estimate says they
//!   would queue and die, with a typed
//!   [`SubmitError::Shed`](crate::server::SubmitError::Shed) carrying a
//!   retry hint.
//! * **Recovery** — the ladder steps *down* through hysteresis bands
//!   (see below), so a draining burst does not flap the lane between
//!   rungs.
//!
//! # Hysteresis invariants
//!
//! [`OverloadConfig::validate`] enforces (and the serving layers assert
//! at construction):
//!
//! * `degrade_exit ≤ degrade_enter` and `shed_exit ≤ shed_enter` —
//!   each rung's *exit* threshold sits at or below its *enter*
//!   threshold, so a pressure value that just triggered a rung cannot
//!   immediately untrigger it (no chatter at the boundary);
//! * `degrade_enter ≤ shed_enter` and `degrade_exit ≤ shed_exit` — the
//!   ladder is monotone: shedding never engages at a pressure where
//!   degradation would not, and recovery passes back through the
//!   degrade rung before reaching nominal;
//! * all thresholds are finite and non-negative, and
//!   `entropy_scale_per_notch ≥ 1` — degradation can only *raise* the
//!   exit threshold (earlier exits), never lower it.
//!
//! Together these guarantee the step sequence of a pressure excursion
//! is a clean pulse — `Nominal → Degrade → Shed → Degrade → Nominal` —
//! with one upward and one downward transition per band crossed, which
//! is what makes [`OverloadController::step_changes`] a meaningful
//! stability metric.

use crate::engine::DropTarget;
use serde::{Deserialize, Serialize};

/// The admission ladder's current rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LadderStep {
    /// No overload action: admit and serve exactly as requested.
    Nominal,
    /// Serve admitted work one notch cheaper (tier drop + scaled
    /// entropy threshold), bounded per request.
    Degrade,
    /// Degrade admitted work by two notches *and* reject infeasible
    /// work at admission.
    Shed,
}

impl LadderStep {
    /// Degradation notches this rung applies to admitted work (before
    /// the per-request `max_degradation` bound).
    pub fn severity(self) -> u8 {
        match self {
            LadderStep::Nominal => 0,
            LadderStep::Degrade => 1,
            LadderStep::Shed => 2,
        }
    }
}

/// Configuration of the overload ladder. Disabled by default: every
/// serving path is bit-identical to the pre-overload behavior until
/// `enabled` is set.
///
/// Thresholds are in units of [`pressure`]: estimated backlog drain
/// time relative to the lane's deadline horizon. `1.0` means the
/// backlog alone takes one full default latency target to drain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverloadConfig {
    /// Master switch. Off (the default), the controller never leaves
    /// [`LadderStep::Nominal`] and the serving layers take no overload
    /// action at all.
    pub enabled: bool,
    /// Pressure at or above which the ladder steps up to
    /// [`LadderStep::Degrade`].
    pub degrade_enter: f64,
    /// Pressure below which the ladder steps down from
    /// [`LadderStep::Degrade`] to [`LadderStep::Nominal`]. Must not
    /// exceed `degrade_enter` (hysteresis).
    pub degrade_exit: f64,
    /// Pressure at or above which the ladder steps up to
    /// [`LadderStep::Shed`]. Must be at least `degrade_enter`.
    pub shed_enter: f64,
    /// Pressure below which the ladder steps down from
    /// [`LadderStep::Shed`] to [`LadderStep::Degrade`]. Must not
    /// exceed `shed_enter` (hysteresis).
    pub shed_exit: f64,
    /// Factor the entropy-exit threshold is multiplied by per
    /// degradation notch (≥ 1: degradation only makes exits easier).
    pub entropy_scale_per_notch: f32,
    /// Per-class shed preference on the [`LadderStep::Shed`] rung:
    /// arrivals whose remaining deadline budget is at least this many
    /// lane horizons are shed *first* — before the feasibility test —
    /// so loose-deadline classes absorb the loss and tight-deadline
    /// work keeps being admitted. The rationale is the retry
    /// asymmetry: a loose-budget client can afford the typed
    /// retry-after backoff; a tight one cannot. `f64::INFINITY` (the
    /// default) disables the preference — no finite budget triggers
    /// it, and only the feasibility test sheds, exactly the PR 6
    /// class-agnostic behavior. Must be positive (NaN and
    /// non-positive values are rejected by [`validate`](Self::validate)).
    pub shed_loose_budget_ratio: f64,
}

impl Default for OverloadConfig {
    /// Disabled; degrade at pressure 0.5 (backlog worth half the
    /// deadline horizon), recover below 0.25; shed at 1.0 (backlog
    /// alone fills the horizon), step down below 0.5; double the
    /// entropy threshold per notch; no loose-class shed preference.
    fn default() -> Self {
        Self {
            enabled: false,
            degrade_enter: 0.5,
            degrade_exit: 0.25,
            shed_enter: 1.0,
            shed_exit: 0.5,
            entropy_scale_per_notch: 2.0,
            shed_loose_budget_ratio: f64::INFINITY,
        }
    }
}

impl OverloadConfig {
    /// Checks the hysteresis invariants (module docs). The serving
    /// layers call this at construction when the ladder is enabled.
    ///
    /// # Panics
    ///
    /// Panics when a threshold is non-finite or negative, an exit
    /// threshold exceeds its enter threshold, the ladder is not
    /// monotone, or `entropy_scale_per_notch < 1`.
    pub fn validate(&self) {
        for (name, v) in [
            ("degrade_enter", self.degrade_enter),
            ("degrade_exit", self.degrade_exit),
            ("shed_enter", self.shed_enter),
            ("shed_exit", self.shed_exit),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "overload threshold {name} must be finite and non-negative, got {v}"
            );
        }
        assert!(
            self.degrade_exit <= self.degrade_enter,
            "degrade_exit ({}) must not exceed degrade_enter ({}): hysteresis",
            self.degrade_exit,
            self.degrade_enter
        );
        assert!(
            self.shed_exit <= self.shed_enter,
            "shed_exit ({}) must not exceed shed_enter ({}): hysteresis",
            self.shed_exit,
            self.shed_enter
        );
        assert!(
            self.degrade_enter <= self.shed_enter,
            "degrade_enter ({}) must not exceed shed_enter ({}): monotone ladder",
            self.degrade_enter,
            self.shed_enter
        );
        assert!(
            self.degrade_exit <= self.shed_exit,
            "degrade_exit ({}) must not exceed shed_exit ({}): monotone recovery",
            self.degrade_exit,
            self.shed_exit
        );
        assert!(
            self.entropy_scale_per_notch.is_finite() && self.entropy_scale_per_notch >= 1.0,
            "entropy_scale_per_notch must be ≥ 1 (degradation only raises the threshold), got {}",
            self.entropy_scale_per_notch
        );
        assert!(
            self.shed_loose_budget_ratio > 0.0,
            "shed_loose_budget_ratio must be positive (INFINITY disables the preference), got {}",
            self.shed_loose_budget_ratio
        );
    }

    /// The degradation a rung applies to one request: the rung's
    /// severity clamped to the request's `max_degradation` floor.
    /// Returns [`Degradation::NONE`] (and the serving path stays
    /// bit-identical) when either side is zero or the ladder is
    /// disabled.
    pub fn degradation_for(&self, step: LadderStep, max_degradation: u8) -> Degradation {
        if !self.enabled {
            return Degradation::NONE;
        }
        let notches = step.severity().min(max_degradation);
        if notches == 0 {
            return Degradation::NONE;
        }
        Degradation {
            tier_notches: notches,
            entropy_scale: self.entropy_scale_per_notch.powi(notches as i32),
        }
    }
}

/// The lane pressure signal the ladder observes: estimated time to
/// drain the current backlog at nominal speed, relative to the lane's
/// deadline horizon (its engine's default latency target).
///
/// `backlog · nominal_service_s / (shards · horizon_s)` — at `1.0`,
/// the queued work alone needs the whole default deadline budget, so a
/// fresh default-target arrival is already infeasible. Degenerate
/// horizons (zero, negative, non-finite) fall back to the nominal
/// service estimate; if that is also unusable, the raw backlog count is
/// the pressure.
pub fn pressure(backlog: usize, shards: usize, nominal_service_s: f64, horizon_s: f64) -> f64 {
    let horizon = if horizon_s.is_finite() && horizon_s > 0.0 {
        horizon_s
    } else {
        nominal_service_s
    };
    if !(horizon.is_finite() && horizon > 0.0) {
        return backlog as f64;
    }
    backlog as f64 * nominal_service_s / (shards.max(1) as f64 * horizon)
}

/// The hysteresis state machine over [`LadderStep`]s (module docs show
/// the transition diagram). One controller per lane, advanced under the
/// lane lock at admission and pop time.
#[derive(Debug, Clone)]
pub struct OverloadController {
    cfg: OverloadConfig,
    step: LadderStep,
    step_changes: u64,
}

impl OverloadController {
    /// A controller at [`LadderStep::Nominal`].
    pub fn new(cfg: OverloadConfig) -> Self {
        Self {
            cfg,
            step: LadderStep::Nominal,
            step_changes: 0,
        }
    }

    /// The current rung.
    pub fn step(&self) -> LadderStep {
        self.step
    }

    /// Rung transitions since construction (both directions). A clean
    /// burst costs exactly two per band crossed — more indicates
    /// thresholds too close together for the traffic.
    pub fn step_changes(&self) -> u64 {
        self.step_changes
    }

    /// Feeds one pressure observation through the state machine and
    /// returns the (possibly new) rung. Disabled controllers stay at
    /// [`LadderStep::Nominal`]; a NaN observation keeps the current
    /// rung (every comparison is false).
    pub fn observe(&mut self, pressure: f64) -> LadderStep {
        if !self.cfg.enabled {
            return LadderStep::Nominal;
        }
        let next = match self.step {
            LadderStep::Nominal => {
                if pressure >= self.cfg.shed_enter {
                    LadderStep::Shed
                } else if pressure >= self.cfg.degrade_enter {
                    LadderStep::Degrade
                } else {
                    LadderStep::Nominal
                }
            }
            LadderStep::Degrade => {
                if pressure >= self.cfg.shed_enter {
                    LadderStep::Shed
                } else if pressure < self.cfg.degrade_exit {
                    LadderStep::Nominal
                } else {
                    LadderStep::Degrade
                }
            }
            LadderStep::Shed => {
                if pressure < self.cfg.degrade_exit {
                    LadderStep::Nominal
                } else if pressure < self.cfg.shed_exit {
                    LadderStep::Degrade
                } else {
                    LadderStep::Shed
                }
            }
        };
        if next != self.step {
            self.step_changes += 1;
            self.step = next;
        }
        next
    }
}

/// One request's resolved degradation: how many accuracy-tier notches
/// to drop ([`DropTarget::degraded`]) and the factor to scale the
/// entropy-exit threshold by. [`Degradation::NONE`] (the default
/// everywhere) leaves the serving path bit-identical to the
/// pre-overload engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Degradation {
    /// Accuracy-tier notches to drop (saturating at the loosest tier).
    pub tier_notches: u8,
    /// Factor the entropy-exit threshold is multiplied by (≥ 1).
    pub entropy_scale: f32,
}

impl Degradation {
    /// No degradation: the identity the default serving paths use.
    pub const NONE: Degradation = Degradation {
        tier_notches: 0,
        entropy_scale: 1.0,
    };

    /// Whether this is the identity (no tier drop, no threshold scale).
    pub fn is_none(&self) -> bool {
        // analyzer: allow(float-eq) reason="1.0 is an exact sentinel: NONE is constructed with the literal and scale factors are never computed, so the identity compares bit-exactly"
        self.tier_notches == 0 && self.entropy_scale == 1.0
    }

    /// The tier actually served when degrading `requested`.
    pub fn applied_to(&self, requested: DropTarget) -> DropTarget {
        requested.degraded(self.tier_notches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled() -> OverloadConfig {
        OverloadConfig {
            enabled: true,
            ..OverloadConfig::default()
        }
    }

    #[test]
    fn default_config_is_disabled_and_valid() {
        let cfg = OverloadConfig::default();
        assert!(!cfg.enabled);
        cfg.validate();
        // A disabled controller never moves, whatever it observes.
        let mut ctl = OverloadController::new(cfg);
        for p in [0.0, 10.0, f64::INFINITY] {
            assert_eq!(ctl.observe(p), LadderStep::Nominal);
        }
        assert_eq!(ctl.step_changes(), 0);
        assert_eq!(
            cfg.degradation_for(LadderStep::Shed, u8::MAX),
            Degradation::NONE
        );
    }

    #[test]
    fn ladder_walks_a_clean_pulse_with_hysteresis() {
        let mut ctl = OverloadController::new(enabled());
        // Rising pressure: Nominal → Degrade → Shed.
        assert_eq!(ctl.observe(0.4), LadderStep::Nominal);
        assert_eq!(ctl.observe(0.5), LadderStep::Degrade);
        assert_eq!(ctl.observe(0.9), LadderStep::Degrade);
        assert_eq!(ctl.observe(1.0), LadderStep::Shed);
        // Inside the hysteresis band (shed_exit ≤ p < shed_enter): hold.
        assert_eq!(ctl.observe(0.7), LadderStep::Shed);
        // Below shed_exit: step down one rung, not two.
        assert_eq!(ctl.observe(0.45), LadderStep::Degrade);
        // Inside the degrade band: hold.
        assert_eq!(ctl.observe(0.3), LadderStep::Degrade);
        // Below degrade_exit: recovered.
        assert_eq!(ctl.observe(0.2), LadderStep::Nominal);
        // One up and one down transition per band crossed.
        assert_eq!(ctl.step_changes(), 4);
    }

    #[test]
    fn pressure_collapse_steps_straight_down_and_spikes_straight_up() {
        let mut ctl = OverloadController::new(enabled());
        assert_eq!(ctl.observe(5.0), LadderStep::Shed);
        assert_eq!(ctl.observe(0.0), LadderStep::Nominal);
        assert_eq!(ctl.step_changes(), 2);
        // NaN keeps the current rung.
        ctl.observe(2.0);
        assert_eq!(ctl.observe(f64::NAN), LadderStep::Shed);
    }

    #[test]
    fn degradation_is_bounded_by_the_request_floor() {
        let cfg = enabled();
        assert_eq!(
            cfg.degradation_for(LadderStep::Nominal, 2),
            Degradation::NONE
        );
        assert_eq!(cfg.degradation_for(LadderStep::Shed, 0), Degradation::NONE);
        let one = cfg.degradation_for(LadderStep::Shed, 1);
        assert_eq!(one.tier_notches, 1);
        assert_eq!(one.entropy_scale, 2.0);
        let two = cfg.degradation_for(LadderStep::Shed, 2);
        assert_eq!(two.tier_notches, 2);
        assert_eq!(two.entropy_scale, 4.0);
        // The rung, not the floor, caps severity from above.
        assert_eq!(cfg.degradation_for(LadderStep::Degrade, 2).tier_notches, 1);
        assert!(Degradation::NONE.is_none());
        assert!(!two.is_none());
        assert_eq!(
            two.applied_to(DropTarget::OnePercent),
            DropTarget::FivePercent
        );
    }

    #[test]
    fn pressure_is_backlog_drain_time_over_the_horizon() {
        assert_eq!(pressure(0, 1, 10e-3, 50e-3), 0.0);
        assert_eq!(pressure(5, 1, 10e-3, 50e-3), 1.0);
        // More shards drain faster.
        assert_eq!(pressure(5, 2, 10e-3, 50e-3), 0.5);
        // Degenerate horizon falls back to the service estimate.
        assert_eq!(pressure(3, 1, 10e-3, 0.0), 3.0);
        assert_eq!(pressure(3, 1, 10e-3, f64::NAN), 3.0);
        // Nothing usable: the raw backlog count.
        assert_eq!(pressure(3, 1, 0.0, 0.0), 3.0);
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn validate_rejects_exit_above_enter() {
        OverloadConfig {
            enabled: true,
            degrade_exit: 0.6,
            ..OverloadConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "monotone ladder")]
    fn validate_rejects_shed_below_degrade() {
        OverloadConfig {
            enabled: true,
            degrade_enter: 1.5,
            degrade_exit: 0.2,
            shed_enter: 1.0,
            ..OverloadConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "entropy_scale_per_notch")]
    fn validate_rejects_threshold_lowering_scale() {
        OverloadConfig {
            enabled: true,
            entropy_scale_per_notch: 0.5,
            ..OverloadConfig::default()
        }
        .validate();
    }

    #[test]
    fn loose_shed_preference_defaults_off_and_validates_when_finite() {
        // The default (INFINITY) disables the preference and passes
        // validation; any positive finite ratio is accepted.
        assert_eq!(
            OverloadConfig::default().shed_loose_budget_ratio,
            f64::INFINITY
        );
        OverloadConfig {
            enabled: true,
            shed_loose_budget_ratio: 4.0,
            ..OverloadConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "shed_loose_budget_ratio")]
    fn validate_rejects_non_positive_loose_ratio() {
        OverloadConfig {
            enabled: true,
            shed_loose_budget_ratio: 0.0,
            ..OverloadConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "shed_loose_budget_ratio")]
    fn validate_rejects_nan_loose_ratio() {
        OverloadConfig {
            enabled: true,
            shed_loose_budget_ratio: f64::NAN,
            ..OverloadConfig::default()
        }
        .validate();
    }
}
