//! EdgeBERT: latency-aware multi-task NLP inference.
//!
//! This is the core crate of the reproduction of *EdgeBERT: Sentence-Level
//! Energy Optimizations for Latency-Aware Multi-Task NLP Inference*
//! (Tambe et al., MICRO 2021). It composes the workspace substrates into
//! the paper's full system:
//!
//! * [`predictor`] — the early-exit predictor: a five-layer, 64-wide ReLU
//!   MLP fit on per-sentence entropy trajectories and distilled into the
//!   lookup table the accelerator indexes (paper §5.1);
//! * [`calibrate`] — entropy-threshold calibration against fixed
//!   accuracy-drop targets (1/2/5 %), for both conventional early exit
//!   and the latency-aware scheme;
//! * [`engine`] — the owned per-sentence inference engine implementing
//!   Algorithm 1 (conventional EE) and Algorithm 2 (EdgeBERT latency-aware
//!   inference with DVFS) behind a request/response API
//!   ([`InferenceRequest`]/[`InferenceResponse`]), with full
//!   latency/energy accounting on the hardware backend; construction
//!   goes through [`EngineBuilder`], and engines are `Send + 'static`;
//! * [`session`] — the resumable, layer-granular execution API under
//!   every serving layer: [`EdgeBertEngine::begin`](engine::EdgeBertEngine::begin)
//!   opens an [`InferenceSession`] whose [`step`](session::InferenceSession::step)
//!   runs one encoder layer (entropy-exit check, then a fresh DVFS
//!   decision against *remaining* slack at each segment start);
//!   sessions park at layer boundaries (hidden state + accounting
//!   checkpointed) and resume with the parked time charged against
//!   their slack; a parked session serializes into a versioned
//!   [`SessionCheckpoint`] envelope that crosses process boundaries
//!   and restores onto any engine of the same depth
//!   ([`EdgeBertEngine::restore_session`](engine::EdgeBertEngine::restore_session)).
//!   `serve`/`run_*` are thin drive-to-completion
//!   wrappers, bit-identical to the pre-session monolithic paths;
//! * [`backend`] — the hardware abstraction under the engine:
//!   [`backend::InferenceBackend`] covers per-layer workload costing,
//!   segment execution at an operating point, DVFS decisions, and fixed
//!   per-sentence costs. [`backend::AcceleratorBackend`] (the paper's
//!   accelerator, the default) and [`backend::MobileGpuBackend`] (the
//!   fixed-V/F TX2 comparison baseline, priced on the *same* wired
//!   workload) ship; a cycle-accurate sim or real hardware slots in via
//!   [`EngineBuilder::backend`] without touching the serving layers;
//! * [`energy`] — fleet-level energy budgeting, default-off: a
//!   [`FleetCoordinator`] tracks per-lane measured power (EWMA of the
//!   per-step [`SegmentCost`](backend::SegmentCost) energy accounting)
//!   and periodically waterfills the configured fleet cap
//!   ([`EnergyConfig`]) into per-lane power envelopes — floors
//!   guaranteed, headroom following queue pressure. Envelopes bind at
//!   the DVFS seam
//!   ([`InferenceBackend::decide_capped`](backend::InferenceBackend::decide_capped)):
//!   a segment's operating point may not outdraw its lane's envelope,
//!   with feasibility judged honestly at the clamped clock — deadline
//!   risk surfaces in stats, never a silent re-price. The elastic
//!   autoscaler declines attaches the envelope cannot power and the
//!   overload shed rung prices the envelope's slowdown into its
//!   feasibility estimate, so a lane cannot win its deadline race by
//!   exceeding the fleet cap;
//! * [`overload`] — the overload control plane: a per-lane hysteresis
//!   admission ladder ([`OverloadController`]) that trades calibrated
//!   accuracy for survival under flash crowds. Under pressure (queued
//!   drain time vs. the lane's deadline horizon) admitted work is
//!   *degraded* — tier dropped a notch and entropy-exit threshold
//!   scaled up, bounded by each request's
//!   [`InferenceRequest::max_degradation`](engine::InferenceRequest::max_degradation)
//!   floor (default: none) — and when that can't restore feasibility,
//!   infeasible arrivals are *shed* at admission with a typed retry
//!   hint ([`SubmitError::Shed`](server::SubmitError::Shed)).
//!   Disabled by default; every default path stays bit-identical;
//! * [`serving`] — [`TaskRuntime`] (one task's owned serving stack) and
//!   [`MultiTaskRuntime`] (request routing across the four GLUE tasks,
//!   the paper's multi-task deployment);
//! * [`scheduler`] — [`DeadlineScheduler`]: an earliest-deadline-first
//!   (EDF) batch scheduler over the multi-task runtime. Submissions
//!   carry arrival timestamps; the queue drains least-slack-first,
//!   packing same-task sentences into batched engine passes across a
//!   pool of `Send` engines, and every response reports queueing delay
//!   and a sojourn-time deadline verdict. All deadline judgments across
//!   the crate go through one rule, [`engine::deadline_met`]
//!   (`latency ≤ target · (1 + 1e-4)`, absorbing V/F-grid rounding);
//!   with [`SchedulerConfig::queue_aware_slack`] the virtual drain also
//!   deducts each sentence's queueing delay from its DVFS budget;
//! * [`server`] — [`Server`]: the channel-based async front-end over
//!   real worker threads. Clients `submit()` from any thread and get
//!   [`ResponseHandle`]s (typed [`WorkerLost`] errors, never panics);
//!   per-task engine shard pools drain bounded admission lanes in EDF
//!   order, measure each job's wall-clock queueing delay, and hand the
//!   engine the *remaining* slack
//!   (`InferenceRequest::with_elapsed_queue_s`) so DVFS stops
//!   stretching compute into budget that queueing already burned.
//!   Lanes are **preemptive** ([`server::PreemptionPolicy`]): workers
//!   step sessions layer by layer and park the running one for a
//!   strictly tighter queued arrival, resuming EDF-ordered; pop-time
//!   queue pressure can also cap a greedy sentence's DVFS stretch
//!   window ([`ServerConfig::pressure_stretch`]). Serving is
//!   **elastic** when opted in ([`server::ElasticConfig`]): idle
//!   shards steal the EDF-tightest parked session from foreign lanes
//!   and autoscale onto pressured lanes as extra shards, with
//!   stolen/migrated/pool-resize counters in [`ServerStats`];
//! * [`telemetry`] — observability for the serving stack, default-off
//!   and bit-identity-neutral: per-request trace spans
//!   ([`TraceEvent`] chains Admitted→Popped→…→Completed into a
//!   bounded overwrite-oldest ring with an honest drop counter),
//!   log-bucketed latency/energy histograms with exact merge/serde
//!   and exact p50/p95/p99 ([`LogHistogram`], surfaced per lane in
//!   [`LaneStats::histograms`](server::LaneStats)), periodic lane
//!   time-series samples of `(pressure, rung, queued, parked,
//!   extra_shards)`, and JSONL/Prometheus exporters
//!   ([`Server::telemetry_snapshot`](server::Server::telemetry_snapshot));
//! * [`pipeline`] — end-to-end task artifacts: train → calibrate →
//!   predictor, at test or paper scale;
//! * [`experiments`] — one driver per table/figure of the paper's
//!   evaluation, each returning structured rows plus a formatted text
//!   rendering (regenerated by `edgebert-bench`'s `repro` binary).
//!
//! # Quickstart
//!
//! Deadlines and accuracy tiers are *request-scoped* (paper §1,
//! Algorithm 2): one engine serves a voice assistant at 50 ms and a
//! translator at 200 ms, picking a DVFS operating point per sentence.
//!
//! ```no_run
//! use edgebert::engine::{DropTarget, InferenceRequest};
//! use edgebert::pipeline::{Scale, TaskArtifacts};
//! use edgebert::serving::TaskRuntime;
//! use edgebert_tasks::Task;
//!
//! let artifacts = TaskArtifacts::build(Task::Sst2, Scale::Test, 42);
//! let runtime = TaskRuntime::from_artifacts(&artifacts);
//! let ex = &artifacts.dev.examples()[0];
//! let response = runtime.serve(
//!     &InferenceRequest::new(ex.tokens.clone())
//!         .with_latency_target(50e-3)
//!         .with_drop_target(DropTarget::OnePercent),
//! );
//! println!(
//!     "exited at layer {} using {:.2} µJ at {:.3} V",
//!     response.result.exit_layer,
//!     response.result.energy_j * 1e6,
//!     response.result.voltage,
//! );
//! ```

pub mod backend;
pub mod calibrate;
pub mod energy;
pub mod engine;
pub mod experiments;
pub mod overload;
pub mod pipeline;
pub mod predictor;
pub mod report;
pub mod scheduler;
pub mod server;
pub mod serving;
pub mod session;
pub mod telemetry;

pub use backend::{
    AcceleratorBackend, BackendSpec, InferenceBackend, MobileGpuBackend, OperatingPoint,
    SegmentCost,
};
pub use calibrate::{calibrate_conventional, calibrate_latency_aware, Calibration};
pub use energy::{EnergyConfig, EnergyEnvelope, FleetCoordinator, LaneAllocation, LaneDemand};
pub use engine::{
    deadline_met, AggregateResult, DropTarget, EdgeBertEngine, EngineBuilder, EntropyThresholds,
    InferenceMode, InferenceRequest, InferenceResponse, SentenceResult,
};
pub use overload::{Degradation, LadderStep, OverloadConfig, OverloadController};
pub use pipeline::{Scale, TaskArtifacts};
pub use predictor::{EntropyPredictor, PredictorLut};
pub use scheduler::{DeadlineScheduler, SchedulePolicy, ScheduledResponse, SchedulerConfig};
pub use server::{
    ElasticConfig, LaneStats, PreemptionPolicy, ResponseHandle, ServeOutcome, Server, ServerConfig,
    ServerResponse, ServerStats, SubmitError, WorkerLost,
};
pub use serving::{MultiTaskRuntime, ServeError, TaskRuntime};
pub use session::{
    InferenceSession, SessionCheckpoint, SessionState, StepOutcome, SESSION_CHECKPOINT_VERSION,
};
pub use telemetry::{
    LaneHistograms, LaneSample, LogHistogram, SpanRecorder, Telemetry, TelemetryConfig,
    TelemetrySnapshot, TraceEvent, TraceEventKind, TraceSink,
};
