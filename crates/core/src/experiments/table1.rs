//! Table 1: learned attention spans of every head.
//!
//! The paper's headline observation: more than half of ALBERT's twelve
//! heads learn a zero span and can be switched off entirely, with
//! negligible accuracy change. We report our model's learned spans next
//! to the paper's, plus the accuracy delta against the dense teacher.

use crate::pipeline::TaskArtifacts;
use crate::report::TextTable;
use serde::{Deserialize, Serialize};

/// One task's row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Task name.
    pub task: String,
    /// Learned span per head (this reproduction).
    pub spans: Vec<f32>,
    /// Mean learned span.
    pub avg_span: f32,
    /// Heads fully off.
    pub heads_off: usize,
    /// Accuracy delta (student − teacher), percentage points.
    pub acc_diff_pp: f32,
    /// The paper's spans for reference.
    pub paper_spans: Vec<f32>,
    /// The paper's average span.
    pub paper_avg_span: f32,
}

/// The full table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// One row per task.
    pub rows: Vec<Table1Row>,
}

/// Builds the row for one task from its artifacts.
pub fn run_task(art: &TaskArtifacts) -> Table1Row {
    let spans = art.summary.head_spans.clone();
    Table1Row {
        task: art.task.to_string(),
        avg_span: art.summary.avg_span,
        heads_off: art.summary.heads_off,
        acc_diff_pp: (art.summary.student_accuracy - art.summary.teacher_accuracy) * 100.0,
        spans,
        paper_spans: art.task.paper_head_spans().to_vec(),
        paper_avg_span: art.task.paper_avg_attention_span(),
    }
}

/// Assembles the table from per-task artifacts.
pub fn run(artifacts: &[TaskArtifacts]) -> Table1 {
    Table1 {
        rows: artifacts.iter().map(run_task).collect(),
    }
}

/// Renders the table.
pub fn render(t: &Table1) -> String {
    let mut out =
        String::from("Table 1: learned attention span per head (reproduction vs paper)\n");
    let mut table = TextTable::new(&[
        "Task",
        "Spans (ours)",
        "Avg",
        "Heads off",
        "Acc diff (pp)",
        "Paper avg",
    ]);
    for r in &t.rows {
        let spans = r
            .spans
            .iter()
            .map(|s| format!("{s:.0}"))
            .collect::<Vec<_>>()
            .join(",");
        table.row_owned(vec![
            r.task.clone(),
            spans,
            format!("{:.1}", r.avg_span),
            format!("{}/{}", r.heads_off, r.spans.len()),
            format!("{:+.2}", r.acc_diff_pp),
            format!("{:.1}", r.paper_avg_span),
        ]);
    }
    out.push_str(&table.render());
    out
}
