//! Table 4: performance specs of the DVFS components (LDO and ADPLL).

use crate::report::TextTable;
use edgebert_hw::adpll::Adpll;
use edgebert_hw::ldo::LdoSpec;
use serde::{Deserialize, Serialize};

/// The spec rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4 {
    /// LDO slew, ns per 50 mV.
    pub ldo_response_ns_per_50mv: f64,
    /// LDO peak current efficiency (fraction).
    pub ldo_peak_current_efficiency: f64,
    /// LDO maximum load, mA.
    pub ldo_max_load_ma: f64,
    /// ADPLL power at 1 GHz, mW.
    pub adpll_power_mw_at_1ghz: f64,
}

/// Reads the specs from the component models.
pub fn run() -> Table4 {
    let ldo = LdoSpec::default();
    let pll = Adpll::new(1.0e9);
    Table4 {
        ldo_response_ns_per_50mv: ldo.response_ns_per_50mv,
        ldo_peak_current_efficiency: ldo.peak_current_efficiency,
        ldo_max_load_ma: ldo.max_load_ma,
        adpll_power_mw_at_1ghz: pll.power_mw(),
    }
}

/// Renders the table.
pub fn render(t: &Table4) -> String {
    let mut out = String::from("Table 4: LDO and ADPLL performance specs\n");
    let mut table = TextTable::new(&["Spec", "Value"]);
    table.row_owned(vec![
        "LDO response time".into(),
        format!("{:.1} ns / 50 mV", t.ldo_response_ns_per_50mv),
    ]);
    table.row_owned(vec![
        "LDO peak current efficiency".into(),
        format!("{:.1} % @ Iload,max", t.ldo_peak_current_efficiency * 100.0),
    ]);
    table.row_owned(vec![
        "LDO Iload,max".into(),
        format!("{:.0} mA", t.ldo_max_load_ma),
    ]);
    table.row_owned(vec![
        "ADPLL power".into(),
        format!("{:.2} mW @ 1 GHz", t.adpll_power_mw_at_1ghz),
    ]);
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_values() {
        let t = run();
        assert_eq!(t.ldo_response_ns_per_50mv, 3.8);
        assert_eq!(t.ldo_peak_current_efficiency, 0.992);
        assert_eq!(t.ldo_max_load_ma, 200.0);
        assert!((t.adpll_power_mw_at_1ghz - 2.46).abs() < 1e-9);
        let text = render(&t);
        assert!(text.contains("3.8 ns"));
        assert!(text.contains("2.46 mW"));
    }
}
