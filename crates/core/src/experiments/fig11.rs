//! Fig. 11: the cost of making the embeddings available after power-on —
//! ReRAM-resident (EdgeBERT) vs DRAM reload + SRAM staging
//! (conventional).

use crate::report::{energy, time, TextTable};
use edgebert_hw::memory::{sentence_embedding_bits, BootComparison};
use serde::{Deserialize, Serialize};

/// The comparison result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig11 {
    /// Embedding table size, MB (the paper's compact 1.73 MB baseline).
    pub table_mb: f64,
    /// EdgeBERT latency, seconds.
    pub edgebert_latency_s: f64,
    /// EdgeBERT energy, joules.
    pub edgebert_energy_j: f64,
    /// Conventional latency, seconds.
    pub conventional_latency_s: f64,
    /// Conventional energy, joules.
    pub conventional_energy_j: f64,
    /// Latency advantage (conventional / EdgeBERT).
    pub latency_advantage: f64,
    /// Energy advantage.
    pub energy_advantage: f64,
}

/// Runs the comparison with the paper's storage configuration.
pub fn run() -> Fig11 {
    let table_mb = 1.73;
    let bits = sentence_embedding_bits(128, 128, 0.4);
    let cmp = BootComparison::standard(table_mb, bits);
    Fig11 {
        table_mb,
        edgebert_latency_s: cmp.edgebert.latency_s,
        edgebert_energy_j: cmp.edgebert.energy_j,
        conventional_latency_s: cmp.conventional.latency_s,
        conventional_energy_j: cmp.conventional.energy_j,
        latency_advantage: cmp.latency_advantage(),
        energy_advantage: cmp.energy_advantage(),
    }
}

/// Renders the comparison.
pub fn render(f: &Fig11) -> String {
    let mut out = format!(
        "Fig. 11: embedding availability after power-on ({:.2} MB table)\n",
        f.table_mb
    );
    let mut t = TextTable::new(&["Path", "Latency", "Energy"]);
    t.row_owned(vec![
        "EdgeBERT (ReRAM-resident)".into(),
        time(f.edgebert_latency_s),
        energy(f.edgebert_energy_j),
    ]);
    t.row_owned(vec![
        "Conventional (DRAM→SRAM)".into(),
        time(f.conventional_latency_s),
        energy(f.conventional_energy_j),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "advantage: ~{:.0}x latency, ~{:.0}x energy\n",
        f.latency_advantage, f.energy_advantage
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advantages_are_in_paper_regime() {
        let f = run();
        // Paper: ~50x latency, ~66,000x energy. Shape check: both large,
        // energy advantage orders of magnitude beyond latency advantage.
        assert!(f.latency_advantage > 30.0, "{}", f.latency_advantage);
        assert!(f.energy_advantage > 5_000.0, "{}", f.energy_advantage);
        assert!(f.energy_advantage > f.latency_advantage * 50.0);
        let text = render(&f);
        assert!(text.contains("EdgeBERT"));
        assert!(text.contains("Conventional"));
    }
}
