//! Table 2: fault-injection study of eNVM embedding storage.
//!
//! For each cell technology the campaign (a) encodes the model's pruned,
//! FP8-quantized embedding table into the bitmask+payload layout, (b)
//! injects cell faults into the stored image over many Monte-Carlo
//! trials, (c) decodes and swaps the faulted table into the model, and
//! (d) measures end-task accuracy. Mean and worst-case accuracies per
//! technology reproduce the paper's finding: SLC/MLC2 are safe, MLC3 is
//! not — so the accelerator stores payloads in MLC2 and the bitmask in
//! SLC.

use crate::pipeline::TaskArtifacts;
use crate::report::TextTable;
use edgebert_envm::{CampaignResult, CellTech, FaultInjector, StoredEmbedding};
use edgebert_tensor::Rng;
use serde::{Deserialize, Serialize};

/// One (task, technology) campaign outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Cell {
    /// Task name.
    pub task: String,
    /// Cell technology.
    pub tech: String,
    /// Mean accuracy over trials (percent).
    pub mean_acc: f32,
    /// Worst-case accuracy (percent).
    pub min_acc: f32,
    /// Mean faulted cells per trial.
    pub mean_faults: f32,
}

/// The full study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// Campaign outcomes (4 tasks x 3 technologies).
    pub cells: Vec<Table2Cell>,
    /// Area density rows (mm²/MB), Table 2 bottom.
    pub area_density: Vec<(String, f64)>,
    /// Read latency rows (ns).
    pub read_latency: Vec<(String, f64)>,
}

/// Runs the campaign for one task across all three technologies.
///
/// `eval_size` caps how many dev sentences each trial is scored on (the
/// full dev set when larger). Trials whose stored image is bit-identical
/// to the pristine one (common for SLC/MLC2, whose fault rates are
/// minuscule) reuse the pristine accuracy instead of re-running the
/// model.
pub fn run_task(
    art: &TaskArtifacts,
    trials: usize,
    eval_size: usize,
    seed: u64,
) -> Vec<Table2Cell> {
    let mut rng = Rng::seed_from(seed);
    let pristine = StoredEmbedding::encode(&art.model.embedding.table.value, 4);
    let eval_set = edgebert_tasks::Dataset::new(
        art.task,
        art.dev.examples()[..eval_size.min(art.dev.len())].to_vec(),
    );
    let mut baseline_model = edgebert_model::AlbertModel::clone(&art.model);
    baseline_model.embedding.set_table(pristine.decode());
    let pristine_acc = baseline_model.evaluate_accuracy(&eval_set) * 100.0;

    let mut out = Vec::new();
    for tech in CellTech::all() {
        let injector = FaultInjector::new(tech);
        let mut eval_model = edgebert_model::AlbertModel::clone(&art.model);
        let result = CampaignResult::run(&pristine, &injector, trials, &mut rng, |stored| {
            if stored.payload_bytes() == pristine.payload_bytes()
                && stored.mask_bytes() == pristine.mask_bytes()
            {
                return pristine_acc;
            }
            eval_model.embedding.set_table(stored.decode());
            eval_model.evaluate_accuracy(&eval_set) * 100.0
        });
        out.push(Table2Cell {
            task: art.task.to_string(),
            tech: tech.to_string(),
            mean_acc: result.mean,
            min_acc: result.min,
            mean_faults: result.mean_faults,
        });
    }
    out
}

/// Runs the full study.
pub fn run(artifacts: &[TaskArtifacts], trials: usize, eval_size: usize, seed: u64) -> Table2 {
    let mut cells = Vec::new();
    for (i, art) in artifacts.iter().enumerate() {
        cells.extend(run_task(art, trials, eval_size, seed + i as u64));
    }
    Table2 {
        cells,
        area_density: CellTech::all()
            .iter()
            .map(|t| (t.to_string(), t.area_mm2_per_mb()))
            .collect(),
        read_latency: CellTech::all()
            .iter()
            .map(|t| (t.to_string(), t.read_latency_ns()))
            .collect(),
    }
}

/// Renders the table.
pub fn render(t: &Table2) -> String {
    let mut out = String::from("Table 2: fault injection on eNVM embedding storage (accuracy %)\n");
    let mut table = TextTable::new(&["Task", "Tech", "Mean", "Min", "Faults/trial"]);
    for c in &t.cells {
        table.row_owned(vec![
            c.task.clone(),
            c.tech.clone(),
            format!("{:.2}", c.mean_acc),
            format!("{:.2}", c.min_acc),
            format!("{:.1}", c.mean_faults),
        ]);
    }
    out.push_str(&table.render());
    out.push('\n');
    let mut chars = TextTable::new(&["Tech", "Area (mm²/MB)", "Read latency (ns)"]);
    for ((tech, area), (_, lat)) in t.area_density.iter().zip(t.read_latency.iter()) {
        chars.row_owned(vec![
            tech.clone(),
            format!("{area:.2}"),
            format!("{lat:.2}"),
        ]);
    }
    out.push_str(&chars.render());
    out
}
