//! Table 3: synergy of the optimizations — sparsity, spans, and the
//! entropy-threshold / exit-layer trade-off for conventional EE vs
//! latency-aware inference at 1/2/5 % accuracy-drop targets.

use crate::pipeline::TaskArtifacts;
use crate::report::TextTable;
use serde::{Deserialize, Serialize};

/// One (task, accuracy-drop) row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Task name.
    pub task: String,
    /// Embedding sparsity achieved (percent).
    pub embedding_sparsity_pct: f32,
    /// Encoder sparsity achieved (percent).
    pub encoder_sparsity_pct: f32,
    /// Mean learned attention span.
    pub avg_span: f32,
    /// Accuracy-drop target (percentage points).
    pub drop_pct: f32,
    /// Conventional EE: calibrated entropy threshold.
    pub conv_threshold: f32,
    /// Conventional EE: average exit layer.
    pub conv_avg_exit: f32,
    /// LAI: calibrated entropy threshold.
    pub lai_threshold: f32,
    /// LAI: average predicted exit layer.
    pub lai_avg_predicted: f32,
    /// LAI: average actual exit layer.
    pub lai_avg_actual: f32,
}

/// The full table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3 {
    /// Rows (4 tasks x 3 drop targets).
    pub rows: Vec<Table3Row>,
}

/// Builds the three rows for one task.
pub fn run_task(art: &TaskArtifacts) -> Vec<Table3Row> {
    let drops = [1.0f32, 2.0, 5.0];
    (0..3)
        .map(|i| Table3Row {
            task: art.task.to_string(),
            embedding_sparsity_pct: art.summary.embedding_sparsity * 100.0,
            encoder_sparsity_pct: art.summary.encoder_sparsity * 100.0,
            avg_span: art.summary.avg_span,
            drop_pct: drops[i],
            conv_threshold: art.calib_conv[i].entropy_threshold,
            conv_avg_exit: art.calib_conv[i].avg_exit_layer,
            lai_threshold: art.calib_lai[i].entropy_threshold,
            lai_avg_predicted: art.calib_lai[i].avg_predicted_layer,
            lai_avg_actual: art.calib_lai[i].avg_exit_layer,
        })
        .collect()
}

/// Assembles the table from per-task artifacts.
pub fn run(artifacts: &[TaskArtifacts]) -> Table3 {
    Table3 {
        rows: artifacts.iter().flat_map(run_task).collect(),
    }
}

/// Renders the table.
pub fn render(t: &Table3) -> String {
    let mut out = String::from(
        "Table 3: optimization synergy — conventional EE vs EdgeBERT latency-aware inference\n",
    );
    let mut table = TextTable::new(&[
        "Task",
        "Emb spars %",
        "Enc spars %",
        "Avg span",
        "Drop %",
        "EE: E_T",
        "EE: avg exit",
        "LAI: E_T",
        "LAI: predicted",
        "LAI: actual",
    ]);
    for r in &t.rows {
        table.row_owned(vec![
            r.task.clone(),
            format!("{:.0}", r.embedding_sparsity_pct),
            format!("{:.0}", r.encoder_sparsity_pct),
            format!("{:.1}", r.avg_span),
            format!("{:.0}", r.drop_pct),
            format!("{:.3}", r.conv_threshold),
            format!("{:.2}", r.conv_avg_exit),
            format!("{:.3}", r.lai_threshold),
            format!("{:.2}", r.lai_avg_predicted),
            format!("{:.2}", r.lai_avg_actual),
        ]);
    }
    out.push_str(&table.render());
    out
}
