//! Fig. 10: latency/energy breakdown across the PU and SFU datapaths, and
//! the area/power breakdown of the energy-optimal accelerator.

use crate::report::TextTable;
use edgebert_hw::ops::OpKind;
use edgebert_hw::report::AreaPowerReport;
use edgebert_hw::{AcceleratorConfig, AcceleratorSim, WorkloadParams};
use serde::{Deserialize, Serialize};

/// One datapath's share of latency and energy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakdownRow {
    /// Datapath label (Fig. 10a naming).
    pub name: String,
    /// Fraction of total cycles.
    pub latency_frac: f64,
    /// Fraction of total datapath energy.
    pub energy_frac: f64,
}

/// The full figure: datapath breakdown + block area/power.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10 {
    /// Fig. 10a rows.
    pub breakdown: Vec<BreakdownRow>,
    /// Fig. 10b rows: `(block, area mm², power mW)`.
    pub blocks: Vec<(String, f64, f64)>,
    /// Total area, mm².
    pub total_area_mm2: f64,
    /// Total power, mW.
    pub total_power_mw: f64,
}

/// Runs the breakdown at the energy-optimal design point.
pub fn run() -> Fig10 {
    let cfg = AcceleratorConfig::energy_optimal();
    let sim = AcceleratorSim::new(cfg);
    let wl = sim.layer_workload(&WorkloadParams::albert_base());
    let cost = sim.run_layers_nominal(&wl, 12);
    let breakdown = OpKind::all()
        .iter()
        .map(|&k| BreakdownRow {
            name: k.label().to_string(),
            latency_frac: cost.latency_fraction(k),
            energy_frac: cost.energy_fraction(k),
        })
        .collect();
    let report = AreaPowerReport::at_config(&cfg);
    Fig10 {
        breakdown,
        blocks: report
            .blocks()
            .iter()
            .map(|b| (b.name.clone(), b.area_mm2, b.power_mw))
            .collect(),
        total_area_mm2: report.total_area_mm2(),
        total_power_mw: report.total_power_mw(),
    }
}

/// Renders both panels.
pub fn render(f: &Fig10) -> String {
    let mut out = String::from("Fig. 10a: latency and energy breakdown (n = 16, 12 layers)\n");
    let mut t = TextTable::new(&["Datapath", "Latency %", "Energy %"]);
    for r in &f.breakdown {
        t.row_owned(vec![
            r.name.clone(),
            format!("{:.2}", r.latency_frac * 100.0),
            format!("{:.3}", r.energy_frac * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out.push_str("Fig. 10b: area and power breakdown @ 0.8 V / 1 GHz\n");
    let mut b = TextTable::new(&["Block", "Area (mm²)", "Power (mW)"]);
    for (name, area, power) in &f.blocks {
        b.row_owned(vec![
            name.clone(),
            format!("{area:.2}"),
            format!("{power:.2}"),
        ]);
    }
    b.row_owned(vec![
        "Total".into(),
        format!("{:.2}", f.total_area_mm2),
        format!("{:.1}", f.total_power_mw),
    ]);
    out.push_str(&b.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_matches_paper_shape() {
        let f = run();
        let mac = f
            .breakdown
            .iter()
            .find(|r| r.name == "MACs")
            .expect("MAC row present");
        // Fig. 10a: MACs 90.7% latency, 98.8% energy.
        assert!(
            (0.85..0.95).contains(&mac.latency_frac),
            "{}",
            mac.latency_frac
        );
        assert!(mac.energy_frac > 0.93, "{}", mac.energy_frac);
        // Fig. 10b totals.
        assert!((f.total_area_mm2 - 1.39).abs() < 0.01);
        assert!((f.total_power_mw - 85.9).abs() < 0.1);
        // Render mentions every block.
        let text = render(&f);
        for (name, _, _) in &f.blocks {
            assert!(text.contains(name.as_str()));
        }
    }
}
