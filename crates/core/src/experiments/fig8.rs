//! Fig. 8: design-space exploration — per-sentence latency and energy as
//! the PU MAC vector size scales, against the TX2 mobile GPU.
//!
//! Three accelerator variants per point: unoptimized (Base), with
//! adaptive attention span predication (+AAS), and with AAS plus
//! compressed sparse execution (+AAS+Sparse). Full 12-layer inference at
//! nominal V/F, as in the paper's figure.

use crate::backend::MobileGpuBackend;
use crate::pipeline::TaskArtifacts;
use crate::report::{energy, time, TextTable};
use edgebert_hw::{AcceleratorConfig, AcceleratorSim, MobileGpu, WorkloadParams};
use serde::{Deserialize, Serialize};

/// One (task, n, variant) point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Point {
    /// Task name.
    pub task: String,
    /// MAC vector size.
    pub n: usize,
    /// Variant label: "base", "aas", or "aas+sparse".
    pub variant: String,
    /// Per-sentence latency, seconds.
    pub latency_s: f64,
    /// Per-sentence energy, joules.
    pub energy_j: f64,
}

/// The sweep plus the mGPU reference points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8 {
    /// Accelerator sweep points.
    pub points: Vec<Fig8Point>,
    /// Per-task `(task, latency_s, energy_j)` of the mGPU without AAS.
    pub mgpu_base: Vec<(String, f64, f64)>,
    /// Per-task mGPU with AAS applied.
    pub mgpu_aas: Vec<(String, f64, f64)>,
}

/// The MAC vector sizes of the paper's sweep.
pub const MAC_SIZES: [usize; 5] = [2, 4, 8, 16, 32];

fn task_workloads(art: &TaskArtifacts) -> [(&'static str, WorkloadParams); 3] {
    let base = art.hardware_workload(false);
    let mut aas = art.hardware_workload(true);
    aas.sparse_enabled = false; // AAS only
    let full = art.hardware_workload(true);
    [("base", base), ("aas", aas), ("aas+sparse", full)]
}

/// Runs the sweep for a set of tasks.
///
/// The mGPU reference rows go through
/// [`MobileGpuBackend::from_workload`] on the *same* workload shapes the
/// accelerator sweep costs (the AAS FLOP-scale factor is derived from
/// the workload, not asserted separately), so the baseline cannot
/// silently price a different model than the accelerator it is compared
/// against.
pub fn run(artifacts: &[TaskArtifacts]) -> Fig8 {
    let mut points = Vec::new();
    let mut mgpu_base = Vec::new();
    let mut mgpu_aas = Vec::new();
    let gpu = MobileGpu::default();
    for art in artifacts {
        for n in MAC_SIZES {
            let cfg = AcceleratorConfig::with_mac_vector_size(n);
            let sim = AcceleratorSim::new(cfg);
            for (label, wl) in task_workloads(art) {
                let layer = sim.layer_workload(&wl);
                let cost = sim.run_layers_nominal(&layer, 12);
                points.push(Fig8Point {
                    task: art.task.to_string(),
                    n,
                    variant: label.to_string(),
                    latency_s: cost.seconds,
                    energy_j: cost.energy_j,
                });
            }
        }
        let base = MobileGpuBackend::from_workload(gpu, &art.hardware_workload(false));
        let full = base.full_inference(12);
        mgpu_base.push((art.task.to_string(), full.seconds, full.energy_j));
        let aas = MobileGpuBackend::from_workload(gpu, &art.hardware_workload(true));
        let full = aas.full_inference(12);
        mgpu_aas.push((art.task.to_string(), full.seconds, full.energy_j));
    }
    Fig8 {
        points,
        mgpu_base,
        mgpu_aas,
    }
}

/// The energy-optimal MAC size for a task under the full optimizations.
pub fn energy_optimal_n(f: &Fig8, task: &str) -> usize {
    f.points
        .iter()
        .filter(|p| p.task == task && p.variant == "aas+sparse")
        .min_by(|a, b| a.energy_j.total_cmp(&b.energy_j))
        .map(|p| p.n)
        .unwrap_or(16)
}

/// Renders the sweep.
pub fn render(f: &Fig8) -> String {
    let mut out = String::from(
        "Fig. 8: latency & energy per sentence vs MAC vector size (full 12-layer inference)\n",
    );
    let mut table = TextTable::new(&["Task", "n", "Variant", "Latency", "Energy"]);
    for p in &f.points {
        table.row_owned(vec![
            p.task.clone(),
            p.n.to_string(),
            p.variant.clone(),
            time(p.latency_s),
            energy(p.energy_j),
        ]);
    }
    out.push_str(&table.render());
    out.push('\n');
    let mut gpu = TextTable::new(&[
        "Task",
        "mGPU latency",
        "mGPU energy",
        "+AAS latency",
        "+AAS energy",
    ]);
    for ((task, lat, en), (_, lat_a, en_a)) in f.mgpu_base.iter().zip(f.mgpu_aas.iter()) {
        gpu.row_owned(vec![
            task.clone(),
            time(*lat),
            energy(*en),
            time(*lat_a),
            energy(*en_a),
        ]);
    }
    out.push_str(&gpu.render());
    for (task, _, _) in &f.mgpu_base {
        out.push_str(&format!(
            "energy-optimal n for {task}: {}\n",
            energy_optimal_n(f, task)
        ));
    }
    out
}
