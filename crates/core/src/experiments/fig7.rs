//! Fig. 7: the LDO-driven supply-voltage waveform across consecutive
//! sentence inferences.
//!
//! Each sentence starts at nominal 0.8 V for encoder layer 1; after the
//! EE predictor forecasts the exit layer, the LDO drops to the
//! energy-optimal voltage for the remaining layers; between sentences the
//! rail returns to nominal, and during idle the system rests at the
//! 0.5 V standby level.

use crate::engine::EdgeBertEngine;
use crate::pipeline::TaskArtifacts;
use edgebert_hw::Ldo;
use serde::{Deserialize, Serialize};

/// Annotation for one sentence in the trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SentenceAnnotation {
    /// Sentence index.
    pub index: usize,
    /// Predictor forecast layer.
    pub predicted_layer: usize,
    /// Actual exit layer.
    pub exit_layer: usize,
    /// Post-decision supply voltage.
    pub voltage: f32,
    /// Execution time, seconds.
    pub execution_s: f64,
    /// Whether the latency target was met.
    pub deadline_met: bool,
}

/// The waveform and its annotations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7 {
    /// `(time_ms, voltage)` samples.
    pub waveform: Vec<(f64, f32)>,
    /// Per-sentence annotations.
    pub sentences: Vec<SentenceAnnotation>,
    /// The latency target, seconds.
    pub target_s: f64,
}

/// Simulates `n_sentences` consecutive LAI inferences and records the
/// supply waveform.
///
/// # Panics
///
/// This experiment traces the accelerator's LDO rail, so it requires
/// an engine built on the accelerator backend (the default); it panics
/// on an engine whose [`EdgeBertEngine::accelerator_sim`] is `None`
/// (e.g. the mGPU baseline, which has no scaling rail to trace).
pub fn run(art: &TaskArtifacts, engine: &EdgeBertEngine, n_sentences: usize) -> Fig7 {
    let cfg = *engine
        .accelerator_sim()
        .expect("Fig. 7 traces the accelerator backend's LDO rail")
        .config();
    let mut ldo = Ldo::new(cfg.vdd_standby);
    let mut t_ms = 0.0f64;
    let mut waveform = vec![(0.0, cfg.vdd_standby)];
    let mut sentences = Vec::new();

    let push_transition =
        |ldo: &mut Ldo, t_ms: &mut f64, target: f32, waveform: &mut Vec<(f64, f32)>| {
            let trace = ldo.transition(target);
            for p in &trace {
                waveform.push((*t_ms + p.t_ns * 1e-6, p.voltage));
            }
            *t_ms += trace.last().map_or(0.0, |p| p.t_ns) * 1e-6;
        };

    for (i, ex) in art.dev.iter().take(n_sentences).enumerate() {
        // Wake to nominal for layer 1.
        push_transition(&mut ldo, &mut t_ms, cfg.vdd_nominal, &mut waveform);
        let r = engine.run_latency_aware(&ex.tokens);
        // Layer 1 runs at nominal.
        let layer1_ms = engine.layer_cycles() as f64 / cfg.freq_max_hz * 1e3;
        t_ms += layer1_ms;
        waveform.push((t_ms, cfg.vdd_nominal));
        // DVFS decision: drop to the scaled voltage for remaining layers.
        if r.exit_layer > 1 {
            push_transition(&mut ldo, &mut t_ms, r.voltage, &mut waveform);
            let rest_ms =
                (r.exit_layer as f64 - 1.0) * engine.layer_cycles() as f64 / r.freq_hz * 1e3;
            t_ms += rest_ms;
            waveform.push((t_ms, r.voltage));
        }
        sentences.push(SentenceAnnotation {
            index: i,
            predicted_layer: r.predicted_layer.unwrap_or(r.exit_layer),
            exit_layer: r.exit_layer,
            voltage: r.voltage,
            execution_s: r.latency_s,
            deadline_met: r.deadline_met,
        });
        // Idle until the next sentence period at standby.
        push_transition(&mut ldo, &mut t_ms, cfg.vdd_standby, &mut waveform);
        let period_ms = engine.default_latency_target_s() * 1e3;
        let slack = (i as f64 + 1.0) * period_ms - t_ms;
        if slack > 0.0 {
            t_ms += slack;
            waveform.push((t_ms, cfg.vdd_standby));
        }
    }
    Fig7 {
        waveform,
        sentences,
        target_s: engine.default_latency_target_s(),
    }
}

/// Renders the annotations plus a coarse ASCII waveform.
pub fn render(f: &Fig7) -> String {
    let mut out = format!(
        "Fig. 7: LDO supply waveform across {} sentences (target {:.0} ms)\n",
        f.sentences.len(),
        f.target_s * 1e3
    );
    for s in &f.sentences {
        out.push_str(&format!(
            "  sentence {}: predicted layer {}, exited at {}, V={:.3} V, T_exec={:.1} ms, {}\n",
            s.index + 1,
            s.predicted_layer,
            s.exit_layer,
            s.voltage,
            s.execution_s * 1e3,
            if s.deadline_met {
                "deadline met"
            } else {
                "DEADLINE MISS"
            },
        ));
    }
    // Sample the waveform at 40 columns for a quick visual.
    if let Some(&(t_end, _)) = f.waveform.last() {
        out.push_str("  waveform (V vs time): ");
        for col in 0..40 {
            let t = t_end * col as f64 / 39.0;
            let v = f
                .waveform
                .iter()
                .take_while(|(tt, _)| *tt <= t)
                .last()
                .map_or(0.5, |(_, v)| *v);
            let c = if v >= 0.775 {
                '#'
            } else if v >= 0.65 {
                '+'
            } else if v >= 0.55 {
                '-'
            } else {
                '.'
            };
            out.push(c);
        }
        out.push('\n');
    }
    out
}
