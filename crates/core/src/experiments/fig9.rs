//! Fig. 9: DVFS-driven latency-aware inference — average supply voltage,
//! clock frequency, and per-sentence energy at 50/75/100 ms targets,
//! against the Base and conventional-EE baselines.

use crate::engine::{DropTarget, InferenceMode};
use crate::pipeline::TaskArtifacts;
use crate::report::{energy, TextTable};
use serde::{Deserialize, Serialize};

/// One (task, target, scheme) bar.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Bar {
    /// Task name.
    pub task: String,
    /// Latency target, seconds (0 for the unbounded baselines).
    pub target_s: f64,
    /// Scheme label: "base", "ee", "lai", "lai+aas+sparse".
    pub scheme: String,
    /// Mean per-sentence energy, joules.
    pub energy_j: f64,
    /// Mean post-decision supply voltage, volts.
    pub avg_voltage: f32,
    /// Mean post-decision clock frequency, Hz.
    pub avg_freq_hz: f64,
    /// Accuracy at this operating point.
    pub accuracy: f32,
    /// Deadline miss rate.
    pub miss_rate: f32,
}

/// The full figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9 {
    /// All bars.
    pub bars: Vec<Fig9Bar>,
}

/// Latency targets of the paper's figure.
pub const TARGETS_S: [f64; 3] = [50e-3, 75e-3, 100e-3];

/// Runs the study for a set of tasks at the 1 %-drop calibration.
pub fn run(artifacts: &[TaskArtifacts]) -> Fig9 {
    let mut bars = Vec::new();
    for art in artifacts {
        // Unbounded baselines on the unoptimized workload.
        let eng = art.engine_at(TARGETS_S[2], DropTarget::OnePercent, false);
        for (label, mode) in [
            ("base", InferenceMode::Base),
            ("ee", InferenceMode::ConventionalEe),
        ] {
            let agg = eng.evaluate(&art.dev, mode);
            bars.push(Fig9Bar {
                task: art.task.to_string(),
                target_s: 0.0,
                scheme: label.to_string(),
                energy_j: agg.avg_energy_j,
                avg_voltage: agg.avg_voltage,
                avg_freq_hz: agg.avg_freq_hz,
                accuracy: agg.accuracy,
                miss_rate: agg.deadline_miss_rate,
            });
        }
        // Latency-aware inference at each target, with and without the
        // AAS + sparse hardware optimizations.
        for &target in &TARGETS_S {
            for (label, optimized) in [("lai", false), ("lai+aas+sparse", true)] {
                let eng = art.engine_at(target, DropTarget::OnePercent, optimized);
                let agg = eng.evaluate(&art.dev, InferenceMode::LatencyAware);
                bars.push(Fig9Bar {
                    task: art.task.to_string(),
                    target_s: target,
                    scheme: label.to_string(),
                    energy_j: agg.avg_energy_j,
                    avg_voltage: agg.avg_voltage,
                    avg_freq_hz: agg.avg_freq_hz,
                    accuracy: agg.accuracy,
                    miss_rate: agg.deadline_miss_rate,
                });
            }
        }
    }
    Fig9 { bars }
}

/// Energy-savings ratio of the best LAI bar against a baseline scheme.
pub fn savings_vs(f: &Fig9, task: &str, baseline: &str) -> f64 {
    let base = f
        .bars
        .iter()
        .find(|b| b.task == task && b.scheme == baseline)
        .map(|b| b.energy_j)
        .unwrap_or(f64::NAN);
    let best = f
        .bars
        .iter()
        .filter(|b| b.task == task && b.scheme == "lai+aas+sparse")
        .map(|b| b.energy_j)
        .fold(f64::INFINITY, f64::min);
    base / best
}

/// Renders the figure data.
pub fn render(f: &Fig9) -> String {
    let mut out =
        String::from("Fig. 9: latency-aware inference — V/F scaling and per-sentence energy\n");
    let mut table = TextTable::new(&[
        "Task",
        "Scheme",
        "Target",
        "Avg V",
        "Avg F (MHz)",
        "Energy",
        "Acc",
        "Miss",
    ]);
    for b in &f.bars {
        table.row_owned(vec![
            b.task.clone(),
            b.scheme.clone(),
            if b.target_s == 0.0 {
                "-".into()
            } else {
                format!("{:.0} ms", b.target_s * 1e3)
            },
            format!("{:.3}", b.avg_voltage),
            format!("{:.0}", b.avg_freq_hz / 1e6),
            energy(b.energy_j),
            format!("{:.2}", b.accuracy),
            format!("{:.2}", b.miss_rate),
        ]);
    }
    out.push_str(&table.render());
    let tasks: Vec<String> = {
        let mut t: Vec<String> = f.bars.iter().map(|b| b.task.clone()).collect();
        t.dedup();
        t
    };
    for task in tasks {
        out.push_str(&format!(
            "{task}: best LAI saves {:.1}x vs Base, {:.1}x vs EE\n",
            savings_vs(f, &task, "base"),
            savings_vs(f, &task, "ee"),
        ));
    }
    out
}
