//! Experiment drivers: one module per table/figure of the paper's
//! evaluation section.
//!
//! | Module | Reproduces | Paper reference |
//! |---|---|---|
//! | [`table1`] | learned attention spans per head | Table 1 |
//! | [`table2`] | eNVM fault-injection accuracy | Table 2 |
//! | [`table3`] | synergy of optimizations + exit layers | Table 3 |
//! | [`table4`] | LDO/ADPLL component specs | Table 4 |
//! | [`fig7`]   | DVFS voltage waveform across sentences | Fig. 7 |
//! | [`fig8`]   | latency/energy vs MAC vector size | Fig. 8 |
//! | [`fig9`]   | latency-aware inference energy | Fig. 9 |
//! | [`fig10`]  | latency/energy/area/power breakdowns | Fig. 10 |
//! | [`fig11`]  | embedding power-on cost | Fig. 11 |
//!
//! Every driver returns structured rows plus a `render()`ed text table so
//! the `repro` binary can regenerate the complete evaluation.

pub mod fig10;
pub mod fig11;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
