//! Slack-aware batch scheduling over the multi-task runtime.
//!
//! `serve_batch` fans requests out in arrival order, which lets a
//! tight-deadline sentence (a 20 ms voice-assistant query) queue behind
//! a run of relaxed ones (200 ms translation traffic) — classic
//! head-of-line blocking. [`DeadlineScheduler`] fixes that with the two
//! levers from the edge batching literature (Zhang et al., *Edge
//! Intelligence Optimization for LLM Inference with Batching and
//! Quantization*):
//!
//! * **Earliest-deadline-first ordering** — every submission carries an
//!   arrival timestamp; its absolute deadline is `arrival + latency
//!   target` (after default resolution against the task engine). The
//!   queue drains least-slack-first, so tight traffic overtakes relaxed
//!   traffic instead of waiting behind it.
//! * **Same-task batch packing** — the maximal same-task run at the
//!   head of the policy-ordered queue is packed into one batched engine
//!   pass of up to [`SchedulerConfig::max_batch`] sentences, so
//!   batching amortizes task switches without ever reordering across
//!   deadlines. Switching a worker to another task can be charged
//!   [`SchedulerConfig::task_switch_s`] (the paper's §4 deployment
//!   keeps per-task encoder weights that must be re-fetched; embeddings
//!   are shared in eNVM), which EDF naturally amortizes: same-class
//!   traffic tends to share both task and deadline tier, so it forms
//!   long runs.
//!
//! The engines themselves are `Send + 'static` — one per served task,
//! each the engine its [`TaskRuntime`](crate::serving::TaskRuntime)
//! minted from its builder — and the model/hardware computation of a
//! drain fans out across worker threads. Per-request *results* are bit-identical to an unscheduled
//! [`serve`](crate::serving::MultiTaskRuntime::serve) call: scheduling
//! changes *when* a sentence runs, never *what* it computes. On top of
//! the engine's modeled compute latency the scheduler keeps a
//! deterministic virtual timeline — [`SchedulerConfig::workers`]
//! accelerator lanes, each advancing by the modeled per-sentence
//! latencies — so every response reports queueing delay, sojourn time,
//! and a deadline verdict judged on the *sojourn* (wait + compute)
//! against the request's target with the one
//! [`deadline_met`](crate::engine::deadline_met) rule.

use crate::energy::{allocate, EnergyConfig, LaneDemand};
use crate::engine::{deadline_met, EdgeBertEngine, InferenceRequest, InferenceResponse};
use crate::overload::{pressure, Degradation, OverloadConfig, OverloadController};
use crate::serving::MultiTaskRuntime;
use crate::telemetry::{
    LaneTelemetry, LaneTelemetrySnapshot, Telemetry, TelemetryConfig, TelemetrySnapshot,
    TraceEventKind,
};
use edgebert_tasks::Task;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Queue-ordering policy for a [`DeadlineScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulePolicy {
    /// First-in-first-out: dispatch in submission order (the old
    /// `serve_batch` semantics, kept as the comparison baseline).
    Fifo,
    /// Earliest-deadline-first: dispatch by absolute deadline
    /// (`arrival + latency target`), ties broken by submission order.
    EarliestDeadline,
}

/// Configuration of a [`DeadlineScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Modeled accelerator lanes draining the queue (virtual-time
    /// parallelism; the paper's deployment is a single accelerator).
    pub workers: usize,
    /// Maximum same-task sentences packed into one engine pass.
    pub max_batch: usize,
    /// Queue ordering policy.
    pub policy: SchedulePolicy,
    /// Time charged when a worker switches tasks (per-task encoder
    /// weights must be re-fetched; `0.0` models resident weights).
    pub task_switch_s: f64,
    /// Deduct each sentence's virtual queueing delay from the compute
    /// budget handed to the engine (stamped through
    /// [`InferenceRequest::with_elapsed_queue_s`]), so DVFS scales
    /// against the *remaining* slack instead of the full target.
    ///
    /// Off (the default), compute is independent of the timeline and a
    /// drain's per-request responses are bit-identical to unscheduled
    /// `serve` calls — the PR 2 contract. On, a sentence's compute
    /// depends on when it was dispatched, so the drain computes each
    /// sentence *at* its dispatch point on the virtual timeline
    /// (sequentially — the timeline itself is the data dependency) and
    /// stays fully deterministic.
    pub queue_aware_slack: bool,
    /// Queue-pressure-aware stretch: cap each dispatched sentence's
    /// DVFS stretch window by the tightest deadline among the arrived,
    /// undispatched submissions waiting behind it (minus the task
    /// engine's nominal service estimate), stamped through
    /// [`InferenceRequest::with_stretch_cap_s`]. A greedy sentence
    /// stops stretching into slack that queued tighter work needs.
    /// Like `queue_aware_slack`, this makes compute depend on dispatch
    /// time, so the drain computes sentences at their dispatch points
    /// (sequential, deterministic). The cap is applied only on
    /// single-worker drains — with several virtual lanes an arrived
    /// successor typically dispatches concurrently on another one, so
    /// capping would spend energy without a tail win. Off by default.
    pub pressure_stretch: bool,
    /// Virtual-timeline parity mode for the overload ladder (see
    /// [`crate::overload`] and [`ServerConfig::overload`](crate::server::ServerConfig::overload)):
    /// one controller per task engine observes the arrived,
    /// undispatched backlog at each dispatch point and degrades
    /// dispatched sentences exactly as the wall-clock server's lanes
    /// would — tier notch and scaled entropy-exit threshold, bounded by
    /// each request's `max_degradation` floor. Like the other
    /// dispatch-time knobs this makes compute depend on the timeline,
    /// so the drain computes sentences at their dispatch points.
    ///
    /// Admission *shedding* is deliberately not modeled here: a drain
    /// serves every submission handed to it — shedding is a wall-clock
    /// admission decision the [`Server`](crate::server::Server) front
    /// end makes before work ever reaches a queue, and a virtual replay
    /// that silently dropped submissions would break the drain's
    /// one-response-per-submission contract. Off by default.
    pub overload: OverloadConfig,
    /// Telemetry parity with the wall-clock server (see
    /// [`crate::telemetry`] and
    /// [`ServerConfig::telemetry`](crate::server::ServerConfig::telemetry)):
    /// when set, each drain emits per-request trace spans with
    /// **virtual** timestamps (`Admitted` at arrival, `Popped` at
    /// dispatch, `Degraded` when the overload parity mode notches a
    /// sentence, `Completed` at completion) and folds queue-delay /
    /// sojourn / energy distributions into per-engine histograms —
    /// fully deterministic, so two identically-built schedulers fed
    /// the same submissions produce identical traces. Observation
    /// only: responses are unchanged. `None` (default) records
    /// nothing.
    pub telemetry: Option<TelemetryConfig>,
    /// Virtual-timeline parity mode for fleet energy budgeting (see
    /// [`crate::energy`] and
    /// [`ServerConfig::energy`](crate::server::ServerConfig::energy)):
    /// at each dispatch point the fleet cap is re-allocated across the
    /// task engines from their arrived, undispatched backlog pressure
    /// (the same waterfilling as the wall-clock coordinator, minus its
    /// EWMA power feedback — a virtual timeline has no wall-clock
    /// power measurement to difference), and the dispatched sentence's
    /// DVFS is clamped under its engine's per-worker share via
    /// [`InferenceRequest::with_envelope_w`]. Deadline verdicts keep
    /// judging the real target. Like the other dispatch-time knobs
    /// this makes compute depend on the timeline, so the drain
    /// computes sentences at their dispatch points (sequential,
    /// deterministic). `None` (the default) stamps nothing — the PR 2
    /// bit-identity contract holds.
    pub energy: Option<EnergyConfig>,
}

impl Default for SchedulerConfig {
    /// One accelerator lane, EDF ordering, packs of up to 8, free task
    /// switches, slack-blind compute (the PR 2 bit-identity contract),
    /// no pressure stretch.
    fn default() -> Self {
        Self {
            workers: 1,
            max_batch: 8,
            policy: SchedulePolicy::EarliestDeadline,
            task_switch_s: 0.0,
            queue_aware_slack: false,
            pressure_stretch: false,
            overload: OverloadConfig::default(),
            telemetry: None,
            energy: None,
        }
    }
}

/// One response from a scheduled drain: the engine response (bit-equal
/// to an unscheduled `serve` of the same request) plus the virtual
/// timeline the scheduler ran it on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledResponse {
    /// The engine's response after default resolution.
    pub response: InferenceResponse,
    /// Worker lane the sentence ran on.
    pub worker: usize,
    /// Submission timestamp, seconds (virtual clock).
    pub arrival_s: f64,
    /// Dispatch timestamp: when its engine pass reached this sentence.
    pub start_s: f64,
    /// `start_s` + modeled compute latency.
    pub completion_s: f64,
    /// Time spent queued: `start_s - arrival_s`.
    pub queue_delay_s: f64,
    /// End-to-end response time: `completion_s - arrival_s`, plus any
    /// queueing the submitter pre-stamped on the request before it
    /// reached this scheduler.
    pub sojourn_s: f64,
    /// Whether the *sojourn* met the request's latency target under the
    /// [`deadline_met`] rule. The inner
    /// `response.result.deadline_met` judges compute latency alone; a
    /// sentence that computed on time but queued too long is a
    /// violation here and only here.
    pub deadline_met: bool,
    /// Accuracy-tier notches the overload parity mode degraded this
    /// sentence by at dispatch (0 on every default path).
    pub degraded_notches: u8,
}

#[derive(Debug, Clone)]
struct Submission {
    index: usize,
    task: Task,
    request: InferenceRequest,
    arrival_s: f64,
}

/// An EDF slack-aware batch scheduler over a set of per-task engines.
///
/// Submissions accumulate via [`submit`](Self::submit); a
/// [`drain`](Self::drain) computes every served request through batched
/// engine passes and replays the queue on a deterministic virtual
/// timeline. Output order always matches submission order.
#[derive(Debug, Clone)]
pub struct DeadlineScheduler {
    engines: Vec<(Task, EdgeBertEngine)>,
    cfg: SchedulerConfig,
    pending: Vec<Submission>,
    /// Telemetry hub (virtual timestamps only — the wall-clock epoch
    /// is never consulted) plus one histogram set per engine, both
    /// `None`/empty with telemetry off. A `clone()`d scheduler shares
    /// the same hub and histograms via the `Arc`s.
    telemetry: Option<Arc<Telemetry>>,
    lane_telemetry: Vec<Arc<LaneTelemetry>>,
    /// Trace ids are globally unique across drains of one scheduler
    /// (submission indices restart at 0 every drain; reusing them
    /// would merge two requests' spans into one malformed chain).
    next_trace_id: u64,
}

// Schedulers move into serving threads whole.
const _: () = {
    const fn assert_send<T: Send + 'static>() {}
    assert_send::<DeadlineScheduler>();
};

impl DeadlineScheduler {
    /// Builds a scheduler over `runtime`'s served tasks, taking one
    /// owned `Send` engine per task. Each is a clone of the engine the
    /// task's runtime minted from its builder — an `Arc` refcount bump
    /// on the shared weights, and the guarantee that scheduled results
    /// cannot diverge from the runtime's own `serve`.
    pub fn new(runtime: &MultiTaskRuntime, cfg: SchedulerConfig) -> Self {
        if cfg.overload.enabled {
            cfg.overload.validate();
        }
        if let Some(ecfg) = &cfg.energy {
            ecfg.validate();
        }
        let engines: Vec<(Task, EdgeBertEngine)> = runtime
            .tasks()
            .into_iter()
            .map(|task| {
                let rt = runtime.runtime(task).expect("task listed as served");
                (task, rt.engine().clone())
            })
            .collect();
        let telemetry = cfg
            .telemetry
            // analyzer: allow(wall-clock) reason="the telemetry hub epoch is the one wall-clock read the virtual-timeline scheduler makes; trace timestamps are virtual and never consult it again"
            .map(|tcfg| Arc::new(Telemetry::new(tcfg, Instant::now())));
        let lane_telemetry: Vec<Arc<LaneTelemetry>> = if telemetry.is_some() {
            engines
                .iter()
                .map(|_| Arc::new(LaneTelemetry::new()))
                .collect()
        } else {
            Vec::new()
        };
        Self {
            engines,
            cfg,
            pending: Vec::new(),
            telemetry,
            lane_telemetry,
            next_trace_id: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// The tasks this scheduler can serve.
    pub fn tasks(&self) -> Vec<Task> {
        self.engines.iter().map(|(t, _)| *t).collect()
    }

    /// Number of submissions waiting for the next drain.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Enqueues one request with its arrival timestamp (seconds on the
    /// virtual clock; any non-negative finite origin). Returns the
    /// submission index, which is also the request's slot in the next
    /// [`drain`](Self::drain) output.
    pub fn submit(&mut self, task: Task, request: InferenceRequest, arrival_s: f64) -> usize {
        assert!(
            arrival_s.is_finite() && arrival_s >= 0.0,
            "arrival timestamp must be finite and non-negative, got {arrival_s}"
        );
        let index = self.pending.len();
        self.pending.push(Submission {
            index,
            task,
            request,
            arrival_s,
        });
        index
    }

    /// Serves every pending submission and clears the queue.
    ///
    /// The returned vector is in submission order; an entry is `None`
    /// when its task is not served by this scheduler.
    ///
    /// With [`SchedulerConfig::queue_aware_slack`] off, engine results
    /// are computed first (one batched pass per task, fanned across
    /// worker threads), then the queue is replayed on the virtual
    /// timeline under the configured policy — so per-request responses
    /// are bit-identical to unscheduled `serve` calls no matter the
    /// policy, worker count, or packing. With it on, each sentence is
    /// computed *at* its dispatch point with its virtual queueing delay
    /// stamped into the request, so DVFS budgets against the remaining
    /// slack; the replay is then sequential (the timeline is the data
    /// dependency) but still deterministic.
    pub fn drain(&mut self) -> Vec<Option<ScheduledResponse>> {
        let pending = std::mem::take(&mut self.pending);
        if pending.is_empty() {
            return Vec::new();
        }

        // Which engine serves each submission (None → unserved task).
        let engine_of: Vec<Option<usize>> = pending
            .iter()
            .map(|s| self.engines.iter().position(|(t, _)| *t == s.task))
            .collect();

        // Phase 1 — slack-blind compute: one batched engine pass per
        // task, fanned across worker threads, serving by reference (no
        // request copies). Skipped under queue-aware slack or pressure
        // stretch, where compute depends on dispatch time and happens
        // in the replay.
        let compute_at_dispatch = self.cfg.queue_aware_slack
            || self.cfg.pressure_stretch
            || self.cfg.overload.enabled
            || self.cfg.energy.is_some();
        let mut responses: Vec<Option<InferenceResponse>> = vec![None; pending.len()];
        if !compute_at_dispatch {
            for (task, engine) in &self.engines {
                let members: Vec<&Submission> =
                    pending.iter().filter(|s| s.task == *task).collect();
                if members.is_empty() {
                    continue;
                }
                let threads = crate::engine::default_threads(members.len());
                let batch =
                    crate::engine::run_chunked(&members, threads, |s| engine.serve(&s.request));
                for (member, response) in members.iter().zip(batch) {
                    responses[member.index] = Some(response);
                }
            }
        }

        // Phase 2 — replay the queue on the virtual timeline. Served
        // submissions are sorted by the policy key once; each dispatch
        // round scans that order for the first arrived sentence. The
        // absolute deadline is `arrival + target` after default
        // resolution against the task's engine — identical to what the
        // engine echoes in its response.
        let deadline_abs: Vec<f64> = pending
            .iter()
            .map(|s| {
                // A pre-stamped submission already burned part of its
                // target upstream: its true deadline is that much
                // earlier, and EDF must rank it accordingly.
                s.arrival_s - s.request.effective_elapsed_queue_s()
                    + engine_of[s.index].map_or(0.0, |e| {
                        s.request
                            .latency_target_s
                            .unwrap_or_else(|| self.engines[e].1.default_latency_target_s())
                    })
            })
            .collect();
        let key = |s: &Submission| match self.cfg.policy {
            SchedulePolicy::Fifo => (s.arrival_s, s.index),
            SchedulePolicy::EarliestDeadline => (deadline_abs[s.index], s.index),
        };
        let mut served: Vec<&Submission> = pending
            .iter()
            .filter(|s| engine_of[s.index].is_some())
            .collect();
        served.sort_by(|a, b| {
            let (ka, kb) = (key(a), key(b));
            ka.0.total_cmp(&kb.0).then(ka.1.cmp(&kb.1))
        });

        let workers = self.cfg.workers.max(1);
        let max_batch = self.cfg.max_batch.max(1);
        let mut free_at = vec![0.0f64; workers];
        let mut resident: Vec<Option<Task>> = vec![None; workers];
        let mut dispatched = vec![false; pending.len()];
        let mut timeline: Vec<Option<(usize, f64, f64)>> = vec![None; pending.len()];
        // Overload parity: one ladder per task engine (mirroring the
        // wall-clock server's one-controller-per-lane), fed that
        // engine's arrived, undispatched backlog at each dispatch.
        let mut controllers: Vec<OverloadController> = self
            .engines
            .iter()
            .map(|_| OverloadController::new(self.cfg.overload))
            .collect();
        let mut notches: Vec<u8> = vec![0; pending.len()];
        // Trace ids for this drain: `trace_id_base + submission index`,
        // unique across the scheduler's lifetime.
        let trace_id_base = self.next_trace_id;
        self.next_trace_id += pending.len() as u64;
        let mut remaining = served.len();
        while remaining > 0 {
            // Earliest-free worker, ties to the lowest lane.
            let w = (0..workers)
                .min_by(|&a, &b| free_at[a].total_cmp(&free_at[b]))
                .expect("at least one worker");
            // If nothing has arrived by the time the lane frees up, the
            // lane idles until the next arrival.
            let next_arrival = served
                .iter()
                .filter(|s| !dispatched[s.index])
                .map(|s| s.arrival_s)
                .fold(f64::INFINITY, f64::min);
            let now = free_at[w].max(next_arrival);
            // The pack is the maximal same-task run at the head of the
            // policy-ordered ready queue (arrived ∧ undispatched),
            // capped at `max_batch`. Packing coalesces sentences the
            // policy already placed together — it never lets a sentence
            // jump an earlier-deadline ready sentence of another task.
            let mut pack: Vec<usize> = Vec::new();
            let mut task: Option<Task> = None;
            for s in served
                .iter()
                .filter(|s| !dispatched[s.index] && s.arrival_s <= now)
            {
                match task {
                    None => task = Some(s.task),
                    Some(t) if t != s.task => break,
                    Some(_) => {}
                }
                pack.push(s.index);
                if pack.len() == max_batch {
                    break;
                }
            }
            let task = task.expect("an arrived sentence exists at `now`");

            let mut cursor = now
                + if resident[w] == Some(task) {
                    0.0
                } else {
                    self.cfg.task_switch_s
                };
            for &i in &pack {
                let start = cursor;
                let latency_s = match &responses[i] {
                    // Slack-blind: the precomputed response's latency.
                    Some(r) => r.result.latency_s,
                    // Compute-at-dispatch: queue-aware mode deducts the
                    // virtual wait (on top of any stamp the submitter
                    // carried in) from the DVFS budget; pressure
                    // stretch caps the stretch window by the tightest
                    // arrived successor's deadline gap.
                    None => {
                        let sub = &pending[i];
                        let mut request = sub.request.clone();
                        if self.cfg.queue_aware_slack {
                            let waited =
                                sub.request.effective_elapsed_queue_s() + (start - sub.arrival_s);
                            request = request.with_elapsed_queue_s(waited);
                        }
                        if self.cfg.pressure_stretch && workers == 1 {
                            // The tightest served, undispatched
                            // submission already arrived by `start` —
                            // the head-of-queue successor a greedy
                            // sentence would be stealing slack from.
                            let successor = served
                                .iter()
                                .filter(|s| {
                                    s.index != i && !dispatched[s.index] && s.arrival_s <= start
                                })
                                .min_by(|a, b| {
                                    deadline_abs[a.index]
                                        .total_cmp(&deadline_abs[b.index])
                                        .then(a.index.cmp(&b.index))
                                });
                            if let Some(next) = successor {
                                let next_engine =
                                    &self.engines[engine_of[next.index].expect("served")].1;
                                let cap_s = deadline_abs[next.index]
                                    - start
                                    - next_engine.nominal_service_estimate_s();
                                if cap_s.is_finite() {
                                    request = request.with_stretch_cap_s(cap_s.max(0.0));
                                }
                            }
                        }
                        let engine_idx = engine_of[i].expect("served member");
                        let engine = &self.engines[engine_idx].1;
                        let mut degradation = Degradation::NONE;
                        if self.cfg.overload.enabled {
                            // The same pressure signal the server's
                            // lanes observe: this engine's arrived,
                            // undispatched backlog drained by `workers`
                            // lanes against its deadline horizon.
                            let backlog = served
                                .iter()
                                .filter(|s| {
                                    s.index != i
                                        && !dispatched[s.index]
                                        && s.arrival_s <= start
                                        && engine_of[s.index] == Some(engine_idx)
                                })
                                .count();
                            let p = pressure(
                                backlog,
                                workers,
                                engine.nominal_service_estimate_s(),
                                engine.default_latency_target_s(),
                            );
                            let step = controllers[engine_idx].observe(p);
                            degradation = self
                                .cfg
                                .overload
                                .degradation_for(step, sub.request.max_degradation);
                            notches[i] = degradation.tier_notches;
                        }
                        if let Some(ecfg) = &self.cfg.energy {
                            // Energy parity: waterfill the fleet cap
                            // across engines from their arrived,
                            // undispatched backlog pressure at this
                            // dispatch point (the wall-clock
                            // coordinator's allocation, minus its EWMA
                            // feedback — a virtual timeline measures no
                            // wall-clock power), then clamp this
                            // sentence under its engine's per-worker
                            // share.
                            let demands: Vec<LaneDemand> = self
                                .engines
                                .iter()
                                .enumerate()
                                .map(|(e, (task, eng))| {
                                    let backlog = served
                                        .iter()
                                        .filter(|s| {
                                            s.index != i
                                                && !dispatched[s.index]
                                                && s.arrival_s <= start
                                                && engine_of[s.index] == Some(e)
                                        })
                                        .count();
                                    LaneDemand {
                                        task: *task,
                                        pressure: pressure(
                                            backlog,
                                            workers,
                                            eng.nominal_service_estimate_s(),
                                            eng.default_latency_target_s(),
                                        ),
                                    }
                                })
                                .collect();
                            let envelopes = allocate(ecfg.fleet_cap_w, ecfg.floor_w, &demands);
                            let mine = self.engines[engine_idx].0;
                            if let Some(share) = envelopes.iter().find(|e| e.task == mine) {
                                request = request.with_envelope_w(share.watts / workers as f64);
                            }
                        }
                        let response = engine.serve_degraded(&request, degradation);
                        let latency_s = response.result.latency_s;
                        responses[i] = Some(response);
                        latency_s
                    }
                };
                cursor += latency_s;
                timeline[i] = Some((w, start, cursor));
                if let Some(hub) = &self.telemetry {
                    // Virtual-timestamp span prefix. Admission happened
                    // at arrival on the virtual clock; emitting it here
                    // (at dispatch) still yields a well-formed chain —
                    // the ring orders events per request, and arrival ≤
                    // start keeps timestamps monotone.
                    let sub = &pending[i];
                    let id = trace_id_base + i as u64;
                    let queue_delay_s = start - sub.arrival_s;
                    hub.record_at(sub.arrival_s, sub.task, id, TraceEventKind::Admitted);
                    hub.record_at(
                        start,
                        sub.task,
                        id,
                        TraceEventKind::Popped { queue_delay_s },
                    );
                    if notches[i] > 0 {
                        hub.record_at(
                            start,
                            sub.task,
                            id,
                            TraceEventKind::Degraded {
                                notches: notches[i],
                            },
                        );
                    }
                    let engine_idx = engine_of[i].expect("served member");
                    self.lane_telemetry[engine_idx].observe_queue_delay(queue_delay_s);
                }
                dispatched[i] = true;
                remaining -= 1;
            }
            free_at[w] = cursor;
            resident[w] = Some(task);
        }

        pending
            .iter()
            .map(|s| {
                let response = responses[s.index].take()?;
                let (worker, start_s, completion_s) =
                    timeline[s.index].expect("served sentences were dispatched");
                // A submitter pre-stamp (upstream queueing measured
                // before the submission reached this scheduler) counts
                // in the sojourn and against the deadline exactly as
                // the engine counted it against the DVFS budget — and
                // exactly as the wall-clock `Server` reports it, so
                // tail reports stay comparable across the two systems.
                let sojourn_s =
                    s.request.effective_elapsed_queue_s() + (completion_s - s.arrival_s);
                let met = deadline_met(sojourn_s, response.latency_target_s);
                if let Some(hub) = &self.telemetry {
                    hub.record_at(
                        completion_s,
                        s.task,
                        trace_id_base + s.index as u64,
                        TraceEventKind::Completed {
                            verdict: met,
                            energy_j: response.result.energy_j,
                        },
                    );
                    let engine_idx = engine_of[s.index].expect("served member");
                    self.lane_telemetry[engine_idx]
                        .observe_completion(sojourn_s, response.result.energy_j);
                }
                Some(ScheduledResponse {
                    response,
                    worker,
                    arrival_s: s.arrival_s,
                    start_s,
                    completion_s,
                    queue_delay_s: start_s - s.arrival_s,
                    sojourn_s,
                    deadline_met: met,
                    degraded_notches: notches[s.index],
                })
            })
            .collect()
    }

    /// Copies out everything telemetry recorded across this
    /// scheduler's drains: virtual-timestamp trace events plus
    /// per-engine histograms. The time-series section is always empty
    /// — lane sampling is a wall-clock concern the virtual timeline
    /// has no analogue for. `None` when
    /// [`SchedulerConfig::telemetry`] is unset.
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        let hub = self.telemetry.as_ref()?;
        let (events, dropped_events) = hub.trace_snapshot();
        let (samples, dropped_samples) = hub.series_snapshot();
        let lanes = self
            .engines
            .iter()
            .zip(&self.lane_telemetry)
            .map(|((task, _), lt)| LaneTelemetrySnapshot {
                task: *task,
                histograms: lt.snapshot(),
            })
            .collect();
        Some(TelemetrySnapshot {
            events,
            dropped_events,
            lanes,
            samples,
            dropped_samples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Scale, TaskArtifacts};
    use crate::serving::TaskRuntime;

    fn runtime() -> MultiTaskRuntime {
        MultiTaskRuntime::from_runtimes([
            TaskRuntime::from_artifacts(&TaskArtifacts::build(Task::Sst2, Scale::Test, 0x5C41)),
            TaskRuntime::from_artifacts(&TaskArtifacts::build(Task::Qnli, Scale::Test, 0x5C42)),
        ])
    }

    fn tokens_for(rt: &MultiTaskRuntime, task: Task, n: usize, seed: u64) -> Vec<Vec<u32>> {
        let max_len = rt.runtime(task).expect("served").model().config.max_seq_len;
        let gen = edgebert_tasks::TaskGenerator::standard(task, max_len);
        gen.generate(n, seed)
            .examples()
            .iter()
            .map(|ex| ex.tokens.clone())
            .collect()
    }

    fn edf(rt: &MultiTaskRuntime) -> DeadlineScheduler {
        DeadlineScheduler::new(
            rt,
            SchedulerConfig {
                workers: 1,
                max_batch: 4,
                policy: SchedulePolicy::EarliestDeadline,
                ..SchedulerConfig::default()
            },
        )
    }

    #[test]
    fn edf_dispatches_in_deadline_order() {
        let rt = runtime();
        let toks = tokens_for(&rt, Task::Sst2, 4, 7);
        let mut sched = edf(&rt);
        // Same arrival, descending targets: EDF must dispatch in
        // reverse submission order.
        let targets = [400e-3, 300e-3, 200e-3, 100e-3];
        for (t, tok) in targets.iter().zip(&toks) {
            sched.submit(
                Task::Sst2,
                InferenceRequest::new(tok.clone()).with_latency_target(*t),
                0.0,
            );
        }
        let out = sched.drain();
        let starts: Vec<f64> = out
            .iter()
            .map(|r| r.as_ref().expect("served").start_s)
            .collect();
        for i in 0..3 {
            assert!(
                starts[i] > starts[i + 1],
                "tighter deadline must start earlier: {starts:?}"
            );
        }
    }

    #[test]
    fn fifo_dispatches_in_submission_order() {
        let rt = runtime();
        let toks = tokens_for(&rt, Task::Sst2, 4, 8);
        let mut sched = DeadlineScheduler::new(
            &rt,
            SchedulerConfig {
                policy: SchedulePolicy::Fifo,
                max_batch: 1,
                ..SchedulerConfig::default()
            },
        );
        for (i, tok) in toks.iter().enumerate() {
            sched.submit(
                Task::Sst2,
                InferenceRequest::new(tok.clone()).with_latency_target(1.0 - i as f64 * 0.2),
                0.0,
            );
        }
        let out = sched.drain();
        let starts: Vec<f64> = out
            .iter()
            .map(|r| r.as_ref().expect("served").start_s)
            .collect();
        for i in 0..3 {
            assert!(starts[i] < starts[i + 1], "FIFO keeps arrival order");
        }
    }

    #[test]
    fn output_order_matches_submission_order_and_results_match_serve() {
        let rt = runtime();
        let sst = tokens_for(&rt, Task::Sst2, 3, 9);
        let qnli = tokens_for(&rt, Task::Qnli, 3, 10);
        let mut sched = edf(&rt);
        let mut expected = Vec::new();
        for (i, tok) in sst.iter().chain(&qnli).enumerate() {
            let task = if i < sst.len() {
                Task::Sst2
            } else {
                Task::Qnli
            };
            let req =
                InferenceRequest::new(tok.clone()).with_latency_target(30e-3 + 17e-3 * i as f64);
            sched.submit(task, req.clone(), 1e-3 * i as f64);
            expected.push(rt.try_serve(task, &req).expect("served task"));
        }
        let out = sched.drain();
        assert_eq!(out.len(), expected.len());
        for (got, want) in out.iter().zip(&expected) {
            // Scheduling changes when a sentence runs, never what it
            // computes: responses are bit-identical to unscheduled
            // serve() calls, in submission order.
            assert_eq!(&got.as_ref().expect("served").response, want);
        }
    }

    #[test]
    fn sojourn_accounting_is_consistent() {
        let rt = runtime();
        let toks = tokens_for(&rt, Task::Sst2, 5, 11);
        let mut sched = edf(&rt);
        for (i, tok) in toks.iter().enumerate() {
            sched.submit(
                Task::Sst2,
                InferenceRequest::new(tok.clone()).with_latency_target(40e-3),
                2e-3 * i as f64,
            );
        }
        for r in sched.drain().into_iter().map(|r| r.expect("served")) {
            assert!(
                r.start_s >= r.arrival_s,
                "no sentence starts before it arrives"
            );
            assert!((r.queue_delay_s - (r.start_s - r.arrival_s)).abs() < 1e-15);
            assert!((r.sojourn_s - (r.completion_s - r.arrival_s)).abs() < 1e-15);
            assert!(
                (r.completion_s - r.start_s - r.response.result.latency_s).abs() < 1e-12,
                "service time is exactly the modeled compute latency"
            );
            assert_eq!(
                r.deadline_met,
                deadline_met(r.sojourn_s, r.response.latency_target_s)
            );
        }
    }

    #[test]
    fn empty_and_unserved_edges() {
        let rt = runtime();
        let mut sched = edf(&rt);
        assert_eq!(sched.pending(), 0);
        assert!(sched.drain().is_empty());

        // Unserved task comes back None; served neighbours unaffected.
        let toks = tokens_for(&rt, Task::Sst2, 2, 12);
        sched.submit(Task::Sst2, InferenceRequest::new(toks[0].clone()), 0.0);
        sched.submit(Task::Mnli, InferenceRequest::new(vec![1, 2, 3]), 0.0);
        sched.submit(Task::Sst2, InferenceRequest::new(toks[1].clone()), 0.0);
        let out = sched.drain();
        assert_eq!(out.len(), 3);
        assert!(out[0].is_some());
        assert!(out[1].is_none());
        assert!(out[2].is_some());
        // The queue cleared.
        assert_eq!(sched.pending(), 0);
        assert!(sched.drain().is_empty());
    }

    #[test]
    fn workers_and_packing_change_timeline_not_results() {
        let rt = runtime();
        let toks = tokens_for(&rt, Task::Sst2, 6, 13);
        let mut configs = Vec::new();
        for workers in [1, 3] {
            for max_batch in [1, 4] {
                configs.push(SchedulerConfig {
                    workers,
                    max_batch,
                    policy: SchedulePolicy::EarliestDeadline,
                    ..SchedulerConfig::default()
                });
            }
        }
        let mut reference: Option<Vec<InferenceResponse>> = None;
        for cfg in configs {
            let mut sched = DeadlineScheduler::new(&rt, cfg);
            for (i, tok) in toks.iter().enumerate() {
                sched.submit(
                    Task::Sst2,
                    InferenceRequest::new(tok.clone()).with_latency_target(50e-3),
                    1e-3 * i as f64,
                );
            }
            let responses: Vec<InferenceResponse> = sched
                .drain()
                .into_iter()
                .map(|r| r.expect("served").response)
                .collect();
            match &reference {
                None => reference = Some(responses),
                Some(want) => assert_eq!(&responses, want, "config {cfg:?}"),
            }
        }
    }

    #[test]
    fn queue_aware_slack_is_bit_identical_when_nothing_queues() {
        // Arrivals spaced far beyond any service time: every sentence
        // dispatches the instant it arrives, the virtual queueing delay
        // is exactly zero, and the slack-aware drain must be bit-equal
        // to the slack-blind one — timeline included.
        let rt = runtime();
        let toks = tokens_for(&rt, Task::Sst2, 4, 16);
        let drain = |slack: bool| {
            let mut sched = DeadlineScheduler::new(
                &rt,
                SchedulerConfig {
                    queue_aware_slack: slack,
                    ..SchedulerConfig::default()
                },
            );
            for (i, tok) in toks.iter().enumerate() {
                sched.submit(
                    Task::Sst2,
                    InferenceRequest::new(tok.clone()).with_latency_target(50e-3),
                    10.0 * i as f64,
                );
            }
            sched.drain()
        };
        assert_eq!(drain(false), drain(true));
    }

    #[test]
    fn queue_aware_slack_compresses_queued_sentences() {
        // A strict-threshold runtime (no layer-1 exits) with a relaxed
        // target and a burst of simultaneous arrivals: the slack-blind
        // engine stretches every sentence's compute into the full
        // target even though each one queued behind the last, while the
        // queue-aware drain hands DVFS the remaining slack — later
        // sentences speed up, the backlog drains sooner, and strictly
        // fewer sojourn deadlines are violated.
        let art = TaskArtifacts::build(Task::Sst2, Scale::Test, 0x5C44);
        let rt = MultiTaskRuntime::from_runtimes([TaskRuntime::from_builder(
            Task::Sst2,
            art.engine_builder()
                .uniform_thresholds(crate::engine::EntropyThresholds::uniform(0.0))
                .workload(art.hardware_workload(true)),
        )]);
        let toks = tokens_for(&rt, Task::Sst2, 6, 17);
        // A burst at t = 0 with escalating targets (the EDF dispatch
        // order): sentence i has room for its predecessors *if* they
        // stop stretching into budget they no longer have. The blind
        // engine computes each sentence for its full target, so every
        // successor's queue delay alone blows its deadline; the aware
        // engine compresses compute to `target − waited` and the whole
        // burst lands exactly on its deadlines.
        let target_of = |i: usize| 80e-3 * (i + 1) as f64;
        let drain = |slack: bool| {
            let mut sched = DeadlineScheduler::new(
                &rt,
                SchedulerConfig {
                    queue_aware_slack: slack,
                    max_batch: 1,
                    ..SchedulerConfig::default()
                },
            );
            for (i, tok) in toks.iter().enumerate() {
                sched.submit(
                    Task::Sst2,
                    InferenceRequest::new(tok.clone()).with_latency_target(target_of(i)),
                    0.0,
                );
            }
            sched
                .drain()
                .into_iter()
                .map(|r| r.expect("served"))
                .collect::<Vec<_>>()
        };
        let blind = drain(false);
        let aware = drain(true);

        // The first dispatched sentence saw no queue in either mode.
        let first_blind = blind.iter().find(|r| r.queue_delay_s == 0.0).expect("head");
        let first_aware = aware.iter().find(|r| r.queue_delay_s == 0.0).expect("head");
        assert_eq!(first_blind.response, first_aware.response);

        let makespan =
            |rs: &[ScheduledResponse]| rs.iter().map(|r| r.completion_s).fold(0.0f64, f64::max);
        let violations = |rs: &[ScheduledResponse]| rs.iter().filter(|r| !r.deadline_met).count();
        assert!(
            makespan(&aware) < makespan(&blind),
            "compressed compute must drain the backlog sooner: {} vs {}",
            makespan(&aware),
            makespan(&blind),
        );
        assert!(
            violations(&aware) < violations(&blind),
            "queue-aware slack must convert blind violations into met deadlines \
             ({} vs {} of {})",
            violations(&aware),
            violations(&blind),
            blind.len(),
        );
        // Queued sentences ran at or above the blind operating point,
        // never below it.
        for (a, b) in aware.iter().zip(&blind) {
            assert!(a.response.result.voltage >= b.response.result.voltage - 1e-6);
        }
    }

    #[test]
    fn pressure_stretch_stops_greedy_sentences_stealing_successor_slack() {
        // Two sentences arrive together on one lane: A's deadline is
        // earlier (EDF dispatches it first) and B's is only slightly
        // later. Queue-aware alone, A greedily stretches compute to
        // its own deadline, leaving B less than one nominal service
        // time — B misses by construction. With pressure stretch, A's
        // DVFS window is capped at `B's deadline − nominal service
        // estimate` at dispatch, so B inherits exactly a full nominal
        // service window and lands inside its deadline. A's own
        // verdict never degrades: the cap compresses its compute well
        // inside its target.
        let art = TaskArtifacts::build(Task::Sst2, Scale::Test, 0x5C45);
        let rt = MultiTaskRuntime::from_runtimes([TaskRuntime::from_builder(
            Task::Sst2,
            art.engine_builder()
                .uniform_thresholds(crate::engine::EntropyThresholds::uniform(0.0))
                .workload(art.hardware_workload(true)),
        )]);
        let estimate_s = rt
            .runtime(Task::Sst2)
            .expect("served")
            .engine()
            .nominal_service_estimate_s();
        let toks = tokens_for(&rt, Task::Sst2, 2, 18);
        let target_a = 6.0 * estimate_s;
        let target_b = 6.4 * estimate_s; // 0.4 estimates behind A's
        let drain = |pressure_stretch: bool| {
            let mut sched = DeadlineScheduler::new(
                &rt,
                SchedulerConfig {
                    queue_aware_slack: true,
                    pressure_stretch,
                    max_batch: 1,
                    ..SchedulerConfig::default()
                },
            );
            sched.submit(
                Task::Sst2,
                InferenceRequest::new(toks[0].clone()).with_latency_target(target_a),
                0.0,
            );
            sched.submit(
                Task::Sst2,
                InferenceRequest::new(toks[1].clone()).with_latency_target(target_b),
                0.0,
            );
            sched
                .drain()
                .into_iter()
                .map(|r| r.expect("served"))
                .collect::<Vec<_>>()
        };
        let greedy = drain(false);
        assert!(greedy[0].deadline_met, "A stretches onto its own target");
        assert!(
            !greedy[1].deadline_met,
            "A's stretch must leave B under one service time: B start {} s of {} s target",
            greedy[1].start_s, target_b
        );
        let capped = drain(true);
        assert!(capped[0].deadline_met, "the cap never hurts A's verdict");
        assert!(
            capped[1].deadline_met,
            "the cap leaves B a full nominal window: B start {} s of {} s target",
            capped[1].start_s, target_b
        );
        // A really was compressed, not reordered.
        assert!(capped[0].completion_s < greedy[0].completion_s);
        assert!(
            capped[0].response.result.freq_hz > greedy[0].response.result.freq_hz,
            "the cap raises A's operating point"
        );
        // With nothing queued behind it, pressure stretch is inert:
        // a lone submission drains bit-identically either way.
        let lone = |pressure_stretch: bool| {
            let mut sched = DeadlineScheduler::new(
                &rt,
                SchedulerConfig {
                    queue_aware_slack: true,
                    pressure_stretch,
                    ..SchedulerConfig::default()
                },
            );
            sched.submit(
                Task::Sst2,
                InferenceRequest::new(toks[0].clone()).with_latency_target(target_a),
                0.0,
            );
            sched.drain()
        };
        assert_eq!(lone(false), lone(true));
    }

    #[test]
    fn edf_groups_same_task_deadlines_amortizing_switches() {
        let rt = runtime();
        let sst = tokens_for(&rt, Task::Sst2, 3, 14);
        let qnli = tokens_for(&rt, Task::Qnli, 3, 15);
        let makespan = |policy: SchedulePolicy| {
            let mut sched = DeadlineScheduler::new(
                &rt,
                SchedulerConfig {
                    workers: 1,
                    max_batch: 8,
                    policy,
                    task_switch_s: 5e-3,
                    ..SchedulerConfig::default()
                },
            );
            // Tight deadlines all on SST-2, relaxed all on QNLI,
            // submitted interleaved: FIFO pays the switch cost on every
            // dispatch, EDF's deadline order groups each task into one
            // packed run.
            for (i, (a, b)) in sst.iter().zip(&qnli).enumerate() {
                sched.submit(
                    Task::Sst2,
                    InferenceRequest::new(a.clone()).with_latency_target(40e-3 + 1e-3 * i as f64),
                    0.0,
                );
                sched.submit(
                    Task::Qnli,
                    InferenceRequest::new(b.clone()).with_latency_target(400e-3 + 1e-3 * i as f64),
                    0.0,
                );
            }
            sched
                .drain()
                .into_iter()
                .map(|r| r.expect("served").completion_s)
                .fold(0.0f64, f64::max)
        };
        let (fifo, edf) = (
            makespan(SchedulePolicy::Fifo),
            makespan(SchedulePolicy::EarliestDeadline),
        );
        // Interleaved FIFO switches 6 times, grouped EDF twice: four
        // avoided 5 ms switches.
        assert!(
            edf + 4.0 * 5e-3 <= fifo + 1e-9,
            "EDF grouping must amortize switches: edf {edf} vs fifo {fifo}"
        );
    }
}
