//! Per-request trace spans: typed events, the lock-cheap sink, and the
//! bounded overwrite-oldest ring they land in.
//!
//! The hot-path contract is **never block, never allocate**: the ring
//! is preallocated at construction, `record` uses `try_lock` (a
//! contended push is counted as a drop instead of waiting), and every
//! event is `Copy`. A full ring overwrites its oldest event and counts
//! the overwrite, so the drop counter is the single honesty signal for
//! both contention and capacity loss.

// analyzer: wall-clock-module reason="span recorders stamp trace events with wall-clock time; timestamps are observability-only and never feed scheduling decisions"

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use edgebert_tasks::Task;
use serde::{Serialize, Value};

/// One step in a request's span chain.
///
/// `SegmentStart` carries the chosen operating point as plain
/// voltage/frequency fields (not [`crate::engine::OperatingPoint`]) so
/// the event stays `Copy` and serializes flat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEventKind {
    /// Request accepted into a lane queue.
    Admitted,
    /// Worker popped the request off the EDF queue.
    Popped {
        /// Seconds spent queued before the pop.
        queue_delay_s: f64,
    },
    /// A DVFS segment opened: layers from `layer` run at this point.
    SegmentStart {
        /// First layer of the segment (1-based).
        layer: u32,
        /// Supply voltage of the chosen operating point, volts.
        voltage: f64,
        /// Clock frequency of the chosen operating point, Hz.
        freq_hz: f64,
    },
    /// The entropy predictor exited early after `layer`.
    EntropyExit {
        /// Layer after which the exit fired (1-based).
        layer: u32,
    },
    /// Session parked (preempted) with layers still to run.
    Parked,
    /// Parked session resumed; `thief_lane` names the foreign lane's
    /// task when a work-stealing shard resumed it, `None` on-home.
    Resumed {
        /// Home task of the stealing shard, if stolen.
        thief_lane: Option<Task>,
    },
    /// Admission shed the request (overload ladder).
    Shed {
        /// Lane pressure at the shed decision.
        pressure: f64,
    },
    /// Service started with this many accuracy-tier notches dropped.
    Degraded {
        /// Tier notches deducted by the overload ladder.
        notches: u8,
    },
    /// Response sent.
    Completed {
        /// Whether the deadline was met.
        verdict: bool,
        /// Modeled energy the sentence's compute drew, joules (after
        /// any envelope clamping — the span shows what was actually
        /// spent, matching the lane's cumulative energy ledger).
        energy_j: f64,
    },
}

impl TraceEventKind {
    /// Stable discriminant name used by the serializer and exporters.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::Admitted => "admitted",
            TraceEventKind::Popped { .. } => "popped",
            TraceEventKind::SegmentStart { .. } => "segment_start",
            TraceEventKind::EntropyExit { .. } => "entropy_exit",
            TraceEventKind::Parked => "parked",
            TraceEventKind::Resumed { .. } => "resumed",
            TraceEventKind::Shed { .. } => "shed",
            TraceEventKind::Degraded { .. } => "degraded",
            TraceEventKind::Completed { .. } => "completed",
        }
    }
}

// Hand-written: the serde_derive shim only handles unit enum variants,
// and a tagged map (`"kind"` discriminant + payload fields) is the
// JSONL shape consumers want anyway.
impl Serialize for TraceEventKind {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> =
            vec![("kind".into(), Value::Str(self.name().into()))];
        match *self {
            TraceEventKind::Admitted | TraceEventKind::Parked => {}
            TraceEventKind::Popped { queue_delay_s } => {
                fields.push(("queue_delay_s".into(), queue_delay_s.to_value()));
            }
            TraceEventKind::SegmentStart {
                layer,
                voltage,
                freq_hz,
            } => {
                fields.push(("layer".into(), Value::U64(layer as u64)));
                fields.push(("voltage".into(), voltage.to_value()));
                fields.push(("freq_hz".into(), freq_hz.to_value()));
            }
            TraceEventKind::EntropyExit { layer } => {
                fields.push(("layer".into(), Value::U64(layer as u64)));
            }
            TraceEventKind::Resumed { thief_lane } => {
                fields.push(("thief_lane".into(), thief_lane.to_value()));
            }
            TraceEventKind::Shed { pressure } => {
                fields.push(("pressure".into(), pressure.to_value()));
            }
            TraceEventKind::Degraded { notches } => {
                fields.push(("notches".into(), Value::U64(notches as u64)));
            }
            TraceEventKind::Completed { verdict, energy_j } => {
                fields.push(("verdict".into(), Value::Bool(verdict)));
                fields.push(("energy_j".into(), energy_j.to_value()));
            }
        }
        Value::Map(fields)
    }
}

/// A timestamped, request-attributed trace event. Timestamps are
/// seconds since the owning hub's epoch (the server's own epoch, so
/// they compare directly with lane deadlines) and are monotone within
/// a request's chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Seconds since the telemetry epoch.
    pub t_s: f64,
    /// Lane/task the request belongs to.
    pub task: Task,
    /// Request id: the lane submission sequence number (matches
    /// `ServerResponse::submission`). Shed requests — which never
    /// consume a sequence number, keeping admission numbering
    /// identical with telemetry off — get synthetic ids counting down
    /// from `u64::MAX`.
    pub request: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

impl Serialize for TraceEvent {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = vec![
            ("t_s".into(), self.t_s.to_value()),
            ("task".into(), self.task.to_value()),
            ("request".into(), Value::U64(self.request)),
        ];
        match self.kind.to_value() {
            Value::Map(kind_fields) => fields.extend(kind_fields),
            other => fields.push(("kind".into(), other)),
        }
        Value::Map(fields)
    }
}

/// Anything that can accept trace events from the hot path. `record`
/// must be cheap and must never block.
pub trait TraceSink: Send + Sync {
    /// Accept one event (or drop it — the sink decides, never blocks).
    fn record(&self, event: TraceEvent);
}

/// Bounded overwrite-oldest ring. Generic so the lane time-series
/// sampler reuses the same drop-counting semantics.
pub(crate) struct Ring<T> {
    capacity: usize,
    inner: Mutex<RingInner<T>>,
    /// Pushes abandoned because the ring mutex was contended.
    contended: AtomicU64,
}

struct RingInner<T> {
    /// Preallocated storage; grows by push only until `capacity`.
    slots: Vec<T>,
    /// Index of the oldest slot once the ring is full.
    head: usize,
    /// Events overwritten after the ring filled.
    overwritten: u64,
}

impl<T: Copy> Ring<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(RingInner {
                slots: Vec::with_capacity(capacity),
                head: 0,
                overwritten: 0,
            }),
            contended: AtomicU64::new(0),
        }
    }

    /// Push without blocking: a contended mutex or zero capacity
    /// counts the value as dropped. Never allocates (the slot vector
    /// was preallocated).
    // analyzer: hot-path
    pub(crate) fn push(&self, value: T) {
        let Ok(mut inner) = self.inner.try_lock() else {
            self.contended.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if self.capacity == 0 {
            inner.overwritten += 1;
        } else if inner.slots.len() < self.capacity {
            // analyzer: allow(hot-path-alloc) reason="slots was Vec::with_capacity(capacity) at construction and len < capacity is checked above, so this push never reallocates"
            inner.slots.push(value);
        } else {
            let head = inner.head;
            inner.slots[head] = value;
            inner.head = (head + 1) % self.capacity;
            inner.overwritten += 1;
        }
    }

    /// Total values lost to contention or overwriting.
    pub(crate) fn dropped(&self) -> u64 {
        let overwritten = self
            .inner
            .lock()
            .expect("telemetry ring poisoned")
            .overwritten;
        self.contended.load(Ordering::Relaxed) + overwritten
    }

    /// Copy out the retained values oldest→newest plus the drop count.
    /// Takes the full lock — snapshots are off the hot path.
    pub(crate) fn snapshot(&self) -> (Vec<T>, u64) {
        let inner = self.inner.lock().expect("telemetry ring poisoned");
        let mut out = Vec::with_capacity(inner.slots.len());
        out.extend_from_slice(&inner.slots[inner.head..]);
        out.extend_from_slice(&inner.slots[..inner.head]);
        let dropped = self.contended.load(Ordering::Relaxed) + inner.overwritten;
        (out, dropped)
    }
}

/// The bounded trace-event ring every [`TraceSink`] implementation in
/// this crate ultimately writes to.
pub struct TraceRing {
    ring: Ring<TraceEvent>,
}

impl TraceRing {
    /// A ring retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: Ring::new(capacity),
        }
    }

    /// Events lost to contention or overwriting since construction.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Retained events oldest→newest plus the drop counter.
    pub fn snapshot(&self) -> (Vec<TraceEvent>, u64) {
        self.ring.snapshot()
    }
}

impl TraceSink for TraceRing {
    // analyzer: hot-path
    fn record(&self, event: TraceEvent) {
        // analyzer: allow(hot-path-alloc) reason="Ring::push is the non-allocating try_lock ring push above, not Vec::push"
        self.ring.push(event);
    }
}

/// A cheap, cloneable handle stamping events for one request. Cloned
/// into the session so park/steal/resume keep emitting into the same
/// sink with the same attribution; excluded from checkpoints (a
/// restored session starts untraced).
#[derive(Clone)]
pub struct SpanRecorder {
    sink: Arc<dyn TraceSink>,
    task: Task,
    request: u64,
    epoch: Instant,
}

impl std::fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRecorder")
            .field("task", &self.task)
            .field("request", &self.request)
            .finish_non_exhaustive()
    }
}

impl SpanRecorder {
    /// A recorder stamping `task`/`request` with seconds since `epoch`.
    pub fn new(sink: Arc<dyn TraceSink>, task: Task, request: u64, epoch: Instant) -> Self {
        Self {
            sink,
            task,
            request,
            epoch,
        }
    }

    /// Emit `kind` stamped with the current time. Never blocks or
    /// allocates.
    // analyzer: hot-path
    pub fn emit(&self, kind: TraceEventKind) {
        self.sink.record(TraceEvent {
            t_s: self.epoch.elapsed().as_secs_f64(),
            task: self.task,
            request: self.request,
            kind,
        });
    }

    /// Emit `kind` at an explicit timestamp (virtual timelines).
    // analyzer: hot-path
    pub fn emit_at(&self, t_s: f64, kind: TraceEventKind) {
        self.sink.record(TraceEvent {
            t_s,
            task: self.task,
            request: self.request,
            kind,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(request: u64, t_s: f64) -> TraceEvent {
        TraceEvent {
            t_s,
            task: Task::Sst2,
            request,
            kind: TraceEventKind::Admitted,
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let ring = TraceRing::new(3);
        for i in 0..5 {
            ring.record(event(i, i as f64));
        }
        let (events, dropped) = ring.snapshot();
        assert_eq!(
            events.iter().map(|e| e.request).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(dropped, 2);
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let ring = TraceRing::new(0);
        ring.record(event(0, 0.0));
        let (events, dropped) = ring.snapshot();
        assert!(events.is_empty());
        assert_eq!(dropped, 1);
    }

    #[test]
    fn recorder_timestamps_are_monotone() {
        let ring = Arc::new(TraceRing::new(8));
        let rec = SpanRecorder::new(ring.clone(), Task::Qnli, 7, Instant::now());
        rec.emit(TraceEventKind::Admitted);
        rec.emit(TraceEventKind::Completed {
            verdict: true,
            energy_j: 1e-3,
        });
        let (events, _) = ring.snapshot();
        assert_eq!(events.len(), 2);
        assert!(events[0].t_s <= events[1].t_s);
        assert!(events
            .iter()
            .all(|e| e.request == 7 && e.task == Task::Qnli));
    }

    #[test]
    fn event_serializes_with_kind_discriminant() {
        let e = TraceEvent {
            t_s: 0.5,
            task: Task::Mnli,
            request: 3,
            kind: TraceEventKind::Popped {
                queue_delay_s: 0.25,
            },
        };
        let json = serde::json::to_string(&e);
        assert!(json.contains("\"kind\":\"popped\""), "{json}");
        assert!(json.contains("\"queue_delay_s\":0.25"), "{json}");
        assert!(json.contains("\"request\":3"), "{json}");
    }
}
