//! Observability for the serving stack: per-request trace spans,
//! log-bucketed latency/energy histograms, lane time-series sampling,
//! and exporters (JSONL traces, Prometheus text format).
//!
//! Telemetry ships **default-off** (`ServerConfig::telemetry: None`)
//! and is bit-identity-neutral when on: it only observes — request
//! numbering, admission decisions, DVFS choices, and inference
//! arithmetic are unchanged (shed trace ids count down from
//! `u64::MAX` precisely so admission sequence numbers stay untouched).
//! The hot-path contract is *never block, never allocate*: rings are
//! preallocated and pushed with `try_lock` (contention counts a drop),
//! events are `Copy`, and histograms are fixed arrays. A dedicated
//! overhead test pins the disabled path to zero allocations per
//! request.
//!
//! - [`span`] — typed [`TraceEvent`]s, the [`TraceSink`] trait, the
//!   bounded overwrite-oldest [`TraceRing`], and the per-request
//!   [`SpanRecorder`] handle threaded through submit → pop → step →
//!   park/resume → response.
//! - [`hist`] — [`LogHistogram`]: fixed geometric bucket grid, exact
//!   merge and serde, exact p50/p95/p99 extraction.
//! - [`series`] — periodic [`LaneSample`]s of `(pressure, rung,
//!   queued, parked, extra_shards)` per lane.
//! - [`export`] — JSONL trace dump, Prometheus text render, and the
//!   span-chain well-formedness validator.

// analyzer: wall-clock-module reason="telemetry hub owns the server epoch; timestamps here only stamp observability records and never feed admission, scheduling, or inference decisions"

pub mod export;
pub mod hist;
pub mod series;
pub mod span;

use std::sync::{Arc, Mutex};
use std::time::Instant;

use edgebert_tasks::Task;
use serde::{Deserialize, Serialize};

pub use export::{render_prometheus, render_trace_jsonl, span_chains, validate_span_chain};
pub use hist::{LaneHistograms, LogHistogram};
pub use series::{LaneSample, SeriesRing};
pub use span::{SpanRecorder, TraceEvent, TraceEventKind, TraceRing, TraceSink};

/// Capacities and cadence for the telemetry subsystem. `Copy` so it
/// can live inside the `Copy` server/scheduler configs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Trace-ring capacity in events (overwrite-oldest beyond this).
    pub trace_capacity: usize,
    /// Time-series ring capacity in samples.
    pub series_capacity: usize,
    /// Lane sampling period, seconds (wall-clock server only; the
    /// virtual-timeline scheduler records no series).
    pub sample_period_s: f64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            trace_capacity: 65_536,
            series_capacity: 8_192,
            sample_period_s: 1e-3,
        }
    }
}

impl TelemetryConfig {
    /// Panics on a nonsensical configuration (zero trace capacity or a
    /// non-positive sampling period).
    pub fn validate(&self) {
        assert!(
            self.trace_capacity >= 1,
            "telemetry trace_capacity must be at least 1"
        );
        assert!(
            self.sample_period_s.is_finite() && self.sample_period_s > 0.0,
            "telemetry sample_period_s must be finite and positive, got {}",
            self.sample_period_s
        );
    }
}

/// The shared telemetry hub: one trace ring and one time-series ring,
/// stamped against a single epoch (the server's own, so event
/// timestamps compare directly with lane deadlines).
pub struct Telemetry {
    cfg: TelemetryConfig,
    epoch: Instant,
    trace: TraceRing,
    series: SeriesRing,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("cfg", &self.cfg)
            .field("dropped_events", &self.trace.dropped())
            .field("dropped_samples", &self.series.dropped())
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// A hub with rings sized by `cfg`, stamping seconds since `epoch`.
    pub fn new(cfg: TelemetryConfig, epoch: Instant) -> Self {
        cfg.validate();
        Self {
            cfg,
            epoch,
            trace: TraceRing::new(cfg.trace_capacity),
            series: SeriesRing::new(cfg.series_capacity),
        }
    }

    /// The configuration this hub was built with.
    pub fn config(&self) -> TelemetryConfig {
        self.cfg
    }

    /// Seconds elapsed since the hub epoch.
    pub fn now_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// A per-request recorder emitting into this hub's trace ring.
    pub fn recorder(self: &Arc<Self>, task: Task, request: u64) -> SpanRecorder {
        SpanRecorder::new(
            Arc::clone(self) as Arc<dyn TraceSink>,
            task,
            request,
            self.epoch,
        )
    }

    /// Record one event at an explicit timestamp (hot paths that
    /// already hold an `Instant`, and virtual timelines).
    // analyzer: hot-path
    pub fn record_at(&self, t_s: f64, task: Task, request: u64, kind: TraceEventKind) {
        self.trace.record(TraceEvent {
            t_s,
            task,
            request,
            kind,
        });
    }

    /// Push one lane time-series sample.
    // analyzer: hot-path
    pub fn sample(&self, sample: LaneSample) {
        self.series.record(sample);
    }

    /// Retained trace events oldest→newest plus the drop counter.
    pub fn trace_snapshot(&self) -> (Vec<TraceEvent>, u64) {
        self.trace.snapshot()
    }

    /// Retained lane samples oldest→newest plus the drop counter.
    pub fn series_snapshot(&self) -> (Vec<LaneSample>, u64) {
        self.series.snapshot()
    }
}

impl TraceSink for Telemetry {
    // analyzer: hot-path
    fn record(&self, event: TraceEvent) {
        self.trace.record(event);
    }
}

/// Per-lane distribution recorder. Lives on the lane behind an `Arc`
/// so every shard driving that lane folds into the same histograms.
/// The mutex is leaf-level and uncontended in practice (one short
/// lock per observation); unlike the rings it uses a blocking lock —
/// a dropped histogram sample would silently bias quantiles.
#[derive(Debug, Default)]
pub struct LaneTelemetry {
    hist: Mutex<LaneHistograms>,
}

impl LaneTelemetry {
    /// Empty distributions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an admission-to-pop queue delay, seconds.
    pub fn observe_queue_delay(&self, delay_s: f64) {
        self.hist
            .lock()
            .expect("lane telemetry poisoned")
            .queue_delay_s
            .record(delay_s);
    }

    /// Record one completed request's sojourn and modeled energy.
    pub fn observe_completion(&self, sojourn_s: f64, energy_j: f64) {
        let mut h = self.hist.lock().expect("lane telemetry poisoned");
        h.sojourn_s.record(sojourn_s);
        h.energy_per_request_j.record(energy_j);
    }

    /// Record the wall-clock compute time of one session step.
    pub fn observe_step(&self, step_s: f64) {
        self.hist
            .lock()
            .expect("lane telemetry poisoned")
            .step_time_s
            .record(step_s);
    }

    /// Copy out the current distributions.
    pub fn snapshot(&self) -> LaneHistograms {
        *self.hist.lock().expect("lane telemetry poisoned")
    }
}

/// One lane's distributions inside a [`TelemetrySnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaneTelemetrySnapshot {
    /// Lane task.
    pub task: Task,
    /// The lane's recorded distributions.
    pub histograms: LaneHistograms,
}

/// Everything the telemetry subsystem knows, copied out at once:
/// trace events, per-lane histograms, lane time-series, and the drop
/// counters that bound what the rings forgot.
#[derive(Debug, Clone, Serialize)]
pub struct TelemetrySnapshot {
    /// Trace events oldest→newest.
    pub events: Vec<TraceEvent>,
    /// Trace events lost to ring contention or overwriting.
    pub dropped_events: u64,
    /// Per-lane histogram sets.
    pub lanes: Vec<LaneTelemetrySnapshot>,
    /// Lane time-series samples oldest→newest.
    pub samples: Vec<LaneSample>,
    /// Samples lost to ring contention or overwriting.
    pub dropped_samples: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_round_trips_through_serde() {
        let cfg = TelemetryConfig {
            trace_capacity: 1024,
            series_capacity: 64,
            sample_period_s: 0.5,
        };
        let json = serde::json::to_string(&cfg);
        let back: TelemetryConfig = serde::json::from_str(&json).expect("round trip");
        assert_eq!(cfg, back);
    }

    #[test]
    #[should_panic(expected = "trace_capacity")]
    fn zero_trace_capacity_is_rejected() {
        Telemetry::new(
            TelemetryConfig {
                trace_capacity: 0,
                ..TelemetryConfig::default()
            },
            Instant::now(),
        );
    }

    #[test]
    fn hub_recorder_attributes_events() {
        let hub = Arc::new(Telemetry::new(TelemetryConfig::default(), Instant::now()));
        hub.recorder(Task::Sst2, 11).emit(TraceEventKind::Admitted);
        hub.record_at(
            2.0,
            Task::Qnli,
            12,
            TraceEventKind::Completed {
                verdict: false,
                energy_j: 0.0,
            },
        );
        let (events, dropped) = hub.trace_snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(dropped, 0);
        assert_eq!(events[1].t_s, 2.0);
        assert_eq!(events[1].request, 12);
    }

    #[test]
    fn lane_telemetry_folds_observations() {
        let lt = LaneTelemetry::new();
        lt.observe_queue_delay(0.010);
        lt.observe_completion(0.100, 25e-6);
        lt.observe_step(0.002);
        let h = lt.snapshot();
        assert_eq!(h.queue_delay_s.count(), 1);
        assert_eq!(h.sojourn_s.count(), 1);
        assert_eq!(h.energy_per_request_j.count(), 1);
        assert_eq!(h.step_time_s.count(), 1);
        assert!(h.energy_per_request_j.p50() >= 25e-6);
    }
}
