//! Log-bucketed histograms with fixed, implicit bucket boundaries.
//!
//! HDR-style: bucket edges are a fixed geometric grid (16 buckets per
//! decade over 12 decades starting at 1 ns / 1 nJ), so two histograms
//! recorded independently can be merged by elementwise addition and a
//! serde round-trip is exact — the boundaries are never serialized,
//! only the counts, and the grid is recomputed identically everywhere.
//!
//! Values are `f64` seconds (or joules — the grid covers both ranges):
//! `[1e-9, 1e3)` in 192 buckets. Non-positive and NaN values land in a
//! dedicated `zero` bucket (queue delays of exactly zero are common);
//! values above the top edge are absorbed by the last bucket, so
//! quantiles of pathological tails saturate instead of lying.

use serde::{Deserialize, Serialize};

/// Number of log-spaced buckets: 16 per decade × 12 decades.
pub const HIST_BUCKETS: usize = 192;

/// Buckets per decade of the geometric grid.
pub const HIST_BUCKETS_PER_DECADE: f64 = 16.0;

/// Lower edge of bucket 0 (1 ns / 1 nJ).
pub const HIST_LOWEST: f64 = 1e-9;

/// Log-bucketed histogram over positive `f64` values with exact merge
/// and serde semantics (fixed implicit boundaries; only counts travel).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Count of non-positive (or NaN) samples; quantiles that land
    /// here report `0.0`.
    pub zero: u64,
    /// Per-bucket counts on the fixed geometric grid.
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples recorded (`zero` + all buckets).
    pub count: u64,
    /// Sum of all recorded values (exact mean recovery; zero/NaN
    /// samples contribute nothing).
    pub sum: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            zero: 0,
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0.0,
        }
    }

    /// Index of the bucket covering `v`, or `None` for the zero bucket.
    fn index_of(v: f64) -> Option<usize> {
        if v.is_nan() || v <= 0.0 {
            return None;
        }
        let idx = ((v / HIST_LOWEST).log10() * HIST_BUCKETS_PER_DECADE).floor();
        if idx < 0.0 {
            // Sub-nanosecond positives: below the grid, clamp into the
            // first bucket (its reported edge still bounds them above).
            Some(0)
        } else if idx as usize >= HIST_BUCKETS {
            // Above the top edge: saturate into the last bucket.
            Some(HIST_BUCKETS - 1)
        } else {
            Some(idx as usize)
        }
    }

    /// Exclusive upper edge of bucket `i` on the fixed grid.
    pub fn upper_edge(i: usize) -> f64 {
        HIST_LOWEST * 10f64.powf((i as f64 + 1.0) / HIST_BUCKETS_PER_DECADE)
    }

    /// Inclusive lower edge of bucket `i` on the fixed grid.
    pub fn lower_edge(i: usize) -> f64 {
        HIST_LOWEST * 10f64.powf(i as f64 / HIST_BUCKETS_PER_DECADE)
    }

    /// Record one sample. Never allocates.
    pub fn record(&mut self, v: f64) {
        match Self::index_of(v) {
            Some(i) => {
                self.buckets[i] += 1;
                self.sum += v;
            }
            None => self.zero += 1,
        }
        self.count += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded (positive) values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of all recorded samples, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Merge `other` into `self` by elementwise addition — exact
    /// because both share the same fixed grid.
    pub fn merge(&mut self, other: &Self) {
        self.zero += other.zero;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Value at quantile `q` in `[0, 1]`: the upper edge of the bucket
    /// containing the sample of rank `ceil(q·count)` (rank ≥ 1), so the
    /// reported value is a true upper bound on that sample. Returns
    /// `0.0` for an empty histogram or when the rank falls in the zero
    /// bucket. Monotone in `q` by construction.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = self.zero;
        if rank <= seen {
            return 0.0;
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if rank <= seen {
                return Self::upper_edge(i);
            }
        }
        // Unreachable when count is consistent; saturate defensively.
        Self::upper_edge(HIST_BUCKETS - 1)
    }

    /// Median upper bound.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile upper bound.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Largest recorded value's bucket upper edge (`0.0` when only
    /// zero-bucket samples exist or the histogram is empty).
    pub fn max_edge(&self) -> f64 {
        self.quantile(1.0)
    }

    /// Iterate `(upper_edge, cumulative_count)` over every non-empty
    /// prefix boundary, Prometheus-style: the zero bucket folds into
    /// the first yielded cumulative count. Only boundaries whose bucket
    /// holds at least one sample are yielded (renderers append the
    /// `+Inf` line themselves from [`Self::count`]).
    pub fn cumulative_nonzero(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let mut cum = self.zero;
        self.buckets.iter().enumerate().filter_map(move |(i, &c)| {
            if c == 0 {
                None
            } else {
                cum += c;
                Some((Self::upper_edge(i), cum))
            }
        })
    }
}

/// The full per-lane distribution set the server records when
/// telemetry is enabled. `Copy` (fixed-size arrays) so it can ride
/// inside [`crate::server::LaneStats`] without breaking its `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LaneHistograms {
    /// Admission-to-pop queueing delay, seconds.
    pub queue_delay_s: LogHistogram,
    /// Admission-to-completion sojourn, seconds.
    pub sojourn_s: LogHistogram,
    /// Wall-clock compute time of a single `InferenceSession::step`,
    /// seconds (excludes emulated service-time sleeps).
    pub step_time_s: LogHistogram,
    /// Modeled accelerator energy per completed request, joules.
    pub energy_per_request_j: LogHistogram,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_bracket_recorded_values() {
        let mut h = LogHistogram::new();
        for &v in &[1e-9, 3.7e-6, 1.0, 999.0, 0.042] {
            h.record(v);
            let q = h.max_edge();
            assert!(q >= v * 0.999, "edge {q} below sample {v}");
            h = LogHistogram::new();
        }
    }

    #[test]
    fn bucket_width_is_tight() {
        // 16 buckets/decade → upper/lower ratio 10^(1/16) ≈ 1.155: the
        // quantile over-reports by at most ~15.5%.
        let ratio = LogHistogram::upper_edge(0) / LogHistogram::lower_edge(0);
        assert!((ratio - 10f64.powf(1.0 / 16.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_and_nan_go_to_zero_bucket() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-1.0);
        h.record(f64::NAN);
        assert_eq!(h.zero, 3);
        assert_eq!(h.count(), 3);
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn overflow_saturates_top_bucket() {
        let mut h = LogHistogram::new();
        h.record(1e12);
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 1);
        assert_eq!(h.p99(), LogHistogram::upper_edge(HIST_BUCKETS - 1));
    }

    #[test]
    fn merge_equals_union_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut union = LogHistogram::new();
        for i in 0..100 {
            let v = 1e-6 * 1.17f64.powi(i % 37);
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
            union.record(v);
        }
        a.merge(&b);
        // Counts are exactly the union; the sum may differ only by
        // f64 accumulation order.
        assert_eq!(a.buckets, union.buckets);
        assert_eq!(a.zero, union.zero);
        assert_eq!(a.count(), union.count());
        assert!((a.sum() - union.sum()).abs() <= 1e-9 * union.sum().abs());
    }
}
