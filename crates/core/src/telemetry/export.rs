//! Exporters: JSONL trace dumps, Prometheus text-format metrics, and
//! the span-chain well-formedness validator benches and tests assert
//! against.

use std::fmt::Write as _;

use edgebert_tasks::Task;

use super::span::{TraceEvent, TraceEventKind};
use super::TelemetrySnapshot;

/// Render events as JSON Lines: one event object per line, in the
/// order given (the ring's oldest→newest).
pub fn render_trace_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&serde::json::to_string(event));
        out.push('\n');
    }
    out
}

/// Lowercased task label for Prometheus (`SST-2` → `sst-2`).
fn task_label(task: Task) -> String {
    task.to_string().to_lowercase()
}

fn render_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    snapshot: &TelemetrySnapshot,
    select: impl Fn(&super::LaneHistograms) -> &super::LogHistogram,
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    for lane in &snapshot.lanes {
        let task = task_label(lane.task);
        let h = select(&lane.histograms);
        for (edge, cum) in h.cumulative_nonzero() {
            let _ = writeln!(out, "{name}_bucket{{task=\"{task}\",le=\"{edge}\"}} {cum}");
        }
        let _ = writeln!(
            out,
            "{name}_bucket{{task=\"{task}\",le=\"+Inf\"}} {}",
            h.count()
        );
        let _ = writeln!(out, "{name}_sum{{task=\"{task}\"}} {}", h.sum());
        let _ = writeln!(out, "{name}_count{{task=\"{task}\"}} {}", h.count());
    }
}

/// Render the snapshot in Prometheus text exposition format: one
/// histogram family per recorded distribution, drop counters, and the
/// latest time-series sample per lane as gauges.
pub fn render_prometheus(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    render_histogram(
        &mut out,
        "edgebert_queue_delay_seconds",
        "Admission-to-pop queueing delay.",
        snapshot,
        |h| &h.queue_delay_s,
    );
    render_histogram(
        &mut out,
        "edgebert_sojourn_seconds",
        "Admission-to-completion sojourn time.",
        snapshot,
        |h| &h.sojourn_s,
    );
    render_histogram(
        &mut out,
        "edgebert_step_seconds",
        "Wall-clock compute time per session step.",
        snapshot,
        |h| &h.step_time_s,
    );
    render_histogram(
        &mut out,
        "edgebert_energy_joules",
        "Modeled accelerator energy per completed request.",
        snapshot,
        |h| &h.energy_per_request_j,
    );

    let _ = writeln!(out, "# HELP edgebert_trace_events_dropped_total Trace events lost to ring contention or overwriting.");
    let _ = writeln!(out, "# TYPE edgebert_trace_events_dropped_total counter");
    let _ = writeln!(
        out,
        "edgebert_trace_events_dropped_total {}",
        snapshot.dropped_events
    );
    let _ = writeln!(out, "# HELP edgebert_series_samples_dropped_total Lane samples lost to ring contention or overwriting.");
    let _ = writeln!(out, "# TYPE edgebert_series_samples_dropped_total counter");
    let _ = writeln!(
        out,
        "edgebert_series_samples_dropped_total {}",
        snapshot.dropped_samples
    );

    // Latest sample per lane → gauges.
    for lane in &snapshot.lanes {
        if let Some(s) = snapshot.samples.iter().rev().find(|s| s.task == lane.task) {
            let task = task_label(s.task);
            let _ = writeln!(
                out,
                "edgebert_lane_pressure{{task=\"{task}\"}} {}",
                s.pressure
            );
            let _ = writeln!(
                out,
                "edgebert_lane_rung{{task=\"{task}\"}} {}",
                s.rung as u8
            );
            let _ = writeln!(out, "edgebert_lane_queued{{task=\"{task}\"}} {}", s.queued);
            let _ = writeln!(out, "edgebert_lane_parked{{task=\"{task}\"}} {}", s.parked);
            let _ = writeln!(
                out,
                "edgebert_lane_extra_shards{{task=\"{task}\"}} {}",
                s.extra_shards
            );
            // Energy gauges exist only when the fleet coordinator is
            // running — absent rows, not zero rows, so dashboards can
            // tell "unbudgeted" from "budgeted at zero".
            if let Some(w) = s.envelope_w {
                let _ = writeln!(out, "edgebert_lane_envelope_watts{{task=\"{task}\"}} {w}");
            }
            if let Some(w) = s.power_w {
                let _ = writeln!(out, "edgebert_lane_power_watts{{task=\"{task}\"}} {w}");
            }
        }
    }
    out
}

/// Group events into per-request span chains keyed by `(task,
/// request)`, preserving recorded order within each chain. Chains are
/// returned in first-appearance order.
pub fn span_chains(events: &[TraceEvent]) -> Vec<((Task, u64), Vec<TraceEvent>)> {
    let mut chains: Vec<((Task, u64), Vec<TraceEvent>)> = Vec::new();
    let mut index: std::collections::HashMap<(Task, u64), usize> = std::collections::HashMap::new();
    for &event in events {
        let key = (event.task, event.request);
        match index.get(&key) {
            Some(&i) => chains[i].1.push(event),
            None => {
                index.insert(key, chains.len());
                chains.push((key, vec![event]));
            }
        }
    }
    chains
}

/// Check one request's span chain for well-formedness:
///
/// - a shed request's chain is exactly `[Shed]`;
/// - otherwise the chain starts `Admitted, Popped, …` and ends with
///   exactly one `Completed`;
/// - every `Resumed` is preceded by a strictly greater number of
///   `Parked`s, and parks/resumes balance by completion;
/// - timestamps are monotone non-decreasing.
///
/// Only meaningful on complete chains — a ring that overwrote part of
/// a chain will (correctly) fail validation, which is what the drop
/// counter is for.
pub fn validate_span_chain(chain: &[TraceEvent]) -> Result<(), String> {
    let Some(first) = chain.first() else {
        return Err("empty span chain".into());
    };
    for pair in chain.windows(2) {
        if pair[1].t_s < pair[0].t_s {
            return Err(format!(
                "timestamps regress: {} at {} then {} at {}",
                pair[0].kind.name(),
                pair[0].t_s,
                pair[1].kind.name(),
                pair[1].t_s
            ));
        }
    }
    if matches!(first.kind, TraceEventKind::Shed { .. }) {
        return if chain.len() == 1 {
            Ok(())
        } else {
            Err(format!("shed chain has {} extra events", chain.len() - 1))
        };
    }
    if !matches!(first.kind, TraceEventKind::Admitted) {
        return Err(format!(
            "chain starts with {}, not admitted",
            first.kind.name()
        ));
    }
    match chain.get(1) {
        Some(second) if matches!(second.kind, TraceEventKind::Popped { .. }) => {}
        Some(second) => {
            return Err(format!(
                "second event is {}, not popped",
                second.kind.name()
            ));
        }
        None => return Err("chain ends after admission".into()),
    }
    let mut parked = 0i64;
    let mut completed = 0usize;
    for (i, event) in chain.iter().enumerate() {
        match event.kind {
            TraceEventKind::Admitted if i > 0 => {
                return Err(format!("duplicate admitted at index {i}"));
            }
            TraceEventKind::Popped { .. } if i > 1 => {
                return Err(format!("duplicate popped at index {i}"));
            }
            TraceEventKind::Shed { .. } => {
                return Err(format!("shed inside a served chain at index {i}"));
            }
            TraceEventKind::Parked => parked += 1,
            TraceEventKind::Resumed { .. } => {
                parked -= 1;
                if parked < 0 {
                    return Err(format!("resumed without a prior parked at index {i}"));
                }
            }
            TraceEventKind::Completed { .. } => completed += 1,
            _ => {}
        }
    }
    if completed != 1 {
        return Err(format!("expected exactly one completed, saw {completed}"));
    }
    if !matches!(
        chain.last().map(|e| e.kind),
        Some(TraceEventKind::Completed { .. })
    ) {
        return Err("chain does not end with completed".into());
    }
    if parked != 0 {
        return Err(format!("{parked} parked events never resumed"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::{LaneHistograms, LaneTelemetrySnapshot};
    use super::*;

    fn ev(t_s: f64, request: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            t_s,
            task: Task::Sst2,
            request,
            kind,
        }
    }

    fn served_chain() -> Vec<TraceEvent> {
        vec![
            ev(0.0, 1, TraceEventKind::Admitted),
            ev(0.1, 1, TraceEventKind::Popped { queue_delay_s: 0.1 }),
            ev(
                0.1,
                1,
                TraceEventKind::SegmentStart {
                    layer: 1,
                    voltage: 0.8,
                    freq_hz: 80e6,
                },
            ),
            ev(0.2, 1, TraceEventKind::Parked),
            ev(
                0.3,
                1,
                TraceEventKind::Resumed {
                    thief_lane: Some(Task::Qnli),
                },
            ),
            ev(0.4, 1, TraceEventKind::EntropyExit { layer: 3 }),
            ev(
                0.4,
                1,
                TraceEventKind::Completed {
                    verdict: true,
                    energy_j: 2e-3,
                },
            ),
        ]
    }

    #[test]
    fn served_chain_validates() {
        validate_span_chain(&served_chain()).expect("well-formed chain");
    }

    #[test]
    fn shed_chain_validates_alone() {
        let chain = [ev(0.0, u64::MAX, TraceEventKind::Shed { pressure: 2.0 })];
        validate_span_chain(&chain).expect("shed chain");
    }

    #[test]
    fn regressions_are_caught() {
        let mut chain = served_chain();
        chain[3].t_s = 0.05; // park "before" the pop
        assert!(validate_span_chain(&chain).unwrap_err().contains("regress"));

        let mut chain = served_chain();
        chain.pop();
        assert!(validate_span_chain(&chain)
            .unwrap_err()
            .contains("completed"));

        let mut chain = served_chain();
        chain.remove(4); // drop the resume
        assert!(validate_span_chain(&chain).unwrap_err().contains("parked"));

        let truncated = &served_chain()[1..];
        assert!(validate_span_chain(truncated)
            .unwrap_err()
            .contains("admitted"));
    }

    #[test]
    fn chains_group_by_task_and_request() {
        let mut events = served_chain();
        events.insert(
            2,
            TraceEvent {
                task: Task::Qnli,
                ..events[0]
            },
        );
        let chains = span_chains(&events);
        assert_eq!(chains.len(), 2);
        assert_eq!(chains[0].1.len(), 7);
        assert_eq!(chains[1].1.len(), 1);
    }

    #[test]
    fn prometheus_render_has_families_and_gauges() {
        let mut histograms = LaneHistograms::default();
        histograms.queue_delay_s.record(0.01);
        histograms.energy_per_request_j.record(30e-6);
        let snapshot = TelemetrySnapshot {
            events: served_chain(),
            dropped_events: 3,
            lanes: vec![LaneTelemetrySnapshot {
                task: Task::Sst2,
                histograms,
            }],
            samples: vec![super::super::LaneSample {
                t_s: 1.0,
                task: Task::Sst2,
                pressure: 0.5,
                rung: crate::overload::LadderStep::Nominal,
                queued: 2,
                parked: 0,
                extra_shards: 1,
                envelope_w: Some(0.125),
                power_w: Some(0.08),
            }],
            dropped_samples: 0,
        };
        let text = render_prometheus(&snapshot);
        assert!(text.contains("edgebert_queue_delay_seconds_bucket{task=\"sst-2\",le=\""));
        assert!(text.contains("edgebert_energy_joules_count{task=\"sst-2\"} 1"));
        assert!(text.contains("edgebert_trace_events_dropped_total 3"));
        assert!(text.contains("edgebert_lane_pressure{task=\"sst-2\"} 0.5"));
        assert!(text.contains("edgebert_lane_extra_shards{task=\"sst-2\"} 1"));
        assert!(text.contains("edgebert_lane_envelope_watts{task=\"sst-2\"} 0.125"));
        assert!(text.contains("edgebert_lane_power_watts{task=\"sst-2\"} 0.08"));
    }

    /// Without a fleet coordinator the energy gauges are absent rows,
    /// not zero rows — "unbudgeted" must stay distinguishable from
    /// "budgeted at zero".
    #[test]
    fn prometheus_energy_gauges_absent_without_budgeting() {
        let snapshot = TelemetrySnapshot {
            events: vec![],
            dropped_events: 0,
            lanes: vec![LaneTelemetrySnapshot {
                task: Task::Sst2,
                histograms: LaneHistograms::default(),
            }],
            samples: vec![super::super::LaneSample {
                t_s: 1.0,
                task: Task::Sst2,
                pressure: 0.0,
                rung: crate::overload::LadderStep::Nominal,
                queued: 0,
                parked: 0,
                extra_shards: 0,
                envelope_w: None,
                power_w: None,
            }],
            dropped_samples: 0,
        };
        let text = render_prometheus(&snapshot);
        assert!(text.contains("edgebert_lane_pressure{task=\"sst-2\"}"));
        assert!(!text.contains("edgebert_lane_envelope_watts"));
        assert!(!text.contains("edgebert_lane_power_watts"));
    }

    #[test]
    fn jsonl_is_one_line_per_event() {
        let text = render_trace_jsonl(&served_chain());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 7);
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(lines[0].contains("\"kind\":\"admitted\""));
    }
}
