//! Lane time-series sampling: periodic snapshots of each lane's
//! control state so overload and elasticity dynamics become plottable
//! curves instead of terminal counters.
//!
//! The sampler itself is a thread the server owns (spawned only when
//! telemetry is enabled); this module defines the sample shape and its
//! bounded ring. Samples share the trace ring's drop-counting
//! semantics: a full ring overwrites oldest, contention drops.

use edgebert_tasks::Task;
use serde::{Deserialize, Serialize};

use super::span::Ring;
use crate::overload::LadderStep;

/// One periodic observation of a lane's control state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaneSample {
    /// Seconds since the telemetry epoch.
    pub t_s: f64,
    /// Lane task.
    pub task: Task,
    /// Overload pressure signal (backlog service demand / horizon).
    pub pressure: f64,
    /// Admission-ladder rung at sample time.
    pub rung: LadderStep,
    /// Fresh jobs queued.
    pub queued: usize,
    /// Parked (preempted) sessions.
    pub parked: usize,
    /// Autoscaled shards attached beyond the nominal pool.
    pub extra_shards: usize,
    /// Lane-total energy envelope allocated by the fleet coordinator,
    /// watts (`None` without energy budgeting).
    pub envelope_w: Option<f64>,
    /// Lane power draw measured by the coordinator's EWMA, watts
    /// (`None` without energy budgeting).
    pub power_w: Option<f64>,
}

/// Bounded overwrite-oldest ring of [`LaneSample`]s.
pub struct SeriesRing {
    ring: Ring<LaneSample>,
}

impl SeriesRing {
    /// A ring retaining at most `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: Ring::new(capacity),
        }
    }

    /// Push one sample without blocking (contention counts a drop).
    // analyzer: hot-path
    pub fn record(&self, sample: LaneSample) {
        // analyzer: allow(hot-path-alloc) reason="Ring::push is the non-allocating try_lock ring push, not Vec::push"
        self.ring.push(sample);
    }

    /// Samples lost to contention or overwriting.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Retained samples oldest→newest plus the drop counter.
    pub fn snapshot(&self) -> (Vec<LaneSample>, u64) {
        self.ring.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_round_trips_through_serde() {
        let s = LaneSample {
            t_s: 1.5,
            task: Task::Qqp,
            pressure: 0.75,
            rung: LadderStep::Nominal,
            queued: 4,
            parked: 1,
            extra_shards: 2,
            envelope_w: Some(0.125),
            power_w: Some(0.08),
        };
        let json = serde::json::to_string(&s);
        let back: LaneSample = serde::json::from_str(&json).expect("round trip");
        assert_eq!(s, back);
    }

    #[test]
    fn series_ring_bounds_and_counts() {
        let ring = SeriesRing::new(2);
        for i in 0..4 {
            ring.record(LaneSample {
                t_s: i as f64,
                task: Task::Sst2,
                pressure: 0.0,
                rung: LadderStep::Nominal,
                queued: i,
                parked: 0,
                extra_shards: 0,
                envelope_w: None,
                power_w: None,
            });
        }
        let (samples, dropped) = ring.snapshot();
        assert_eq!(
            samples.iter().map(|s| s.queued).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(dropped, 2);
    }
}
