//! Owned serving runtimes: one task or the paper's full multi-task
//! deployment behind a request/response interface.
//!
//! [`TaskRuntime`] packages what serving one GLUE task needs — the
//! optimized student model and predictor LUT behind [`Arc`]s, plus the
//! per-tier threshold calibrations — decoupled from the training-side
//! [`TaskArtifacts`](crate::pipeline::TaskArtifacts) (datasets, sweep
//! caches, training summaries) that produced them. Engines minted from a
//! runtime are `Send + 'static`: build once, move into worker threads,
//! or pool them.
//!
//! [`MultiTaskRuntime`] routes requests across tasks. This is the
//! paper's §4 deployment: the embedding table is shared in eNVM while
//! each task carries its own encoder weights and calibrations, so one
//! accelerator serves MNLI, QQP, SST-2, and QNLI traffic — each request
//! under its own deadline and accuracy tier.

use crate::engine::{
    AggregateResult, EdgeBertEngine, EngineBuilder, InferenceMode, InferenceRequest,
    InferenceResponse,
};
use crate::pipeline::{Scale, TaskArtifacts};
use edgebert_hw::WorkloadParams;
use edgebert_model::AlbertModel;
use edgebert_tasks::{Dataset, Task};

/// An owned, thread-safe serving runtime for one task.
///
/// Holds the preloaded [`EngineBuilder`] (the single wiring point for
/// this task's model, LUT, calibrations, and optimized workload) plus
/// the default engine minted from it.
#[derive(Debug, Clone)]
pub struct TaskRuntime {
    task: Task,
    builder: EngineBuilder,
    engine: EdgeBertEngine,
}

// Runtimes are shared across request-serving threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync + 'static>() {}
    assert_send_sync::<TaskRuntime>();
    assert_send_sync::<MultiTaskRuntime>();
};

impl TaskRuntime {
    /// Builds a runtime from trained artifacts, sharing (not copying)
    /// the model and LUT, with the engine defaults of
    /// [`EngineBuilder::new`] on the task-optimized hardware workload.
    pub fn from_artifacts(artifacts: &TaskArtifacts) -> Self {
        let builder = artifacts
            .engine_builder()
            .workload(artifacts.hardware_workload(true));
        Self::from_builder(artifacts.task, builder)
    }

    /// Builds a runtime for `task` directly from a preloaded builder —
    /// the path for serving at a custom design point (accelerator,
    /// workload, eNVM cell, request defaults) without re-deriving
    /// artifacts.
    pub fn from_builder(task: Task, builder: EngineBuilder) -> Self {
        let engine = builder.clone().build();
        Self {
            task,
            builder,
            engine,
        }
    }

    /// The task this runtime serves.
    pub fn task(&self) -> Task {
        self.task
    }

    /// The default engine minted at construction.
    pub fn engine(&self) -> &EdgeBertEngine {
        &self.engine
    }

    /// The served model.
    pub fn model(&self) -> &AlbertModel {
        self.engine.model()
    }

    /// A builder preloaded with this runtime's model, LUT, calibrated
    /// thresholds, and the same task-optimized workload the default
    /// engine serves, for minting engines at other design points
    /// (deadline, accelerator, workload, eNVM cell).
    pub fn builder(&self) -> EngineBuilder {
        self.builder.clone()
    }

    /// The hardware workload actually wired into this runtime's builder
    /// — the shapes its engines cost against. A runtime assembled at a
    /// custom design point reports that point, not the task defaults;
    /// for the published defaults use
    /// [`task_hardware_workload`](crate::engine::task_hardware_workload).
    pub fn hardware_workload(&self) -> &WorkloadParams {
        self.builder.workload_params()
    }

    /// Serves one request on the default engine.
    pub fn serve(&self, request: &InferenceRequest) -> InferenceResponse {
        self.engine.serve(request)
    }

    /// Serves a batch of requests across worker threads, preserving
    /// order.
    pub fn serve_batch(&self, requests: &[InferenceRequest]) -> Vec<InferenceResponse> {
        self.engine.serve_batch(requests)
    }

    /// Evaluates a dataset on the default engine (multi-threaded; see
    /// [`EdgeBertEngine::evaluate`]).
    pub fn evaluate(&self, data: &Dataset, mode: InferenceMode) -> AggregateResult {
        self.engine.evaluate(data, mode)
    }
}

/// A routing failure from the multi-task runtime: the typed form of
/// the old `Option`-returning `serve`/`serve_batch` contract, so
/// serving front-ends surface *why* a request went unserved instead of
/// silently dropping it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The request routed to a task no runtime is loaded for.
    TaskNotServed(Task),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::TaskNotServed(task) => {
                write!(f, "task {task} is not served by this runtime")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A runtime serving all tasks of the paper's multi-task scenario,
/// routing each request to its task's engine.
#[derive(Debug, Clone, Default)]
pub struct MultiTaskRuntime {
    runtimes: Vec<TaskRuntime>,
}

impl MultiTaskRuntime {
    /// Assembles a runtime from per-task runtimes. A later runtime for
    /// the same task replaces an earlier one.
    pub fn from_runtimes(runtimes: impl IntoIterator<Item = TaskRuntime>) -> Self {
        let mut out = Self {
            runtimes: Vec::new(),
        };
        for rt in runtimes {
            out.insert(rt);
        }
        out
    }

    /// Trains artifacts for all four GLUE tasks at `scale` and wraps
    /// them into a runtime. The four trainings are independent, so they
    /// fan out across worker threads (one per task). This is the
    /// expensive paper-reproduction path; serving-only deployments
    /// assemble from prebuilt runtimes via
    /// [`from_runtimes`](Self::from_runtimes).
    pub fn build(scale: Scale, seed: u64) -> Self {
        let jobs: Vec<(usize, Task)> = Task::all().into_iter().enumerate().collect();
        Self::from_runtimes(crate::engine::run_chunked(
            &jobs,
            jobs.len(),
            |&(i, task)| {
                TaskRuntime::from_artifacts(&TaskArtifacts::build(task, scale, seed + i as u64))
            },
        ))
    }

    /// Adds (or replaces) one task's runtime.
    pub fn insert(&mut self, runtime: TaskRuntime) {
        match self
            .runtimes
            .iter_mut()
            .find(|r| r.task() == runtime.task())
        {
            Some(slot) => *slot = runtime,
            None => self.runtimes.push(runtime),
        }
    }

    /// The tasks currently served.
    pub fn tasks(&self) -> Vec<Task> {
        self.runtimes.iter().map(TaskRuntime::task).collect()
    }

    /// The runtime for one task, if served.
    pub fn runtime(&self, task: Task) -> Option<&TaskRuntime> {
        self.runtimes.iter().find(|r| r.task() == task)
    }

    /// Routes one request to its task's engine, or reports the routing
    /// failure as a typed [`ServeError`].
    pub fn try_serve(
        &self,
        task: Task,
        request: &InferenceRequest,
    ) -> Result<InferenceResponse, ServeError> {
        self.runtime(task)
            .map(|rt| rt.serve(request))
            .ok_or(ServeError::TaskNotServed(task))
    }

    /// Serves a mixed-task batch, preserving order. Entries whose task
    /// is not served come back as `Err(ServeError::TaskNotServed)`.
    ///
    /// This is a thin wrapper over
    /// [`DeadlineScheduler`](crate::scheduler::DeadlineScheduler): all
    /// requests arrive at once (time 0) and drain through one batched
    /// engine pass per task, fanned across worker threads. Per-request
    /// responses are bit-identical to [`try_serve`](Self::try_serve);
    /// for staggered arrivals, queueing-delay accounting, and
    /// EDF-vs-FIFO policy control, drive the scheduler directly — and
    /// for wall-clock concurrent serving, [`Server`](crate::server::Server).
    pub fn try_serve_batch(
        &self,
        requests: &[(Task, InferenceRequest)],
    ) -> Vec<Result<InferenceResponse, ServeError>> {
        let mut scheduler = crate::scheduler::DeadlineScheduler::new(
            self,
            crate::scheduler::SchedulerConfig::default(),
        );
        for (task, request) in requests {
            scheduler.submit(*task, request.clone(), 0.0);
        }
        scheduler
            .drain()
            .into_iter()
            .zip(requests)
            .map(|(scheduled, (task, _))| {
                scheduled
                    .map(|s| s.response)
                    .ok_or(ServeError::TaskNotServed(*task))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DropTarget, EntropyThresholds};

    fn artifacts(task: Task, seed: u64) -> TaskArtifacts {
        TaskArtifacts::build(task, Scale::Test, seed)
    }

    #[test]
    fn task_runtime_serves_with_calibrated_tiers() {
        let art = artifacts(Task::Sst2, 0x5E41);
        let rt = TaskRuntime::from_artifacts(&art);
        assert_eq!(rt.task(), Task::Sst2);
        // The engine carries the pipeline's calibrations tier by tier.
        for tier in DropTarget::all() {
            let th = rt.engine().thresholds(tier);
            assert_eq!(
                th,
                EntropyThresholds {
                    conventional: art.calib_conv[tier.index()].entropy_threshold,
                    latency_aware: art.calib_lai[tier.index()].entropy_threshold,
                }
            );
        }
        let ex = &art.dev.examples()[0];
        let resp = rt.serve(&InferenceRequest::new(ex.tokens.clone()));
        assert!(resp.result.energy_j > 0.0);
        assert!(resp.result.exit_layer >= 1);
    }

    #[test]
    fn multi_task_runtime_routes_by_task() {
        let sst = TaskRuntime::from_artifacts(&artifacts(Task::Sst2, 0x5E42));
        let qnli = TaskRuntime::from_artifacts(&artifacts(Task::Qnli, 0x5E43));
        let sst_tokens = {
            let gen =
                edgebert_tasks::TaskGenerator::standard(Task::Sst2, sst.model().config.max_seq_len);
            gen.generate(1, 9).examples()[0].tokens.clone()
        };
        let mt = MultiTaskRuntime::from_runtimes([sst, qnli]);
        assert_eq!(mt.tasks(), vec![Task::Sst2, Task::Qnli]);

        let req = InferenceRequest::new(sst_tokens);
        let ok = mt.try_serve(Task::Sst2, &req);
        assert!(ok.is_ok());
        // Unserved task: the routing failure is typed, not a silent drop.
        assert_eq!(
            mt.try_serve(Task::Mnli, &req),
            Err(ServeError::TaskNotServed(Task::Mnli))
        );

        // Mixed batch preserves order and flags unserved tasks.
        let batch = [
            (Task::Sst2, req.clone()),
            (Task::Mnli, req.clone()),
            (Task::Qnli, req.clone()),
        ];
        let out = mt.try_serve_batch(&batch);
        assert_eq!(out.len(), 3);
        assert!(out[0].is_ok());
        assert_eq!(out[1], Err(ServeError::TaskNotServed(Task::Mnli)));
        assert!(out[2].is_ok());
        // Routing in a batch matches routing one by one.
        assert_eq!(out[0], mt.try_serve(Task::Sst2, &batch[0].1));
    }

    #[test]
    fn hardware_workload_reports_the_wired_workload() {
        // Regression: `hardware_workload` used to recompute the task
        // defaults, so a runtime built at a custom design point
        // misreported the shapes its engines actually cost against.
        let art = artifacts(Task::Sst2, 0x5E45);
        let rt = TaskRuntime::from_artifacts(&art);
        assert_eq!(rt.hardware_workload(), &art.hardware_workload(true));

        let mut custom = art.hardware_workload(false);
        custom.seq_len = 32;
        custom.weight_density = 0.125;
        let custom_rt =
            TaskRuntime::from_builder(Task::Sst2, rt.builder().workload(custom.clone()));
        assert_eq!(custom_rt.hardware_workload(), &custom);
        // And the reported workload is the one the engine was built on:
        // a sparser workload costs strictly less per layer.
        assert!(
            custom_rt.engine().layer_cycles() < rt.engine().layer_cycles(),
            "custom {} vs default {}",
            custom_rt.engine().layer_cycles(),
            rt.engine().layer_cycles(),
        );
    }

    #[test]
    fn runtime_builder_mints_custom_engines() {
        let art = artifacts(Task::Sst2, 0x5E44);
        let rt = TaskRuntime::from_artifacts(&art);
        let strict = rt.builder().latency_target(5e-3).build();
        let relaxed = rt.builder().latency_target(500e-3).build();
        let tokens = &art.dev.examples()[0].tokens;
        let s = strict.run_latency_aware(tokens);
        let r = relaxed.run_latency_aware(tokens);
        // Same calibrations, different deadlines: the relaxed engine
        // never needs a higher voltage.
        assert!(r.voltage <= s.voltage + 1e-6);
    }
}
