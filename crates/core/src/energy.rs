//! Fleet-level energy budgeting: per-lane power envelopes under a cap.
//!
//! Every DVFS decision in the serving stack is per-sentence and locally
//! greedy — nothing stops every lane from simultaneously racing its
//! deadline at high voltage and blowing a fleet power budget. This
//! module is the control plane between the server's lanes and each
//! engine's DVFS policy:
//!
//! * [`EnergyConfig`] — the fleet power cap, the guaranteed per-lane
//!   floor, and the coordinator's EWMA/update cadence;
//! * [`allocate`] — the pure allocation rule: every lane gets the
//!   floor, and the headroom above `n · floor_w` is waterfilled toward
//!   pressured lanes in proportion to their queue pressure (the same
//!   [`pressure`](crate::overload::pressure) signal the overload ladder
//!   observes, which already blends backlog depth against the lane's
//!   deadline horizon). Inputs are taken in *canonical* (task-name)
//!   order, so the allocation is invariant under lane declaration
//!   order;
//! * [`PowerEwma`] — exponentially-weighted measured lane power from
//!   the per-step [`SegmentCost`](crate::backend::SegmentCost) energy
//!   accounting, with a time-constant-correct `1 − exp(−Δt/τ)` gain so
//!   irregular sampling periods do not bias the estimate;
//! * [`FleetCoordinator`] — the deterministic tick: feed it each
//!   lane's cumulative served energy and current pressure plus the
//!   elapsed interval, get back per-lane [`LaneAllocation`]s (envelope
//!   watts to enforce, measured watts to report).
//!
//! The coordinator itself is timer-free: the server drives it from a
//! wall-clock thread, and the deterministic scheduler's parity mode
//! calls [`allocate`] directly on the virtual timeline. How an envelope
//! *binds* lives elsewhere: the session clamps its operating point via
//! [`InferenceBackend::decide_capped`](crate::backend::InferenceBackend::decide_capped)
//! (feasibility judged honestly — an envelope that forbids the
//! deadline-meeting point surfaces as deadline risk, never a silent
//! re-price), the autoscaler declines attaches the envelope cannot
//! power, and the shed rung prices the envelope's slowdown into its
//! feasibility estimate. Everything ships default-off
//! (`ServerConfig::energy: Option<EnergyConfig>`); the disabled path is
//! bit-identical to the pre-energy stack.

use edgebert_tasks::Task;
use serde::{Deserialize, Serialize};

/// Fleet energy budgeting knobs. Disabled unless installed in
/// [`ServerConfig::energy`](crate::server::ServerConfig) (wall-clock
/// coordinator) or
/// [`SchedulerConfig::energy`](crate::scheduler::SchedulerConfig)
/// (deterministic parity on the virtual timeline).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyConfig {
    /// Total sustained compute power the fleet may draw, watts. Lane
    /// envelopes always sum to at most this.
    pub fleet_cap_w: f64,
    /// Guaranteed per-lane envelope, watts — no lane starves below it
    /// regardless of where the pressure is. The serving layers assert
    /// `floor_w · lanes ≤ fleet_cap_w` at construction.
    pub floor_w: f64,
    /// Time constant of the measured-power EWMA, seconds.
    pub ewma_tau_s: f64,
    /// How often the wall-clock coordinator re-allocates envelopes,
    /// seconds.
    pub update_period_s: f64,
}

impl Default for EnergyConfig {
    /// A cap around twice one accelerator shard's nominal draw with a
    /// floor near its DVFS floor draw, re-planned every 25 ms against a
    /// 250 ms power average — a starting point for the four-lane GLUE
    /// deployment, not a tuned budget.
    fn default() -> Self {
        Self {
            fleet_cap_w: 0.2,
            floor_w: 0.01,
            ewma_tau_s: 0.25,
            update_period_s: 25e-3,
        }
    }
}

impl EnergyConfig {
    /// Checks the budget invariants. The serving layers call this at
    /// construction when energy budgeting is enabled.
    ///
    /// # Panics
    ///
    /// Panics when the cap or cadence knobs are non-finite or
    /// non-positive, the floor is negative or non-finite, or the floor
    /// alone exceeds the cap.
    pub fn validate(&self) {
        assert!(
            self.fleet_cap_w.is_finite() && self.fleet_cap_w > 0.0,
            "fleet_cap_w must be finite and positive, got {}",
            self.fleet_cap_w
        );
        assert!(
            self.floor_w.is_finite() && self.floor_w >= 0.0,
            "floor_w must be finite and non-negative, got {}",
            self.floor_w
        );
        assert!(
            self.floor_w <= self.fleet_cap_w,
            "floor_w ({}) must not exceed fleet_cap_w ({})",
            self.floor_w,
            self.fleet_cap_w
        );
        assert!(
            self.ewma_tau_s.is_finite() && self.ewma_tau_s > 0.0,
            "ewma_tau_s must be finite and positive, got {}",
            self.ewma_tau_s
        );
        assert!(
            self.update_period_s.is_finite() && self.update_period_s > 0.0,
            "update_period_s must be finite and positive, got {}",
            self.update_period_s
        );
    }
}

/// One lane's claim on the headroom above the floors: its task identity
/// and current queue pressure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneDemand {
    /// The lane's task (the allocation key).
    pub task: Task,
    /// The lane's pressure signal
    /// ([`pressure`](crate::overload::pressure)); non-finite or
    /// negative values are treated as zero demand.
    pub pressure: f64,
}

/// One lane's power envelope, watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyEnvelope {
    /// The lane this envelope binds.
    pub task: Task,
    /// Sustained compute power the lane may draw, watts.
    pub watts: f64,
}

/// Waterfills `fleet_cap_w` across lanes: every lane gets `floor_w`,
/// and the remaining headroom is split in proportion to each lane's
/// (sanitized) pressure. With no pressure anywhere the headroom splits
/// evenly — an idle fleet keeps symmetric envelopes rather than
/// remembering its last skew.
///
/// The result is sorted by canonical task name and is invariant under
/// the order lanes appear in `demands`. Degenerate inputs sanitize
/// instead of panicking: non-finite/negative pressures count as zero,
/// and a floor too large for the cap (the serving layers assert this
/// away at construction) falls back to an even split of the cap so the
/// sum invariant still holds.
pub fn allocate(fleet_cap_w: f64, floor_w: f64, demands: &[LaneDemand]) -> Vec<EnergyEnvelope> {
    let n = demands.len();
    if n == 0 {
        return Vec::new();
    }
    let mut lanes: Vec<LaneDemand> = demands.to_vec();
    lanes.sort_by_key(|d| d.task.name());
    debug_assert!(
        lanes.windows(2).all(|w| w[0].task != w[1].task),
        "duplicate lane task in energy demands"
    );
    let floor = if floor_w.is_finite() && floor_w > 0.0 {
        floor_w
    } else {
        0.0
    };
    let headroom = fleet_cap_w - floor * n as f64;
    if headroom.is_nan() || headroom < 0.0 {
        // Floors alone overflow the cap: even split keeps Σ = cap.
        let even = fleet_cap_w / n as f64;
        return lanes
            .iter()
            .map(|d| EnergyEnvelope {
                task: d.task,
                watts: even,
            })
            .collect();
    }
    let sane = |p: f64| if p.is_finite() && p > 0.0 { p } else { 0.0 };
    let total: f64 = lanes.iter().map(|d| sane(d.pressure)).sum();
    lanes
        .iter()
        .map(|d| {
            let share = if total > 0.0 {
                sane(d.pressure) / total
            } else {
                1.0 / n as f64
            };
            EnergyEnvelope {
                task: d.task,
                watts: floor + headroom * share,
            }
        })
        .collect()
}

/// Exponentially-weighted average power from irregular energy samples.
///
/// Each observation is an energy delta over an elapsed interval; the
/// gain `1 − exp(−Δt/τ)` makes the estimate independent of how the
/// interval happens to be sliced, so a coordinator tick that ran late
/// does not over-weight its sample.
#[derive(Debug, Clone, Copy)]
pub struct PowerEwma {
    tau_s: f64,
    watts: f64,
    primed: bool,
}

impl PowerEwma {
    /// A zeroed average with time constant `tau_s` (sanitized to a
    /// minimum of 1 ms so a degenerate τ cannot divide by zero).
    pub fn new(tau_s: f64) -> Self {
        let tau_s = if tau_s.is_finite() && tau_s > 1e-3 {
            tau_s
        } else {
            1e-3
        };
        Self {
            tau_s,
            watts: 0.0,
            primed: false,
        }
    }

    /// Folds in `energy_j` joules served over the last `dt_s` seconds
    /// and returns the updated average. Non-positive or non-finite
    /// intervals and negative/non-finite energy deltas are ignored
    /// (the average holds).
    pub fn observe(&mut self, energy_j: f64, dt_s: f64) -> f64 {
        if !(dt_s.is_finite() && dt_s > 0.0 && energy_j.is_finite() && energy_j >= 0.0) {
            return self.watts;
        }
        let instant = energy_j / dt_s;
        if !self.primed {
            self.watts = instant;
            self.primed = true;
        } else {
            let alpha = 1.0 - (-dt_s / self.tau_s).exp();
            self.watts += alpha * (instant - self.watts);
        }
        self.watts
    }

    /// The current average, watts (zero until the first observation).
    pub fn watts(&self) -> f64 {
        self.watts
    }
}

/// What the coordinator reads from one lane at each tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneObservation {
    /// The lane's task.
    pub task: Task,
    /// The lane's cumulative served energy, joules (monotone; the
    /// coordinator differences consecutive ticks).
    pub energy_j_total: f64,
    /// The lane's current queue pressure.
    pub pressure: f64,
}

/// What the coordinator writes back to one lane after a tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneAllocation {
    /// The lane this allocation is for.
    pub task: Task,
    /// The lane's new power envelope, watts.
    pub envelope_w: f64,
    /// The lane's EWMA measured power, watts.
    pub measured_w: f64,
}

/// The deterministic core of the fleet power coordinator: tracks each
/// lane's measured power (EWMA of served-energy deltas) and
/// re-allocates envelopes from the current pressure mix. Timer-free —
/// the caller supplies elapsed time, so the same logic runs under the
/// server's wall-clock thread and in tests on a synthetic timeline.
#[derive(Debug, Clone)]
pub struct FleetCoordinator {
    cfg: EnergyConfig,
    lanes: Vec<LaneTrack>,
}

#[derive(Debug, Clone)]
struct LaneTrack {
    task: Task,
    last_energy_j: f64,
    ewma: PowerEwma,
}

impl FleetCoordinator {
    /// A coordinator over `tasks` (stored in canonical order; the
    /// declaration order does not matter). `cfg` must already be
    /// validated.
    pub fn new(cfg: EnergyConfig, tasks: &[Task]) -> Self {
        let mut lanes: Vec<LaneTrack> = tasks
            .iter()
            .map(|&task| LaneTrack {
                task,
                last_energy_j: 0.0,
                ewma: PowerEwma::new(cfg.ewma_tau_s),
            })
            .collect();
        lanes.sort_by_key(|l| l.task.name());
        Self { cfg, lanes }
    }

    /// The budget this coordinator allocates under.
    pub fn config(&self) -> &EnergyConfig {
        &self.cfg
    }

    /// One coordinator tick: fold `dt_s` seconds of served energy into
    /// each lane's measured-power EWMA, then re-allocate envelopes from
    /// the observed pressures. Lanes missing from `observed` keep their
    /// last energy reading (zero pressure); unknown tasks in `observed`
    /// are ignored. Cumulative-energy regressions (a restarted lane)
    /// clamp to a zero delta rather than going negative.
    pub fn tick(&mut self, dt_s: f64, observed: &[LaneObservation]) -> Vec<LaneAllocation> {
        let mut demands = Vec::with_capacity(self.lanes.len());
        for lane in &mut self.lanes {
            let obs = observed.iter().find(|o| o.task == lane.task);
            let pressure = obs.map_or(0.0, |o| o.pressure);
            if let Some(o) = obs {
                if o.energy_j_total.is_finite() {
                    let delta = (o.energy_j_total - lane.last_energy_j).max(0.0);
                    lane.ewma.observe(delta, dt_s);
                    lane.last_energy_j = o.energy_j_total;
                }
            }
            demands.push(LaneDemand {
                task: lane.task,
                pressure,
            });
        }
        let envelopes = allocate(self.cfg.fleet_cap_w, self.cfg.floor_w, &demands);
        envelopes
            .iter()
            .map(|e| LaneAllocation {
                task: e.task,
                envelope_w: e.watts,
                measured_w: self
                    .lanes
                    .iter()
                    .find(|l| l.task == e.task)
                    .map_or(0.0, |l| l.ewma.watts()),
            })
            .collect()
    }

    /// The fleet's total measured power, watts: the sum of the lane
    /// EWMAs.
    pub fn fleet_measured_w(&self) -> f64 {
        self.lanes.iter().map(|l| l.ewma.watts()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn demand(task: Task, pressure: f64) -> LaneDemand {
        LaneDemand { task, pressure }
    }

    #[test]
    fn default_config_validates() {
        EnergyConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "floor_w")]
    fn floor_above_cap_is_rejected() {
        EnergyConfig {
            fleet_cap_w: 0.1,
            floor_w: 0.2,
            ..EnergyConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "fleet_cap_w")]
    fn nan_cap_is_rejected() {
        EnergyConfig {
            fleet_cap_w: f64::NAN,
            ..EnergyConfig::default()
        }
        .validate();
    }

    #[test]
    fn allocation_waterfills_toward_pressure() {
        let out = allocate(
            1.0,
            0.1,
            &[
                demand(Task::Sst2, 3.0),
                demand(Task::Mnli, 1.0),
                demand(Task::Qqp, 0.0),
            ],
        );
        // Canonical order: mnli, qqp, sst-2.
        assert_eq!(
            out.iter().map(|e| e.task).collect::<Vec<_>>(),
            [Task::Mnli, Task::Qqp, Task::Sst2]
        );
        // Headroom 0.7 splits 1:0:3 over the 0.1 floors.
        let w: Vec<f64> = out.iter().map(|e| e.watts).collect();
        assert!((w[0] - (0.1 + 0.7 * 0.25)).abs() < 1e-12);
        assert!((w[1] - 0.1).abs() < 1e-12, "idle lane holds the floor");
        assert!((w[2] - (0.1 + 0.7 * 0.75)).abs() < 1e-12);
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "envelopes spend the whole cap");
    }

    #[test]
    fn idle_fleet_splits_evenly_and_garbage_pressure_is_zero() {
        let even = allocate(
            0.4,
            0.05,
            &[demand(Task::Mnli, 0.0), demand(Task::Qnli, 0.0)],
        );
        assert!(even.iter().all(|e| (e.watts - 0.2).abs() < 1e-12));
        // NaN / negative pressures read as idle, not as poison.
        let sane = allocate(
            0.4,
            0.05,
            &[demand(Task::Mnli, f64::NAN), demand(Task::Qnli, 2.0)],
        );
        assert!((sane[0].watts - 0.05).abs() < 1e-12);
        assert!((sane[1].watts - 0.35).abs() < 1e-12);
        // Oversized floor: even split of the cap, never negative headroom.
        let squeezed = allocate(
            0.1,
            0.2,
            &[demand(Task::Mnli, 1.0), demand(Task::Qnli, 0.0)],
        );
        assert!(squeezed.iter().all(|e| (e.watts - 0.05).abs() < 1e-12));
        assert!(allocate(1.0, 0.1, &[]).is_empty());
    }

    #[test]
    fn ewma_tracks_power_and_shrugs_off_garbage() {
        let mut e = PowerEwma::new(0.1);
        assert_eq!(e.watts(), 0.0);
        // First sample primes directly: 0.05 J / 0.5 s = 0.1 W.
        assert!((e.observe(0.05, 0.5) - 0.1).abs() < 1e-12);
        // A long steady stretch converges to the new rate.
        for _ in 0..50 {
            e.observe(0.2 * 0.05, 0.05);
        }
        assert!((e.watts() - 0.2).abs() < 1e-3, "got {}", e.watts());
        // Garbage observations hold the average.
        let before = e.watts();
        e.observe(f64::NAN, 0.05);
        e.observe(0.01, 0.0);
        e.observe(-1.0, 0.05);
        e.observe(0.01, f64::NEG_INFINITY);
        assert_eq!(e.watts(), before);
        // Degenerate τ sanitizes instead of dividing by zero.
        let mut tiny = PowerEwma::new(f64::NAN);
        assert!(tiny.observe(0.01, 0.01).is_finite());
    }

    #[test]
    fn coordinator_differences_cumulative_energy() {
        let cfg = EnergyConfig {
            fleet_cap_w: 0.2,
            floor_w: 0.02,
            ewma_tau_s: 0.05,
            update_period_s: 0.05,
        };
        let mut c = FleetCoordinator::new(cfg, &[Task::Sst2, Task::Mnli]);
        let obs = |e_sst: f64, p_sst: f64| {
            vec![
                LaneObservation {
                    task: Task::Sst2,
                    energy_j_total: e_sst,
                    pressure: p_sst,
                },
                LaneObservation {
                    task: Task::Mnli,
                    energy_j_total: 0.0,
                    pressure: 0.0,
                },
            ]
        };
        // 5 mJ per 50 ms tick = 0.1 W sustained on the sst-2 lane.
        let mut total = 0.0;
        let mut last = Vec::new();
        for _ in 0..40 {
            total += 5e-3;
            last = c.tick(0.05, &obs(total, 4.0));
        }
        let sst = last.iter().find(|a| a.task == Task::Sst2).unwrap();
        let mnli = last.iter().find(|a| a.task == Task::Mnli).unwrap();
        assert!(
            (sst.measured_w - 0.1).abs() < 5e-3,
            "got {}",
            sst.measured_w
        );
        assert_eq!(mnli.measured_w, 0.0);
        // All the headroom flows to the one pressured lane.
        assert!((sst.envelope_w - 0.18).abs() < 1e-12);
        assert!((mnli.envelope_w - 0.02).abs() < 1e-12);
        assert!((c.fleet_measured_w() - sst.measured_w).abs() < 1e-12);
        // An energy regression (restarted lane) clamps to zero delta.
        let before = c.fleet_measured_w();
        c.tick(0.05, &obs(0.0, 0.0));
        assert!(c.fleet_measured_w() <= before);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn allocation_invariants(
            cap in 1e-3f64..10.0,
            floor_frac in 0.0f64..0.24,
            p in proptest::collection::vec(-1.0f64..100.0, 1..5),
        ) {
            let tasks = Task::all();
            let floor = cap * floor_frac;
            let demands: Vec<LaneDemand> = p
                .iter()
                .enumerate()
                .map(|(i, &pr)| demand(tasks[i], pr))
                .collect();
            let out = allocate(cap, floor, &demands);
            prop_assert_eq!(out.len(), demands.len());
            let sum: f64 = out.iter().map(|e| e.watts).sum();
            prop_assert!(sum <= cap * (1.0 + 1e-9), "sum {} cap {}", sum, cap);
            for e in &out {
                prop_assert!(e.watts >= 0.0);
                prop_assert!(
                    e.watts >= floor * (1.0 - 1e-9),
                    "lane {} got {} under floor {}",
                    e.task.name(),
                    e.watts,
                    floor
                );
            }
            // Declaration order must not matter: reversed demands give
            // the identical allocation.
            let mut rev = demands.clone();
            rev.reverse();
            let out_rev = allocate(cap, floor, &rev);
            prop_assert_eq!(out, out_rev);
        }
    }
}
