//! The per-sentence inference engine: Algorithms 1 and 2 with full
//! hardware cost accounting, behind an owned request/response serving
//! API.
//!
//! Three modes are modelled, matching the paper's evaluation bars:
//!
//! * **Base** — conventional 12-layer inference at nominal V/F
//!   (Fig. 1a);
//! * **Conventional EE** — Algorithm 1: exit when the off-ramp entropy
//!   falls below `E_T`, always at nominal V/F because the exit layer is
//!   unknown in advance (Fig. 1b);
//! * **Latency-aware (LAI)** — Algorithm 2: compute layer 1 at nominal,
//!   use the predictor LUT to forecast the exit layer, scale V/F so the
//!   remaining layers finish exactly at the latency target, keep checking
//!   the true entropy on the way, and stop unconditionally at the
//!   forecast layer (Fig. 1c).
//!
//! The latency target and accuracy-drop tier are **request-scoped**
//! (paper §1: the deadline is a per-sentence, per-application input —
//! a voice assistant and a translator share silicon but not budgets).
//! [`InferenceRequest`] carries both; [`EdgeBertEngine`] holds defaults
//! for requests that leave them unset. Engines own their model and LUT
//! through [`Arc`]s, so they are `Send + 'static` and can be moved into
//! worker threads or pooled; construction goes through [`EngineBuilder`].

use crate::backend::{
    AcceleratorBackend, BackendSpec, InferenceBackend, MobileGpuBackend, SegmentCost,
};
use crate::overload::Degradation;
use crate::predictor::PredictorLut;
use crate::session::InferenceSession;
use edgebert_envm::CellTech;
use edgebert_hw::{AcceleratorConfig, AcceleratorSim, MobileGpu, WorkloadParams};
use edgebert_model::AlbertModel;
use edgebert_tasks::Dataset;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Relative tolerance applied when judging a latency against its
/// deadline (see [`deadline_met`]).
pub const DEADLINE_REL_TOLERANCE: f64 = 1e-4;

/// The single deadline-met rule: `latency ≤ target · (1 + 1e-4)`.
///
/// The DVFS controller solves `Freq_opt = N_cycles / (T − T_elapsed)`
/// exactly, so a feasible sentence's modeled finish time lands *on* the
/// target up to f32 V/F-grid rounding; a strict `latency ≤ target`
/// would misclassify those exactly-on-time sentences as violations.
/// The 1e-4 relative tolerance absorbs that grid rounding and nothing
/// more — a real overrun is orders of magnitude larger. Every
/// deadline judgment in the engine, the serving runtimes, and the
/// scheduler goes through this helper so violation rates are computed
/// under one rule regardless of code path.
pub fn deadline_met(latency_s: f64, target_s: f64) -> bool {
    latency_s <= target_s * (1.0 + DEADLINE_REL_TOLERANCE)
}

/// Which inference scheme to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InferenceMode {
    /// Full-depth inference at nominal V/F.
    Base,
    /// Conventional early exit (Algorithm 1) at nominal V/F.
    ConventionalEe,
    /// EdgeBERT latency-aware inference (Algorithm 2) with DVFS.
    LatencyAware,
}

impl InferenceMode {
    /// All modes, in the paper's Base → EE → LAI order.
    pub fn all() -> [InferenceMode; 3] {
        [
            InferenceMode::Base,
            InferenceMode::ConventionalEe,
            InferenceMode::LatencyAware,
        ]
    }
}

/// The calibrated accuracy-drop tier a request is willing to tolerate
/// (paper §5.1: thresholds are calibrated at 1/2/5 % drops against the
/// full-depth model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropTarget {
    /// ≤ 1 % accuracy drop: the conservative tier.
    OnePercent,
    /// ≤ 2 % accuracy drop.
    TwoPercent,
    /// ≤ 5 % accuracy drop: the aggressive tier.
    FivePercent,
}

impl DropTarget {
    /// All tiers, tightest first (the calibration array order).
    pub fn all() -> [DropTarget; 3] {
        [
            DropTarget::OnePercent,
            DropTarget::TwoPercent,
            DropTarget::FivePercent,
        ]
    }

    /// Index into the per-tier calibration arrays.
    pub fn index(self) -> usize {
        match self {
            DropTarget::OnePercent => 0,
            DropTarget::TwoPercent => 1,
            DropTarget::FivePercent => 2,
        }
    }

    /// The tolerated accuracy drop as a fraction.
    pub fn fraction(self) -> f32 {
        match self {
            DropTarget::OnePercent => 0.01,
            DropTarget::TwoPercent => 0.02,
            DropTarget::FivePercent => 0.05,
        }
    }

    /// The tier `notches` steps looser than this one, saturating at the
    /// aggressive [`FivePercent`](DropTarget::FivePercent) tier. The
    /// overload ladder uses this to trade calibrated accuracy for
    /// earlier exits under pressure; zero notches is the identity.
    pub fn degraded(self, notches: u8) -> DropTarget {
        Self::all()[(self.index() + notches as usize).min(Self::all().len() - 1)]
    }
}

/// One tier's calibrated entropy thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EntropyThresholds {
    /// Threshold for conventional EE (Algorithm 1).
    pub conventional: f32,
    /// Threshold for latency-aware inference (typically lower; §5.1).
    pub latency_aware: f32,
}

impl EntropyThresholds {
    /// Same threshold for both algorithms.
    pub fn uniform(threshold: f32) -> Self {
        Self {
            conventional: threshold,
            latency_aware: threshold,
        }
    }
}

/// One sentence to classify, with its request-scoped service levels.
///
/// `latency_target_s` and `drop_target` override the engine defaults
/// when set; a request built with [`InferenceRequest::new`] inherits
/// both from the engine that serves it.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct InferenceRequest {
    /// Token ids of the sentence.
    pub tokens: Vec<u32>,
    /// Inference scheme to run.
    pub mode: InferenceMode,
    /// Per-request latency deadline, seconds (None → engine default).
    pub latency_target_s: Option<f64>,
    /// Per-request accuracy-drop tier (None → engine default).
    pub drop_target: Option<DropTarget>,
    /// Time this request already spent queued before reaching the
    /// engine, seconds. The engine deducts it from the latency target
    /// before sizing the DVFS compute budget, so voltage/frequency
    /// scaling sees the *true remaining slack* rather than the full
    /// target, and judges the deadline on `elapsed + compute`. Zero
    /// (the default) reproduces unqueued serving bit for bit.
    pub elapsed_queue_s: f64,
    /// Queue-pressure cap on the DVFS stretch window, seconds from
    /// dispatch (`None` → uncapped, the default). A serving front-end
    /// that pops this request while tighter-deadline work is queued
    /// behind it stamps the successor's deadline gap here, so a greedy
    /// sentence stops stretching compute into slack the queued work
    /// needs. The cap only bounds the *compute window* handed to DVFS;
    /// the deadline verdict still judges the request's own target, and
    /// a cap can never flip an otherwise-met deadline to missed.
    pub stretch_cap_s: Option<f64>,
    /// How many accuracy-tier notches the overload ladder may degrade
    /// this request by when its lane is under pressure (see
    /// [`crate::overload`]). Zero — the default — means *never*: the
    /// request is always served at its requested tier and thresholds,
    /// bit-identical to pre-overload behavior, whatever the ladder
    /// does.
    pub max_degradation: u8,
    /// Power envelope this request's DVFS decisions must fit under,
    /// watts of sustained compute draw (`None` → unconstrained, the
    /// default). A serving front-end running fleet energy budgeting
    /// ([`crate::energy`]) stamps the lane's per-shard allowance here
    /// at pop time. The envelope bounds only the *operating point*
    /// (via [`InferenceBackend::decide_capped`](crate::backend::InferenceBackend::decide_capped));
    /// the deadline verdict still judges the request's own target, so
    /// an envelope that forbids the deadline-meeting point surfaces as
    /// deadline risk rather than a silently re-priced budget.
    pub envelope_w: Option<f64>,
}

// Hand-written (not derived) so the queue stamp and stretch cap stay
// optional on the wire: requests serialized before `elapsed_queue_s` or
// `stretch_cap_s` existed — or sent by clients that have no business
// knowing about queues — parse with a zero stamp and no cap instead of
// failing on the missing fields.
impl serde::Deserialize for InferenceRequest {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            tokens: serde::Deserialize::from_value(value.field("tokens")?)?,
            mode: serde::Deserialize::from_value(value.field("mode")?)?,
            latency_target_s: serde::Deserialize::from_value(value.field("latency_target_s")?)?,
            drop_target: serde::Deserialize::from_value(value.field("drop_target")?)?,
            elapsed_queue_s: match value.field("elapsed_queue_s") {
                Ok(stamp) => serde::Deserialize::from_value(stamp)?,
                Err(_) => 0.0,
            },
            stretch_cap_s: match value.field("stretch_cap_s") {
                Ok(cap) => serde::Deserialize::from_value(cap)?,
                Err(_) => None,
            },
            max_degradation: match value.field("max_degradation") {
                Ok(floor) => serde::Deserialize::from_value(floor)?,
                Err(_) => 0,
            },
            envelope_w: match value.field("envelope_w") {
                Ok(envelope) => serde::Deserialize::from_value(envelope)?,
                Err(_) => None,
            },
        })
    }
}

impl InferenceRequest {
    /// Latency-aware request inheriting the engine's deadline and tier.
    pub fn new(tokens: Vec<u32>) -> Self {
        Self {
            tokens,
            mode: InferenceMode::LatencyAware,
            latency_target_s: None,
            drop_target: None,
            elapsed_queue_s: 0.0,
            stretch_cap_s: None,
            max_degradation: 0,
            envelope_w: None,
        }
    }

    /// Sets the inference scheme.
    pub fn with_mode(mut self, mode: InferenceMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets a per-request latency deadline.
    pub fn with_latency_target(mut self, seconds: f64) -> Self {
        self.latency_target_s = Some(seconds);
        self
    }

    /// Sets a per-request accuracy-drop tier.
    pub fn with_drop_target(mut self, drop: DropTarget) -> Self {
        self.drop_target = Some(drop);
        self
    }

    /// Records time already spent queued (seconds). Serving front-ends
    /// measure the wait between admission and dispatch and stamp it
    /// here, so the engine budgets DVFS against the remaining slack.
    pub fn with_elapsed_queue_s(mut self, seconds: f64) -> Self {
        self.elapsed_queue_s = seconds;
        self
    }

    /// Caps the DVFS stretch window at `seconds` from dispatch (see
    /// [`stretch_cap_s`](Self::stretch_cap_s)). Serving front-ends
    /// stamp the successor head-of-queue deadline gap here at pop time
    /// when queue-pressure-aware stretch is enabled.
    pub fn with_stretch_cap_s(mut self, seconds: f64) -> Self {
        self.stretch_cap_s = Some(seconds);
        self
    }

    /// Allows the overload ladder to degrade this request by up to
    /// `notches` accuracy tiers under pressure (see
    /// [`max_degradation`](Self::max_degradation)). The default of zero
    /// forbids any degradation.
    pub fn with_max_degradation(mut self, notches: u8) -> Self {
        self.max_degradation = notches;
        self
    }

    /// Caps this request's DVFS power draw at `watts` (see
    /// [`envelope_w`](Self::envelope_w)). Serving front-ends running
    /// fleet energy budgeting stamp the lane's per-shard allowance here
    /// at pop time.
    pub fn with_envelope_w(mut self, watts: f64) -> Self {
        self.envelope_w = Some(watts);
        self
    }

    /// The queueing delay as the engine will account it: non-finite or
    /// negative stamps sanitize to zero rather than poisoning the DVFS
    /// budget (requests arrive from the wire).
    pub fn effective_elapsed_queue_s(&self) -> f64 {
        if self.elapsed_queue_s.is_finite() && self.elapsed_queue_s > 0.0 {
            self.elapsed_queue_s
        } else {
            0.0
        }
    }

    /// The stretch cap as the engine will apply it: non-finite caps
    /// sanitize to `None` (uncapped); a non-positive cap clamps to zero
    /// (the sentence gets no stretch budget at all and runs at
    /// nominal). Requests arrive from the wire.
    pub fn effective_stretch_cap_s(&self) -> Option<f64> {
        match self.stretch_cap_s {
            Some(cap) if cap.is_finite() => Some(cap.max(0.0)),
            _ => None,
        }
    }

    /// The power envelope as the engine will apply it: non-finite
    /// envelopes sanitize to `None` (unconstrained); a negative
    /// envelope clamps to zero watts (the backend's floor point — the
    /// clock never stalls). Requests arrive from the wire.
    pub fn effective_envelope_w(&self) -> Option<f64> {
        match self.envelope_w {
            Some(w) if w.is_finite() => Some(w.max(0.0)),
            _ => None,
        }
    }
}

/// Per-sentence outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SentenceResult {
    /// Scheme used.
    pub mode: InferenceMode,
    /// Layer at which inference stopped (1-based).
    pub exit_layer: usize,
    /// Predictor forecast (LAI only).
    pub predicted_layer: Option<usize>,
    /// Predicted class at the exit layer.
    pub prediction: usize,
    /// End-to-end latency, seconds (embedding read + compute +
    /// regulator/clock transitions).
    pub latency_s: f64,
    /// Energy, joules.
    pub energy_j: f64,
    /// Supply voltage used for layers after the DVFS decision.
    pub voltage: f32,
    /// Clock frequency used after the DVFS decision, Hz.
    pub freq_hz: f64,
    /// Whether the sentence met the latency target (always true for the
    /// unbounded Base/EE modes).
    pub deadline_met: bool,
}

/// The outcome of serving one [`InferenceRequest`], echoing the service
/// levels that were actually applied after default resolution.
///
/// Unlike the bare `run_*` engine methods — where Base/EE are the
/// paper's unbounded baselines and always report `deadline_met = true`
/// — a response's `result.deadline_met` is judged against
/// `latency_target_s` for every mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceResponse {
    /// The per-sentence result.
    pub result: SentenceResult,
    /// The latency target the request was served under, seconds.
    pub latency_target_s: f64,
    /// The accuracy-drop tier the request was served under.
    pub drop_target: DropTarget,
}

/// Aggregate statistics over a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregateResult {
    /// Classification accuracy.
    pub accuracy: f32,
    /// Mean exit layer.
    pub avg_exit_layer: f32,
    /// Mean predicted exit layer (LAI; equals exit layer otherwise).
    pub avg_predicted_layer: f32,
    /// Mean per-sentence energy, joules.
    pub avg_energy_j: f64,
    /// Mean per-sentence latency, seconds.
    pub avg_latency_s: f64,
    /// Mean post-decision supply voltage, volts.
    pub avg_voltage: f32,
    /// Mean post-decision clock frequency, Hz.
    pub avg_freq_hz: f64,
    /// Fraction of sentences that missed the latency target.
    pub deadline_miss_rate: f32,
}

impl AggregateResult {
    /// Folds per-sentence results against gold labels. Results and
    /// labels are reduced in index order, so the aggregate is identical
    /// no matter how the results were produced (sequentially or across
    /// worker threads).
    pub fn from_results(results: &[SentenceResult], labels: &[usize]) -> Self {
        assert_eq!(results.len(), labels.len(), "one label per result");
        let mut hits = 0usize;
        let mut exit_sum = 0.0f32;
        let mut pred_sum = 0.0f32;
        let mut energy = 0.0f64;
        let mut latency = 0.0f64;
        let mut volts = 0.0f32;
        let mut freq = 0.0f64;
        let mut misses = 0usize;
        for (r, &label) in results.iter().zip(labels) {
            if r.prediction == label {
                hits += 1;
            }
            exit_sum += r.exit_layer as f32;
            pred_sum += r.predicted_layer.unwrap_or(r.exit_layer) as f32;
            energy += r.energy_j;
            latency += r.latency_s;
            volts += r.voltage;
            freq += r.freq_hz;
            if !r.deadline_met {
                misses += 1;
            }
        }
        let n = results.len().max(1) as f64;
        AggregateResult {
            accuracy: hits as f32 / n as f32,
            avg_exit_layer: exit_sum / n as f32,
            avg_predicted_layer: pred_sum / n as f32,
            avg_energy_j: energy / n,
            avg_latency_s: latency / n,
            avg_voltage: volts / n as f32,
            avg_freq_hz: freq / n,
            deadline_miss_rate: misses as f32 / n as f32,
        }
    }
}

/// Fluent construction of an [`EdgeBertEngine`] — every knob of the old
/// seven-positional-argument constructor, plus the request defaults,
/// settable independently.
///
/// ```no_run
/// use edgebert::engine::{DropTarget, EngineBuilder, EntropyThresholds};
/// use edgebert_hw::{AcceleratorConfig, WorkloadParams};
/// # fn demo(model: std::sync::Arc<edgebert_model::AlbertModel>,
/// #         lut: std::sync::Arc<edgebert::predictor::PredictorLut>) {
/// let engine = EngineBuilder::new(model, lut)
///     .accelerator(AcceleratorConfig::energy_optimal())
///     .workload(WorkloadParams::albert_base())
///     .uniform_thresholds(EntropyThresholds { conventional: 0.3, latency_aware: 0.25 })
///     .latency_target(50e-3)
///     .drop_target(DropTarget::OnePercent)
///     .build();
/// # let _ = engine;
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    model: Arc<AlbertModel>,
    lut: Arc<PredictorLut>,
    accel: AcceleratorConfig,
    workload: WorkloadParams,
    cell_tech: CellTech,
    envm_capacity_mb: f64,
    backend: BackendSpec,
    thresholds: [EntropyThresholds; 3],
    default_latency_target_s: f64,
    default_drop: DropTarget,
}

impl EngineBuilder {
    /// Starts a builder with the paper's defaults: the energy-optimal
    /// accelerator (`n = 16`), the unoptimized ALBERT-base workload, a
    /// 2 MB MLC2 ReRAM embedding buffer, a 0.2-entropy threshold on
    /// every tier, a 50 ms default deadline (the voice-assistant budget
    /// of §1), and the 1 %-drop default tier.
    pub fn new(model: Arc<AlbertModel>, lut: Arc<PredictorLut>) -> Self {
        Self {
            model,
            lut,
            accel: AcceleratorConfig::energy_optimal(),
            workload: WorkloadParams::albert_base(),
            cell_tech: CellTech::Mlc2,
            envm_capacity_mb: 2.0,
            backend: BackendSpec::Accelerator,
            thresholds: [EntropyThresholds::uniform(0.2); 3],
            default_latency_target_s: 50e-3,
            default_drop: DropTarget::OnePercent,
        }
    }

    /// Sets the accelerator design point.
    pub fn accelerator(mut self, accel: AcceleratorConfig) -> Self {
        self.accel = accel;
        self
    }

    /// Sets the hardware workload shapes.
    pub fn workload(mut self, workload: WorkloadParams) -> Self {
        self.workload = workload;
        self
    }

    /// The hardware workload currently wired into the builder — the
    /// shapes any engine built from it will cost against.
    pub fn workload_params(&self) -> &WorkloadParams {
        &self.workload
    }

    /// Sets the eNVM cell technology and capacity backing the embedding
    /// buffer.
    pub fn envm_cell(mut self, tech: CellTech, capacity_mb: f64) -> Self {
        self.cell_tech = tech;
        self.envm_capacity_mb = capacity_mb;
        self
    }

    /// Selects the hardware backend the engine costs against. The
    /// default, [`BackendSpec::Accelerator`], assembles the paper's
    /// accelerator from the builder's wired accelerator config,
    /// workload, and eNVM cell; [`BackendSpec::MobileGpu`] costs the
    /// same wired workload on the mobile-GPU comparison baseline;
    /// [`BackendSpec::Custom`] slots in any [`InferenceBackend`].
    pub fn backend(mut self, backend: BackendSpec) -> Self {
        self.backend = backend;
        self
    }

    /// Sets one tier's calibrated entropy thresholds.
    pub fn thresholds_for(mut self, tier: DropTarget, thresholds: EntropyThresholds) -> Self {
        self.thresholds[tier.index()] = thresholds;
        self
    }

    /// Sets the same thresholds on every tier (single-operating-point
    /// engines, e.g. unit fixtures).
    pub fn uniform_thresholds(mut self, thresholds: EntropyThresholds) -> Self {
        self.thresholds = [thresholds; 3];
        self
    }

    /// Loads all three tiers from calibration results (1/2/5 % order, as
    /// produced by the pipeline).
    pub fn calibrated_thresholds(
        mut self,
        conventional: [f32; 3],
        latency_aware: [f32; 3],
    ) -> Self {
        for i in 0..3 {
            self.thresholds[i] = EntropyThresholds {
                conventional: conventional[i],
                latency_aware: latency_aware[i],
            };
        }
        self
    }

    /// Sets the default per-sentence latency target for requests that
    /// carry none.
    pub fn latency_target(mut self, seconds: f64) -> Self {
        self.default_latency_target_s = seconds;
        self
    }

    /// Sets the default accuracy-drop tier for requests that carry none.
    pub fn drop_target(mut self, drop: DropTarget) -> Self {
        self.default_drop = drop;
        self
    }

    /// Builds the engine.
    pub fn build(self) -> EdgeBertEngine {
        let backend: Arc<dyn InferenceBackend> = match self.backend {
            BackendSpec::Accelerator => Arc::new(AcceleratorBackend::new(
                self.accel,
                &self.workload,
                self.cell_tech,
                self.envm_capacity_mb,
            )),
            BackendSpec::MobileGpu(gpu) => {
                Arc::new(MobileGpuBackend::from_workload(gpu, &self.workload))
            }
            BackendSpec::Custom(backend) => backend,
        };
        let layer_cycles = backend.layer_cycles();
        EdgeBertEngine {
            model: self.model,
            lut: self.lut,
            backend,
            layer_cycles,
            workload: self.workload,
            thresholds: self.thresholds,
            default_latency_target_s: self.default_latency_target_s,
            default_drop: self.default_drop,
        }
    }
}

/// The engine: software model + predictor LUT + hardware backend.
///
/// Owns its model, LUT, and [`InferenceBackend`] (via [`Arc`]), so it
/// is `Send + 'static`: build once, move into worker threads, or clone
/// cheaply — the shared weights and backend are reference-counted.
#[derive(Debug, Clone)]
pub struct EdgeBertEngine {
    model: Arc<AlbertModel>,
    lut: Arc<PredictorLut>,
    backend: Arc<dyn InferenceBackend>,
    layer_cycles: u64,
    workload: WorkloadParams,
    thresholds: [EntropyThresholds; 3],
    default_latency_target_s: f64,
    default_drop: DropTarget,
}

// The serving API hands `&EdgeBertEngine` to scoped worker threads and
// moves owned engines into pools; both require Send + Sync + 'static.
const _: () = {
    const fn assert_send_sync<T: Send + Sync + 'static>() {}
    assert_send_sync::<EdgeBertEngine>();
};

impl EdgeBertEngine {
    /// Starts a builder (see [`EngineBuilder`]).
    pub fn builder(model: Arc<AlbertModel>, lut: Arc<PredictorLut>) -> EngineBuilder {
        EngineBuilder::new(model, lut)
    }

    /// Cycles of one encoder layer on this hardware configuration.
    pub fn layer_cycles(&self) -> u64 {
        self.layer_cycles
    }

    /// The hardware backend this engine costs inferences against.
    pub fn backend(&self) -> &dyn InferenceBackend {
        self.backend.as_ref()
    }

    /// The predictor LUT the LAI forecast indexes.
    pub(crate) fn lut(&self) -> &PredictorLut {
        &self.lut
    }

    /// A pessimistic estimate of one sentence's nominal-V/F service
    /// time on this engine, seconds: the fixed per-sentence costs plus
    /// a full-depth pass at the nominal point, plus the worst-case
    /// transition reserve. Queue-pressure-aware serving uses it to
    /// size the stretch cap so the successor can still run at nominal
    /// inside its own deadline.
    pub fn nominal_service_estimate_s(&self) -> f64 {
        let b = self.backend.as_ref();
        b.sentence_overhead().seconds
            + b.wake_transition_s()
            + b.embedding_read_cost().seconds
            + b.run_layers_nominal(self.model.num_layers()).seconds
            + b.floor_transition_s()
    }

    /// The op-level accelerator simulator, when the engine runs on the
    /// accelerator backend (`None` on the mGPU baseline or a custom
    /// backend).
    pub fn accelerator_sim(&self) -> Option<&AcceleratorSim> {
        self.backend.as_accelerator()
    }

    /// The hardware workload shapes the engine's backend was built on.
    pub fn workload_params(&self) -> &WorkloadParams {
        &self.workload
    }

    /// The model served by this engine.
    pub fn model(&self) -> &AlbertModel {
        &self.model
    }

    /// The default latency target applied to requests that carry none.
    pub fn default_latency_target_s(&self) -> f64 {
        self.default_latency_target_s
    }

    /// The default accuracy-drop tier applied to requests that carry
    /// none.
    pub fn default_drop_target(&self) -> DropTarget {
        self.default_drop
    }

    /// The calibrated thresholds of one tier.
    pub fn thresholds(&self, tier: DropTarget) -> EntropyThresholds {
        self.thresholds[tier.index()]
    }

    /// Serves one request, resolving unset service levels against the
    /// engine defaults. Equivalent to
    /// [`begin`](Self::begin)`(request).finish()` — one resumable
    /// session driven to completion without ever parking.
    ///
    /// Requests arrive from the wire, so degenerate token lists must not
    /// take the engine down: an empty sentence is served as a single
    /// padding token, out-of-vocabulary ids map to the padding token,
    /// and over-long sequences truncate to the model's position table —
    /// rather than panicking inside the embedding lookup (which, on a
    /// pooled worker thread, would hang the worker's whole lane).
    ///
    /// A request stamped with [`InferenceRequest::with_elapsed_queue_s`]
    /// is served against its *remaining* slack: the DVFS budget shrinks
    /// by the queueing delay and the deadline verdict judges
    /// `elapsed + compute` against the target. A zero stamp (the
    /// default) is bit-identical to unqueued serving. A request capped
    /// with [`InferenceRequest::with_stretch_cap_s`] additionally has
    /// its DVFS stretch window clamped to the cap (the verdict still
    /// judges its own target); no cap is bit-identical to the uncapped
    /// path.
    pub fn serve(&self, request: &InferenceRequest) -> InferenceResponse {
        self.begin(request).finish()
    }

    /// [`serve`](Self::serve) with an overload-ladder degradation
    /// applied: the session runs at the degraded tier and scaled
    /// entropy-exit threshold. [`Degradation::NONE`] is bit-identical
    /// to [`serve`](Self::serve).
    pub fn serve_degraded(
        &self,
        request: &InferenceRequest,
        degradation: Degradation,
    ) -> InferenceResponse {
        self.begin_degraded(request, degradation).finish()
    }

    /// Opens a resumable, layer-granular session over one request (see
    /// [`InferenceSession`]): service levels resolve against the engine
    /// defaults, wire tokens sanitize exactly as in
    /// [`serve`](Self::serve), and garbage queue stamps / stretch caps
    /// sanitize to zero / uncapped. Each
    /// [`step`](InferenceSession::step) executes one encoder layer;
    /// the session can be parked at any layer boundary and resumed
    /// later — with a fresh DVFS decision against the remaining slack.
    pub fn begin(&self, request: &InferenceRequest) -> InferenceSession {
        self.begin_degraded(request, Degradation::NONE)
    }

    /// [`begin`](Self::begin) with an overload-ladder degradation: the
    /// resolved tier drops by `degradation.tier_notches` (saturating)
    /// and the entropy-exit threshold scales by
    /// `degradation.entropy_scale` before the session opens.
    /// [`Degradation::NONE`] takes the exact [`begin`](Self::begin)
    /// path. The caller (the serving layer) is responsible for bounding
    /// the degradation by the request's
    /// [`max_degradation`](InferenceRequest::max_degradation) via
    /// [`OverloadConfig::degradation_for`](crate::overload::OverloadConfig::degradation_for).
    pub fn begin_degraded(
        &self,
        request: &InferenceRequest,
        degradation: Degradation,
    ) -> InferenceSession {
        let target_s = request
            .latency_target_s
            .unwrap_or(self.default_latency_target_s);
        let drop = request.drop_target.unwrap_or(self.default_drop);
        let elapsed_s = request.effective_elapsed_queue_s();
        let cap_s = request.effective_stretch_cap_s();
        let pad = [edgebert_tasks::vocab::PAD];
        let tokens: &[u32] = if request.tokens.is_empty() {
            &pad
        } else {
            &request.tokens
        };
        let vocab = self.model.config.vocab_size as u32;
        let max_len = self.model.config.max_seq_len;
        let sanitized: Vec<u32>;
        let tokens: &[u32] = if tokens.len() > max_len || tokens.iter().any(|&t| t >= vocab) {
            sanitized = tokens
                .iter()
                .take(max_len)
                .map(|&t| {
                    if t >= vocab {
                        edgebert_tasks::vocab::PAD
                    } else {
                        t
                    }
                })
                .collect();
            &sanitized
        } else {
            tokens
        };
        InferenceSession::new(
            self.clone(),
            tokens,
            request.mode,
            target_s,
            drop,
            elapsed_s,
            cap_s,
            request.effective_envelope_w(),
            degradation,
        )
    }

    /// Rebinds a serialized [`SessionCheckpoint`] to this engine and
    /// returns the parked session, ready to
    /// [`resume`](InferenceSession::resume) — charging the wall time
    /// the envelope spent in transit against the sentence's slack,
    /// exactly as an in-process park would. With an engine built from
    /// the same model, LUT, and backend configuration as the
    /// checkpointing one, `park → checkpoint → restore → resume` is
    /// bit-identical to `park → resume`.
    ///
    /// # Panics
    ///
    /// Panics when the checkpoint's model depth does not match this
    /// engine's (see [`InferenceSession::checkpoint`]).
    pub fn restore_session(
        &self,
        checkpoint: crate::session::SessionCheckpoint,
    ) -> InferenceSession {
        InferenceSession::restore(self.clone(), checkpoint)
    }

    /// Runs a sentence in the requested mode at the engine defaults.
    pub fn run(&self, tokens: &[u32], mode: InferenceMode) -> SentenceResult {
        self.run_at(
            tokens,
            mode,
            self.default_latency_target_s,
            self.default_drop,
        )
    }

    /// Runs a sentence with explicit service levels.
    pub fn run_at(
        &self,
        tokens: &[u32],
        mode: InferenceMode,
        latency_target_s: f64,
        drop: DropTarget,
    ) -> SentenceResult {
        match mode {
            InferenceMode::Base => self.run_base(tokens),
            InferenceMode::ConventionalEe => self.run_conventional_ee_at(tokens, drop),
            InferenceMode::LatencyAware => {
                self.run_latency_aware_at(tokens, latency_target_s, drop)
            }
        }
    }

    /// Conventional full-depth inference at nominal V/F: a session
    /// driven to completion.
    pub fn run_base(&self, tokens: &[u32]) -> SentenceResult {
        self.begin_raw(
            tokens,
            InferenceMode::Base,
            self.default_latency_target_s,
            self.default_drop,
            0.0,
        )
        .run_to_completion()
    }

    /// Algorithm 1 at the engine's default drop tier.
    pub fn run_conventional_ee(&self, tokens: &[u32]) -> SentenceResult {
        self.run_conventional_ee_at(tokens, self.default_drop)
    }

    /// Algorithm 1: conventional early exit at nominal V/F, using the
    /// tier's calibrated threshold — a session driven to completion.
    pub fn run_conventional_ee_at(&self, tokens: &[u32], drop: DropTarget) -> SentenceResult {
        self.begin_raw(
            tokens,
            InferenceMode::ConventionalEe,
            self.default_latency_target_s,
            drop,
            0.0,
        )
        .run_to_completion()
    }

    /// Algorithm 2 at the engine's default deadline and drop tier.
    pub fn run_latency_aware(&self, tokens: &[u32]) -> SentenceResult {
        self.run_latency_aware_at(tokens, self.default_latency_target_s, self.default_drop)
    }

    /// Algorithm 2: EdgeBERT latency-aware inference against an explicit
    /// per-request deadline and drop tier.
    pub fn run_latency_aware_at(
        &self,
        tokens: &[u32],
        latency_target_s: f64,
        drop: DropTarget,
    ) -> SentenceResult {
        self.run_latency_aware_queued(tokens, latency_target_s, drop, 0.0)
    }

    /// Algorithm 2 for a sentence that already burned `elapsed_queue_s`
    /// of its target waiting in a queue: the DVFS compute budget is the
    /// target minus the wait (paper §5.2's `T − T_elapsed` with the
    /// queueing delay folded into `T_elapsed`), and the deadline verdict
    /// judges `elapsed + compute` against the full target. With
    /// `elapsed_queue_s = 0.0` every arithmetic step is identical to
    /// [`run_latency_aware_at`](Self::run_latency_aware_at), bit for
    /// bit.
    pub fn run_latency_aware_queued(
        &self,
        tokens: &[u32],
        latency_target_s: f64,
        drop: DropTarget,
        elapsed_queue_s: f64,
    ) -> SentenceResult {
        self.begin_raw(
            tokens,
            InferenceMode::LatencyAware,
            latency_target_s,
            drop,
            elapsed_queue_s,
        )
        .run_to_completion()
    }

    /// Opens a session over raw tokens with explicit service levels —
    /// the un-sanitized path behind the `run_*` wrappers (request-
    /// scoped entry points go through [`begin`](Self::begin), which
    /// sanitizes wire input first).
    ///
    /// # Panics
    ///
    /// Panics if `elapsed_queue_s` is negative or non-finite.
    fn begin_raw(
        &self,
        tokens: &[u32],
        mode: InferenceMode,
        latency_target_s: f64,
        drop: DropTarget,
        elapsed_queue_s: f64,
    ) -> InferenceSession {
        InferenceSession::new(
            self.clone(),
            tokens,
            mode,
            latency_target_s,
            drop,
            elapsed_queue_s,
            None,
            None,
            Degradation::NONE,
        )
    }

    /// Serves a batch of requests across worker threads
    /// (`std::thread::scope`), preserving request order in the returned
    /// responses.
    pub fn serve_batch(&self, requests: &[InferenceRequest]) -> Vec<InferenceResponse> {
        let threads = default_threads(requests.len());
        self.serve_batch_with_threads(requests, threads)
    }

    /// [`serve_batch`](Self::serve_batch) with an explicit thread count
    /// (1 → fully sequential).
    pub fn serve_batch_with_threads(
        &self,
        requests: &[InferenceRequest],
        threads: usize,
    ) -> Vec<InferenceResponse> {
        run_chunked(requests, threads, |req| self.serve(req))
    }

    /// Runs a whole dataset and aggregates, fanning the sentences out
    /// across worker threads. The aggregate is bit-identical to
    /// [`evaluate_seq`](Self::evaluate_seq): per-sentence results land
    /// in their dataset slots and are reduced in index order.
    pub fn evaluate(&self, data: &Dataset, mode: InferenceMode) -> AggregateResult {
        self.evaluate_with_threads(data, mode, default_threads(data.len()))
    }

    /// Runs a whole dataset sequentially on the calling thread.
    pub fn evaluate_seq(&self, data: &Dataset, mode: InferenceMode) -> AggregateResult {
        self.evaluate_with_threads(data, mode, 1)
    }

    /// [`evaluate`](Self::evaluate) with an explicit thread count.
    pub fn evaluate_with_threads(
        &self,
        data: &Dataset,
        mode: InferenceMode,
        threads: usize,
    ) -> AggregateResult {
        let results = run_chunked(data.examples(), threads, |ex| self.run(&ex.tokens, mode));
        AggregateResult::from_results(&results, &data.labels())
    }

    /// Evaluates every mode over a dataset: the per-mode aggregate
    /// breakdown the paper's comparison bars are built from.
    pub fn evaluate_modes(&self, data: &Dataset) -> [(InferenceMode, AggregateResult); 3] {
        InferenceMode::all().map(|mode| (mode, self.evaluate(data, mode)))
    }

    /// The mGPU baseline cost for comparison rows, costed on the
    /// engine's wired workload: the AAS FLOP scale is derived from the
    /// same [`WorkloadParams`] this engine's backend was built on, so
    /// the baseline and the accelerator price the same shapes.
    pub fn mgpu_cost(&self, layers: usize) -> (f64, f64) {
        let SegmentCost { seconds, energy_j } = self.mgpu_baseline().full_inference(layers);
        (seconds, energy_j)
    }

    /// The mGPU baseline backend for this engine's wired workload. An
    /// engine already running on a mobile-GPU backend reuses it (its
    /// own anchor, not the default), so the comparison rows can never
    /// price a different GPU than the engine serves; otherwise the
    /// TX2-anchored baseline is derived via
    /// [`MobileGpuBackend::from_workload`].
    pub fn mgpu_baseline(&self) -> MobileGpuBackend {
        match self.backend.as_mobile_gpu() {
            Some(gpu) => gpu.clone(),
            None => MobileGpuBackend::from_workload(MobileGpu::default(), &self.workload),
        }
    }
}

/// The hardware workload shapes for one task, optionally with its
/// published optimization results applied (Table 1 spans, Table 3
/// encoder sparsity). The single source of the task → workload mapping
/// used by both the training pipeline and the serving runtimes.
pub fn task_hardware_workload(task: edgebert_tasks::Task, optimized: bool) -> WorkloadParams {
    let mut wl = WorkloadParams::albert_base();
    wl.classes = task.num_classes();
    if optimized {
        wl = wl.with_optimizations(task.paper_encoder_sparsity(), &task.paper_head_spans());
    }
    wl
}

/// Worker-thread count for a work list: one slot per item, capped at
/// the machine's parallelism. The `EDGEBERT_THREADS` environment
/// variable overrides the machine parallelism (CI forces `1` to check
/// the chunked/scheduled paths against sequential aggregates).
pub(crate) fn default_threads(items: usize) -> usize {
    let parallelism = std::env::var("EDGEBERT_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    parallelism.min(items.max(1))
}

/// Maps `f` over `items` across `threads` scoped workers, each filling a
/// contiguous chunk of the output so the result order matches the input
/// order exactly.
pub(crate) fn run_chunked<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.clamp(1, items.len());
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        for (slots, chunk_items) in results.chunks_mut(chunk).zip(items.chunks(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (slot, item) in slots.iter_mut().zip(chunk_items) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every chunk slot is filled by its worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::SweepCache;
    use crate::predictor::EntropyPredictor;
    use edgebert_model::{AlbertConfig, AlbertModel};
    use edgebert_tasks::{Task, TaskGenerator, VocabLayout};
    use edgebert_tensor::Rng;

    struct Fixture {
        model: Arc<AlbertModel>,
        lut: Arc<PredictorLut>,
        data: Dataset,
    }

    fn fixture() -> Fixture {
        let layout = VocabLayout::standard();
        let cfg = AlbertConfig::tiny(layout.vocab_size(), 2);
        let mut rng = Rng::seed_from(10);
        let model = AlbertModel::pretrained(cfg, &layout, &mut rng);
        let gen = TaskGenerator::standard(Task::Sst2, cfg.max_seq_len);
        let data = gen.generate(24, 5);
        let cache = SweepCache::build(&model, &data);
        let pred = EntropyPredictor::train(&cache.entropy_dataset(), 60, 3);
        let lut = pred.to_lut(32, 1.1);
        Fixture {
            model: Arc::new(model),
            lut: Arc::new(lut),
            data,
        }
    }

    fn engine(f: &Fixture, target_s: f64, et: f32) -> EdgeBertEngine {
        EngineBuilder::new(Arc::clone(&f.model), Arc::clone(&f.lut))
            .accelerator(AcceleratorConfig::energy_optimal())
            .workload(WorkloadParams::albert_base())
            .uniform_thresholds(EntropyThresholds::uniform(et))
            .latency_target(target_s)
            .build()
    }

    #[test]
    fn deadline_tolerance_is_pinned() {
        // The one deadline rule: latency ≤ target · (1 + 1e-4). Half the
        // tolerance passes, double it fails — pinning the semantics so a
        // drive-by edit can't silently reshape every violation rate.
        assert_eq!(DEADLINE_REL_TOLERANCE, 1e-4);
        for target in [1e-6, 50e-3, 2.0] {
            assert!(deadline_met(target, target));
            assert!(deadline_met(target * (1.0 + 0.5e-4), target));
            assert!(!deadline_met(target * (1.0 + 2.0e-4), target));
        }
        assert!(deadline_met(0.0, 0.0));
        assert!(!deadline_met(1e-9, 0.0));
    }

    #[test]
    fn all_paths_judge_deadlines_identically() {
        // Regression: the layer-1 exit path used strict `<=`, the DVFS
        // path used `target * 1.0001`, and `serve()` re-judged Base/EE
        // strictly. All three must now agree with `deadline_met`.
        let f = fixture();
        let tokens = f.data.examples()[0].tokens.clone();

        // Layer-1 exit path (huge threshold exits immediately).
        let eng = engine(&f, 50e-3, 100.0);
        let r = eng.run_latency_aware(&tokens);
        assert_eq!(r.exit_layer, 1);
        let on_time = eng.run_latency_aware_at(&tokens, r.latency_s, DropTarget::OnePercent);
        assert!(on_time.deadline_met, "exactly-on-time layer-1 exit is met");
        let edge = r.latency_s / (1.0 + 0.5e-4);
        assert_eq!(
            eng.run_latency_aware_at(&tokens, edge, DropTarget::OnePercent)
                .deadline_met,
            deadline_met(r.latency_s, edge),
        );

        // DVFS path (et = 0 never exits early).
        let eng = engine(&f, 50e-3, 0.0);
        let r = eng.run_latency_aware(&tokens);
        assert!(r.exit_layer > 1);
        assert_eq!(r.deadline_met, deadline_met(r.latency_s, 50e-3));

        // serve() re-judging the unbounded Base baseline.
        let base = eng.run_base(&tokens);
        for target in [base.latency_s, base.latency_s / (1.0 + 2.0e-4)] {
            let resp = eng.serve(
                &InferenceRequest::new(tokens.clone())
                    .with_mode(InferenceMode::Base)
                    .with_latency_target(target),
            );
            assert_eq!(
                resp.result.deadline_met,
                deadline_met(base.latency_s, target)
            );
        }
    }

    #[test]
    fn builder_reports_wired_workload() {
        let f = fixture();
        let mut custom = WorkloadParams::albert_base();
        custom.seq_len = 64;
        custom.weight_density = 0.25;
        let b =
            EngineBuilder::new(Arc::clone(&f.model), Arc::clone(&f.lut)).workload(custom.clone());
        assert_eq!(b.workload_params(), &custom);
    }

    #[test]
    fn base_runs_all_layers_at_nominal() {
        let f = fixture();
        let eng = engine(&f, 50e-3, 0.2);
        let r = eng.run_base(&f.data.examples()[0].tokens);
        assert_eq!(r.exit_layer, 4);
        assert_eq!(r.voltage, 0.8);
        assert!(r.deadline_met);
        assert!(r.energy_j > 0.0);
    }

    #[test]
    fn ee_exits_at_or_before_base() {
        let f = fixture();
        let eng = engine(&f, 50e-3, 10.0); // huge threshold: exit at 1
        for ex in f.data.iter().take(5) {
            let r = eng.run_conventional_ee(&ex.tokens);
            assert_eq!(r.exit_layer, 1);
            let b = eng.run_base(&ex.tokens);
            assert!(r.energy_j < b.energy_j);
            assert!(r.latency_s < b.latency_s);
        }
    }

    #[test]
    fn latency_aware_scales_voltage_down_with_loose_target() {
        let f = fixture();
        // Loose 200 ms target: remaining layers can run slow.
        let eng = engine(&f, 200e-3, 0.0); // et=0: never exits early
        let r = eng.run_latency_aware(&f.data.examples()[0].tokens);
        assert!(r.voltage < 0.8, "voltage {}", r.voltage);
        assert!(r.deadline_met);
        assert!(r.latency_s <= 200e-3 * 1.001);
    }

    #[test]
    fn latency_aware_beats_ee_energy_at_same_exit() {
        let f = fixture();
        let eng = engine(&f, 100e-3, 0.0);
        for ex in f.data.iter().take(6) {
            let lai = eng.run_latency_aware(&ex.tokens);
            let ee = eng.run_conventional_ee(&ex.tokens);
            if lai.exit_layer == ee.exit_layer && lai.voltage < 0.8 {
                assert!(
                    lai.energy_j < ee.energy_j,
                    "LAI {} vs EE {}",
                    lai.energy_j,
                    ee.energy_j
                );
            }
        }
    }

    #[test]
    fn impossible_target_is_flagged() {
        let f = fixture();
        // 1 µs target: infeasible even at nominal.
        let eng = engine(&f, 1e-6, 0.0);
        let r = eng.run_latency_aware(&f.data.examples()[0].tokens);
        assert!(!r.deadline_met);
        assert_eq!(r.voltage, 0.8); // falls back to max performance
    }

    #[test]
    fn immediate_exit_at_layer_one() {
        let f = fixture();
        let eng = engine(&f, 50e-3, 100.0);
        let r = eng.run_latency_aware(&f.data.examples()[0].tokens);
        assert_eq!(r.exit_layer, 1);
        assert_eq!(r.predicted_layer, Some(1));
    }

    #[test]
    fn evaluate_aggregates_consistently() {
        let f = fixture();
        let eng = engine(&f, 100e-3, 0.3);
        let agg = eng.evaluate(&f.data, InferenceMode::LatencyAware);
        assert!(agg.avg_exit_layer >= 1.0 && agg.avg_exit_layer <= 4.0);
        assert!(agg.avg_predicted_layer + 1e-4 >= agg.avg_exit_layer);
        assert!(agg.avg_energy_j > 0.0);
        assert!((0.0..=1.0).contains(&agg.accuracy));
        assert!((0.0..=1.0).contains(&agg.deadline_miss_rate));
    }

    #[test]
    fn energy_ordering_base_ee_lai() {
        // The paper's headline: Base > EE > LAI in per-sentence energy
        // (with a meaningfully loose latency target).
        let f = fixture();
        let eng = engine(&f, 150e-3, 0.5);
        let base = eng.evaluate(&f.data, InferenceMode::Base);
        let ee = eng.evaluate(&f.data, InferenceMode::ConventionalEe);
        let lai = eng.evaluate(&f.data, InferenceMode::LatencyAware);
        assert!(ee.avg_energy_j <= base.avg_energy_j);
        assert!(lai.avg_energy_j <= ee.avg_energy_j * 1.05);
    }

    #[test]
    fn mgpu_baseline_is_orders_of_magnitude_hungrier() {
        let f = fixture();
        let eng = engine(&f, 50e-3, 0.3);
        let base = eng.evaluate(&f.data, InferenceMode::Base);
        let (_, gpu_energy) = eng.mgpu_cost(12);
        assert!(gpu_energy / base.avg_energy_j > 10.0);
        // The baseline prices the engine's wired workload: the
        // unoptimized fixture workload has no AAS benefit to transfer.
        assert_eq!(eng.mgpu_baseline().flop_scale(), 1.0);
    }

    #[test]
    fn request_defaults_resolve_against_engine() {
        let f = fixture();
        let eng = engine(&f, 80e-3, 0.3);
        let tokens = f.data.examples()[0].tokens.clone();
        let resp = eng.serve(&InferenceRequest::new(tokens.clone()));
        assert_eq!(resp.latency_target_s, 80e-3);
        assert_eq!(resp.drop_target, DropTarget::OnePercent);
        assert_eq!(resp.result.mode, InferenceMode::LatencyAware);
        // Explicit overrides are echoed back.
        let resp = eng.serve(
            &InferenceRequest::new(tokens)
                .with_mode(InferenceMode::Base)
                .with_latency_target(10e-3)
                .with_drop_target(DropTarget::FivePercent),
        );
        assert_eq!(resp.latency_target_s, 10e-3);
        assert_eq!(resp.drop_target, DropTarget::FivePercent);
        assert_eq!(resp.result.mode, InferenceMode::Base);
    }

    #[test]
    fn per_request_deadlines_pick_different_vf_points() {
        let f = fixture();
        let eng = engine(&f, 50e-3, 0.0); // et=0: full predicted depth
        let tokens = f.data.examples()[0].tokens.clone();
        let tight = eng.serve(&InferenceRequest::new(tokens.clone()).with_latency_target(2e-3));
        let loose = eng.serve(&InferenceRequest::new(tokens).with_latency_target(300e-3));
        assert!(
            loose.result.voltage < tight.result.voltage,
            "loose {} vs tight {}",
            loose.result.voltage,
            tight.result.voltage
        );
        assert!(loose.result.freq_hz < tight.result.freq_hz);
        assert!(loose.result.energy_j < tight.result.energy_j);
    }

    #[test]
    fn drop_tiers_use_their_own_thresholds() {
        let f = fixture();
        let eng = EngineBuilder::new(Arc::clone(&f.model), Arc::clone(&f.lut))
            .thresholds_for(DropTarget::OnePercent, EntropyThresholds::uniform(0.0))
            .thresholds_for(DropTarget::FivePercent, EntropyThresholds::uniform(100.0))
            .latency_target(100e-3)
            .build();
        let tokens = &f.data.examples()[0].tokens;
        let strict = eng.run_latency_aware_at(tokens, 100e-3, DropTarget::OnePercent);
        let loose = eng.run_latency_aware_at(tokens, 100e-3, DropTarget::FivePercent);
        // The loose tier's huge threshold exits at layer 1; the strict
        // tier's zero threshold runs to the forecast depth.
        assert_eq!(loose.exit_layer, 1);
        assert!(strict.exit_layer > 1);
    }

    #[test]
    fn parallel_evaluate_matches_sequential_bitwise() {
        let f = fixture();
        let eng = engine(&f, 100e-3, 0.3);
        for mode in InferenceMode::all() {
            let seq = eng.evaluate_seq(&f.data, mode);
            for threads in [2, 3, 7, 64] {
                let par = eng.evaluate_with_threads(&f.data, mode, threads);
                assert_eq!(seq, par, "mode {mode:?} threads {threads}");
            }
        }
    }

    #[test]
    fn serve_batch_preserves_request_order() {
        let f = fixture();
        let eng = engine(&f, 100e-3, 0.3);
        let requests: Vec<InferenceRequest> = f
            .data
            .iter()
            .map(|ex| InferenceRequest::new(ex.tokens.clone()))
            .collect();
        let parallel = eng.serve_batch(&requests);
        let sequential: Vec<InferenceResponse> = requests.iter().map(|r| eng.serve(r)).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn zero_queue_slack_is_bit_identical_to_unqueued_serving() {
        let f = fixture();
        let eng = engine(&f, 60e-3, 0.0); // et=0: the DVFS path always engages
        for ex in f.data.iter().take(6) {
            assert_eq!(
                eng.run_latency_aware_queued(&ex.tokens, 60e-3, DropTarget::OnePercent, 0.0),
                eng.run_latency_aware_at(&ex.tokens, 60e-3, DropTarget::OnePercent),
            );
            for mode in InferenceMode::all() {
                let req = InferenceRequest::new(ex.tokens.clone()).with_mode(mode);
                assert_eq!(
                    eng.serve(&req.clone().with_elapsed_queue_s(0.0)),
                    eng.serve(&req),
                    "mode {mode:?}"
                );
            }
        }
    }

    #[test]
    fn queue_slack_raises_the_operating_point_and_judges_the_sojourn() {
        let f = fixture();
        let eng = engine(&f, 200e-3, 0.0); // et=0: never exits early
        let tokens = f.data.examples()[0].tokens.clone();
        let fresh = eng.run_latency_aware_queued(&tokens, 200e-3, DropTarget::OnePercent, 0.0);
        assert!(fresh.voltage < 0.8, "loose target scales down");
        // Burn most of the budget in queue: the engine must speed up
        // rather than keep stretching compute into the full target.
        let queued = eng.run_latency_aware_queued(&tokens, 200e-3, DropTarget::OnePercent, 185e-3);
        assert!(
            queued.voltage > fresh.voltage,
            "queued {} V vs fresh {} V",
            queued.voltage,
            fresh.voltage
        );
        assert!(queued.latency_s < fresh.latency_s);
        assert_eq!(
            queued.deadline_met,
            deadline_met(185e-3 + queued.latency_s, 200e-3),
            "verdict is on the sojourn, not compute alone"
        );
        // Queueing past the whole target: compute still runs (at
        // nominal), but the verdict is a violation.
        let hopeless = eng.run_latency_aware_queued(&tokens, 200e-3, DropTarget::OnePercent, 0.3);
        assert!(!hopeless.deadline_met);
        assert_eq!(hopeless.voltage, 0.8);

        // Base/EE responses fold the wait into the verdict too.
        let resp = eng.serve(
            &InferenceRequest::new(tokens.clone())
                .with_mode(InferenceMode::Base)
                .with_latency_target(1.0),
        );
        let base_latency = resp.result.latency_s;
        let queued_resp = eng.serve(
            &InferenceRequest::new(tokens)
                .with_mode(InferenceMode::Base)
                .with_latency_target(1.0)
                .with_elapsed_queue_s(1.0),
        );
        assert!(resp.result.deadline_met);
        assert!(!queued_resp.result.deadline_met);
        assert_eq!(queued_resp.result.latency_s, base_latency);
    }

    #[test]
    fn wire_garbage_tokens_sanitize_instead_of_panicking() {
        // Out-of-vocabulary ids and over-long sequences arrive from the
        // wire; a panic here would take down a pooled worker thread and
        // hang its lane. serve() maps bad ids to PAD and truncates to
        // the model's position table.
        let f = fixture();
        let eng = engine(&f, 50e-3, 0.3);
        let vocab = f.model.config.vocab_size as u32;
        let max_len = f.model.config.max_seq_len;
        let good = f.data.examples()[0].tokens.clone();

        // Bad ids serve exactly like the PAD-substituted sentence.
        let mut bad = good.clone();
        bad[0] = u32::MAX;
        bad[1] = vocab;
        let mut subst = good.clone();
        subst[0] = edgebert_tasks::vocab::PAD;
        subst[1] = edgebert_tasks::vocab::PAD;
        assert_eq!(
            eng.serve(&InferenceRequest::new(bad)),
            eng.serve(&InferenceRequest::new(subst))
        );

        // Over-long sequences serve exactly like their truncation.
        let long: Vec<u32> = good.iter().cycle().take(max_len + 7).copied().collect();
        let truncated: Vec<u32> = long[..max_len].to_vec();
        assert_eq!(
            eng.serve(&InferenceRequest::new(long)),
            eng.serve(&InferenceRequest::new(truncated))
        );

        // In-range requests take the zero-copy path (covered implicitly:
        // every other serve test would catch a change in results).
        let resp = eng.serve(&InferenceRequest::new(good));
        assert!(resp.result.energy_j > 0.0);
    }

    #[test]
    fn wire_garbage_queue_stamps_sanitize_to_zero() {
        let f = fixture();
        let eng = engine(&f, 50e-3, 0.3);
        let tokens = f.data.examples()[0].tokens.clone();
        let clean = eng.serve(&InferenceRequest::new(tokens.clone()));
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            let req = InferenceRequest::new(tokens.clone()).with_elapsed_queue_s(bad);
            assert_eq!(req.effective_elapsed_queue_s(), 0.0);
            assert_eq!(eng.serve(&req), clean, "stamp {bad}");
        }
    }

    #[test]
    fn engines_move_across_threads() {
        let f = fixture();
        let eng = engine(&f, 50e-3, 0.3);
        let tokens = f.data.examples()[0].tokens.clone();
        let local = eng.run(&tokens, InferenceMode::LatencyAware);
        let remote = std::thread::spawn(move || eng.run(&tokens, InferenceMode::LatencyAware))
            .join()
            .expect("worker thread runs the engine");
        assert_eq!(local, remote);
    }
}
