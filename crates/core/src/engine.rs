//! The per-sentence inference engine: Algorithms 1 and 2 with full
//! hardware cost accounting.
//!
//! Three modes are modelled, matching the paper's evaluation bars:
//!
//! * **Base** — conventional 12-layer inference at nominal V/F
//!   (Fig. 1a);
//! * **Conventional EE** — Algorithm 1: exit when the off-ramp entropy
//!   falls below `E_T`, always at nominal V/F because the exit layer is
//!   unknown in advance (Fig. 1b);
//! * **Latency-aware (LAI)** — Algorithm 2: compute layer 1 at nominal,
//!   use the predictor LUT to forecast the exit layer, scale V/F so the
//!   remaining layers finish exactly at the latency target, keep checking
//!   the true entropy on the way, and stop unconditionally at the
//!   forecast layer (Fig. 1c).

use crate::predictor::PredictorLut;
use edgebert_hw::{
    AcceleratorConfig, AcceleratorSim, DvfsController, MobileGpu, WorkloadParams,
};
use edgebert_hw::workload::EncoderWorkload;
use edgebert_model::AlbertModel;
use edgebert_envm::{CellTech, ReramArray};
use edgebert_hw::memory::sentence_embedding_bits;
use edgebert_tensor::stats::argmax;
use edgebert_tasks::Dataset;
use serde::{Deserialize, Serialize};

/// Which inference scheme to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InferenceMode {
    /// Full-depth inference at nominal V/F.
    Base,
    /// Conventional early exit (Algorithm 1) at nominal V/F.
    ConventionalEe,
    /// EdgeBERT latency-aware inference (Algorithm 2) with DVFS.
    LatencyAware,
}

/// Per-sentence outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SentenceResult {
    /// Scheme used.
    pub mode: InferenceMode,
    /// Layer at which inference stopped (1-based).
    pub exit_layer: usize,
    /// Predictor forecast (LAI only).
    pub predicted_layer: Option<usize>,
    /// Predicted class at the exit layer.
    pub prediction: usize,
    /// End-to-end latency, seconds (embedding read + compute +
    /// regulator/clock transitions).
    pub latency_s: f64,
    /// Energy, joules.
    pub energy_j: f64,
    /// Supply voltage used for layers after the DVFS decision.
    pub voltage: f32,
    /// Clock frequency used after the DVFS decision, Hz.
    pub freq_hz: f64,
    /// Whether the sentence met the latency target (always true for the
    /// unbounded Base/EE modes).
    pub deadline_met: bool,
}

/// Aggregate statistics over a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregateResult {
    /// Classification accuracy.
    pub accuracy: f32,
    /// Mean exit layer.
    pub avg_exit_layer: f32,
    /// Mean predicted exit layer (LAI; equals exit layer otherwise).
    pub avg_predicted_layer: f32,
    /// Mean per-sentence energy, joules.
    pub avg_energy_j: f64,
    /// Mean per-sentence latency, seconds.
    pub avg_latency_s: f64,
    /// Mean post-decision supply voltage, volts.
    pub avg_voltage: f32,
    /// Mean post-decision clock frequency, Hz.
    pub avg_freq_hz: f64,
    /// Fraction of sentences that missed the latency target.
    pub deadline_miss_rate: f32,
}

/// The engine: software model + predictor LUT + hardware simulator.
#[derive(Debug, Clone)]
pub struct EdgeBertEngine<'a> {
    model: &'a AlbertModel,
    lut: &'a PredictorLut,
    sim: AcceleratorSim,
    dvfs: DvfsController,
    layer: EncoderWorkload,
    layer_cycles: u64,
    rram: ReramArray,
    embed_bits: usize,
    /// Per-sentence latency target, seconds.
    pub latency_target_s: f64,
    /// Entropy threshold for conventional EE.
    pub et_conventional: f32,
    /// Entropy threshold for LAI (typically lower; §5.1).
    pub et_latency_aware: f32,
}

impl<'a> EdgeBertEngine<'a> {
    /// Builds an engine.
    ///
    /// `workload` carries the hardware shapes (usually
    /// [`WorkloadParams::albert_base`] plus the task's optimizations);
    /// the software `model` supplies the entropy/exit behaviour.
    pub fn new(
        model: &'a AlbertModel,
        lut: &'a PredictorLut,
        accel: AcceleratorConfig,
        workload: &WorkloadParams,
        latency_target_s: f64,
        et_conventional: f32,
        et_latency_aware: f32,
    ) -> Self {
        let sim = AcceleratorSim::new(accel);
        let layer = sim.layer_workload(workload);
        let layer_cycles = layer.cycles();
        let embed_bits = sentence_embedding_bits(workload.seq_len, 128, 0.4);
        Self {
            model,
            lut,
            dvfs: DvfsController::new(accel),
            sim,
            layer,
            layer_cycles,
            rram: ReramArray::new(CellTech::Mlc2, 2.0),
            embed_bits,
            latency_target_s,
            et_conventional,
            et_latency_aware,
        }
    }

    /// Cycles of one encoder layer on this hardware configuration.
    pub fn layer_cycles(&self) -> u64 {
        self.layer_cycles
    }

    /// The underlying accelerator simulator.
    pub fn simulator(&self) -> &AcceleratorSim {
        &self.sim
    }

    fn embedding_read_cost(&self) -> (f64, f64) {
        (
            self.rram.read_latency_ns(self.embed_bits) * 1e-9,
            self.rram.read_energy_pj(self.embed_bits) * 1e-12,
        )
    }

    /// Runs a sentence in the requested mode.
    pub fn run(&self, tokens: &[u32], mode: InferenceMode) -> SentenceResult {
        match mode {
            InferenceMode::Base => self.run_base(tokens),
            InferenceMode::ConventionalEe => self.run_conventional_ee(tokens),
            InferenceMode::LatencyAware => self.run_latency_aware(tokens),
        }
    }

    /// Conventional full-depth inference at nominal V/F.
    pub fn run_base(&self, tokens: &[u32]) -> SentenceResult {
        let out = self.model.forward_layers(tokens);
        let layers = self.model.num_layers();
        let cost = self.sim.run_layers_nominal(&self.layer, layers);
        let (el, ee) = self.embedding_read_cost();
        SentenceResult {
            mode: InferenceMode::Base,
            exit_layer: layers,
            predicted_layer: None,
            prediction: argmax(&out.logits[layers - 1]),
            latency_s: cost.seconds + el,
            energy_j: cost.energy_j + ee,
            voltage: self.sim.config().vdd_nominal,
            freq_hz: self.sim.config().freq_max_hz,
            deadline_met: true,
        }
    }

    /// Algorithm 1: conventional early exit at nominal V/F.
    pub fn run_conventional_ee(&self, tokens: &[u32]) -> SentenceResult {
        let (exit, logits, _) = self.model.infer_early_exit(tokens, self.et_conventional);
        let cost = self.sim.run_layers_nominal(&self.layer, exit);
        let (el, ee) = self.embedding_read_cost();
        SentenceResult {
            mode: InferenceMode::ConventionalEe,
            exit_layer: exit,
            predicted_layer: None,
            prediction: argmax(&logits),
            latency_s: cost.seconds + el,
            energy_j: cost.energy_j + ee,
            voltage: self.sim.config().vdd_nominal,
            freq_hz: self.sim.config().freq_max_hz,
            deadline_met: true,
        }
    }

    /// Algorithm 2: EdgeBERT latency-aware inference.
    pub fn run_latency_aware(&self, tokens: &[u32]) -> SentenceResult {
        let et = self.et_latency_aware;
        let out = self.model.forward_layers(tokens);
        let num_layers = self.model.num_layers();
        let cfg = self.sim.config();

        // Wake: standby 0.5 V -> nominal; then layer 1 at nominal V/F.
        let ldo = edgebert_hw::Ldo::new(cfg.vdd_standby);
        let wake_s = ldo.transition_time_ns(cfg.vdd_standby, cfg.vdd_nominal) * 1e-9 + 100e-9;
        let (embed_lat, embed_energy) = self.embedding_read_cost();
        let layer1 = self.sim.run_layers_nominal(&self.layer, 1);

        let mut latency = wake_s + embed_lat + layer1.seconds;
        let mut energy = embed_energy + layer1.energy_j;

        let h1 = out.entropies[0];
        if h1 < et {
            return SentenceResult {
                mode: InferenceMode::LatencyAware,
                exit_layer: 1,
                predicted_layer: Some(1),
                prediction: argmax(&out.logits[0]),
                latency_s: latency,
                energy_j: energy,
                voltage: cfg.vdd_nominal,
                freq_hz: cfg.freq_max_hz,
                deadline_met: latency <= self.latency_target_s,
            };
        }

        // Forecast and scale V/F for the remaining layers.
        let predicted = self.lut.predict_exit_layer(h1, et).clamp(2, num_layers);
        let remaining_cycles = self.layer_cycles * (predicted as u64 - 1);
        let transition_s = 100e-9; // LDO settle + ADPLL relock (Fig. 7)
        let remaining_budget = self.latency_target_s - latency - transition_s;
        let decision = self.dvfs.decide(remaining_cycles, remaining_budget);

        // Run layers 2..=predicted, exiting early if the true entropy
        // crosses the threshold; forced stop at the forecast layer.
        let mut exit = predicted;
        for l in 2..=predicted {
            if out.entropies[l - 1] < et {
                exit = l;
                break;
            }
        }
        let segment =
            self.sim
                .run_layers(&self.layer, exit - 1, decision.voltage, decision.freq_hz);
        latency += transition_s + segment.seconds;
        energy += segment.energy_j;

        SentenceResult {
            mode: InferenceMode::LatencyAware,
            exit_layer: exit,
            predicted_layer: Some(predicted),
            prediction: argmax(&out.logits[exit - 1]),
            latency_s: latency,
            energy_j: energy,
            voltage: decision.voltage,
            freq_hz: decision.freq_hz,
            deadline_met: decision.feasible && latency <= self.latency_target_s * 1.0001,
        }
    }

    /// Runs a whole dataset and aggregates.
    pub fn evaluate(&self, data: &Dataset, mode: InferenceMode) -> AggregateResult {
        let mut hits = 0usize;
        let mut exit_sum = 0.0f32;
        let mut pred_sum = 0.0f32;
        let mut energy = 0.0f64;
        let mut latency = 0.0f64;
        let mut volts = 0.0f32;
        let mut freq = 0.0f64;
        let mut misses = 0usize;
        for ex in data {
            let r = self.run(&ex.tokens, mode);
            if r.prediction == ex.label {
                hits += 1;
            }
            exit_sum += r.exit_layer as f32;
            pred_sum += r.predicted_layer.unwrap_or(r.exit_layer) as f32;
            energy += r.energy_j;
            latency += r.latency_s;
            volts += r.voltage;
            freq += r.freq_hz;
            if !r.deadline_met {
                misses += 1;
            }
        }
        let n = data.len().max(1) as f64;
        AggregateResult {
            accuracy: hits as f32 / n as f32,
            avg_exit_layer: exit_sum / n as f32,
            avg_predicted_layer: pred_sum / n as f32,
            avg_energy_j: energy / n,
            avg_latency_s: latency / n,
            avg_voltage: volts / n as f32,
            avg_freq_hz: freq / n,
            deadline_miss_rate: misses as f32 / n as f32,
        }
    }

    /// The mGPU baseline cost for comparison rows, with the model's AAS
    /// FLOP scale applied when `aas` is set.
    pub fn mgpu_cost(&self, layers: usize, aas_flop_scale: f64) -> (f64, f64) {
        let gpu = MobileGpu::tegra_x2();
        (
            gpu.inference_latency_s(layers, aas_flop_scale),
            gpu.inference_energy_j(layers, aas_flop_scale),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::SweepCache;
    use crate::predictor::EntropyPredictor;
    use edgebert_model::{AlbertConfig, AlbertModel};
    use edgebert_tensor::Rng;
    use edgebert_tasks::{Task, TaskGenerator, VocabLayout};

    struct Fixture {
        model: AlbertModel,
        lut: PredictorLut,
        data: Dataset,
    }

    fn fixture() -> Fixture {
        let layout = VocabLayout::standard();
        let cfg = AlbertConfig::tiny(layout.vocab_size(), 2);
        let mut rng = Rng::seed_from(10);
        let model = AlbertModel::pretrained(cfg, &layout, &mut rng);
        let gen = TaskGenerator::standard(Task::Sst2, cfg.max_seq_len);
        let data = gen.generate(24, 5);
        let cache = SweepCache::build(&model, &data);
        let pred = EntropyPredictor::train(&cache.entropy_dataset(), 60, 3);
        let lut = pred.to_lut(32, 1.1);
        Fixture { model, lut, data }
    }

    fn engine<'a>(f: &'a Fixture, target_s: f64, et: f32) -> EdgeBertEngine<'a> {
        EdgeBertEngine::new(
            &f.model,
            &f.lut,
            AcceleratorConfig::energy_optimal(),
            &WorkloadParams::albert_base(),
            target_s,
            et,
            et,
        )
    }

    #[test]
    fn base_runs_all_layers_at_nominal() {
        let f = fixture();
        let eng = engine(&f, 50e-3, 0.2);
        let r = eng.run_base(&f.data.examples()[0].tokens);
        assert_eq!(r.exit_layer, 4);
        assert_eq!(r.voltage, 0.8);
        assert!(r.deadline_met);
        assert!(r.energy_j > 0.0);
    }

    #[test]
    fn ee_exits_at_or_before_base() {
        let f = fixture();
        let eng = engine(&f, 50e-3, 10.0); // huge threshold: exit at 1
        for ex in f.data.iter().take(5) {
            let r = eng.run_conventional_ee(&ex.tokens);
            assert_eq!(r.exit_layer, 1);
            let b = eng.run_base(&ex.tokens);
            assert!(r.energy_j < b.energy_j);
            assert!(r.latency_s < b.latency_s);
        }
    }

    #[test]
    fn latency_aware_scales_voltage_down_with_loose_target() {
        let f = fixture();
        // Loose 200 ms target: remaining layers can run slow.
        let eng = engine(&f, 200e-3, 0.0); // et=0: never exits early
        let r = eng.run_latency_aware(&f.data.examples()[0].tokens);
        assert!(r.voltage < 0.8, "voltage {}", r.voltage);
        assert!(r.deadline_met);
        assert!(r.latency_s <= 200e-3 * 1.001);
    }

    #[test]
    fn latency_aware_beats_ee_energy_at_same_exit() {
        let f = fixture();
        let eng = engine(&f, 100e-3, 0.0);
        for ex in f.data.iter().take(6) {
            let lai = eng.run_latency_aware(&ex.tokens);
            let ee = eng.run_conventional_ee(&ex.tokens);
            if lai.exit_layer == ee.exit_layer && lai.voltage < 0.8 {
                assert!(
                    lai.energy_j < ee.energy_j,
                    "LAI {} vs EE {}",
                    lai.energy_j,
                    ee.energy_j
                );
            }
        }
    }

    #[test]
    fn impossible_target_is_flagged() {
        let f = fixture();
        // 1 µs target: infeasible even at nominal.
        let eng = engine(&f, 1e-6, 0.0);
        let r = eng.run_latency_aware(&f.data.examples()[0].tokens);
        assert!(!r.deadline_met);
        assert_eq!(r.voltage, 0.8); // falls back to max performance
    }

    #[test]
    fn immediate_exit_at_layer_one() {
        let f = fixture();
        let eng = engine(&f, 50e-3, 100.0);
        let r = eng.run_latency_aware(&f.data.examples()[0].tokens);
        assert_eq!(r.exit_layer, 1);
        assert_eq!(r.predicted_layer, Some(1));
    }

    #[test]
    fn evaluate_aggregates_consistently() {
        let f = fixture();
        let eng = engine(&f, 100e-3, 0.3);
        let agg = eng.evaluate(&f.data, InferenceMode::LatencyAware);
        assert!(agg.avg_exit_layer >= 1.0 && agg.avg_exit_layer <= 4.0);
        assert!(agg.avg_predicted_layer + 1e-4 >= agg.avg_exit_layer);
        assert!(agg.avg_energy_j > 0.0);
        assert!((0.0..=1.0).contains(&agg.accuracy));
        assert!((0.0..=1.0).contains(&agg.deadline_miss_rate));
    }

    #[test]
    fn energy_ordering_base_ee_lai() {
        // The paper's headline: Base > EE > LAI in per-sentence energy
        // (with a meaningfully loose latency target).
        let f = fixture();
        let eng = engine(&f, 150e-3, 0.5);
        let base = eng.evaluate(&f.data, InferenceMode::Base);
        let ee = eng.evaluate(&f.data, InferenceMode::ConventionalEe);
        let lai = eng.evaluate(&f.data, InferenceMode::LatencyAware);
        assert!(ee.avg_energy_j <= base.avg_energy_j);
        assert!(lai.avg_energy_j <= ee.avg_energy_j * 1.05);
    }

    #[test]
    fn mgpu_baseline_is_orders_of_magnitude_hungrier() {
        let f = fixture();
        let eng = engine(&f, 50e-3, 0.3);
        let base = eng.evaluate(&f.data, InferenceMode::Base);
        let (_, gpu_energy) = eng.mgpu_cost(12, 1.0);
        assert!(gpu_energy / base.avg_energy_j > 10.0);
    }
}
