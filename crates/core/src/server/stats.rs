//! Serving statistics: per-lane and whole-server snapshots.

use crate::telemetry::LaneHistograms;
use edgebert_tasks::Task;
use serde::{Deserialize, Serialize};

/// A snapshot of one task lane's counters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaneStats {
    /// The task the lane serves.
    pub task: Task,
    /// Engine shards (worker threads) draining the lane.
    pub shards: usize,
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests refused at admission because the queue was full.
    pub rejected: u64,
    /// Requests shed at admission by the overload ladder (0 with the
    /// ladder disabled).
    pub shed: u64,
    /// Requests served with an overload-ladder degradation applied
    /// (tier drop and/or scaled entropy-exit threshold).
    pub degraded: u64,
    /// Overload-ladder rung transitions since start, both directions —
    /// a clean pressure burst costs two per band crossed; more
    /// indicates thresholds too close together for the traffic.
    pub ladder_step_changes: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Served requests whose sojourn (measured wait + modeled compute)
    /// missed the deadline.
    pub violations: u64,
    /// Times a running session was parked at a layer boundary for a
    /// tighter-deadline arrival.
    pub preempted: u64,
    /// Times a parked session was resumed.
    pub resumed: u64,
    /// Parked sessions this lane's shards stole *from other lanes*
    /// (elastic work stealing; 0 with elasticity disabled).
    pub stolen: u64,
    /// Parked sessions of *this* lane resumed by a foreign shard
    /// (elastic work stealing; server-wide, migrated == stolen; 0 with
    /// elasticity disabled).
    pub migrated: u64,
    /// Times this lane's effective shard pool was resized by elastic
    /// autoscaling — one per foreign-shard attach and one per detach
    /// (0 with elasticity disabled).
    pub pool_resizes: u64,
    /// Elastic attach opportunities declined because the lane's energy
    /// envelope could not fund one more shard at the backend's
    /// floor-power draw (0 without energy budgeting, or when the
    /// backend doesn't model power). Counted per declined scan, so a
    /// persistently under-funded pressured lane accumulates quickly —
    /// the signal that the fleet cap, not the pool, is the binding
    /// constraint.
    pub attach_declined: u64,
    /// Cumulative modeled energy served requests drew on this lane,
    /// joules — the ledger the fleet coordinator differences into the
    /// lane's measured power. Grows whether or not energy budgeting is
    /// enabled (measurement is free; only *enforcement* needs the
    /// coordinator).
    pub energy_j: f64,
    /// Requests admitted but not yet served.
    pub queued: usize,
    /// Sessions currently parked at a layer boundary.
    pub parked: usize,
    /// Deepest the queue has been since start.
    pub queue_high_water: usize,
    /// Deepest the parked-session pool has been since start.
    pub max_parked_depth: usize,
    /// Mean measured queueing delay over served requests, seconds.
    ///
    /// *Deprecated in favor of [`histograms`](Self::histograms)*: the
    /// mean hides the tail entirely — prefer
    /// `histograms.queue_delay_s` quantiles when telemetry is on.
    /// Kept (not `#[deprecated]`) so stats snapshots stay usable with
    /// telemetry off.
    pub queue_delay_mean_s: f64,
    /// Largest measured queueing delay, seconds.
    ///
    /// *Deprecated in favor of [`histograms`](Self::histograms)*: a
    /// single max says nothing about p95/p99 — prefer
    /// `histograms.queue_delay_s` quantiles when telemetry is on.
    pub queue_delay_max_s: f64,
    /// Mean elapsed queue time charged to served requests' DVFS
    /// budgets, seconds (just the submitter pre-stamps — usually zero
    /// — when queue-aware slack is off or waits stayed under the
    /// noise floor).
    pub slack_deducted_mean_s: f64,
    /// Full queue-delay / sojourn / step-time / energy distributions,
    /// recorded when [`ServerConfig::telemetry`](super::ServerConfig)
    /// is enabled (`None` otherwise). Exact log-bucketed quantiles —
    /// the lossless replacement for the mean/max pair above.
    pub histograms: Option<LaneHistograms>,
}

/// A snapshot of the whole server's counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Per-lane snapshots, in the server's task order.
    pub lanes: Vec<LaneStats>,
}

impl ServerStats {
    /// Builds a snapshot from per-lane stats, asserting the server's
    /// cross-lane invariant: every stolen parked session was migrated
    /// from exactly one origin lane, so server-wide `stolen ==
    /// migrated`. The elastic loop increments both counters under a
    /// single ordered double-lock precisely so this holds at *every*
    /// instant a snapshot can observe.
    ///
    /// # Panics
    ///
    /// Panics when the summed counters disagree — that means a counting
    /// path updated one side without the other, a bug worth failing
    /// loudly over rather than reporting silently skewed stats.
    pub fn from_lanes(lanes: Vec<LaneStats>) -> Self {
        let stats = Self { lanes };
        assert_eq!(
            stats.stolen(),
            stats.migrated(),
            "server-wide invariant violated: stolen ({}) != migrated ({})",
            stats.stolen(),
            stats.migrated()
        );
        stats
    }

    /// Requests admitted across all lanes.
    pub fn submitted(&self) -> u64 {
        self.lanes.iter().map(|l| l.submitted).sum()
    }

    /// Requests refused at admission across all lanes.
    pub fn rejected(&self) -> u64 {
        self.lanes.iter().map(|l| l.rejected).sum()
    }

    /// Requests shed at admission by the overload ladder, across all
    /// lanes.
    pub fn shed(&self) -> u64 {
        self.lanes.iter().map(|l| l.shed).sum()
    }

    /// Requests served degraded by the overload ladder, across all
    /// lanes.
    pub fn degraded(&self) -> u64 {
        self.lanes.iter().map(|l| l.degraded).sum()
    }

    /// Overload-ladder rung transitions across all lanes.
    pub fn ladder_step_changes(&self) -> u64 {
        self.lanes.iter().map(|l| l.ladder_step_changes).sum()
    }

    /// Requests served across all lanes.
    pub fn served(&self) -> u64 {
        self.lanes.iter().map(|l| l.served).sum()
    }

    /// Sojourn deadline violations across all lanes.
    pub fn violations(&self) -> u64 {
        self.lanes.iter().map(|l| l.violations).sum()
    }

    /// Preemptions (sessions parked mid-sentence) across all lanes.
    pub fn preempted(&self) -> u64 {
        self.lanes.iter().map(|l| l.preempted).sum()
    }

    /// Parked-session resumes across all lanes.
    pub fn resumed(&self) -> u64 {
        self.lanes.iter().map(|l| l.resumed).sum()
    }

    /// Parked sessions stolen across lanes (counted on the thieves'
    /// home lanes); always equals [`migrated`](Self::migrated)
    /// server-wide — enforced by [`from_lanes`](Self::from_lanes) on
    /// every snapshot.
    pub fn stolen(&self) -> u64 {
        self.lanes.iter().map(|l| l.stolen).sum()
    }

    /// Parked sessions resumed by a foreign shard (counted on the
    /// origin lanes); always equals [`stolen`](Self::stolen)
    /// server-wide — enforced by [`from_lanes`](Self::from_lanes) on
    /// every snapshot.
    pub fn migrated(&self) -> u64 {
        self.lanes.iter().map(|l| l.migrated).sum()
    }

    /// Elastic pool resizes (attaches + detaches) across all lanes.
    pub fn pool_resizes(&self) -> u64 {
        self.lanes.iter().map(|l| l.pool_resizes).sum()
    }

    /// Elastic attaches declined by energy envelopes across all lanes.
    pub fn attach_declined(&self) -> u64 {
        self.lanes.iter().map(|l| l.attach_declined).sum()
    }

    /// Cumulative modeled energy served across all lanes, joules.
    pub fn energy_j(&self) -> f64 {
        self.lanes.iter().map(|l| l.energy_j).sum()
    }

    /// The deepest any lane's parked-session pool has been.
    pub fn max_parked_depth(&self) -> usize {
        self.lanes
            .iter()
            .map(|l| l.max_parked_depth)
            .max()
            .unwrap_or(0)
    }

    /// Requests admitted but not yet served, across all lanes.
    pub fn queued(&self) -> usize {
        self.lanes.iter().map(|l| l.queued).sum()
    }

    /// The lane snapshot for one task, if served.
    pub fn lane(&self, task: Task) -> Option<&LaneStats> {
        self.lanes.iter().find(|l| l.task == task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane(task: Task, stolen: u64, migrated: u64) -> LaneStats {
        LaneStats {
            task,
            shards: 1,
            submitted: 0,
            rejected: 0,
            shed: 0,
            degraded: 0,
            ladder_step_changes: 0,
            served: 0,
            violations: 0,
            preempted: 0,
            resumed: 0,
            stolen,
            migrated,
            pool_resizes: 0,
            attach_declined: 0,
            energy_j: 0.0,
            queued: 0,
            parked: 0,
            queue_high_water: 0,
            max_parked_depth: 0,
            queue_delay_mean_s: 0.0,
            queue_delay_max_s: 0.0,
            slack_deducted_mean_s: 0.0,
            histograms: None,
        }
    }

    /// The documented invariant holds per-server, not per-lane: a
    /// steal is counted `stolen` on the thief's home lane and
    /// `migrated` on the origin lane, so individual lanes may differ
    /// as long as the sums agree.
    #[test]
    fn cross_lane_steals_balance() {
        let stats = ServerStats::from_lanes(vec![lane(Task::Sst2, 3, 1), lane(Task::Qnli, 1, 3)]);
        assert_eq!(stats.stolen(), 4);
        assert_eq!(stats.migrated(), 4);
    }

    /// Regression for the doc-vs-behavior drift this constructor
    /// fixes: `migrated == stolen` was documented as a server-wide
    /// invariant but never asserted anywhere, so a counting bug would
    /// have shipped silently skewed stats.
    #[test]
    #[should_panic(expected = "stolen (2) != migrated (1)")]
    fn unbalanced_steal_counters_panic() {
        ServerStats::from_lanes(vec![lane(Task::Sst2, 2, 0), lane(Task::Qnli, 0, 1)]);
    }
}
