//! One task's admission lane: a bounded, policy-ordered queue drained
//! by that task's engine shards.
//!
//! A lane is the synchronization point between client threads calling
//! [`Server::submit`](super::Server::submit) and the worker threads
//! owning the task's engine clones: a `Mutex`-guarded job list with a
//! `Condvar` for wakeups. Jobs are *popped* in policy order (EDF pops
//! the earliest absolute deadline, FIFO the earliest admission), so the
//! queue itself stays in admission order and backpressure is a plain
//! length check against the configured capacity.

use crate::engine::InferenceRequest;
use crate::scheduler::SchedulePolicy;
use edgebert_tasks::Task;
use std::sync::mpsc::SyncSender;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use super::ServerResponse;

/// One admitted request waiting for a shard.
pub(super) struct Job {
    /// Admission order within the lane (FIFO key and EDF tie-break).
    pub seq: u64,
    /// Absolute deadline on the server clock, seconds since the server
    /// epoch: admission time + resolved latency target (the EDF key).
    pub deadline_s: f64,
    /// When the job entered the lane (queueing delay is measured from
    /// here at pop time).
    pub enqueued_at: Instant,
    /// The request as submitted.
    pub request: InferenceRequest,
    /// Where the serving shard delivers the response.
    pub reply: SyncSender<ServerResponse>,
}

/// Queue state behind the lane mutex.
pub(super) struct LaneQueue {
    /// Admitted jobs in admission order; popped in policy order.
    pub jobs: Vec<Job>,
    /// Set once by shutdown: admission closes, workers drain what is
    /// left and exit.
    pub shutting_down: bool,
    /// Next admission sequence number.
    pub next_seq: u64,
    /// Deepest the queue has been since start.
    pub high_water: usize,
    /// Requests admitted (excludes rejections).
    pub submitted: u64,
    /// Requests refused because the lane was at capacity.
    pub rejected: u64,
}

/// Worker-side tallies, folded into [`LaneStats`](super::LaneStats).
#[derive(Debug, Clone, Copy, Default)]
pub(super) struct ServedTally {
    /// Requests served to completion.
    pub served: u64,
    /// Served requests whose sojourn missed the deadline.
    pub violations: u64,
    /// Sum of measured queueing delays, seconds.
    pub queue_delay_total_s: f64,
    /// Largest measured queueing delay, seconds.
    pub queue_delay_max_s: f64,
    /// Sum of the slack actually deducted from DVFS budgets, seconds.
    pub slack_deducted_total_s: f64,
}

/// One task's bounded admission lane.
pub(super) struct Lane {
    /// The task this lane admits.
    pub task: Task,
    /// Admission bound: `jobs.len()` never exceeds it.
    pub capacity: usize,
    /// Pop-order policy.
    pub policy: SchedulePolicy,
    /// Queue state.
    pub queue: Mutex<LaneQueue>,
    /// Signaled on every admission and on shutdown.
    pub available: Condvar,
    /// Worker-side tallies (separate lock: held only for a few loads
    /// and stores after a sentence completes, never while serving).
    pub tally: Mutex<ServedTally>,
}

impl Lane {
    pub fn new(task: Task, capacity: usize, policy: SchedulePolicy) -> Self {
        Self {
            task,
            capacity,
            policy,
            queue: Mutex::new(LaneQueue {
                jobs: Vec::new(),
                shutting_down: false,
                next_seq: 0,
                high_water: 0,
                submitted: 0,
                rejected: 0,
            }),
            available: Condvar::new(),
            tally: Mutex::new(ServedTally::default()),
        }
    }

    /// Blocks until a job is available (returning it popped in policy
    /// order) or the lane is shutting down with nothing left to drain
    /// (returning `None`). The worker-thread entry point.
    pub fn next_job(&self) -> Option<Job> {
        let mut queue = self.queue.lock().expect("lane mutex");
        loop {
            if let Some(job) = Self::pop(&mut queue, self.policy) {
                return Some(job);
            }
            if queue.shutting_down {
                return None;
            }
            queue = self.available.wait(queue).expect("lane mutex");
        }
    }

    /// Pops the next job under `policy`: FIFO takes the earliest
    /// admission, EDF the earliest absolute deadline (ties to the
    /// earlier admission). Deterministic in the queue contents.
    fn pop(queue: &mut LaneQueue, policy: SchedulePolicy) -> Option<Job> {
        if queue.jobs.is_empty() {
            return None;
        }
        let at = match policy {
            // Jobs are stored in admission order, so FIFO is the head.
            SchedulePolicy::Fifo => 0,
            SchedulePolicy::EarliestDeadline => queue
                .jobs
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    (a.deadline_s, a.seq)
                        .partial_cmp(&(b.deadline_s, b.seq))
                        .expect("finite deadlines")
                })
                .map(|(i, _)| i)
                .expect("non-empty queue"),
        };
        // `remove` keeps admission order for the survivors.
        Some(queue.jobs.remove(at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    fn lane_with(
        policy: SchedulePolicy,
        deadlines: &[f64],
    ) -> (Lane, Vec<std::sync::mpsc::Receiver<ServerResponse>>) {
        let lane = Lane::new(Task::Sst2, deadlines.len(), policy);
        let mut receivers = Vec::new();
        {
            let mut queue = lane.queue.lock().expect("lane mutex");
            for (seq, &deadline_s) in deadlines.iter().enumerate() {
                let (tx, rx) = sync_channel(1);
                receivers.push(rx);
                queue.jobs.push(Job {
                    seq: seq as u64,
                    deadline_s,
                    enqueued_at: Instant::now(),
                    request: InferenceRequest::new(vec![seq as u32]),
                    reply: tx,
                });
            }
        }
        (lane, receivers)
    }

    fn pop_order(lane: &Lane) -> Vec<u64> {
        let mut queue = lane.queue.lock().expect("lane mutex");
        let mut order = Vec::new();
        while let Some(job) = Lane::pop(&mut queue, lane.policy) {
            order.push(job.seq);
        }
        order
    }

    #[test]
    fn edf_pops_earliest_deadline_ties_to_admission_order() {
        let (lane, _rx) = lane_with(
            SchedulePolicy::EarliestDeadline,
            &[0.5, 0.1, 0.3, 0.1, 0.05],
        );
        assert_eq!(pop_order(&lane), vec![4, 1, 3, 2, 0]);
    }

    #[test]
    fn fifo_pops_admission_order_regardless_of_deadlines() {
        let (lane, _rx) = lane_with(SchedulePolicy::Fifo, &[0.5, 0.1, 0.3, 0.1, 0.05]);
        assert_eq!(pop_order(&lane), vec![0, 1, 2, 3, 4]);
    }
}
