//! One task's admission lane: a bounded, policy-ordered queue drained
//! by that task's engine shards, plus the parked-session pool that
//! makes the lane preemptive.
//!
//! A lane is the synchronization point between client threads calling
//! [`Server::submit`](super::Server::submit) and the worker threads
//! owning the task's engine clones: a `Mutex`-guarded job list with a
//! `Condvar` for wakeups. Jobs are *popped* in policy order (EDF pops
//! the earliest absolute deadline, FIFO the earliest admission), so the
//! queue itself stays in admission order and backpressure is a plain
//! length check against the configured capacity.
//!
//! With preemption enabled, a shard that parks its running
//! [`InferenceSession`](crate::session::InferenceSession) at a layer
//! boundary pushes it here as a [`ParkedJob`]; idle shards then pick
//! the next unit of work across *both* pools — fresh admissions and
//! parked sessions — in policy order, so parked sessions resume
//! EDF-ordered relative to everything else waiting on the lane.

// analyzer: wall-clock-module reason="lane timestamps (enqueued_at, parked_at) measure real queueing and parked wall time on the wall-clock serving path"

use crate::engine::InferenceRequest;
use crate::overload::{pressure, LadderStep, OverloadConfig, OverloadController};
use crate::scheduler::SchedulePolicy;
use crate::session::InferenceSession;
use crate::telemetry::LaneTelemetry;
use edgebert_tasks::Task;
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use super::ServerResponse;

/// One admitted request waiting for a shard.
pub(super) struct Job {
    /// Admission order within the lane (FIFO key and EDF tie-break).
    pub seq: u64,
    /// Absolute deadline on the server clock, seconds since the server
    /// epoch: admission time + resolved latency target (the EDF key).
    pub deadline_s: f64,
    /// When the job entered the lane (queueing delay is measured from
    /// here at pop time).
    pub enqueued_at: Instant,
    /// The request as submitted.
    pub request: InferenceRequest,
    /// Where the serving shard delivers the response.
    pub reply: SyncSender<ServerResponse>,
}

/// The serving context that travels with a dispatched sentence across
/// parks: what a shard needs to deliver and account the response no
/// matter which worker finishes the job.
pub(super) struct JobContext {
    /// Admission sequence of the original job.
    pub seq: u64,
    /// The original job's absolute deadline (preemption comparisons
    /// and the resume ordering key).
    pub deadline_s: f64,
    /// Where to deliver the response on completion.
    pub reply: SyncSender<ServerResponse>,
    /// Queueing delay measured at the first pop, seconds.
    pub queue_delay_s: f64,
    /// Elapsed queue time charged to the DVFS budget at first dispatch.
    pub slack_deducted_s: f64,
    /// Full measured elapsed queue time (pre-stamp + measured wait),
    /// seconds.
    pub elapsed_s: f64,
    /// Elapsed time the deadline verdict charges (per the server's
    /// slack rules), excluding parked time, seconds.
    pub charged_elapsed_s: f64,
}

/// A session parked at a layer boundary, waiting to be resumed — the
/// serving context travels with it so any shard can finish the job.
pub(super) struct ParkedJob {
    /// The serving context as of the first dispatch.
    pub ctx: JobContext,
    /// The checkpointed session (hidden state + accounting).
    pub session: InferenceSession,
    /// When the session was parked (parked wall time is measured from
    /// here at resume).
    pub parked_at: Instant,
}

/// The next unit of work a shard picked up. The parked payload is
/// boxed: a checkpointed session (hidden state + engine handles) is an
/// order of magnitude larger than a fresh job.
pub(super) enum Work {
    /// A fresh admission: open a session and serve it.
    Fresh(Job),
    /// A parked session: resume and keep stepping.
    Resume(Box<ParkedJob>),
}

/// A popped unit of work plus the queue pressure visible at pop time.
pub(super) struct Popped {
    pub work: Work,
    /// The tightest absolute deadline still waiting on the lane
    /// (queued or parked) the moment this work was popped — the
    /// successor the queue-pressure stretch cap is sized against.
    pub successor_deadline_s: Option<f64>,
    /// The overload ladder's rung at pop time (always
    /// [`LadderStep::Nominal`] with the ladder disabled). The shard
    /// sizes this work's degradation from it.
    pub ladder_step: LadderStep,
    /// This work's per-shard power allowance at pop time: the lane's
    /// energy envelope divided by its effective pool (home + attached
    /// shards). `None` when fleet energy budgeting is off. Fresh work
    /// is stamped with it; resumed sessions keep the envelope of the
    /// lane that admitted them.
    pub envelope_w: Option<f64>,
}

/// Queue state behind the lane mutex.
pub(super) struct LaneQueue {
    /// Admitted jobs in admission order; popped in policy order.
    pub jobs: Vec<Job>,
    /// Sessions parked at a layer boundary, resumed in policy order.
    pub parked: Vec<ParkedJob>,
    /// Set once by shutdown: admission closes, workers drain what is
    /// left and exit.
    pub shutting_down: bool,
    /// Next admission sequence number.
    pub next_seq: u64,
    /// Deepest the queue has been since start.
    pub high_water: usize,
    /// Deepest the parked pool has been since start.
    pub parked_high_water: usize,
    /// Requests admitted (excludes rejections).
    pub submitted: u64,
    /// Requests refused because the lane was at capacity.
    pub rejected: u64,
    /// Requests shed by the overload ladder at admission.
    pub shed: u64,
    /// Foreign shards currently attached to this lane's pool (elastic
    /// autoscaling): they drain the lane alongside its own shards, so
    /// the pressure signal and admission drain estimates count them.
    /// Always 0 with elasticity disabled.
    pub extra_shards: usize,
    /// Times the lane's effective pool was resized (one per attach and
    /// one per detach). Always 0 with elasticity disabled.
    pub pool_resizes: u64,
    /// Elastic attaches the energy coordinator declined because the
    /// lane's envelope cannot power another shard at the backend's
    /// floor draw. Always 0 with energy budgeting disabled.
    pub attach_declined: u64,
    /// The lane's current power envelope from the fleet energy
    /// coordinator, watts (total across the lane's effective pool).
    /// `None` — and every pop unstamped — with energy budgeting off.
    pub envelope_w: Option<f64>,
    /// The lane's EWMA measured power as of the coordinator's last
    /// tick, watts. `None` with energy budgeting off.
    pub measured_power_w: Option<f64>,
    /// The lane's overload ladder (inert when disabled), advanced under
    /// this lock at admission and pop time.
    pub controller: OverloadController,
}

/// Worker-side tallies, folded into [`LaneStats`](super::LaneStats).
#[derive(Debug, Clone, Copy, Default)]
pub(super) struct ServedTally {
    /// Requests served to completion.
    pub served: u64,
    /// Served requests whose sojourn missed the deadline.
    pub violations: u64,
    /// Times a running session was parked for a tighter arrival.
    pub preempted: u64,
    /// Times a parked session was resumed.
    pub resumed: u64,
    /// Sum of measured queueing delays, seconds.
    pub queue_delay_total_s: f64,
    /// Largest measured queueing delay, seconds.
    pub queue_delay_max_s: f64,
    /// Sum of the slack actually deducted from DVFS budgets, seconds.
    pub slack_deducted_total_s: f64,
    /// Requests served with an overload-ladder degradation applied
    /// (tier drop and/or scaled exit threshold).
    pub degraded: u64,
    /// Sum of the modeled compute latencies of degraded serves,
    /// seconds — the shed feasibility test divides it by `degraded`
    /// for the *observed* degraded service estimate, so the ladder
    /// sheds less once degradation has bought real throughput.
    pub degraded_modeled_total_s: f64,
    /// Parked sessions this lane's shards stole *from other lanes*
    /// (counted on the thief's home lane). Always 0 with elasticity
    /// disabled.
    pub stolen: u64,
    /// Parked sessions of *this* lane resumed by a foreign shard
    /// (counted on the origin lane; server-wide, migrated == stolen).
    /// Always 0 with elasticity disabled.
    pub migrated: u64,
    /// Sum of served requests' modeled energy, joules — the fleet
    /// energy coordinator differences this against wall time for the
    /// lane's measured power, and stats report it per lane.
    pub energy_j_total: f64,
}

/// One task's bounded admission lane.
pub(super) struct Lane {
    /// The task this lane admits.
    pub task: Task,
    /// Admission bound: `jobs.len()` never exceeds it (parked sessions
    /// are already-admitted work and do not count against it).
    pub capacity: usize,
    /// Pop-order policy.
    pub policy: SchedulePolicy,
    /// Engine shards draining the lane (the pressure signal's drain
    /// parallelism).
    pub shards: usize,
    /// Pessimistic nominal service estimate of one sentence on this
    /// lane's engine, seconds (the pressure signal's per-job cost and
    /// the retry-hint unit).
    pub nominal_service_s: f64,
    /// The lane's deadline horizon — its engine's default latency
    /// target, seconds (the pressure signal's denominator).
    pub horizon_s: f64,
    /// Queue state.
    pub queue: Mutex<LaneQueue>,
    /// Signaled on every admission, park, and shutdown.
    pub available: Condvar,
    /// Worker-side tallies (separate lock: held only for a few loads
    /// and stores after a sentence completes, never while serving).
    pub tally: Mutex<ServedTally>,
    /// Per-lane latency/energy distributions, present iff the server
    /// runs with telemetry enabled. Shared by every shard (home or
    /// elastic) driving this lane.
    pub telemetry: Option<Arc<LaneTelemetry>>,
}

impl Lane {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        task: Task,
        capacity: usize,
        policy: SchedulePolicy,
        overload: OverloadConfig,
        shards: usize,
        nominal_service_s: f64,
        horizon_s: f64,
        telemetry: Option<Arc<LaneTelemetry>>,
    ) -> Self {
        Self {
            task,
            capacity,
            policy,
            shards,
            nominal_service_s,
            horizon_s,
            telemetry,
            queue: Mutex::new(LaneQueue {
                jobs: Vec::new(),
                parked: Vec::new(),
                shutting_down: false,
                next_seq: 0,
                high_water: 0,
                parked_high_water: 0,
                submitted: 0,
                rejected: 0,
                shed: 0,
                extra_shards: 0,
                pool_resizes: 0,
                attach_declined: 0,
                envelope_w: None,
                measured_power_w: None,
                controller: OverloadController::new(overload),
            }),
            available: Condvar::new(),
            tally: Mutex::new(ServedTally::default()),
        }
    }

    /// Locks the served-work tally, recovering from mutex poisoning.
    ///
    /// The tally is a bag of monotonic counters and running sums; every
    /// update is a single `+=` on a copy-on-read snapshot consumer, so a
    /// panic mid-update cannot leave it torn in a way later readers
    /// would misinterpret — at worst one increment is lost. Recovering
    /// via [`PoisonError::into_inner`] keeps stats and shard drains
    /// alive after a worker panic. The *queue* mutex deliberately keeps
    /// panic-on-poison semantics instead: a torn `LaneQueue` can break
    /// the one-response-per-submission invariant, and propagating the
    /// panic there is the safe choice.
    pub(super) fn tally_lock(&self) -> MutexGuard<'_, ServedTally> {
        self.tally.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The lane's current pressure signal: backlog drain time over the
    /// deadline horizon, with foreign shards attached by elastic
    /// autoscaling counted in the drain parallelism.
    pub(super) fn pressure_of(&self, queue: &LaneQueue) -> f64 {
        pressure(
            queue.jobs.len() + queue.parked.len(),
            self.shards + queue.extra_shards,
            self.nominal_service_s,
            self.horizon_s,
        )
    }

    /// Feeds the lane's current backlog (queued + parked work) through
    /// the overload controller and returns the resulting ladder rung.
    /// Called under the queue lock at admission and pop time; a no-op
    /// returning [`LadderStep::Nominal`] when the ladder is disabled.
    pub(super) fn observe(&self, queue: &mut LaneQueue) -> LadderStep {
        let p = self.pressure_of(queue);
        queue.controller.observe(p)
    }

    /// The per-job service estimate the shed feasibility test divides
    /// the backlog over: the mean *observed* modeled latency of
    /// degraded serves when the ladder has degraded anything, clamped
    /// from above by the nominal estimate (degradation only ever buys
    /// throughput — a noisy early sample must not make the ladder shed
    /// *more* than the class-agnostic PR 6 rule did). Falls back to
    /// the pessimistic nominal estimate before the first degraded
    /// serve completes.
    pub(super) fn shed_service_estimate_s(&self) -> f64 {
        let tally = self.tally_lock();
        if tally.degraded == 0 {
            return self.nominal_service_s;
        }
        let mean = tally.degraded_modeled_total_s / tally.degraded as f64;
        if mean.is_finite() && mean > 0.0 {
            mean.min(self.nominal_service_s)
        } else {
            self.nominal_service_s
        }
    }

    /// Wraps freshly popped work with the pop-time queue signals (the
    /// tightest surviving deadline and the ladder rung). Must run under
    /// the same lock that popped the work.
    // analyzer: hot-path
    fn finish_pop(&self, queue: &mut LaneQueue, work: Work) -> Popped {
        let successor_deadline_s = queue
            .jobs
            .iter()
            .map(|j| j.deadline_s)
            .chain(queue.parked.iter().map(|p| p.ctx.deadline_s))
            .fold(None, |acc: Option<f64>, d| {
                Some(acc.map_or(d, |a: f64| a.min(d)))
            });
        let ladder_step = self.observe(queue);
        // The lane-total envelope splits evenly across the effective
        // pool: every concurrently-running shard gets an equal share,
        // so the lane's aggregate draw stays under its allocation.
        let envelope_w = queue
            .envelope_w
            .map(|w| w / (self.shards + queue.extra_shards).max(1) as f64);
        Popped {
            work,
            successor_deadline_s,
            ladder_step,
            envelope_w,
        }
    }

    /// Blocks until a unit of work is available — a fresh job or a
    /// parked session, whichever comes first in policy order — or the
    /// lane is shutting down with nothing left to drain (`None`). The
    /// worker-thread entry point.
    pub fn next_work(&self) -> Option<Popped> {
        let mut queue = self.queue.lock().expect("lane mutex");
        loop {
            if let Some(work) = Self::pop_work(&mut queue, self.policy) {
                return Some(self.finish_pop(&mut queue, work));
            }
            if queue.shutting_down {
                return None;
            }
            queue = self.available.wait(queue).expect("lane mutex");
        }
    }

    /// Non-blocking [`next_work`](Self::next_work): the next unit of
    /// work if one is queued or parked right now, else `None`. The
    /// elastic worker loop polls its home lane through this before
    /// looking across the pool.
    pub(super) fn try_next_work(&self) -> Option<Popped> {
        let mut queue = self.queue.lock().expect("lane mutex");
        let work = Self::pop_work(&mut queue, self.policy)?;
        Some(self.finish_pop(&mut queue, work))
    }

    /// Pops this lane's next unit of work *for a foreign shard* that
    /// has just attached (elastic grow): policy-ordered like
    /// [`next_work`](Self::next_work), under the caller's lock.
    pub(super) fn take_work(&self, queue: &mut LaneQueue) -> Option<Work> {
        Self::pop_work(queue, self.policy)
    }

    /// Finalizes a foreign pop: wraps `work` with the pop-time queue
    /// signals, under the caller's lock (see
    /// [`finish_pop`](Self::finish_pop)).
    pub(super) fn finish_foreign_pop(&self, queue: &mut LaneQueue, work: Work) -> Popped {
        self.finish_pop(queue, work)
    }

    /// Marks one foreign shard attached to this lane's pool (elastic
    /// grow): the pressure signal and the admission drain estimates
    /// count it until [`detach`](Self::detach). Under the caller's
    /// queue lock, so the grow decision and the pop it pays for are
    /// atomic.
    pub(super) fn attach(&self, queue: &mut LaneQueue) {
        queue.extra_shards += 1;
        queue.pool_resizes += 1;
    }

    /// Reverses [`attach`](Self::attach) once the foreign shard stops
    /// draining this lane (elastic shrink).
    pub(super) fn detach(&self) {
        let mut queue = self.queue.lock().expect("lane mutex");
        queue.extra_shards = queue.extra_shards.saturating_sub(1);
        queue.pool_resizes += 1;
    }

    /// The tightest absolute deadline currently queued (fresh jobs
    /// only — a parked session already had the lane and must not
    /// preempt the one that preempted it). The cheap preemption poll a
    /// shard runs between steps; the authoritative decision happens
    /// atomically in [`preempt_exchange`](Self::preempt_exchange).
    pub fn tightest_queued_deadline(&self) -> Option<f64> {
        let queue = self.queue.lock().expect("lane mutex");
        queue
            .jobs
            .iter()
            .map(|j| j.deadline_s)
            .fold(None, |acc: Option<f64>, d| {
                Some(acc.map_or(d, |a: f64| a.min(d)))
            })
    }

    /// Atomically trades the running session for the tightest queued
    /// job, when queue pressure still warrants it under one queue
    /// lock: the session is parked (its open segment committed), the
    /// parked entry replaces the claimed job on the lane, and the
    /// claimed job comes back to the calling shard to serve next.
    ///
    /// The atomic claim is what keeps a pool of shards from reacting
    /// to the same single tight arrival in a thundering herd: once one
    /// shard exchanges, the arrival is gone from the queue, so every
    /// other shard's poll sees no pressure and keeps running. `Err`
    /// hands the session and context back untouched (no park, no
    /// transition charged) when pressure vanished between the poll and
    /// the lock.
    ///
    /// No wakeup is signalled: the lane's visible work count is
    /// unchanged (one job out, one parked session in).
    pub fn preempt_exchange(
        &self,
        mut session: InferenceSession,
        ctx: JobContext,
        policy: super::PreemptionPolicy,
    ) -> Result<Popped, Box<(InferenceSession, JobContext)>> {
        let mut queue = self.queue.lock().expect("lane mutex");
        // Preemption claims by deadline regardless of the lane's pop
        // policy: the gap rule is deadline-driven.
        let best = Self::best(
            queue.jobs.iter().map(|j| (j.deadline_s, j.seq)),
            SchedulePolicy::EarliestDeadline,
        );
        let Some((at, (deadline_s, _))) = best else {
            return Err(Box::new((session, ctx)));
        };
        let pressured = policy.should_preempt(ctx.deadline_s, deadline_s);
        // analyzer: allow(lock-across-step) reason="park commits the open DVFS segment under the queue lock on purpose: the park decision and the claimed job swap must be atomic or two shards react to the same tight arrival"
        if !pressured || !session.park() {
            return Err(Box::new((session, ctx)));
        }
        let job = queue.jobs.remove(at);
        queue.parked.push(ParkedJob {
            ctx,
            session,
            parked_at: Instant::now(),
        });
        queue.parked_high_water = queue.parked_high_water.max(queue.parked.len());
        Ok(self.finish_pop(&mut queue, Work::Fresh(job)))
    }

    /// Picks the next unit of work across jobs and parked sessions in
    /// policy order: FIFO by admission sequence, EDF by absolute
    /// deadline (ties to the earlier admission). A parked session and
    /// a fresh job compare under the same key, so resumes are
    /// EDF-ordered relative to everything waiting on the lane.
    // analyzer: hot-path
    fn pop_work(queue: &mut LaneQueue, policy: SchedulePolicy) -> Option<Work> {
        let job_key = Self::best(queue.jobs.iter().map(|j| (j.deadline_s, j.seq)), policy);
        let parked_key = Self::best(
            queue.parked.iter().map(|p| (p.ctx.deadline_s, p.ctx.seq)),
            policy,
        );
        match (job_key, parked_key) {
            (None, None) => None,
            (Some((at, _)), None) => Some(Work::Fresh(queue.jobs.remove(at))),
            // analyzer: allow(hot-path-alloc) reason="boxing a resumed ParkedJob is one pointer-sized allocation per park/resume cycle, amortized over a whole preempted sentence; keeping Work small keeps every fresh pop allocation-free"
            (None, Some((at, _))) => Some(Work::Resume(Box::new(queue.parked.remove(at)))),
            (Some((jat, jkey)), Some((pat, pkey))) => {
                if pkey <= jkey {
                    // analyzer: allow(hot-path-alloc) reason="boxing a resumed ParkedJob is one pointer-sized allocation per park/resume cycle, amortized over a whole preempted sentence"
                    Some(Work::Resume(Box::new(queue.parked.remove(pat))))
                } else {
                    Some(Work::Fresh(queue.jobs.remove(jat)))
                }
            }
        }
    }

    /// The index and policy key of the best entry: FIFO by sequence,
    /// EDF by `(deadline, seq)`. Non-finite deadlines sort last (wire
    /// garbage must not poison the comparator).
    // analyzer: hot-path
    #[allow(clippy::type_complexity)]
    fn best(
        keys: impl Iterator<Item = (f64, u64)>,
        policy: SchedulePolicy,
    ) -> Option<(usize, (f64, u64))> {
        keys.enumerate()
            .map(|(i, (deadline_s, seq))| {
                let key = match policy {
                    SchedulePolicy::Fifo => (0.0, seq),
                    SchedulePolicy::EarliestDeadline => (deadline_s, seq),
                };
                (i, key)
            })
            .min_by(|(_, a), (_, b)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
    }

    /// Pops the next *fresh* job under `policy` (unit-test seam; the
    /// worker path goes through [`next_work`](Self::next_work)).
    #[cfg(test)]
    fn pop(queue: &mut LaneQueue, policy: SchedulePolicy) -> Option<Job> {
        match Self::pop_work(queue, policy) {
            Some(Work::Fresh(job)) => Some(job),
            Some(Work::Resume(_)) => unreachable!("no parked sessions in this test"),
            None => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    fn lane_with(
        policy: SchedulePolicy,
        deadlines: &[f64],
    ) -> (Lane, Vec<std::sync::mpsc::Receiver<ServerResponse>>) {
        let lane = Lane::new(
            Task::Sst2,
            deadlines.len(),
            policy,
            OverloadConfig::default(),
            1,
            10e-3,
            50e-3,
            None,
        );
        let mut receivers = Vec::new();
        {
            let mut queue = lane.queue.lock().expect("lane mutex");
            for (seq, &deadline_s) in deadlines.iter().enumerate() {
                let (tx, rx) = sync_channel(1);
                receivers.push(rx);
                queue.jobs.push(Job {
                    seq: seq as u64,
                    deadline_s,
                    enqueued_at: Instant::now(),
                    request: InferenceRequest::new(vec![seq as u32]),
                    reply: tx,
                });
            }
        }
        (lane, receivers)
    }

    fn pop_order(lane: &Lane) -> Vec<u64> {
        let mut queue = lane.queue.lock().expect("lane mutex");
        let mut order = Vec::new();
        while let Some(job) = Lane::pop(&mut queue, lane.policy) {
            order.push(job.seq);
        }
        order
    }

    #[test]
    fn edf_pops_earliest_deadline_ties_to_admission_order() {
        let (lane, _rx) = lane_with(
            SchedulePolicy::EarliestDeadline,
            &[0.5, 0.1, 0.3, 0.1, 0.05],
        );
        assert_eq!(pop_order(&lane), vec![4, 1, 3, 2, 0]);
    }

    #[test]
    fn fifo_pops_admission_order_regardless_of_deadlines() {
        let (lane, _rx) = lane_with(SchedulePolicy::Fifo, &[0.5, 0.1, 0.3, 0.1, 0.05]);
        assert_eq!(pop_order(&lane), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shed_estimate_uses_observed_degraded_mean_clamped_to_nominal() {
        let (lane, _rx) = lane_with(SchedulePolicy::EarliestDeadline, &[]);
        // No degraded serves yet: the pessimistic nominal estimate.
        assert_eq!(lane.shed_service_estimate_s(), 10e-3);
        {
            let mut tally = lane.tally.lock().expect("tally mutex");
            tally.degraded = 4;
            tally.degraded_modeled_total_s = 8e-3; // 2 ms mean
        }
        assert_eq!(lane.shed_service_estimate_s(), 2e-3);
        {
            // A noisy mean above nominal must not make the ladder shed
            // more than the class-agnostic rule would.
            let mut tally = lane.tally.lock().expect("tally mutex");
            tally.degraded_modeled_total_s = 200e-3; // 50 ms mean
        }
        assert_eq!(lane.shed_service_estimate_s(), 10e-3);
    }

    #[test]
    fn attach_detach_track_extra_shards_and_resizes() {
        let (lane, _rx) = lane_with(SchedulePolicy::EarliestDeadline, &[]);
        {
            let mut queue = lane.queue.lock().expect("lane mutex");
            lane.attach(&mut queue);
            assert_eq!(queue.extra_shards, 1);
            assert_eq!(queue.pool_resizes, 1);
        }
        lane.detach();
        let queue = lane.queue.lock().expect("lane mutex");
        assert_eq!(queue.extra_shards, 0);
        assert_eq!(queue.pool_resizes, 2);
    }

    #[test]
    fn pop_reports_the_tightest_successor() {
        let (lane, _rx) = lane_with(SchedulePolicy::EarliestDeadline, &[0.5, 0.1, 0.3]);
        let popped = lane.next_work().expect("work queued");
        match &popped.work {
            Work::Fresh(job) => assert_eq!(job.seq, 1),
            Work::Resume(_) => panic!("no parked sessions here"),
        }
        // After popping seq 1 (deadline 0.1), the tightest survivor is
        // seq 2 at 0.3.
        assert_eq!(popped.successor_deadline_s, Some(0.3));
        assert_eq!(lane.tightest_queued_deadline(), Some(0.3));
    }
}
